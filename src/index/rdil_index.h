#ifndef XTOPK_INDEX_RDIL_INDEX_H_
#define XTOPK_INDEX_RDIL_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "index/dewey_index.h"

namespace xtopk {

/// A Ranked Dewey Inverted List (XRank's RDIL, paper §II-C): one keyword's
/// occurrences ordered by local score descending, plus a B+-tree over the
/// (order-preserving encoded) Dewey ids so the algorithm can probe the
/// occurrence "closest" to a given node out of document order.
struct RdilList {
  const DeweyList* base = nullptr;   ///< Dewey ids, scores, nodes.
  std::vector<uint32_t> by_score;    ///< Rows by score descending.
  std::unique_ptr<BTree> dewey_btree;  ///< EncodeDeweyKey(dewey) -> row.
};

/// Keyword -> RDIL. Borrows the DeweyIndex it was built from.
class RdilIndex {
 public:
  RdilIndex() = default;
  RdilIndex(RdilIndex&&) = default;
  RdilIndex& operator=(RdilIndex&&) = default;
  RdilIndex(const RdilIndex&) = delete;
  RdilIndex& operator=(const RdilIndex&) = delete;

  const RdilList* GetList(const std::string& term) const;

  const DeweyIndex* base() const { return base_; }

  /// Serialized inverted-list bytes: full Dewey id + float score per entry
  /// in score order (score order defeats prefix compression).
  uint64_t EncodedListBytes() const;

  /// Modeled footprint of all per-keyword B+-trees (Table I "B+-tree").
  uint64_t BTreeBytes() const;

 private:
  friend class IndexBuilder;

  const DeweyIndex* base_ = nullptr;
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<RdilList> lists_;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_RDIL_INDEX_H_
