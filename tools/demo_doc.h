#ifndef XTOPK_TOOLS_DEMO_DOC_H_
#define XTOPK_TOOLS_DEMO_DOC_H_

#include <string>

namespace xtopk_tools {

// The built-in demo document shared by the profiling/telemetry CLIs
// (xtopk_profile, xtopk_replay, xtopk_statsd): a generated bibliography
// large enough that a query's wall time is dominated by actual search work
// (tiny toy documents would profile the tracer, not the engine). Fully
// deterministic, so replay fingerprints recorded against it are stable.
inline std::string BuildDemoXml() {
  const char* topics[] = {"storage", "ranking",  "indexing", "joins",
                          "caching", "parsing",  "scoring",  "pruning"};
  const char* authors[] = {"alice", "bob", "carol", "dave", "erin"};
  std::string xml = "<bib>\n";
  for (int i = 0; i < 400; ++i) {
    const char* topic = topics[i % 8];
    xml += "<book year=\"" + std::to_string(1990 + i % 30) + "\">";
    xml += "<title>xml " + std::string(topic) + " techniques volume " +
           std::to_string(i) + "</title>";
    xml += "<author>" + std::string(authors[i % 5]) + "</author>";
    if (i % 3 == 0) {
      xml += "<chapter>keyword search over xml data</chapter>";
    }
    if (i % 5 == 0) {
      xml += "<chapter>top k query processing and " + std::string(topic) +
             "</chapter>";
    }
    xml += "<chapter>notes on " + std::string(topics[(i + 3) % 8]) +
           " and data management</chapter>";
    xml += "</book>\n";
  }
  xml +=
      "<article><title>supporting top k keyword search in xml databases"
      "</title><author>alice</author><author>bob</author>"
      "<abstract>keyword search queries over xml data with top k ranking"
      "</abstract></article>\n";
  xml += "</bib>\n";
  return xml;
}

}  // namespace xtopk_tools

#endif  // XTOPK_TOOLS_DEMO_DOC_H_
