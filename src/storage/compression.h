#ifndef XTOPK_STORAGE_COMPRESSION_H_
#define XTOPK_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <string>

#include "storage/column.h"
#include "util/status.h"

namespace xtopk {

/// On-disk column codecs (paper §III-D, after C-Store / Abadi et al.):
///
/// * kDelta — for columns with many distinct values: rows are cut into
///   fixed-size blocks; each block stores its first JDewey number in full
///   and every subsequent value as a delta from its predecessor. Row ids
///   are NOT stored: which rows are present in a column is implied by the
///   per-row sequence lengths the list header already carries, so decoding
///   takes the present-row list as input.
/// * kRunLength — for columns with few distinct values: each run is a
///   triple (v, r, c) = (value, first row, repeat count), delta-encoded
///   between consecutive triples (self-contained).
/// * kAuto — pick per column: run-length when the average run length is at
///   least kRleThreshold, delta otherwise.
enum class ColumnCodec : uint8_t {
  kDelta = 0,
  kRunLength = 1,
  kAuto = 2,
};

/// Average run length at or above which kAuto selects run-length encoding.
inline constexpr double kRleThreshold = 1.5;

/// Rows per delta block. 8 KiB blocks of ~4-byte entries in the paper's
/// setting; we keep the block size in rows so the codec is deterministic.
inline constexpr uint32_t kDeltaBlockRows = 2048;

/// Encodes `column` with `codec`, appending to `out`. With kAuto the chosen
/// codec is recorded in the header so decode is self-describing.
void EncodeColumn(const Column& column, ColumnCodec codec, std::string* out);

/// Decodes a column previously written by EncodeColumn, starting at
/// data[*pos]; advances *pos. `present_rows` lists the row ids present in
/// this column in order (derived from the list's sequence lengths); it is
/// required for kDelta-coded columns and ignored for kRunLength ones —
/// pass nullptr only when the codec is known to be run-length.
Status DecodeColumn(const std::string& data, size_t* pos,
                    const std::vector<uint32_t>* present_rows,
                    Column* column);

/// Codec kAuto would choose for `column`.
ColumnCodec ChooseCodec(const Column& column);

/// Encoded size without materializing the bytes (index-size stats).
size_t EncodedColumnSize(const Column& column, ColumnCodec codec);

}  // namespace xtopk

#endif  // XTOPK_STORAGE_COMPRESSION_H_
