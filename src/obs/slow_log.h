#ifndef XTOPK_OBS_SLOW_LOG_H_
#define XTOPK_OBS_SLOW_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/accounting.h"

namespace xtopk {
namespace obs {

/// Slow-query log configuration. The global instance reads its defaults
/// from the environment once at first use:
///   XTOPK_SLOWLOG_PATH          on-disk JSON-lines file ("" = memory only)
///   XTOPK_SLOWLOG_THRESHOLD_US  wall-clock threshold (default 100ms;
///                               0 = capture every query — replay recording)
///   XTOPK_SLOWLOG_PAGES         pages_read threshold (default: disabled)
///   XTOPK_SLOWLOG_MAX_BYTES     file size bound before rotation (default 8MB)
struct SlowLogOptions {
  std::string path;
  uint64_t latency_threshold_us = 100 * 1000;
  /// A query also qualifies when it reads at least this many pages
  /// (UINT64_MAX = latency only).
  uint64_t pages_threshold = UINT64_MAX;
  uint64_t max_file_bytes = 8ull * 1024 * 1024;
  size_t memory_entries = 128;

  /// Options as the environment configures them (unset vars keep the
  /// defaults above).
  static SlowLogOptions FromEnv();
};

/// One captured query: enough to triage it from a dashboard and to re-run
/// it bit-for-bit through tools/xtopk_replay.
struct SlowQueryCapture {
  uint64_t ts_us = 0;  ///< MonotonicNowUs at capture
  std::vector<std::string> keywords;  ///< normalized, as executed
  uint64_t k = 0;
  std::string semantics;  ///< "elca" | "slca"
  double wall_us = 0;
  uint64_t hits = 0;
  /// FNV-1a over (node, level, score rounded via %.9g) of every hit, as a
  /// 16-hex-digit string — replay compares fingerprints, not full results.
  std::string result_fingerprint;
  ResourceAccounting accounting;
  /// The query's span tree (QueryTrace::ToJson) when the caller had tracing
  /// on; empty otherwise — replay re-executes with tracing to get one.
  std::string trace_json;

  /// One JSON line, no trailing newline.
  std::string ToJsonLine() const;
};

/// Bounded capture sink for queries that exceed the thresholds: a
/// mutex-guarded in-memory ring of recent captures (served by /slowlog)
/// plus an optional JSON-lines file. The file is bounded: when it would
/// exceed max_file_bytes, it is truncated and restarted (the in-memory
/// ring still covers the most recent captures across the rotation).
class SlowQueryLog {
 public:
  explicit SlowQueryLog(SlowLogOptions options = SlowLogOptions())
      : options_(std::move(options)) {}

  /// The process-wide log, configured from the environment at first use.
  static SlowQueryLog& Global();

  /// Cheap predicate for the hot path: should a query with this wall time /
  /// page count be captured at all? Callers check this before building the
  /// (comparatively expensive) capture.
  bool ShouldCapture(double wall_us, uint64_t pages_read) const {
    std::lock_guard<std::mutex> lock(mu_);
    return wall_us >= static_cast<double>(options_.latency_threshold_us) ||
           pages_read >= options_.pages_threshold;
  }

  void Record(const SlowQueryCapture& capture);

  /// Most recent captures, oldest first, at most `max` (0 = all retained).
  std::vector<SlowQueryCapture> Recent(size_t max = 0) const;

  /// {"slow_queries":[<capture>,...]}
  std::string ToJson(size_t max = 0) const;

  /// Swaps in new options (tests, tools). Clears nothing: retained
  /// captures stay.
  void Reconfigure(SlowLogOptions options);
  SlowLogOptions options() const;

  /// Captures recorded / dropped-by-rotation counters live in the metrics
  /// registry: obs.slowlog.captures, obs.slowlog.rotations.

 private:
  mutable std::mutex mu_;
  SlowLogOptions options_;
  std::deque<SlowQueryCapture> recent_;
  uint64_t file_bytes_ = 0;  ///< bytes written since last rotation
};

/// 16-hex-digit FNV-1a over the byte string `data`.
std::string FingerprintHex(const std::string& data);

}  // namespace obs
}  // namespace xtopk

#endif  // XTOPK_OBS_SLOW_LOG_H_
