// Ablation A5 (paper §III-B): the I/O profile of the column-oriented
// disk layout. "The algorithm does not read the whole JDewey sequences
// from the disk at once … the scan starts from l0 = min{l_m^1, l_m^2} …
// this would save disk I/O when the XML tree is deep and some keywords
// only appear at high levels."
//
// We write the XMark-like index to the paged file, then compare pages read
// per query for (a) keyword pairs whose l0 is shallow (one keyword only
// occurs near the root) vs (b) pairs of deep keywords, against the cost of
// materializing the full lists (what a Dewey-id layout must read).

#include <cstdio>

#include "bench_util.h"
#include "index/disk_index.h"
#include "workload/xmark_gen.h"

int main() {
  // Deep auction corpus with planted keywords at controlled depths:
  // person names sit at level 4, item description texts at level 7-8.
  xtopk::XmarkGenOptions gen;
  gen.items_per_region = 1200;
  gen.num_people = 6000;
  gen.num_open_auctions = 2500;
  gen.seed = 99;
  xtopk::XmarkCorpus corpus = xtopk::GenerateXmark(gen);
  // Plant one keyword only into shallow targets (person names, level 4)
  // and one only into deep targets (listitem texts, level 8).
  std::vector<xtopk::NodeId> shallow_targets, deep_targets;
  for (xtopk::NodeId n : corpus.text_nodes) {
    uint32_t level = corpus.tree.level(n);
    if (level <= 4) shallow_targets.push_back(n);
    if (level >= 7) deep_targets.push_back(n);
  }
  xtopk::Rng rng(7);
  xtopk::PlantTerms(&corpus.tree, shallow_targets,
                    {{"shallowkw", 15000, "", 0.0}}, &rng);
  xtopk::PlantTerms(&corpus.tree, deep_targets,
                    {{"deepkw1", 15000, "", 0.0}, {"deepkw2", 15000, "", 0.0}},
                    &rng);

  xtopk::IndexBuilder builder(corpus.tree);
  xtopk::JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = "/tmp/xtopk_bench_io.idx";
  xtopk::Status s = xtopk::DiskIndexWriter::Write(jindex, true, path);
  if (!s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }

  std::printf("=== Ablation A5: disk I/O of the column layout (§III-B) ===\n");
  std::printf("corpus: %zu nodes, depth %u; index on 8 KiB pages\n\n",
              corpus.tree.node_count(), corpus.tree.max_level());
  std::printf("%-26s %4s %12s %14s\n", "query", "l0", "pages read",
              "full-list pages");

  struct Case {
    std::vector<std::string> query;
  };
  for (const Case& c : {Case{{"shallowkw", "deepkw1"}},
                        Case{{"deepkw1", "deepkw2"}}}) {
    auto disk = xtopk::DiskJDeweyIndex::Open(path, /*pool_pages=*/65536);
    if (!disk.ok()) {
      std::fprintf(stderr, "open: %s\n", disk.status().ToString().c_str());
      return 1;
    }
    uint32_t l0 = UINT32_MAX;
    for (const auto& kw : c.query) {
      l0 = std::min(l0, (*disk)->MaxLength(kw));
    }
    (*disk)->ResetIoStats();
    xtopk::JoinSearchOptions search_options;
    search_options.compute_scores = false;  // Fig. 9-style unranked run
    auto results = (*disk)->SearchComplete(c.query, search_options);
    if (!results.ok()) {
      std::fprintf(stderr, "search: %s\n",
                   results.status().ToString().c_str());
      return 1;
    }
    uint64_t query_pages = (*disk)->io_stats().pages_read;

    // Reference: materializing both lists fully (all levels).
    auto full = xtopk::DiskJDeweyIndex::Open(path, 65536);
    (*full)->ResetIoStats();
    for (const auto& kw : c.query) {
      auto list = (*full)->LoadList(kw, 64, /*need_scores=*/false);
      if (!list.ok()) return 1;
    }
    uint64_t full_pages = (*full)->io_stats().pages_read;

    std::string name = c.query[0] + "+" + c.query[1];
    std::printf("%-26s %4u %12llu %14llu\n", name.c_str(), l0,
                (unsigned long long)query_pages,
                (unsigned long long)full_pages);
  }
  std::printf(
      "\nexpected shape: the shallow-l0 query touches far fewer pages than\n"
      "a full materialization; deep-pair queries approach it.\n");
  std::remove(path.c_str());
  return 0;
}
