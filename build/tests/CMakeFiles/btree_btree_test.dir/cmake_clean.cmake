file(REMOVE_RECURSE
  "CMakeFiles/btree_btree_test.dir/btree/btree_test.cc.o"
  "CMakeFiles/btree_btree_test.dir/btree/btree_test.cc.o.d"
  "btree_btree_test"
  "btree_btree_test.pdb"
  "btree_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
