file(REMOVE_RECURSE
  "CMakeFiles/hybrid_demo.dir/hybrid_demo.cpp.o"
  "CMakeFiles/hybrid_demo.dir/hybrid_demo.cpp.o.d"
  "hybrid_demo"
  "hybrid_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
