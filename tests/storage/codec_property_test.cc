#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/compression.h"
#include "util/rng.h"
#include "util/simd.h"

namespace xtopk {
namespace {

std::vector<uint32_t> PresentRows(const Column& col) {
  std::vector<uint32_t> rows;
  for (const Run& run : col.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) rows.push_back(run.first_row + i);
  }
  return rows;
}

/// Random column generator with tunable duplicate probability, row gaps and
/// value jumps — `jump_bits` controls the delta magnitude so large values
/// exercise the 3/4/5-byte varint lanes, not just the 1-byte fast case.
Column RandomColumn(uint64_t seed, uint32_t rows, double dup_prob,
                    uint32_t jump_bits) {
  Rng rng(seed);
  Column col;
  uint32_t row = 0;
  uint32_t value = 1 + static_cast<uint32_t>(rng.NextBounded(1000));
  for (uint32_t i = 0; i < rows; ++i) {
    col.Append(row, value);
    ++row;
    if (!rng.NextBernoulli(dup_prob)) {
      uint64_t jump = 1 + rng.NextBounded(1ull << jump_bits);
      // Saturate instead of wrapping: values must stay non-decreasing.
      uint32_t next = static_cast<uint32_t>(
          std::min<uint64_t>(value + jump, 0xFFFFFFFEull));
      // A row gap while the value is pinned at the saturation cap would
      // split a run — equal values must occupy contiguous rows, and the
      // decoders reject columns that break that invariant.
      if (next != value && rng.NextBernoulli(0.1)) row += 1 + rng.NextBounded(3);
      value = next;
    }
  }
  return col;
}

void ExpectColumnsEqual(const Column& a, const Column& b,
                        const std::string& what) {
  ASSERT_EQ(a.run_count(), b.run_count()) << what;
  for (size_t i = 0; i < a.run_count(); ++i) {
    ASSERT_EQ(a.runs()[i], b.runs()[i]) << what << " run " << i;
  }
}

/// Round-trips `col` through `codec` and checks equality.
void RoundTrip(const Column& col, ColumnCodec codec, const std::string& what) {
  std::string buf;
  EncodeColumn(col, codec, &buf);
  std::vector<uint32_t> rows = PresentRows(col);
  Column out;
  size_t pos = 0;
  ASSERT_TRUE(DecodeColumn(buf, &pos, &rows, &out).ok()) << what;
  ASSERT_EQ(pos, buf.size()) << what;
  ExpectColumnsEqual(col, out, what);
}

TEST(CodecPropertyTest, AllCodecsRoundTripRandomized) {
  // Row counts straddle the GVB block boundary (kGvbBlockRows = 128) and
  // the group width (4): empty tail groups, partial tail groups, partial
  // tail blocks, single-block and multi-block columns.
  const uint32_t kRows[] = {1,   2,   3,   4,  5,   127, 128,
                            129, 131, 255, 256, 500, 1000, 4097};
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    for (uint32_t rows : kRows) {
      double dup = static_cast<double>(seed % 10) / 10.0;
      uint32_t jump_bits = 4 + seed % 26;  // up to ~2^29 deltas: 5-byte varints
      Column col = RandomColumn(seed * 1000 + rows, rows, dup, jump_bits);
      std::string what = "seed=" + std::to_string(seed) +
                         " rows=" + std::to_string(rows);
      RoundTrip(col, ColumnCodec::kDelta, what + " delta");
      RoundTrip(col, ColumnCodec::kRunLength, what + " rle");
      RoundTrip(col, ColumnCodec::kGroupVarint, what + " gvb");
      RoundTrip(col, ColumnCodec::kAuto, what + " auto");
    }
  }
}

TEST(CodecPropertyTest, GroupVarintEmptyAndSingleRow) {
  Column empty;
  RoundTrip(empty, ColumnCodec::kGroupVarint, "empty");
  Column one;
  one.Append(0, 123456789);
  RoundTrip(one, ColumnCodec::kGroupVarint, "single row");
}

TEST(CodecPropertyTest, GroupVarintMaxValues) {
  // First value needs all five varint bytes; later lanes the full 4 bytes.
  // The base leaves room for all 300 increments below UINT32_MAX — values
  // must stay non-decreasing without wrapping (Prop 3.1).
  Column col;
  for (uint32_t i = 0; i < 300; ++i) col.Append(i, 0xFFFFFE00u + i);
  RoundTrip(col, ColumnCodec::kGroupVarint, "max values");
}

TEST(CodecPropertyTest, GroupVarintTruncatedIsCorruption) {
  Column col = RandomColumn(7, 600, 0.2, 16);
  std::string buf;
  EncodeColumn(col, ColumnCodec::kGroupVarint, &buf);
  std::vector<uint32_t> rows = PresentRows(col);
  for (size_t cut : {buf.size() / 4, buf.size() / 2, buf.size() - 1}) {
    std::string trunc = buf.substr(0, cut);
    Column out;
    size_t pos = 0;
    EXPECT_FALSE(DecodeColumn(trunc, &pos, &rows, &out).ok()) << cut;
  }
}

TEST(CodecPropertyTest, ScalarAndSimdDecodesMatch) {
  if (!simd::GvbSimdAvailable()) {
    GTEST_SKIP() << "no vector kernel on this build/CPU";
  }
  for (uint64_t seed = 50; seed < 62; ++seed) {
    Column col = RandomColumn(seed, 2000, 0.1, 4 + seed % 26);
    std::string buf;
    EncodeColumn(col, ColumnCodec::kGroupVarint, &buf);
    std::vector<uint32_t> rows = PresentRows(col);

    simd::SetGvbSimdEnabled(false);
    Column scalar_out;
    size_t pos = 0;
    ASSERT_TRUE(DecodeColumn(buf, &pos, &rows, &scalar_out).ok());

    simd::SetGvbSimdEnabled(true);
    Column simd_out;
    pos = 0;
    ASSERT_TRUE(DecodeColumn(buf, &pos, &rows, &simd_out).ok());
    simd::SetGvbSimdEnabled(true);  // leave default state behind

    ExpectColumnsEqual(scalar_out, simd_out, "seed=" + std::to_string(seed));
  }
}

TEST(CodecPropertyTest, RawKernelsAgreeOnHandPackedGroups) {
  // Hand-pack random values as group varint (4 per control byte) and feed
  // both kernels the identical buffer.
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    size_t count = 1 + rng.NextBounded(70);
    std::vector<uint32_t> values(count);
    std::string buf;
    for (size_t i = 0; i < count; i += 4) {
      size_t n = std::min<size_t>(4, count - i);
      uint8_t ctrl = 0;
      std::string payload;
      for (size_t j = 0; j < n; ++j) {
        uint32_t v = static_cast<uint32_t>(
            rng.NextBounded(1ull << (1 + rng.NextBounded(32))));
        values[i + j] = v;
        uint8_t len = v < (1u << 8) ? 1 : v < (1u << 16) ? 2 : v < (1u << 24) ? 3 : 4;
        ctrl |= static_cast<uint8_t>((len - 1) << (2 * j));
        for (uint8_t b = 0; b < len; ++b) {
          payload.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
        }
      }
      buf.push_back(static_cast<char>(ctrl));
      buf.append(payload);
    }
    std::vector<uint32_t> scalar_out(count), simd_out(count);
    const uint8_t* src = reinterpret_cast<const uint8_t*>(buf.data());
    size_t scalar_used =
        simd::GvbDecodeValuesScalar(src, buf.size(), scalar_out.data(), count);
    size_t simd_used =
        simd::GvbDecodeValues(src, buf.size(), simd_out.data(), count);
    ASSERT_EQ(scalar_used, buf.size());
    ASSERT_EQ(simd_used, scalar_used) << "round " << round;
    ASSERT_EQ(scalar_out, simd_out) << "round " << round;
    EXPECT_EQ(scalar_out, values) << "round " << round;
  }
}

TEST(CodecPropertyTest, BoundsDecodeKeepsEveryRunInRange) {
  Rng rng(7);
  for (uint64_t seed = 100; seed < 112; ++seed) {
    Column col = RandomColumn(seed, 3000, 0.3, 10);
    std::string buf;
    EncodeColumn(col, ColumnCodec::kGroupVarint, &buf);
    std::vector<uint32_t> rows = PresentRows(col);

    uint32_t max_value = col.runs().back().value;
    for (int probe = 0; probe < 8; ++probe) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(max_value + 1));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(max_value + 1));
      ValueBounds bounds{std::min(a, b), std::max(a, b)};
      Column out;
      SkipDecodeStats stats;
      size_t pos = 0;
      ASSERT_TRUE(DecodeColumnWithBounds(buf, &pos, &rows, bounds, &out, &stats)
                      .ok());
      EXPECT_EQ(pos, buf.size());  // pos advances past the whole column

      // The partial column is a contiguous run-subsequence of the full one
      // containing every run whose value lies in bounds.
      size_t first_in_range = col.run_count();
      for (size_t i = 0; i < col.run_count(); ++i) {
        if (col.runs()[i].value >= bounds.lo) {
          first_in_range = i;
          break;
        }
      }
      // Each partial run is a piece of the full column's run with that
      // value — out-of-bounds runs at the edges may be clipped at a block
      // boundary, never grown or invented.
      for (const auto& partial_run : out.runs()) {
        const auto* full = col.FindValue(partial_run.value);
        ASSERT_NE(full, nullptr) << partial_run.value;
        EXPECT_GE(partial_run.first_row, full->first_row);
        EXPECT_LE(partial_run.end_row(), full->end_row());
      }
      // Every run whose value lies inside the bounds survives whole: all
      // its blocks overlap [lo, hi], so none of them were skipped.
      for (size_t i = first_in_range; i < col.run_count(); ++i) {
        const auto& in_range_run = col.runs()[i];
        if (in_range_run.value > bounds.hi) break;
        const auto* got = out.FindValue(in_range_run.value);
        ASSERT_NE(got, nullptr)
            << "seed=" << seed << " run value " << in_range_run.value;
        EXPECT_EQ(*got, in_range_run) << "seed=" << seed;
      }
    }

    // A narrow probe on a multi-block column actually skips blocks.
    SkipDecodeStats stats;
    Column out;
    size_t pos = 0;
    ValueBounds narrow{0, col.runs().front().value};
    ASSERT_TRUE(
        DecodeColumnWithBounds(buf, &pos, &rows, narrow, &out, &stats).ok());
    EXPECT_GT(stats.blocks_skipped, 0u) << "seed=" << seed;
    EXPECT_EQ(pos, buf.size());
  }
}

/// Structural invariants any successfully decoded column must satisfy,
/// whatever bytes produced it: nonempty runs, rows strictly advancing
/// without overlap, values non-decreasing with equal values contiguous.
void ExpectValidColumn(const Column& col, const std::string& what) {
  uint64_t rows = 0;
  for (size_t i = 0; i < col.run_count(); ++i) {
    const Run& run = col.runs()[i];
    ASSERT_GT(run.count, 0u) << what;
    ASSERT_GE(UINT32_MAX - run.count, run.first_row) << what;
    if (i > 0) {
      const Run& prev = col.runs()[i - 1];
      ASSERT_GE(run.first_row, prev.end_row()) << what;
      ASSERT_GT(run.value, prev.value) << what;  // maximal runs
    }
    rows += run.count;
  }
  ASSERT_EQ(rows, col.row_count()) << what;
}

TEST(CodecPropertyTest, SingleBitFlipsDetectedOrDecodeInBounds) {
  // Every single-bit flip of an encoded column must either be rejected
  // with a typed error or decode — without UB (the UBSan job runs this
  // file) — into a column that still satisfies the structural
  // invariants the join algorithms rely on. An undetected flip may
  // change *values* (only checksums catch that; the disk layer's v2
  // segments do), but it must never produce an out-of-bounds read or a
  // malformed run list.
  Column col = RandomColumn(11, 400, 0.3, 12);
  std::vector<uint32_t> rows = PresentRows(col);
  for (ColumnCodec codec : {ColumnCodec::kGroupVarint, ColumnCodec::kRunLength,
                            ColumnCodec::kDelta}) {
    std::string buf;
    EncodeColumn(col, codec, &buf);
    for (size_t bit = 0; bit < buf.size() * 8; ++bit) {
      std::string damaged = buf;
      damaged[bit / 8] = static_cast<char>(
          static_cast<uint8_t>(damaged[bit / 8]) ^ (1u << (bit % 8)));
      Column out;
      size_t pos = 0;
      Status s = DecodeColumn(damaged, &pos, &rows, &out);
      if (!s.ok()) continue;  // detected: surfaced as a typed status
      ExpectValidColumn(
          out, "codec=" + std::to_string(static_cast<int>(codec)) +
                   " bit=" + std::to_string(bit));
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(CodecPropertyTest, BoundsDecodeOfOtherCodecsIsFull) {
  Column col = RandomColumn(3, 400, 0.9, 4);
  for (ColumnCodec codec : {ColumnCodec::kDelta, ColumnCodec::kRunLength}) {
    std::string buf;
    EncodeColumn(col, codec, &buf);
    std::vector<uint32_t> rows = PresentRows(col);
    Column out;
    size_t pos = 0;
    ASSERT_TRUE(DecodeColumnWithBounds(buf, &pos, &rows, ValueBounds{5, 6},
                                       &out, nullptr)
                    .ok());
    ExpectColumnsEqual(col, out, "non-gvb bounds decode is full");
  }
}

}  // namespace
}  // namespace xtopk
