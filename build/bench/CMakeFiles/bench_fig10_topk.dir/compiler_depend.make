# Empty compiler generated dependencies file for bench_fig10_topk.
# This may be replaced when dependencies are built.
