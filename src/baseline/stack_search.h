#ifndef XTOPK_BASELINE_STACK_SEARCH_H_
#define XTOPK_BASELINE_STACK_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/scoring.h"
#include "core/search_result.h"
#include "index/dewey_index.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct StackSearchOptions {
  Semantics semantics = Semantics::kElca;
  bool compute_scores = true;
  ScoringParams scoring;
};

struct StackSearchStats {
  uint64_t ids_scanned = 0;   ///< Dewey ids consumed from the k-way merge.
  uint64_t frames_pushed = 0;
};

/// The stack-based baseline (paper §II-C; XRank's DIL family): all k Dewey
/// inverted lists are merged in document order, and a stack mirroring the
/// current root-to-node path carries per-keyword state upward. The whole of
/// every list is always scanned — the behaviour the paper contrasts with
/// the join-based algorithm (execution time bound by the most frequent
/// keyword, Fig. 9).
///
/// ELCA: a frame popped with every keyword present is an answer and its
/// keyword state is consumed (not propagated); otherwise state merges into
/// the parent frame with one damping step.
/// SLCA: keyword state always propagates; a frame containing all keywords
/// is an answer iff no descendant frame already contained all keywords.
class StackSearch {
 public:
  StackSearch(const XmlTree& tree, const DeweyIndex& index,
              StackSearchOptions options = {});

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  const StackSearchStats& stats() const { return stats_; }

 private:
  const XmlTree& tree_;
  const DeweyIndex& index_;
  StackSearchOptions options_;
  StackSearchStats stats_;
};

}  // namespace xtopk

#endif  // XTOPK_BASELINE_STACK_SEARCH_H_
