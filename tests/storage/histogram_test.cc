// Planner statistics: equal-height level histograms must be exact below
// the bucket cap, merge like disjoint unions across segments (associative
// up to coalescing), estimate overlaps sanely, and survive the manifest v2
// round trip — with v1 manifests still loading as rows-only stats.

#include "storage/histogram.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/segment_manifest.h"
#include "util/rng.h"

namespace xtopk {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Column MakeColumnOfValues(const std::vector<uint32_t>& values) {
  Column col;
  uint32_t row = 0;
  for (uint32_t v : values) col.Append(row++, v);
  return col;
}

/// A histogram over `count` distinct values spaced evenly from `first`.
LevelHistogram MakeUniform(uint32_t first, uint32_t stride, uint32_t count,
                           size_t max_buckets) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < count; ++i) values.push_back(first + i * stride);
  return LevelHistogram::FromColumn(MakeColumnOfValues(values), max_buckets);
}

TEST(LevelHistogramTest, SmallColumnIsExact) {
  Column col = MakeColumnOfValues({3, 7, 7, 7, 9, 20, 21});
  LevelHistogram h = LevelHistogram::FromColumn(col, 32);
  // 5 distinct values (runs), under the cap: total is exact and every
  // value falls in some bucket with unit weight.
  EXPECT_DOUBLE_EQ(h.total(), 5.0);
  EXPECT_LE(h.buckets().size(), 5u);
  EXPECT_DOUBLE_EQ(h.EstimateInRange(0, 1000), 5.0);
  EXPECT_DOUBLE_EQ(h.EstimateInRange(22, 1000), 0.0);
  EXPECT_DOUBLE_EQ(h.EstimateInRange(0, 2), 0.0);
}

TEST(LevelHistogramTest, CapRespectedAndTotalPreserved) {
  LevelHistogram h = MakeUniform(0, 3, 1000, 16);
  EXPECT_LE(h.buckets().size(), 16u);
  EXPECT_DOUBLE_EQ(h.total(), 1000.0);
  // Equal-height: no bucket vastly outweighs the mean.
  for (const auto& b : h.buckets()) {
    EXPECT_LE(b.count, 2.0 * 1000.0 / 16.0 + 1.0);
  }
}

TEST(LevelHistogramTest, OverlapOfIdenticalDenseSetsIsTotal) {
  // Dense values (every integer in the range present): per-interval
  // density is 1, so the capped independence estimate da*db/width hits
  // the cap and the self-overlap recovers the full total.
  LevelHistogram h = MakeUniform(10, 1, 200, 32);
  EXPECT_NEAR(h.EstimateOverlap(h), 200.0, 200.0 * 0.05);
}

TEST(LevelHistogramTest, OverlapOfIdenticalSparseSetsIsScaledByDensity) {
  // Every second integer present: the estimator assumes independence
  // within a bucket, so identical stride-2 sets are priced near total/2
  // — an underestimate by design, but bounded and symmetric.
  LevelHistogram h = MakeUniform(10, 2, 200, 32);
  double ov = h.EstimateOverlap(h);
  EXPECT_GE(ov, 200.0 * 0.4);
  EXPECT_LE(ov, 200.0);
}

TEST(LevelHistogramTest, OverlapOfDisjointRangesIsZero) {
  LevelHistogram a = MakeUniform(0, 1, 100, 32);
  LevelHistogram b = MakeUniform(1000, 1, 100, 32);
  EXPECT_DOUBLE_EQ(a.EstimateOverlap(b), 0.0);
  EXPECT_DOUBLE_EQ(b.EstimateOverlap(a), 0.0);
}

TEST(LevelHistogramTest, OverlapNeverExceedsEitherTotal) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint32_t> va, vb;
    uint32_t a = 0, b = 0;
    for (int i = 0; i < 60; ++i) {
      a += 1 + static_cast<uint32_t>(rng.NextBounded(20));
      va.push_back(a);
      b += 1 + static_cast<uint32_t>(rng.NextBounded(20));
      vb.push_back(b);
    }
    LevelHistogram ha = LevelHistogram::FromColumn(MakeColumnOfValues(va), 8);
    LevelHistogram hb = LevelHistogram::FromColumn(MakeColumnOfValues(vb), 8);
    double ov = ha.EstimateOverlap(hb);
    EXPECT_GE(ov, 0.0);
    EXPECT_LE(ov, ha.total() + 1e-9);
    EXPECT_LE(ov, hb.total() + 1e-9);
    EXPECT_NEAR(ov, hb.EstimateOverlap(ha), 1e-6);  // symmetric
  }
}

TEST(LevelHistogramTest, MergeOfDisjointSegmentsAddsTotals) {
  LevelHistogram a = MakeUniform(0, 1, 120, 32);
  LevelHistogram b = MakeUniform(500, 1, 80, 32);
  LevelHistogram merged = a;
  merged.Merge(b, kMergedStatsBuckets);
  EXPECT_NEAR(merged.total(), 200.0, 1e-6);
  EXPECT_NEAR(merged.EstimateInRange(0, 130), 120.0, 1.0);
  EXPECT_NEAR(merged.EstimateInRange(500, 600), 80.0, 1.0);
}

/// Associativity property: (a + b) + c and a + (b + c) must describe the
/// same distribution. Coalescing can pick different bucket boundaries, so
/// the comparison is on the derived quantities the planner reads — total
/// and range estimates — not raw buckets.
TEST(LevelHistogramTest, MergeIsAssociativeOnDerivedEstimates) {
  Rng rng(4242);
  for (int round = 0; round < 20; ++round) {
    LevelHistogram parts[3];
    uint32_t top = 0;
    for (int p = 0; p < 3; ++p) {
      std::vector<uint32_t> values;
      uint32_t v = static_cast<uint32_t>(rng.NextBounded(2000));
      size_t n = 20 + rng.NextBounded(200);
      for (size_t i = 0; i < n; ++i) {
        v += 1 + static_cast<uint32_t>(rng.NextBounded(15));
        values.push_back(v);
      }
      top = std::max(top, v);
      parts[p] = LevelHistogram::FromColumn(MakeColumnOfValues(values), 32);
    }
    LevelHistogram left = parts[0];
    left.Merge(parts[1], kMergedStatsBuckets);
    left.Merge(parts[2], kMergedStatsBuckets);
    LevelHistogram bc = parts[1];
    bc.Merge(parts[2], kMergedStatsBuckets);
    LevelHistogram right = parts[0];
    right.Merge(bc, kMergedStatsBuckets);

    ASSERT_NEAR(left.total(), right.total(), 1e-6 * left.total());
    for (uint32_t lo = 0; lo <= top; lo += top / 7 + 1) {
      uint32_t hi = lo + top / 5 + 1;
      double el = left.EstimateInRange(lo, hi);
      double er = right.EstimateInRange(lo, hi);
      // Tolerance covers coalescing granularity: both orders keep at most
      // kMergedStatsBuckets buckets, but may cut them differently.
      double tol = 0.05 * left.total() + 1.0;
      EXPECT_NEAR(el, er, tol) << "round " << round << " range [" << lo
                               << ", " << hi << "]";
    }
  }
}

TEST(TermStatsTest, MergeAddsRowsAndHistograms) {
  TermStats a;
  a.rows = 10;
  a.levels.push_back(MakeUniform(0, 1, 10, 32));
  TermStats b;
  b.rows = 20;
  b.levels.push_back(MakeUniform(100, 1, 20, 32));
  a.Merge(b, kMergedStatsBuckets);
  EXPECT_EQ(a.rows, 30u);
  ASSERT_TRUE(a.has_histograms());
  EXPECT_NEAR(a.levels[0].total(), 30.0, 1e-6);
}

TEST(TermStatsTest, RowsOnlyPartPoisonsHistograms) {
  // A v1 segment contributes rows without histograms: the merged stats
  // must degrade to rows-only rather than undercount the histograms.
  TermStats with_hist;
  with_hist.rows = 10;
  with_hist.levels.push_back(MakeUniform(0, 1, 10, 32));
  TermStats rows_only;
  rows_only.rows = 5;
  with_hist.Merge(rows_only, kMergedStatsBuckets);
  EXPECT_EQ(with_hist.rows, 15u);
  EXPECT_FALSE(with_hist.has_histograms());
}

TEST(TermStatsTest, EmptyPartDoesNotPoison) {
  TermStats with_hist;
  with_hist.rows = 10;
  with_hist.levels.push_back(MakeUniform(0, 1, 10, 32));
  TermStats empty;  // rows == 0: nothing to describe, nothing poisoned
  with_hist.Merge(empty, kMergedStatsBuckets);
  EXPECT_EQ(with_hist.rows, 10u);
  EXPECT_TRUE(with_hist.has_histograms());
}

SegmentManifest MakeManifestWithHistograms() {
  SegmentManifest manifest;
  manifest.covered_nodes = 123;
  SegmentTermStats alpha;
  alpha.term = "alpha";
  alpha.rows = 40;
  alpha.max_tf = 3;
  alpha.levels.push_back(MakeUniform(5, 2, 40, 16));
  alpha.levels.push_back(MakeUniform(0, 1, 12, 16));
  SegmentTermStats beta;
  beta.term = "beta";
  beta.rows = 7;
  beta.max_tf = 1;
  beta.levels.push_back(MakeUniform(100, 3, 7, 16));
  manifest.terms.push_back(std::move(alpha));
  manifest.terms.push_back(std::move(beta));
  return manifest;
}

TEST(ManifestV2Test, HistogramsRoundTrip) {
  SegmentManifest manifest = MakeManifestWithHistograms();
  std::string path = TempPath("manifest_v2_roundtrip");
  ASSERT_TRUE(manifest.Save(path).ok());
  auto loaded = SegmentManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->terms.size(), 2u);
  for (size_t t = 0; t < 2; ++t) {
    const auto& got = loaded->terms[t];
    const auto& want = manifest.terms[t];
    EXPECT_EQ(got.term, want.term);
    EXPECT_EQ(got.rows, want.rows);
    EXPECT_EQ(got.max_tf, want.max_tf);
    ASSERT_EQ(got.levels.size(), want.levels.size()) << want.term;
    for (size_t l = 0; l < want.levels.size(); ++l) {
      ASSERT_EQ(got.levels[l].buckets().size(),
                want.levels[l].buckets().size());
      for (size_t b = 0; b < want.levels[l].buckets().size(); ++b) {
        EXPECT_EQ(got.levels[l].buckets()[b].lo,
                  want.levels[l].buckets()[b].lo);
        EXPECT_EQ(got.levels[l].buckets()[b].hi,
                  want.levels[l].buckets()[b].hi);
        EXPECT_DOUBLE_EQ(got.levels[l].buckets()[b].count,
                         want.levels[l].buckets()[b].count);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ManifestV2Test, V1ManifestLoadsAsRowsOnly) {
  SegmentManifest manifest = MakeManifestWithHistograms();
  std::string path = TempPath("manifest_v1_compat");
  ASSERT_TRUE(manifest.SaveV1(path).ok());
  auto loaded = SegmentManifest::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->terms.size(), 2u);
  for (const auto& term : loaded->terms) {
    EXPECT_TRUE(term.levels.empty()) << term.term;
  }
  EXPECT_EQ(loaded->terms[0].rows, 40u);
  EXPECT_EQ(loaded->terms[1].rows, 7u);
  std::remove(path.c_str());
}

TEST(ManifestV2Test, FlippedByteIsDetected) {
  SegmentManifest manifest = MakeManifestWithHistograms();
  std::string path = TempPath("manifest_v2_corrupt");
  ASSERT_TRUE(manifest.Save(path).ok());
  // Flip one byte in the middle of the histogram block.
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  ASSERT_GT(size, 16);
  std::fseek(f, size / 2, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, size / 2, SEEK_SET);
  std::fputc(c ^ 0x40, f);
  std::fclose(f);
  auto loaded = SegmentManifest::Load(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtopk
