// Command-line search tool: index an XML document (optionally persisting
// the index), then answer keyword queries from the command line.
//
//   xtopk_cli index  <doc.xml> <index-file>      build & save the index
//   xtopk_cli search <doc.xml> <kw> [kw...]      parse, index, query
//   xtopk_cli load   <index-file> <kw> [kw...]   query a saved index
//
// Flags (before the subcommand): --slca, --topk N
//
// `load` demonstrates the persistence path: the saved column-oriented
// index is self-contained for querying (results print as (level, node)
// pairs because the original document is not re-read).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "index/index_io.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "xml/xml_parser.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: xtopk_cli [--slca] [--topk N] index <doc.xml> <idx>\n"
               "       xtopk_cli [--slca] [--topk N] search <doc.xml> <kw>...\n"
               "       xtopk_cli [--slca] [--topk N] load <idx> <kw>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  xtopk::Semantics semantics = xtopk::Semantics::kElca;
  size_t topk = 0;  // 0 = complete result set
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--slca") == 0) {
      semantics = xtopk::Semantics::kSlca;
      ++arg;
    } else if (std::strcmp(argv[arg], "--topk") == 0 && arg + 1 < argc) {
      topk = static_cast<size_t>(std::atoi(argv[arg + 1]));
      arg += 2;
    } else {
      return Usage();
    }
  }
  if (arg >= argc) return Usage();
  std::string command = argv[arg++];

  if (command == "index") {
    if (arg + 2 != argc) return Usage();
    auto parsed = xtopk::ParseXmlFile(argv[arg]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    xtopk::Timer timer;
    xtopk::IndexBuilder builder(*parsed);
    xtopk::JDeweyIndex index = builder.BuildJDeweyIndex();
    xtopk::Status s = xtopk::index_io::SaveJDeweyIndex(
        index, /*include_scores=*/true, argv[arg + 1]);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("indexed %zu elements, %zu terms in %.2fs -> %s\n",
                parsed->node_count(), index.term_count(),
                timer.ElapsedSeconds(), argv[arg + 1]);
    return 0;
  }

  if (command == "search") {
    if (arg + 2 > argc) return Usage();
    auto parsed = xtopk::ParseXmlFile(argv[arg++]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> keywords;
    for (; arg < argc; ++arg) keywords.push_back(xtopk::AsciiLower(argv[arg]));
    xtopk::Engine engine(*parsed);
    xtopk::Timer timer;
    auto hits = topk > 0 ? engine.SearchTopK(keywords, topk, semantics)
                         : engine.Search(keywords, semantics);
    double ms = timer.ElapsedMillis();
    std::printf("%zu hit(s) in %.2f ms\n", hits.size(), ms);
    for (const auto& hit : hits) {
      std::printf("  <%s> level %u score %.4f  %.60s\n", hit.tag.c_str(),
                  hit.level, hit.score, hit.snippet.c_str());
    }
    return 0;
  }

  if (command == "load") {
    if (arg + 2 > argc) return Usage();
    auto index = xtopk::index_io::LoadJDeweyIndex(argv[arg++]);
    if (!index.ok()) {
      std::fprintf(stderr, "load: %s\n", index.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> keywords;
    for (; arg < argc; ++arg) keywords.push_back(xtopk::AsciiLower(argv[arg]));
    xtopk::Timer timer;
    std::vector<xtopk::SearchResult> results;
    if (topk > 0) {
      // The saved index carries scores, so the top-K segments can be
      // derived from it directly.
      xtopk::TopKIndex topk_index = xtopk::BuildTopKIndexFrom(*index);
      xtopk::TopKSearchOptions options;
      options.semantics = semantics;
      options.k = topk;
      xtopk::TopKSearch search(topk_index, options);
      results = search.Search(keywords);
    } else {
      xtopk::JoinSearchOptions options;
      options.semantics = semantics;
      xtopk::JoinSearch search(*index, options);
      results = search.Search(keywords);
      xtopk::SortByScoreDesc(&results);
    }
    double ms = timer.ElapsedMillis();
    std::printf("%zu hit(s) in %.2f ms (from saved index)\n", results.size(),
                ms);
    for (const auto& r : results) {
      std::printf("  node %u at level %u, score %.4f\n", r.node, r.level,
                  r.score);
    }
    return 0;
  }
  return Usage();
}
