#include "storage/page_file.h"

#include <sys/stat.h>
#include <unistd.h>

#include "obs/accounting.h"
#include "obs/metrics.h"

namespace xtopk {

PageFile::~PageFile() {
  if (file_ != nullptr) std::fclose(file_);
}

PageFile::PageFile(PageFile&& other) noexcept
    : file_(other.file_),
      page_count_(other.page_count_),
      pages_written_(other.pages_written_) {
  pages_read_.store(other.pages_read_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  dirty_.store(other.dirty_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  other.file_ = nullptr;
  other.page_count_ = 0;
}

PageFile& PageFile::operator=(PageFile&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    page_count_ = other.page_count_;
    pages_written_ = other.pages_written_;
    pages_read_.store(other.pages_read_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    other.file_ = nullptr;
    other.page_count_ = 0;
  }
  return *this;
}

Status PageFile::Open(const std::string& path, bool create) {
  if (file_ != nullptr) return Status::Internal("page file already open");
  file_ = std::fopen(path.c_str(), create ? "w+b" : "r+b");
  if (file_ == nullptr) {
    return Status::IoError("cannot open page file: " + path);
  }
  if (!create) {
    struct stat st;
    if (stat(path.c_str(), &st) != 0) {
      return Status::IoError("cannot stat page file: " + path);
    }
    if (st.st_size % static_cast<long>(kPageSize) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Corruption("page file size not page-aligned: " + path);
    }
    page_count_ = static_cast<uint32_t>(st.st_size / kPageSize);
  } else {
    page_count_ = 0;
  }
  return Status::Ok();
}

Status PageFile::Close() {
  if (file_ == nullptr) return Status::Ok();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed");
  return Status::Ok();
}

StatusOr<PageId> PageFile::AppendPage(const std::string& data) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (data.size() > kPageSize) {
    return Status::InvalidArgument("page payload exceeds page size");
  }
  if (std::fseek(file_, static_cast<long>(page_count_) *
                            static_cast<long>(kPageSize),
                 SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  std::string padded = data;
  padded.resize(kPageSize, '\0');
  if (std::fwrite(padded.data(), 1, kPageSize, file_) != kPageSize) {
    return Status::IoError("write failed");
  }
  ++pages_written_;
  XTOPK_COUNTER("storage.page_writes").Add(1);
  dirty_.store(true, std::memory_order_release);
  return page_count_++;
}

Status PageFile::ReadPage(PageId id, std::string* out) {
  if (file_ == nullptr) return Status::Internal("page file not open");
  if (id >= page_count_) return Status::OutOfRange("page id out of range");
  if (dirty_.exchange(false, std::memory_order_acq_rel)) {
    if (std::fflush(file_) != 0) return Status::IoError("flush failed");
  }
  out->resize(kPageSize);
  size_t done = 0;
  const off_t base = static_cast<off_t>(id) * static_cast<off_t>(kPageSize);
  while (done < kPageSize) {
    ssize_t n = pread(fileno(file_), out->data() + done, kPageSize - done,
                      base + static_cast<off_t>(done));
    if (n <= 0) return Status::IoError("short page read");
    done += static_cast<size_t>(n);
  }
  pages_read_.fetch_add(1, std::memory_order_relaxed);
  XTOPK_COUNTER("storage.page_reads").Add(1);
  obs::AccountPagesRead(1);
  return Status::Ok();
}

Status PageFile::Sync() {
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0) return Status::IoError("flush failed");
  return Status::Ok();
}

}  // namespace xtopk
