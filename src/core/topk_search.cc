#include "core/topk_search.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <unordered_map>

#include "core/dag_join.h"
#include "core/join_ops.h"
#include "core/join_planner.h"
#include "obs/accounting.h"
#include "obs/metrics.h"

namespace xtopk {
namespace {

/// One batch of relaxed adds per query — nothing per entry.
void FlushTopKStatsToRegistry(const TopKSearchStats& stats) {
  obs::AccountRowsJoined(stats.candidates);
  XTOPK_COUNTER("core.topk.queries").Add(1);
  XTOPK_COUNTER("core.topk.entries_read").Add(stats.entries_read);
  XTOPK_COUNTER("core.topk.excluded_skips").Add(stats.excluded_skips);
  XTOPK_COUNTER("core.topk.candidates").Add(stats.candidates);
  XTOPK_COUNTER("core.topk.early_emissions").Add(stats.early_emissions);
  XTOPK_COUNTER("core.topk.columns_processed").Add(stats.columns_processed);
  XTOPK_COUNTER("core.topk.columns_star_join").Add(stats.columns_star_join);
  XTOPK_COUNTER("core.topk.columns_complete_join")
      .Add(stats.columns_complete_join);
  XTOPK_COUNTER("core.topk.columns_value_skipped")
      .Add(stats.columns_value_skipped);
  if (stats.deadline_expired) {
    XTOPK_COUNTER("core.topk.deadline_expirations").Add(1);
  }
}

uint64_t NodeKey(uint32_t level, uint32_t value) {
  return (static_cast<uint64_t>(level) << 32) | value;
}

/// Tracks which nodes were matched at deeper levels and answers the two
/// pruning questions of §IV-C: is an occurrence consumed (its path passes
/// through a found ELCA / matched LCA below the current column), and — for
/// SLCA — is a candidate an ancestor of an earlier match.
class SemanticPruner {
 public:
  explicit SemanticPruner(Semantics semantics) : semantics_(semantics) {}

  /// True iff `row` of `list` is consumed at `level`: some component of its
  /// sequence strictly below `level` is a recorded match.
  bool Excluded(const JDeweyList& list, uint32_t row, uint32_t level) const {
    if (found_.empty()) return false;
    for (uint32_t l = level + 1; l <= list.lengths[row]; ++l) {
      if (found_.count(NodeKey(l, list.Component(row, l))) > 0) return true;
    }
    return false;
  }

  /// Records a completed match at (level, value). For SLCA all ancestors of
  /// the match become blocked; `witness_list`/`witness_row` supply the
  /// ancestor path.
  void RecordMatch(uint32_t level, uint32_t value,
                   const JDeweyList& witness_list, uint32_t witness_row) {
    found_.insert(NodeKey(level, value));
    if (semantics_ == Semantics::kSlca) {
      for (uint32_t l = 1; l < level; ++l) {
        blocked_.insert(NodeKey(l, witness_list.Component(witness_row, l)));
      }
    }
  }

  /// SLCA only: true iff (level, value) is an ancestor of an earlier match.
  bool Blocked(uint32_t level, uint32_t value) const {
    return blocked_.count(NodeKey(level, value)) > 0;
  }

 private:
  Semantics semantics_;
  std::unordered_set<uint64_t> found_;
  std::unordered_set<uint64_t> blocked_;
};

/// Serves one keyword's entries at one column in descending damped-score
/// order by merging the length-grouped segments (§IV-C, Fig. 7): each
/// segment is already ordered, so a heap of segment cursors reconstructs
/// the column's complete order online. Excluded entries are skipped
/// transparently.
class ColumnCursor {
 public:
  struct Entry {
    uint32_t row = 0;
    uint32_t value = 0;
    double score = 0.0;  ///< damped to the cursor's level
  };

  ColumnCursor(const TopKList& list, uint32_t level,
               const ScoringParams& params, const SemanticPruner& pruner,
               TopKSearchStats* stats)
      : list_(list), level_(level), pruner_(pruner), stats_(stats) {
    for (const ScoreSegment& seg : list.segments) {
      if (seg.length < level) continue;
      SegCursor cursor;
      cursor.seg = &seg;
      cursor.pos = 0;
      cursor.damp = Damp(params, seg.length - level);
      cursor.cached_head = cursor.HeadScore(*list.base);
      cursors_.push_back(cursor);
    }
    std::make_heap(cursors_.begin(), cursors_.end(), HeapLess);
    Settle();
  }

  /// Next non-excluded entry, or nullptr when the column is exhausted.
  const Entry* Peek() const { return has_head_ ? &head_ : nullptr; }

  void Pop() {
    assert(has_head_);
    AdvanceTop();
    Settle();
  }

 private:
  struct SegCursor {
    const ScoreSegment* seg = nullptr;
    size_t pos = 0;
    double damp = 1.0;
    double cached_head = 0.0;

    double HeadScore(const JDeweyList& list) const {
      return static_cast<double>(list.scores[seg->rows[pos]]) * damp;
    }
    bool Exhausted() const { return pos >= seg->rows.size(); }
  };

  // Max-heap by head score: "less" compares ascending.
  static bool HeapLess(const SegCursor& a, const SegCursor& b) {
    return a.cached_head < b.cached_head;
  }

  void AdvanceTop() {
    std::pop_heap(cursors_.begin(), cursors_.end(), HeapLess);
    SegCursor& cursor = cursors_.back();
    ++cursor.pos;
    if (cursor.Exhausted()) {
      cursors_.pop_back();
    } else {
      cursor.cached_head = cursor.HeadScore(*list_.base);
      std::push_heap(cursors_.begin(), cursors_.end(), HeapLess);
    }
  }

  /// Ensures head_ holds the next non-excluded entry.
  void Settle() {
    const JDeweyList& base = *list_.base;
    while (!cursors_.empty()) {
      const SegCursor& top = cursors_.front();
      uint32_t row = top.seg->rows[top.pos];
      if (pruner_.Excluded(base, row, level_)) {
        ++stats_->excluded_skips;
        AdvanceTop();
        continue;
      }
      head_.row = row;
      head_.score = top.cached_head;
      head_.value = base.Component(row, level_);
      has_head_ = true;
      return;
    }
    has_head_ = false;
  }

  const TopKList& list_;
  uint32_t level_;
  const SemanticPruner& pruner_;
  TopKSearchStats* stats_;
  std::vector<SegCursor> cursors_;
  Entry head_;
  bool has_head_ = false;
};

/// Sampled match-count estimate for one level: overlap rate of the
/// smaller column's run values in the larger, scaled up (§V-D: "join
/// cardinality is re-estimated for different contexts").
double EstimateLevelMatches(const std::vector<const TopKList*>& lists,
                            uint32_t level, size_t sample_runs) {
  const Column* a = nullptr;
  const Column* b = nullptr;
  for (const TopKList* list : lists) {
    const Column& col = list->base->column(level);
    if (a == nullptr || col.run_count() < a->run_count()) {
      b = a;
      a = &col;
    } else if (b == nullptr || col.run_count() < b->run_count()) {
      b = &col;
    }
  }
  if (a == nullptr || b == nullptr || a->empty() || b->empty()) {
    return a == nullptr || a->empty() ? 0.0
                                      : static_cast<double>(a->run_count());
  }
  size_t stride = std::max<size_t>(1, a->run_count() / sample_runs);
  size_t sampled = 0, hits = 0;
  for (size_t i = 0; i < a->run_count(); i += stride) {
    ++sampled;
    if (b->FindValue(a->runs()[i].value) != nullptr) ++hits;
  }
  if (sampled == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(sampled) *
         static_cast<double>(a->run_count());
}

}  // namespace

TopKSearch::TopKSearch(const TopKIndex& index, TopKSearchOptions options)
    : index_(&index), options_(options) {}

TopKSearch::TopKSearch(TermSource* source, TopKSearchOptions options)
    : source_(source), options_(options) {}

std::vector<SearchResult> TopKSearch::Search(
    const std::vector<std::string>& keywords) {
  stats_ = TopKSearchStats{};
  last_status_ = Status::Ok();
  query_lists_.clear();
  obs::ScopedSpan root(options_.trace, "topk_search");
  root.Stat("keywords", static_cast<double>(keywords.size()));
  root.Stat("k", static_cast<double>(options_.k));
  std::vector<SearchResult> emitted;
  if (keywords.empty() || options_.k == 0) {
    root.Label("termination", "empty_query");
    FlushTopKStatsToRegistry(stats_);
    return emitted;
  }

  // Deadline gate before any resolution work: a query that expired in an
  // admission queue must not touch the posting source at all.
  auto deadline_stop = [&](const char* where) {
    stats_.deadline_expired = true;
    last_status_ = Status::DeadlineExceeded(where);
    root.Label("termination", "deadline");
    FlushTopKStatsToRegistry(stats_);
  };
  if (options_.deadline.expired()) {
    deadline_stop("expired before list resolution");
    return emitted;
  }

  std::vector<const TopKList*> lists;
  if (source_ != nullptr) {
    // Posting-source mode: materialize every term fully (score-ordered
    // access touches arbitrary rows, so bounded loads don't apply), then
    // derive the score-ordered segments per term. Two phases — a later
    // Resolve may invalidate earlier pointers.
    for (const std::string& kw : keywords) {
      // Resolve call site = deadline checkpoint: each materialization may
      // cost real I/O, so the budget is re-checked before every term.
      if (options_.deadline.expired()) {
        deadline_stop("expired during list resolution");
        return emitted;
      }
      if (source_->Frequency(kw) == 0) {
        root.Label("termination", "missing_term");
        FlushTopKStatsToRegistry(stats_);
        return emitted;
      }
      auto list = source_->Resolve(kw, UINT32_MAX, true, nullptr);
      if (!list.ok() || *list == nullptr) {
        last_status_ = list.ok() ? Status::Ok() : list.status();
        root.Label("termination",
                   list.ok() ? "missing_term" : "resolve_error");
        FlushTopKStatsToRegistry(stats_);
        return emitted;
      }
    }
    query_lists_.reserve(keywords.size());
    for (const std::string& kw : keywords) {
      if (options_.deadline.expired()) {
        deadline_stop("expired during list resolution");
        return emitted;
      }
      auto list = source_->Resolve(kw, UINT32_MAX, true, nullptr);
      if (!list.ok()) {
        last_status_ = list.status();
        root.Label("termination", "resolve_error");
        FlushTopKStatsToRegistry(stats_);
        return emitted;
      }
      query_lists_.push_back(BuildTopKListFor(**list));
    }
    for (const TopKList& list : query_lists_) lists.push_back(&list);
  } else {
    for (const std::string& kw : keywords) {
      const TopKList* list = index_->GetList(kw);
      if (list == nullptr || list->base->num_rows() == 0) {
        root.Label("termination", "missing_term");
        FlushTopKStatsToRegistry(stats_);
        return emitted;
      }
      lists.push_back(list);
    }
  }
  const size_t k_sources = lists.size();
  assert(k_sources <= 31);
  const uint32_t full_mask = (1u << k_sources) - 1;
  auto node_at = [&](uint32_t level, uint32_t value) {
    return source_ != nullptr ? source_->NodeAt(level, value)
                              : index_->base()->NodeAt(level, value);
  };

  uint32_t start_level = lists[0]->base->max_length;
  for (const TopKList* list : lists) {
    start_level = std::min<uint32_t>(start_level, list->base->max_length);
  }

  // One cost-based plan per query for the §V-D complete-join sweeps:
  // histogram-estimated join order and per-step algorithms, shared across
  // every swept level (cached exactly like the complete-search path; a
  // prebuilt TopKIndex is immutable, so its watermark is constant).
  std::shared_ptr<const JoinPlan> plan;
  std::vector<size_t> plan_order;
  if (options_.use_planner && options_.hybrid_min_matches > 0.0 &&
      !PlannerDisabledByEnv()) {
    uint64_t fingerprint = PlanFingerprint(keywords);
    uint64_t watermark = source_ != nullptr ? source_->PlanWatermark() : 1;
    if (options_.plan_cache != nullptr) {
      plan = options_.plan_cache->Lookup(fingerprint, watermark);
      stats_.plan_cache_hit = plan != nullptr;
    }
    if (plan == nullptr) {
      std::vector<TermPlanInput> inputs(k_sources);
      for (size_t i = 0; i < k_sources; ++i) {
        inputs[i].term = keywords[i];
        inputs[i].rows = lists[i]->base->num_rows();
        inputs[i].stats = source_ != nullptr
                              ? source_->Stats(keywords[i])
                              : index_->base()->StatsOf(keywords[i]);
      }
      auto built = std::make_shared<JoinPlan>(
          PlanJoin(std::move(inputs), start_level, PlannerOptions{}));
      built->fingerprint = fingerprint;
      built->watermark = watermark;
      if (options_.plan_cache != nullptr) options_.plan_cache->Insert(built);
      plan = std::move(built);
    }
    plan_order = MapPlanOrder(*plan, keywords, start_level);
    if (plan_order.empty()) {
      plan = nullptr;
    } else {
      stats_.planned = true;
    }
  }

  // Static per-column upper bounds B(l) = Σ_i s_m^i(l) and the running
  // maximum over the columns above the current one (§IV-C; the paper's
  // column-skip rule — a column no sequence ends at is dominated by the one
  // below — is subsumed by precomputing every bound once per query).
  std::vector<double> column_bound(start_level + 1, 0.0);
  for (uint32_t l = 1; l <= start_level; ++l) {
    double b = 0.0;
    for (const TopKList* list : lists) {
      b += list->MaxDampedScoreAt(l, options_.scoring);
    }
    column_bound[l] = b;
  }
  std::vector<double> best_above(start_level + 2, StarThreshold::kExhausted);
  for (uint32_t l = 2; l <= start_level + 1; ++l) {
    best_above[l] = std::max(best_above[l - 1], column_bound[l - 1]);
  }
  // best_above[l] = max bound of columns strictly above (shallower than) l.

  SemanticPruner pruner(options_.semantics);

  struct Pending {
    uint32_t level;
    uint32_t value;
    double score;
  };
  auto pending_less = [](const Pending& a, const Pending& b) {
    if (a.score != b.score) return a.score < b.score;
    if (a.level != b.level) return a.level < b.level;
    return a.value > b.value;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(pending_less)>
      pending(pending_less);
  size_t completed_total = 0;  // pending + emitted (drives the scheduler)

  auto emit_ready = [&](double bound) {
    while (!pending.empty() && emitted.size() < options_.k &&
           pending.top().score >= bound) {
      const Pending& top = pending.top();
      NodeId node = node_at(top.level, top.value);
      assert(node != kInvalidNode);
      emitted.push_back(SearchResult{node, top.level, top.score});
      pending.pop();
    }
  };

  for (uint32_t level = start_level; level >= 1 && emitted.size() < options_.k;
       --level) {
    // Column boundary = deadline checkpoint. Everything emitted so far was
    // proven against every remaining bound, so stopping here returns a
    // correct prefix of the true top-K.
    if (options_.deadline.expired()) {
      stats_.deadline_expired = true;
      last_status_ = Status::DeadlineExceeded(
          "expired at column " + std::to_string(level));
      break;
    }
    ++stats_.columns_processed;
    obs::ScopedSpan column_span(
        options_.trace, options_.trace != nullptr
                            ? "column_L" + std::to_string(level)
                            : std::string());
    const uint64_t entries_before = stats_.entries_read;
    const uint64_t candidates_before = stats_.candidates;
    const uint64_t excluded_before = stats_.excluded_skips;
    const size_t emitted_before_column = emitted.size();
    // Closing bookkeeping shared by both column modes (runs on `continue`
    // and on normal fall-through alike).
    auto close_column_span = [&](const char* mode, double threshold) {
      if (!column_span.enabled()) return;
      column_span.Label("mode", mode);
      column_span.Stat("entries_read",
                       static_cast<double>(stats_.entries_read -
                                           entries_before));
      column_span.Stat("candidates",
                       static_cast<double>(stats_.candidates -
                                           candidates_before));
      column_span.Stat("excluded_skips",
                       static_cast<double>(stats_.excluded_skips -
                                           excluded_before));
      column_span.Stat("emitted",
                       static_cast<double>(emitted.size() -
                                           emitted_before_column));
      column_span.Stat("pending", static_cast<double>(pending.size()));
      if (threshold != StarThreshold::kExhausted) {
        column_span.Stat("threshold", threshold);
      }
    };

    // Value-range skip: a completion needs one value present in every
    // keyword's column, so if the columns' [first, last] value ranges have
    // an empty intersection the whole level is a no-op — no candidates, no
    // pruner updates — and only the emission bookkeeping remains.
    if (options_.value_range_skip) {
      uint32_t lo = 0, hi = UINT32_MAX;
      bool possible = true;
      for (const TopKList* list : lists) {
        const Column& col = list->base->column(level);
        if (col.empty()) {
          possible = false;
          break;
        }
        lo = std::max(lo, col.runs().front().value);
        hi = std::min(hi, col.runs().back().value);
      }
      if (!possible || lo > hi) {
        ++stats_.columns_value_skipped;
        emit_ready(best_above[level]);
        close_column_span("value_skip", best_above[level]);
        continue;
      }
    }

    // §V-D per-level hybrid: a column whose estimated match count is small
    // is cheaper to sweep completely (document order) than to drive
    // through the score-ordered star join.
    if (options_.hybrid_min_matches > 0.0 &&
        EstimateLevelMatches(lists, level, options_.hybrid_sample_runs) <
            options_.hybrid_min_matches) {
      ++stats_.columns_complete_join;
      // Left-deep intersection of the base columns: planned order and
      // algorithms when a plan exists, otherwise shortest-run-count first.
      // DAG-carrying lists intersect their dedup columns and fan shared
      // matches out (bit-identical, see core/dag_join.h).
      std::vector<size_t> order;
      JoinOpStats join_stats;
      std::vector<const JDeweyList*> ordered(k_sources);
      std::deque<Run> dag_arena;  // backs translated runs for this level
      std::vector<LevelMatch> matches;
      if (plan != nullptr) {
        order = plan_order;
        for (size_t j = 0; j < k_sources; ++j) {
          ordered[j] = lists[order[j]]->base;
        }
        std::vector<JoinAlgo> algos(k_sources - 1);
        for (size_t j = 1; j < k_sources; ++j) {
          algos[j - 1] = plan->steps[j].algos[level - 1];
        }
        matches = IntersectListsAtLevel(ordered, level, &algos,
                                        PlannerOptions{}, &join_stats, nullptr,
                                        &dag_arena);
      } else {
        std::vector<size_t> sizes(k_sources);
        for (size_t i = 0; i < k_sources; ++i) {
          sizes[i] = lists[i]->base->column(level).run_count();
        }
        order = PlanJoinOrder(sizes, keywords);
        for (size_t j = 0; j < k_sources; ++j) {
          ordered[j] = lists[order[j]]->base;
        }
        matches = IntersectListsAtLevel(ordered, level, nullptr,
                                        PlannerOptions{}, &join_stats, nullptr,
                                        &dag_arena);
      }
      for (const LevelMatch& match : matches) {
        // Per keyword: the best non-excluded occurrence in the run. A
        // keyword whose run is fully consumed kills the candidate — the
        // same validity rule the star join enforces by skipping excluded
        // entries.
        double sum = 0.0;
        size_t witness_source = 0;
        uint32_t witness_row = 0;
        bool valid = true;
        for (size_t j = 0; j < k_sources && valid; ++j) {
          size_t query_pos = order[j];
          const JDeweyList& base = *lists[query_pos]->base;
          const Run* run = match.runs[j];
          double best = -1.0;
          for (uint32_t row = run->first_row; row < run->end_row(); ++row) {
            ++stats_.entries_read;
            if (pruner.Excluded(base, row, level)) {
              ++stats_.excluded_skips;
              continue;
            }
            double damped = DampedScore(options_.scoring, base.scores[row],
                                        base.lengths[row], level);
            if (damped > best) {
              best = damped;
              witness_source = query_pos;
              witness_row = row;
            }
          }
          if (best < 0.0) {
            valid = false;
          } else {
            sum += best;
          }
        }
        if (!valid) continue;
        ++stats_.candidates;
        bool is_result = true;
        if (options_.semantics == Semantics::kSlca) {
          is_result = !pruner.Blocked(level, match.value);
        }
        pruner.RecordMatch(level, match.value, *lists[witness_source]->base,
                           witness_row);
        if (is_result) {
          pending.push(Pending{level, match.value, sum});
          ++completed_total;
        }
      }
      emit_ready(best_above[level]);
      close_column_span("complete_join", best_above[level]);
      continue;
    }
    ++stats_.columns_star_join;
    std::vector<ColumnCursor> cursors;
    cursors.reserve(k_sources);
    for (const TopKList* list : lists) {
      cursors.emplace_back(*list, level, options_.scoring, pruner, &stats_);
    }

    StarThreshold threshold(k_sources, options_.group_threshold);
    for (size_t i = 0; i < k_sources; ++i) {
      const ColumnCursor::Entry* head = cursors[i].Peek();
      threshold.SetHeadScore(
          i, head ? head->score : StarThreshold::kExhausted);
    }

    struct Partial {
      uint32_t mask = 0;
      double sum = 0.0;
      size_t witness_source = 0;
      uint32_t witness_row = 0;
    };
    std::unordered_map<uint32_t, Partial> bucket;  // value -> partial
    std::unordered_set<uint32_t> completed_values;
    size_t rr_next = 0;

    while (emitted.size() < options_.k) {
      // Block boundary inside the star join: one clock read per
      // kDeadlineCheckStride consumed entries. Results already emitted are
      // proven; pending candidates stay unemitted (their dominance was
      // never established), so expiry cannot surface a wrong answer.
      if (stats_.entries_read % kDeadlineCheckStride == 0 &&
          options_.deadline.expired()) {
        stats_.deadline_expired = true;
        last_status_ = Status::DeadlineExceeded(
            "expired inside star join at column " + std::to_string(level));
        break;
      }
      // Scheduler (§IV-B): round-robin until k results exist, then the
      // source with the highest next damped score.
      size_t chosen = k_sources;
      if (completed_total < options_.k) {
        for (size_t step = 0; step < k_sources; ++step) {
          size_t i = (rr_next + step) % k_sources;
          if (cursors[i].Peek() != nullptr) {
            chosen = i;
            rr_next = (i + 1) % k_sources;
            break;
          }
        }
      } else {
        double best = StarThreshold::kExhausted;
        for (size_t i = 0; i < k_sources; ++i) {
          const ColumnCursor::Entry* head = cursors[i].Peek();
          if (head != nullptr && head->score > best) {
            best = head->score;
            chosen = i;
          }
        }
      }
      if (chosen == k_sources) break;  // column exhausted

      ColumnCursor::Entry entry = *cursors[chosen].Peek();
      cursors[chosen].Pop();
      ++stats_.entries_read;
      const ColumnCursor::Entry* next = cursors[chosen].Peek();
      threshold.SetHeadScore(
          chosen, next ? next->score : StarThreshold::kExhausted);

      if (completed_values.count(entry.value) == 0) {
        uint32_t bit = 1u << chosen;
        Partial& partial = bucket[entry.value];
        if ((partial.mask & bit) == 0) {  // set semantics: first arrival only
          if (partial.mask != 0) {
            threshold.RemovePartial(partial.mask, partial.sum);
          } else {
            partial.witness_source = chosen;
            partial.witness_row = entry.row;
          }
          partial.mask |= bit;
          partial.sum += entry.score;
          if (partial.mask == full_mask) {
            ++stats_.candidates;
            completed_values.insert(entry.value);
            // Completion implies ELCA validity: every source delivered a
            // non-excluded occurrence of this value.
            bool is_result = true;
            if (options_.semantics == Semantics::kSlca) {
              is_result = !pruner.Blocked(level, entry.value);
            }
            const JDeweyList& witness_list =
                *lists[partial.witness_source]->base;
            uint32_t witness_row = partial.witness_row;
            double sum = partial.sum;
            bucket.erase(entry.value);
            pruner.RecordMatch(level, entry.value, witness_list, witness_row);
            if (is_result) {
              pending.push(Pending{level, entry.value, sum});
              ++completed_total;
            }
          } else {
            threshold.AddPartial(partial.mask, partial.sum);
          }
        }
      }

      // Release every pending result that dominates both the star-join
      // bound of this column and the static bounds of all higher columns.
      double bound = std::max(threshold.Bound(), best_above[level]);
      size_t before = emitted.size();
      emit_ready(bound);
      stats_.early_emissions += emitted.size() - before;
    }

    if (stats_.deadline_expired) {
      // Mid-column stop: the star-join bound still holds for what was
      // consumed, but the column is incomplete — no release beyond what
      // the in-loop emit_ready already proved.
      close_column_span("star_join", threshold.Bound());
      break;
    }

    // Column done: only the higher columns can still produce results.
    emit_ready(best_above[level]);
    close_column_span("star_join", threshold.Bound());
  }

  // All columns processed: everything left is safe. On deadline expiry the
  // remaining pending candidates were never proven — they stay unemitted.
  if (!stats_.deadline_expired) emit_ready(StarThreshold::kExhausted);
  if (root.enabled()) {
    root.Stat("entries_read", static_cast<double>(stats_.entries_read));
    root.Stat("excluded_skips", static_cast<double>(stats_.excluded_skips));
    root.Stat("candidates", static_cast<double>(stats_.candidates));
    root.Stat("early_emissions",
              static_cast<double>(stats_.early_emissions));
    root.Stat("columns_processed",
              static_cast<double>(stats_.columns_processed));
    root.Stat("results", static_cast<double>(emitted.size()));
    root.Label("termination", stats_.deadline_expired ? "deadline"
                              : emitted.size() >= options_.k
                                  ? "k_reached"
                                  : "columns_exhausted");
  }
  FlushTopKStatsToRegistry(stats_);
  return emitted;
}

}  // namespace xtopk
