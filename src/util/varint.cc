#include "util/varint.h"

namespace xtopk {
namespace varint {

void PutU64(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  PutU64(out, static_cast<uint64_t>(value));
}

void PutS64(std::string* out, int64_t value) {
  // ZigZag: map small-magnitude signed values to small unsigned values.
  uint64_t zz =
      (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
  PutU64(out, zz);
}

Status GetU64(const std::string& data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (true) {
    if (p >= data.size()) {
      return Status::Corruption("varint: truncated buffer");
    }
    uint8_t byte = static_cast<uint8_t>(data[p++]);
    if (shift >= 63 && byte > 1) {
      return Status::Corruption("varint: value overflows uint64");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *pos = p;
  *value = result;
  return Status::Ok();
}

Status GetU32(const std::string& data, size_t* pos, uint32_t* value) {
  uint64_t v64 = 0;
  Status s = GetU64(data, pos, &v64);
  if (!s.ok()) return s;
  if (v64 > UINT32_MAX) {
    return Status::Corruption("varint: value overflows uint32");
  }
  *value = static_cast<uint32_t>(v64);
  return Status::Ok();
}

Status GetS64(const std::string& data, size_t* pos, int64_t* value) {
  uint64_t zz = 0;
  Status s = GetU64(data, pos, &zz);
  if (!s.ok()) return s;
  *value = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::Ok();
}

size_t LengthU64(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace varint
}  // namespace xtopk
