#include "obs/accounting.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/engine.h"
#include "core/updatable_engine.h"
#include "storage/page_file.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace obs {
namespace {

TEST(AccountingTest, HooksAreNoOpsWithoutAScope) {
  ASSERT_EQ(CurrentAccounting(), nullptr);
  AccountPagesRead(3);  // must not crash or leak anywhere
  AccountCacheHit();
  EXPECT_EQ(CurrentAccounting(), nullptr);
}

TEST(AccountingTest, ScopeCollectsAndRestores) {
  ResourceAccounting outer, inner;
  {
    ScopedAccounting outer_scope(&outer);
    AccountPagesRead(2);
    {
      ScopedAccounting inner_scope(&inner);
      AccountPagesRead(5);
      AccountBytesDecoded(100);
      AccountCacheHit();
      AccountCacheMiss(3);
      AccountRowsJoined(7);
    }
    // Back to the outer sink after the inner scope closes.
    AccountPagesRead(1);
  }
  EXPECT_EQ(inner.pages_read, 5u);
  EXPECT_EQ(inner.bytes_decoded, 100u);
  EXPECT_EQ(inner.cache_hits, 1u);
  EXPECT_EQ(inner.cache_misses, 3u);
  EXPECT_EQ(inner.rows_joined, 7u);
  EXPECT_EQ(outer.pages_read, 3u);
  EXPECT_EQ(CurrentAccounting(), nullptr);
}

TEST(AccountingTest, ScopesAreThreadLocal) {
  ResourceAccounting main_acc;
  ScopedAccounting scope(&main_acc);
  std::thread other([] {
    // A fresh thread starts unattributed regardless of the spawner's scope.
    EXPECT_EQ(CurrentAccounting(), nullptr);
    AccountPagesRead(50);
  });
  other.join();
  EXPECT_EQ(main_acc.pages_read, 0u);
}

TEST(AccountingTest, JsonCarriesEveryField) {
  ResourceAccounting accounting;
  accounting.pages_read = 1;
  accounting.bytes_decoded = 2;
  accounting.cache_hits = 3;
  accounting.cache_misses = 4;
  accounting.rows_joined = 5;
  accounting.wall_us = 6.5;
  accounting.cpu_us = 7.25;
  accounting.planner_mode = "planned";
  std::string json = accounting.ToJson();
  EXPECT_NE(json.find("\"pages_read\":1"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_decoded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cache_hits\":3"), std::string::npos);
  EXPECT_NE(json.find("\"cache_misses\":4"), std::string::npos);
  EXPECT_NE(json.find("\"rows_joined\":5"), std::string::npos);
  EXPECT_NE(json.find("\"wall_us\":6.500"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_us\":7.250"), std::string::npos);
  EXPECT_NE(json.find("\"planner_mode\":\"planned\""), std::string::npos);
}

TEST(AccountingTest, ThreadCpuMicrosAdvances) {
  double start = ThreadCpuMicros();
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 2000000; ++i) sink += i;
  EXPECT_GE(ThreadCpuMicros(), start);
}

constexpr const char* kXml = R"(<root>
  <a>xml data management</a>
  <b><c>xml keyword search</c><d>top k data</d></b>
  <e>database systems</e>
</root>)";

TEST(AccountingTest, EngineQueryFillsAccounting) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  Engine engine(tree);
  ExplainResult result = engine.Explain({"xml", "data"});
  EXPECT_GT(result.accounting.wall_us, 0.0);
  EXPECT_GT(result.accounting.rows_joined, 0u);
  EXPECT_FALSE(result.accounting.planner_mode.empty());
  // The in-memory engine never touches the page layer.
  EXPECT_EQ(result.accounting.pages_read, 0u);

  std::vector<BatchQuery> queries(2);
  queries[0].keywords = {"xml"};
  queries[1].keywords = {"data"};
  queries[1].k = 1;
  auto results = engine.RunBatch(queries, /*threads=*/2);
  for (const auto& r : results) {
    EXPECT_GT(r.accounting.wall_us, 0.0);
    EXPECT_FALSE(r.accounting.planner_mode.empty());
  }
}

TEST(AccountingTest, ResultFingerprintIsStableAndDiscriminating) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  Engine engine(tree);
  auto a = engine.Search({"xml", "data"});
  auto b = engine.Search({"xml", "data"});
  EXPECT_EQ(ResultFingerprint(a), ResultFingerprint(b));
  auto c = engine.Search({"xml"});
  EXPECT_NE(ResultFingerprint(a), ResultFingerprint(c));
  EXPECT_EQ(ResultFingerprint({}), ResultFingerprint({}));
}

TEST(AccountingTest, PageReadsAttributeToTheActiveScope) {
  std::string path = testing::TempDir() + "/accounting_pages.dat";
  PageFile file;
  ASSERT_TRUE(file.Open(path, /*create=*/true).ok());
  std::string page(PageFile::kPageSize, 'x');
  auto id = file.AppendPage(page);
  ASSERT_TRUE(id.ok());
  std::string out;
  ResourceAccounting accounting;
  {
    ScopedAccounting scope(&accounting);
    ASSERT_TRUE(file.ReadPage(*id, &out).ok());
    ASSERT_TRUE(file.ReadPage(*id, &out).ok());
  }
  ASSERT_TRUE(file.ReadPage(*id, &out).ok());  // outside: unattributed
  EXPECT_EQ(accounting.pages_read, 2u);
  (void)file.Close();
}

TEST(AccountingTest, UpdatableEngineTracksLastQuery) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  UpdatableEngine engine(std::move(tree));
  auto hits = engine.Search({"xml", "data"});
  EXPECT_FALSE(hits.empty());
  EXPECT_GT(engine.last_accounting().wall_us, 0.0);
  EXPECT_FALSE(engine.last_accounting().planner_mode.empty());
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
