#ifndef XTOPK_XML_TOKENIZER_H_
#define XTOPK_XML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace xtopk {

/// Text analyzer (the Lucene stand-in; see DESIGN.md §4). Splits on
/// non-alphanumeric characters and ASCII-lowercases. Tokens shorter than
/// `min_token_length` are dropped (defaults to 1, i.e., keep everything).
class Tokenizer {
 public:
  struct Options {
    size_t min_token_length = 1;
  };

  Tokenizer() = default;
  explicit Tokenizer(Options options) : options_(options) {}

  /// All tokens of `text`, lowercased, in order (with duplicates).
  std::vector<std::string> Tokenize(std::string_view text) const;

  /// Distinct tokens of `text` with their term frequencies.
  std::unordered_map<std::string, uint32_t> TermFrequencies(
      std::string_view text) const;

  /// Calls fn(token) for each token without materializing a vector.
  template <typename Fn>
  void ForEachToken(std::string_view text, Fn&& fn) const {
    std::string token;
    for (size_t i = 0; i <= text.size(); ++i) {
      char c = i < text.size() ? text[i] : '\0';
      bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                   (c >= '0' && c <= '9');
      if (alnum) {
        if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
        token.push_back(c);
      } else if (!token.empty()) {
        if (token.size() >= options_.min_token_length) fn(token);
        token.clear();
      }
    }
  }

 private:
  Options options_;
};

}  // namespace xtopk

#endif  // XTOPK_XML_TOKENIZER_H_
