// xtopk_manifestdump: pretty-prints a durable data directory's manifest
// log (storage/manifest_log.h) with per-record CRC verification — the
// debugging companion to crash-recovery work. One line per record:
//
//   ./xtopk_manifestdump /var/xtopk/data
//   #000 seal           id=1 covered=4093 watermark=4094
//   #001 compact_begin  id=3 inputs=[1,2]
//   #002 compact_commit id=3 covered=5000 inputs=[1,2]
//   #003 drop           id=1
//   ... summary: live set, watermark, torn-tail offset (if any)
//
// Exit status: 0 on a clean log, 1 when the log has a torn/corrupt tail
// or the directory disagrees with it (orphan or missing segment files) —
// so scripts can use it as a consistency probe.
//
//   --selftest   write a log (+ a deliberately torn copy) into a temp
//                dir, dump both, and verify the dumper's own verdicts;
//                runs in CI as manifestdump_selftest.

#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "storage/manifest_log.h"
#include "util/status.h"

namespace {

using xtopk::EncodingFilePath;
using xtopk::ManifestLog;
using xtopk::ManifestLogPath;
using xtopk::ManifestRecord;
using xtopk::ManifestRecordType;
using xtopk::ManifestRecordTypeName;
using xtopk::SegmentFilePath;

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

void PrintRecord(size_t index, const ManifestRecord& record) {
  std::printf("#%03zu %-14s id=%llu", index,
              ManifestRecordTypeName(record.type),
              static_cast<unsigned long long>(record.id));
  if (record.type == ManifestRecordType::kSeal ||
      record.type == ManifestRecordType::kCompactCommit) {
    std::printf(" covered=%llu",
                static_cast<unsigned long long>(record.covered_nodes));
  }
  if (record.watermark != 0) {
    std::printf(" watermark=%llu",
                static_cast<unsigned long long>(record.watermark));
  }
  if (!record.inputs.empty()) {
    std::printf(" inputs=[");
    for (size_t i = 0; i < record.inputs.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(record.inputs[i]));
    }
    std::printf("]");
  }
  std::printf("\n");
}

// Dumps one directory's log; returns the process exit code (0 clean).
int DumpDir(const std::string& dir) {
  const std::string log_path = ManifestLogPath(dir);
  uint64_t valid_bytes = 0;
  auto records = ManifestLog::Replay(log_path, &valid_bytes);
  if (!records.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 records.status().ToString().c_str());
    return 1;
  }

  int exit_code = 0;
  // Re-apply the set algebra while printing, so the dump ends with the
  // same live set recovery would compute.
  std::vector<uint64_t> live;
  uint64_t watermark = 0;
  uint64_t last_seal_id = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    const ManifestRecord& r = (*records)[i];
    PrintRecord(i, r);
    switch (r.type) {
      case ManifestRecordType::kSeal:
        live.push_back(r.id);
        watermark = r.watermark;
        last_seal_id = r.id;
        break;
      case ManifestRecordType::kCompactBegin:
        break;
      case ManifestRecordType::kCompactCommit: {
        bool placed = false;
        std::vector<uint64_t> next;
        for (uint64_t id : live) {
          bool input = false;
          for (uint64_t in : r.inputs) input = input || in == id;
          if (!input) {
            next.push_back(id);
          } else if (!placed) {
            next.push_back(r.id);
            placed = true;
          }
        }
        if (!placed) next.push_back(r.id);
        live = std::move(next);
        if (r.watermark != 0) {
          watermark = r.watermark;
          last_seal_id = r.id;
        }
        break;
      }
      case ManifestRecordType::kDrop:
        live.erase(std::remove(live.begin(), live.end(), r.id), live.end());
        break;
    }
  }

  const uint64_t log_bytes = FileBytes(log_path);
  std::printf("records: %zu\n", records->size());
  std::printf("live: [");
  for (size_t i = 0; i < live.size(); ++i) {
    std::printf("%s%llu", i == 0 ? "" : ",",
                static_cast<unsigned long long>(live[i]));
  }
  std::printf("]\n");
  std::printf("watermark: %llu\n",
              static_cast<unsigned long long>(watermark));
  if (valid_bytes != log_bytes) {
    std::printf("TORN TAIL: %llu trusted of %llu bytes\n",
                static_cast<unsigned long long>(valid_bytes),
                static_cast<unsigned long long>(log_bytes));
    exit_code = 1;
  }

  // Directory audit: every live id must have its segment file; every
  // seg-<id> on disk must be live (recovery would delete strays, so their
  // presence means recovery has not run since the damage).
  std::set<uint64_t> live_set(live.begin(), live.end());
  for (uint64_t id : live) {
    if (!FileExists(SegmentFilePath(dir, id))) {
      std::printf("MISSING: %s\n", SegmentFilePath(dir, id).c_str());
      exit_code = 1;
    }
  }
  if (last_seal_id != 0 && !FileExists(EncodingFilePath(dir, last_seal_id))) {
    std::printf("MISSING: %s\n", EncodingFilePath(dir, last_seal_id).c_str());
    exit_code = 1;
  }
  return exit_code;
}

int SelfTest() {
  std::string dir = "manifestdump_selftest_dir";
  ::mkdir(dir.c_str(), 0755);
  std::remove(ManifestLogPath(dir).c_str());
  {
    auto log = ManifestLog::Open(ManifestLogPath(dir));
    if (!log.ok()) {
      std::fprintf(stderr, "selftest: open failed: %s\n",
                   log.status().ToString().c_str());
      return 1;
    }
    auto append = [&](ManifestRecordType type, uint64_t id,
                      uint64_t covered, uint64_t watermark,
                      std::vector<uint64_t> inputs) {
      ManifestRecord r;
      r.type = type;
      r.id = id;
      r.covered_nodes = covered;
      r.watermark = watermark;
      r.inputs = std::move(inputs);
      return (*log)->Append(r).ok();
    };
    bool ok = append(ManifestRecordType::kSeal, 1, 100, 101, {}) &&
              append(ManifestRecordType::kSeal, 2, 50, 151, {}) &&
              append(ManifestRecordType::kCompactBegin, 3, 0, 0, {1, 2}) &&
              append(ManifestRecordType::kCompactCommit, 3, 150, 0, {1, 2}) &&
              append(ManifestRecordType::kDrop, 1, 0, 0, {}) &&
              append(ManifestRecordType::kDrop, 2, 0, 0, {});
    if (!ok) {
      std::fprintf(stderr, "selftest: append failed\n");
      return 1;
    }
  }
  // The live segment + encoding files the audit wants to see.
  for (const std::string& path :
       {SegmentFilePath(dir, 3), EncodingFilePath(dir, 2)}) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return 1;
    std::fputs("x", f);
    std::fclose(f);
  }

  std::printf("== clean log ==\n");
  if (DumpDir(dir) != 0) {
    std::fprintf(stderr, "selftest: clean log did not dump clean\n");
    return 1;
  }

  // Tear the tail: append garbage that cannot frame-decode. The dump must
  // still print every whole record and flag the tail.
  {
    std::FILE* f = std::fopen(ManifestLogPath(dir).c_str(), "ab");
    if (f == nullptr) return 1;
    const unsigned char garbage[] = {0xff, 0xff, 0xff, 0xff, 0x7f};
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  std::printf("== torn log ==\n");
  if (DumpDir(dir) != 1) {
    std::fprintf(stderr, "selftest: torn tail not flagged\n");
    return 1;
  }
  std::printf("selftest ok\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) {
    return SelfTest();
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <data-dir> | --selftest\n"
                 "Pretty-prints DIR/MANIFEST.log with CRC verification and\n"
                 "audits the directory against the live set.\n",
                 argv[0]);
    return 2;
  }
  return DumpDir(argv[1]);
}
