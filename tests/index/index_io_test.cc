#include "index/index_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"
#include "util/rng.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;

void ExpectJDeweyIndexesEqual(const JDeweyIndex& a, const JDeweyIndex& b,
                              bool scores) {
  ASSERT_EQ(a.terms().size(), b.terms().size());
  EXPECT_EQ(a.max_level(), b.max_level());
  for (const std::string& term : a.terms()) {
    const JDeweyList* la = a.GetList(term);
    const JDeweyList* lb = b.GetList(term);
    ASSERT_NE(lb, nullptr) << term;
    ASSERT_EQ(la->num_rows(), lb->num_rows()) << term;
    EXPECT_EQ(la->lengths, lb->lengths) << term;
    EXPECT_EQ(la->nodes, lb->nodes) << term;
    if (scores) {
      EXPECT_EQ(la->scores, lb->scores) << term;
    }
    ASSERT_EQ(la->columns.size(), lb->columns.size()) << term;
    for (size_t c = 0; c < la->columns.size(); ++c) {
      ASSERT_EQ(la->columns[c].run_count(), lb->columns[c].run_count());
      for (size_t r = 0; r < la->columns[c].run_count(); ++r) {
        EXPECT_EQ(la->columns[c].runs()[r], lb->columns[c].runs()[r]);
      }
    }
  }
}

TEST(IndexIoTest, JDeweyRoundTripSmallCorpus) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, /*include_scores=*/true, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());
  ExpectJDeweyIndexesEqual(index, loaded, /*scores=*/true);
}

TEST(IndexIoTest, JDeweyRoundTripRandomTrees) {
  for (uint64_t seed : {101ull, 102ull, 103ull}) {
    XmlTree tree = MakeRandomTree(seed, 400, 4, 8,
                                  {"alpha", "beta", "gamma"}, 0.2);
    IndexBuilder builder(tree);
    JDeweyIndex index = builder.BuildJDeweyIndex();
    for (bool scores : {true, false}) {
      std::string buf;
      index_io::EncodeJDeweyIndex(index, scores, &buf);
      JDeweyIndex loaded;
      ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok())
          << seed << " scores " << scores;
      ExpectJDeweyIndexesEqual(index, loaded, scores);
    }
  }
}

TEST(IndexIoTest, SearchOverLoadedIndexMatches) {
  XmlTree tree = MakeRandomTree(104, 500, 4, 7, {"alpha", "beta"}, 0.15);
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, true, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    JoinSearchOptions search_options;
    search_options.semantics = semantics;
    JoinSearch original(index, search_options);
    JoinSearch reloaded(loaded, search_options);
    auto a = original.Search({"alpha", "beta"});
    auto b = reloaded.Search({"alpha", "beta"});
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].node, b[i].node);
      EXPECT_NEAR(a[i].score, b[i].score, 1e-12);
    }
  }
}

TEST(IndexIoTest, SaveLoadFile) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string path = ::testing::TempDir() + "/xtopk_index_io_test.idx";
  ASSERT_TRUE(index_io::SaveJDeweyIndex(index, true, path).ok());
  auto loaded = index_io::LoadJDeweyIndex(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectJDeweyIndexesEqual(index, *loaded, true);
  std::remove(path.c_str());
}

TEST(IndexIoTest, LoadMissingFileIsIoError) {
  auto loaded = index_io::LoadJDeweyIndex("/nonexistent/file.idx");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(IndexIoTest, RejectsBadMagicAndTruncation) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, true, &buf);

  JDeweyIndex out;
  std::string bad = buf;
  bad[0] = 'Z';
  EXPECT_EQ(index_io::DecodeJDeweyIndex(bad, &out).code(),
            StatusCode::kCorruption);

  // Truncation anywhere must error, never crash.
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    std::string cut = buf.substr(0, 5 + rng.NextBounded(buf.size() - 5));
    JDeweyIndex partial;
    Status s = index_io::DecodeJDeweyIndex(cut, &partial);
    if (cut.size() < buf.size()) {
      EXPECT_FALSE(s.ok()) << "cut at " << cut.size();
    }
  }
}

TEST(IndexIoTest, DeweyRoundTrip) {
  XmlTree tree = MakeRandomTree(105, 300, 5, 6, {"alpha", "beta"}, 0.25);
  IndexBuilder builder(tree);
  DeweyIndex index = builder.BuildDeweyIndex();
  std::string buf;
  index_io::EncodeDeweyIndex(index, &buf);
  DeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeDeweyIndex(buf, &loaded).ok());
  ASSERT_EQ(loaded.term_count(), index.term_count());
  const DeweyList* la = index.GetList("alpha");
  const DeweyList* lb = loaded.GetList("alpha");
  ASSERT_NE(lb, nullptr);
  ASSERT_EQ(la->num_rows(), lb->num_rows());
  for (uint32_t row = 0; row < la->num_rows(); ++row) {
    EXPECT_EQ(la->deweys[row], lb->deweys[row]);
    EXPECT_EQ(la->nodes[row], lb->nodes[row]);
    EXPECT_EQ(la->scores[row], lb->scores[row]);
  }
}

TEST(IndexIoTest, TopKOverLoadedIndexMatchesFresh) {
  XmlTree tree = MakeRandomTree(106, 600, 4, 7, {"alpha", "beta"}, 0.15);
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  TopKIndex fresh_topk = builder.BuildTopKIndex(index);

  std::string buf;
  index_io::EncodeJDeweyIndex(index, /*include_scores=*/true, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());
  TopKIndex loaded_topk = BuildTopKIndexFrom(loaded);

  TopKSearchOptions topk_options;
  topk_options.k = 8;
  TopKSearch a(fresh_topk, topk_options), b(loaded_topk, topk_options);
  auto want = a.Search({"alpha", "beta"});
  auto got = b.Search({"alpha", "beta"});
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node);
    EXPECT_NEAR(got[i].score, want[i].score, 1e-12);
  }
}

TEST(IndexIoTest, DeweyRejectsGarbage) {
  DeweyIndex out;
  EXPECT_FALSE(index_io::DecodeDeweyIndex("garbage", &out).ok());
  EXPECT_FALSE(index_io::DecodeDeweyIndex("", &out).ok());
}

}  // namespace
}  // namespace xtopk
