// XMark-like scenario: a deeper, irregular auction-site corpus. Shows how
// ELCA and SLCA differ on nested matches, how the three evaluation
// algorithms agree on the complete result set, and what the index families
// cost on disk (Table I in miniature).
//
//   ./xmark_explorer [items_per_region]

#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "baseline/indexed_lookup.h"
#include "baseline/stack_search.h"
#include "core/join_search.h"
#include "index/index_builder.h"
#include "index/index_stats.h"
#include "util/string_util.h"
#include "workload/xmark_gen.h"

int main(int argc, char** argv) {
  xtopk::XmarkGenOptions gen;
  gen.items_per_region = argc > 1 ? std::atoi(argv[1]) : 300;
  gen.planted = {
      {"vintage", 500, "", 0.0},
      {"clock", 800, "vintage", 0.5},
  };
  xtopk::XmarkCorpus corpus = xtopk::GenerateXmark(gen);
  std::printf("corpus: %zu nodes, depth %u, %zu text elements\n\n",
              corpus.tree.node_count(), corpus.tree.max_level(),
              corpus.text_nodes.size());

  xtopk::IndexBuilder builder(corpus.tree);
  xtopk::JDeweyIndex jindex = builder.BuildJDeweyIndex();
  xtopk::DeweyIndex dindex = builder.BuildDeweyIndex();

  const std::vector<std::string> query = {"vintage", "clock"};
  std::printf("query {vintage, clock}: frequencies %u / %u\n\n",
              jindex.Frequency("vintage"), jindex.Frequency("clock"));

  for (auto semantics : {xtopk::Semantics::kElca, xtopk::Semantics::kSlca}) {
    const char* name =
        semantics == xtopk::Semantics::kElca ? "ELCA" : "SLCA";

    xtopk::JoinSearchOptions join_options;
    join_options.semantics = semantics;
    xtopk::JoinSearch join(jindex, join_options);
    auto join_results = join.Search(query);

    xtopk::StackSearchOptions stack_options;
    stack_options.semantics = semantics;
    xtopk::StackSearch stack(corpus.tree, dindex, stack_options);
    auto stack_results = stack.Search(query);

    xtopk::IndexedLookupOptions il_options;
    il_options.semantics = semantics;
    xtopk::IndexedLookupSearch lookup(corpus.tree, dindex, il_options);
    auto lookup_results = lookup.Search(query);

    std::set<xtopk::NodeId> join_nodes, stack_nodes, lookup_nodes;
    for (const auto& r : join_results) join_nodes.insert(r.node);
    for (const auto& r : stack_results) stack_nodes.insert(r.node);
    for (const auto& r : lookup_results) lookup_nodes.insert(r.node);

    std::printf("%s: join-based %zu, stack-based %zu, index-based %zu — %s\n",
                name, join_nodes.size(), stack_nodes.size(),
                lookup_nodes.size(),
                (join_nodes == stack_nodes && stack_nodes == lookup_nodes)
                    ? "all three agree"
                    : "MISMATCH (bug!)");

    // Show where the answers live in the tree.
    std::set<std::string> tags;
    for (const auto& r : join_results) {
      tags.insert(corpus.tree.TagName(r.node));
    }
    std::printf("  answer tags:");
    for (const auto& tag : tags) std::printf(" <%s>", tag.c_str());
    std::printf("\n");
  }

  std::printf("\n");
  xtopk::IndexSizeReport report =
      xtopk::MeasureIndexSizes(builder, "XMark-like (scaled)");
  std::printf("%s", report.ToTable().c_str());
  return 0;
}
