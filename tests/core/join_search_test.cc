#include "core/join_search.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/naive.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

class JoinSearchTest : public ::testing::Test {
 protected:
  JoinSearchTest() : tree_(MakeSmallCorpus()), builder_(tree_) {
    index_ = builder_.BuildJDeweyIndex();
  }

  std::set<NodeId> Nodes(const std::vector<SearchResult>& results) {
    std::set<NodeId> out;
    for (const SearchResult& r : results) out.insert(r.node);
    return out;
  }

  XmlTree tree_;
  IndexBuilder builder_;
  JDeweyIndex index_;
};

TEST_F(JoinSearchTest, ElcaOnSmallCorpus) {
  JoinSearch search(index_);
  auto results = search.Search({"xml", "data"});
  // Recursive ELCA semantics: the root also qualifies — conf0/conf1 fail
  // (their keyword pairs are consumed by the paper-level ELCAs), so p2t's
  // xml and p3t's data survive all the way up to db.
  EXPECT_EQ(Nodes(results), (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1,
                                              Ids::kP4Title, Ids::kDb}));
  // Bottom-up: the level-4 result comes out before the level-3 ones.
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].node, Ids::kP4Title);
  EXPECT_EQ(results[0].level, 4u);
}

TEST_F(JoinSearchTest, SlcaOnSmallCorpus) {
  JoinSearchOptions options;
  options.semantics = Semantics::kSlca;
  JoinSearch search(index_, options);
  auto results = search.Search({"xml", "data"});
  EXPECT_EQ(Nodes(results),
            (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1, Ids::kP4Title}));
}

TEST_F(JoinSearchTest, AncestorsWithConsumedWitnessesRejected) {
  // {xml, title}: each xml-carrying title element contains both keywords
  // itself (the tag token counts), so the titles are the ELCAs and every
  // ancestor loses its witnesses to them: paper1's only xml sits inside
  // the consumed p1t; conf0 keeps xml at p0 but every title occurrence is
  // consumed; conf1 keeps title at p3t but its xml is consumed.
  JoinSearch search(index_);
  auto results = search.Search({"xml", "title"});
  EXPECT_EQ(Nodes(results),
            (std::set<NodeId>{Ids::kP1Title, Ids::kP2Title, Ids::kP4Title,
                              Ids::kDb}));
}

TEST_F(JoinSearchTest, MissingKeywordYieldsEmpty) {
  JoinSearch search(index_);
  EXPECT_TRUE(search.Search({"xml", "nonexistent"}).empty());
  EXPECT_TRUE(search.Search({}).empty());
}

TEST_F(JoinSearchTest, SingleKeywordElcaIsWholeList) {
  JoinSearch search(index_);
  auto results = search.Search({"xml"});
  EXPECT_EQ(Nodes(results), (std::set<NodeId>{Ids::kPaper0, Ids::kP1Title,
                                              Ids::kP2Title, Ids::kP4Title}));
}

TEST_F(JoinSearchTest, SingleKeywordSlcaDropsAncestors) {
  // All xml occurrences are leaves here, so SLCA == ELCA; exercise the
  // ancestor-drop with "conf" (tag of two internal nodes at one level —
  // no nesting) plus a nested case via "db" vs "conf" is structural;
  // instead check {data}: p0 (level 3) vs others (level 4) — none nested.
  JoinSearchOptions options;
  options.semantics = Semantics::kSlca;
  JoinSearch search(index_, options);
  auto results = search.Search({"data"});
  EXPECT_EQ(results.size(), 4u);
}

TEST_F(JoinSearchTest, ScoresMatchOracle) {
  DeweyIndex dindex = builder_.BuildDeweyIndex();
  NaiveOracle oracle(tree_, dindex);
  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    JoinSearchOptions options;
    options.semantics = semantics;
    JoinSearch search(index_, options);
    auto got = search.Search({"xml", "data"});
    auto want = oracle.Search({"xml", "data"}, semantics);
    SortByNode(&got);
    SortByNode(&want);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_NEAR(got[i].score, want[i].score, 1e-9)
          << "node " << got[i].node;
    }
  }
}

TEST_F(JoinSearchTest, RowErasureModeAgrees) {
  JoinSearchOptions ranges, rows;
  rows.use_range_check = false;
  JoinSearch a(index_, ranges), b(index_, rows);
  auto ra = a.Search({"xml", "data"});
  auto rb = b.Search({"xml", "data"});
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].node, rb[i].node);
    EXPECT_NEAR(ra[i].score, rb[i].score, 1e-12);
  }
}

TEST_F(JoinSearchTest, ForcedJoinPoliciesAgree) {
  for (JoinPolicy policy :
       {JoinPolicy::kDynamic, JoinPolicy::kForceMerge,
        JoinPolicy::kForceIndex}) {
    JoinSearchOptions options;
    options.planner.policy = policy;
    JoinSearch search(index_, options);
    auto results = search.Search({"xml", "data"});
    EXPECT_EQ(Nodes(results), (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1,
                                                Ids::kP4Title, Ids::kDb}));
  }
}

TEST_F(JoinSearchTest, StatsPopulated) {
  JoinSearch search(index_);
  search.Search({"xml", "data"});
  const JoinSearchStats& stats = search.stats();
  EXPECT_EQ(stats.results, 4u);
  EXPECT_GT(stats.levels_processed, 0u);
  EXPECT_GT(stats.candidates, 0u);
  EXPECT_GT(stats.rows_erased, 0u);
  EXPECT_GT(stats.join_ops.merge_joins + stats.join_ops.index_joins, 0u);
}

TEST_F(JoinSearchTest, ThreeKeywordQuery) {
  JoinSearch search(index_);
  auto results = search.Search({"xml", "data", "title"});
  // p4t carries all three directly; paper1 via p1t (xml+title) and p1a
  // (data); conf0 keeps xml+data at p0 and title at p2t after consuming
  // paper1's subtree. conf1 loses all xml to consumed paper4; db loses
  // everything to its consumed conf children.
  EXPECT_EQ(Nodes(results),
            (std::set<NodeId>{Ids::kConf0, Ids::kPaper1, Ids::kP4Title}));
}

}  // namespace
}  // namespace xtopk
