// Ablation A7: cost-based join planning vs the observed-size heuristic.
// The planner's edge is positional skew the sizes cannot see: when the two
// SHORTEST lists are correlated (planted into the same contiguous document
// region) and a longer list is spread uniformly, shortest-first joins the
// correlated pair and drags a large intermediate through every later step.
// The per-level histograms price that pair near its true (large) overlap
// and the uniform pair near its true (tiny) one, so the DP folds the
// uniform term second and collapses the intermediate immediately.
//
// On uniform equal-frequency workloads every order costs the same; the
// planner must match the heuristic there (its plan degrades to
// shortest-first by construction). Both claims are gated in CI.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/join_search.h"
#include "core/plan_cache.h"
#include "util/rng.h"
#include "workload/vocab.h"

namespace {

using xtopk::bench::BenchJson;
using xtopk::bench::HitRate;
using xtopk::bench::TimeOnceMs;

constexpr size_t kSkewTriples = 4;
constexpr int kRepeatsPerQuery = 20;

/// DBLP corpus with hand-planted positional skew. Each skew group i:
///   ska<i>, skb<i>, skb2<i>, skb3<i> — 7000 titles each, 97% co-located,
///                     confined to one contiguous 8000-title region i
///   skc<i>          — 8400 titles drawn from the WHOLE corpus, plus 400
///                     planted onto ska<i> titles so three-way matches
///                     exist beyond the uniform background
///   skd<i>          — 9000 titles, corpus-wide (the 5-keyword tail)
/// plus uniform pools un0..un7 (2000 titles each, corpus-wide) for the
/// equal-frequency control workload. Sizes make the CORRELATED terms the
/// shortest lists, so the size heuristic opens with them and carries a
/// ~6800-value intermediate into the skc fold; the histograms price the
/// region terms near their true (dense-range) overlap and open with the
/// cross-region pair (~1500 values) instead, probing the other region
/// terms from a collapsed left side.
xtopk::bench::BenchCorpus BuildPlannerCorpus() {
  xtopk::DblpGenOptions gen;
  gen.num_conferences = 50;
  gen.years_per_conference = 10;
  gen.papers_per_year = 100 * xtopk::bench::BenchScale();  // ~50k papers
  gen.seed = 7321;
  for (uint32_t i = 0; i < 8; ++i) {
    gen.planted.push_back({"un" + std::to_string(i), 2000, "", 0.0});
  }
  xtopk::DblpCorpus dblp = xtopk::GenerateDblp(gen);

  xtopk::Rng rng(4242);
  size_t region = 8000;
  for (size_t i = 0; i < kSkewTriples; ++i) {
    size_t lo = i * region;
    size_t hi = std::min(lo + region, dblp.titles.size());
    std::vector<xtopk::NodeId> local(dblp.titles.begin() + lo,
                                     dblp.titles.begin() + hi);
    std::string suffix = std::to_string(i);
    xtopk::PlantTerms(&dblp.tree, local,
                      {{"ska" + suffix, 7000, "", 0.0},
                       {"skb" + suffix, 7000, "ska" + suffix, 0.97},
                       {"skb2" + suffix, 7000, "ska" + suffix, 0.97},
                       {"skb3" + suffix, 7000, "ska" + suffix, 0.97},
                       {"skc" + suffix, 400, "ska" + suffix, 1.0}},
                      &rng);
    xtopk::PlantTerms(&dblp.tree, dblp.titles,
                      {{"skc" + suffix, 8400, "", 0.0},
                       {"skd" + suffix, 9000, "", 0.0}},
                      &rng);
  }

  xtopk::bench::BenchCorpus corpus;
  corpus.tree = std::make_unique<xtopk::XmlTree>(std::move(dblp.tree));
  std::fprintf(stderr, "[bench] planner corpus: %zu nodes\n",
               corpus.tree->node_count());
  xtopk::IndexBuildOptions build_options;
  build_options.build_threads = 8;
  corpus.builder =
      std::make_unique<xtopk::IndexBuilder>(*corpus.tree, build_options);
  return corpus;
}

struct WorkloadResult {
  double planner_ms = 0;
  double heuristic_ms = 0;
  double cache_hit_rate = 0;
  std::vector<double> rel_errors;  ///< |est-actual|/max(actual,1) per step
};

/// Times each query under both modes (kRepeatsPerQuery timed runs each,
/// shared plan cache on the planner side) and collects the planner's
/// estimated-vs-actual error samples from EXPLAIN traces.
WorkloadResult RunWorkload(const xtopk::JDeweyIndex& jindex,
                           const std::vector<std::vector<std::string>>& queries) {
  WorkloadResult out;
  xtopk::PlanCache cache;
  for (const auto& query : queries) {
    xtopk::JoinSearchOptions planned_options;
    planned_options.compute_scores = false;
    planned_options.plan_cache = &cache;
    xtopk::JoinSearch planned(jindex, planned_options);

    xtopk::JoinSearchOptions heuristic_options;
    heuristic_options.compute_scores = false;
    heuristic_options.use_planner = false;
    xtopk::JoinSearch heuristic(jindex, heuristic_options);

    for (int r = 0; r < kRepeatsPerQuery; ++r) {
      out.planner_ms += TimeOnceMs([&] { planned.Search(query); });
      out.heuristic_ms += TimeOnceMs([&] { heuristic.Search(query); });
    }

    std::vector<xtopk::LevelTrace> trace;
    planned.SearchWithTrace(query, &trace);
    for (const auto& level : trace) {
      for (const auto& step : level.steps) {
        if (step.est_output < 0) continue;
        double actual = static_cast<double>(step.output_matches);
        out.rel_errors.push_back(std::abs(step.est_output - actual) /
                                 std::max(actual, 1.0));
      }
    }
  }
  size_t runs = queries.size() * kRepeatsPerQuery;
  out.planner_ms /= runs;
  out.heuristic_ms /= runs;
  out.cache_hit_rate = HitRate(cache.hits(), cache.misses());
  return out;
}

double Quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(q * (v.size() - 1));
  return v[i];
}

void Report(const char* workload, const WorkloadResult& r) {
  double speedup = r.planner_ms > 0 ? r.heuristic_ms / r.planner_ms : 1.0;
  std::printf("%-10s planner %8.3f ms   heuristic %8.3f ms   speedup %5.2fx"
              "   cache %4.0f%%   est-err p50/p95 %.2f/%.2f\n",
              workload, r.planner_ms, r.heuristic_ms, speedup,
              100.0 * r.cache_hit_rate, Quantile(r.rel_errors, 0.5),
              Quantile(r.rel_errors, 0.95));
  BenchJson json("ablation_planner");
  json.Field("workload", std::string(workload))
      .Field("planner_ms", r.planner_ms)
      .Field("heuristic_ms", r.heuristic_ms)
      .Field("speedup", speedup)
      .Field("cache_hit_rate", r.cache_hit_rate)
      .Field("est_err_p50", Quantile(r.rel_errors, 0.5))
      .Field("est_err_p95", Quantile(r.rel_errors, 0.95));
  json.Emit();
}

}  // namespace

int main() {
  xtopk::bench::BenchCorpus corpus = BuildPlannerCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
  if (!jindex.has_stats()) {
    std::fprintf(stderr, "[bench] index carries no histograms — aborting\n");
    return 1;
  }

  std::printf("=== Ablation A7: cost-based planning vs size heuristic ===\n");

  // Skewed: correlated short terms + uniform long tail, 3-6 keywords. The
  // more keywords ride behind the mispriced opening pair, the more folds
  // the heuristic runs with a fat left side.
  std::vector<std::vector<std::string>> skewed;
  for (size_t i = 0; i < kSkewTriples; ++i) {
    std::string s = std::to_string(i);
    skewed.push_back({"ska" + s, "skb" + s, "skc" + s});
    skewed.push_back({"ska" + s, "skb" + s, "skb2" + s, "skc" + s});
    skewed.push_back({"ska" + s, "skb" + s, "skb2" + s, "skc" + s,
                      "skd" + s});
    skewed.push_back({"ska" + s, "skb" + s, "skb2" + s, "skb3" + s,
                      "skc" + s, "skd" + s});
  }
  Report("skewed", RunWorkload(jindex, skewed));

  // Uniform control: equal-frequency corpus-wide terms — every join order
  // costs the same, so planning must not hurt.
  std::vector<std::vector<std::string>> uniform;
  for (size_t i = 0; i < 8; ++i) {
    uniform.push_back({"un" + std::to_string(i), "un" + std::to_string((i + 1) % 8),
                       "un" + std::to_string((i + 2) % 8)});
  }
  Report("uniform", RunWorkload(jindex, uniform));

  std::printf("\nexpected shape: skewed speedup >= 1.3x, uniform within "
              "noise, cache hit rate >= 90%%\n");
  return 0;
}
