#include "xml/dewey.h"

#include <algorithm>

#include "util/varint.h"

namespace xtopk {

int DeweyId::Compare(const DeweyId& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < n; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

size_t DeweyId::CommonPrefixLength(const DeweyId& other) const {
  size_t n = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < n && components_[i] == other.components_[i]) ++i;
  return i;
}

DeweyId DeweyId::LongestCommonPrefix(const DeweyId& other) const {
  size_t len = CommonPrefixLength(other);
  return Prefix(len);
}

bool DeweyId::IsAncestorOf(const DeweyId& other, bool or_self) const {
  if (components_.size() > other.components_.size()) return false;
  if (!or_self && components_.size() == other.components_.size()) return false;
  return CommonPrefixLength(other) == components_.size();
}

DeweyId DeweyId::Prefix(size_t len) const {
  return DeweyId(std::vector<uint32_t>(components_.begin(),
                                       components_.begin() + len));
}

std::string DeweyId::ToString() const {
  std::string out;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(components_[i]);
  }
  return out;
}

size_t DeweyId::EncodedSizeDelta(const DeweyId& prev, const DeweyId& cur) {
  // Prefix compression: store shared-prefix length, remaining component
  // count, then the non-shared components as varints. Mirrors the scheme of
  // Xu & Papakonstantinou (SIGMOD'05) the paper compresses baselines with.
  size_t shared = prev.CommonPrefixLength(cur);
  size_t bytes = varint::LengthU64(shared);
  bytes += varint::LengthU64(cur.length() - shared);
  for (size_t i = shared; i < cur.length(); ++i) {
    bytes += varint::LengthU64(cur[i]);
  }
  return bytes;
}

NodeId NodeByDewey(const XmlTree& tree, const DeweyId& dewey) {
  if (tree.empty() || dewey.empty() || dewey[0] != 1) return kInvalidNode;
  NodeId cur = tree.root();
  for (size_t i = 1; i < dewey.length(); ++i) {
    NodeId child = tree.node(cur).first_child;
    for (uint32_t step = 1; step < dewey[i] && child != kInvalidNode; ++step) {
      child = tree.node(child).next_sibling;
    }
    if (child == kInvalidNode) return kInvalidNode;
    cur = child;
  }
  return cur;
}

std::vector<DeweyId> AssignDeweyIds(const XmlTree& tree) {
  std::vector<DeweyId> ids(tree.node_count());
  if (tree.empty()) return ids;
  ids[tree.root()] = DeweyId({1});
  // Nodes are stored in creation order with parents before children, but a
  // sibling's ordinal depends on position; walk children lists explicitly.
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    NodeId u = stack.back();
    stack.pop_back();
    uint32_t ordinal = 1;
    for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
         c = tree.node(c).next_sibling) {
      std::vector<uint32_t> comps = ids[u].components();
      comps.push_back(ordinal++);
      ids[c] = DeweyId(std::move(comps));
      stack.push_back(c);
    }
  }
  return ids;
}

}  // namespace xtopk
