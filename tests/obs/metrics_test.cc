// MetricsRegistry / Counter / Gauge / Histogram: concurrent increments must
// sum exactly, bucket boundaries must follow the log2 layout, and snapshots
// must be isolated from later increments.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace xtopk {
namespace obs {
namespace {

TEST(MetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.metrics.concurrent");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(MetricsTest, RegistryReturnsStableHandles) {
  Counter& a = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  Counter& b = MetricsRegistry::Global().GetCounter("test.metrics.stable");
  EXPECT_EQ(&a, &b);
  // The macro resolves to the same handle as the explicit lookup.
  EXPECT_EQ(&XTOPK_COUNTER("test.metrics.stable"), &a);
}

TEST(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket i>=1 = [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), 64u);

  for (size_t i = 1; i < Histogram::kNumBuckets; ++i) {
    // Every bucket's bounds round-trip through BucketOf.
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLowerBound(i) == 0
                                      ? 1
                                      : Histogram::BucketLowerBound(i)),
              i == 1 ? 1u : i);
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketUpperBound(i) - 1), i);
  }
}

TEST(MetricsTest, HistogramRecordAndPercentiles) {
  Histogram histogram;
  for (uint64_t v = 1; v <= 1000; ++v) histogram.Record(v);
  EXPECT_EQ(histogram.count(), 1000u);
  EXPECT_EQ(histogram.sum(), 500500u);
  // Log2 buckets bound the quantile estimate to within its bucket.
  double p50 = histogram.Percentile(0.50);
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  double p99 = histogram.Percentile(0.99);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_GE(p99, p50);
}

TEST(MetricsTest, EmptyHistogramPercentileIsSentinel) {
  // "No data" must be distinguishable from "all samples were 0".
  EXPECT_EQ(Histogram().Percentile(0.5), kEmptyPercentile);
  EXPECT_EQ(Histogram().Percentile(0.0), kEmptyPercentile);
  EXPECT_EQ(Histogram().Percentile(1.0), kEmptyPercentile);
  Histogram zeros;
  zeros.Record(0);
  EXPECT_GE(zeros.Percentile(0.5), 0.0);
  EXPECT_LT(zeros.Percentile(0.5), 1.0);
}

TEST(MetricsTest, FirstBucketInterpolatesWithinZeroOne) {
  // Bucket 0 holds only the value 0 (bounds [0, 1)): every quantile of an
  // all-zero histogram interpolates inside that range.
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(0);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    double p = histogram.Percentile(q);
    EXPECT_GE(p, 0.0) << "q=" << q;
    EXPECT_LT(p, 1.0) << "q=" << q;
  }
}

TEST(MetricsTest, LastBucketInterpolationIsFinite) {
  // The last bucket's upper bound saturates at UINT64_MAX (2^64 does not
  // fit); the estimate must stay within [lower bound, UINT64_MAX].
  Histogram histogram;
  histogram.Record(UINT64_MAX);
  double p = histogram.Percentile(0.99);
  EXPECT_GE(p, static_cast<double>(Histogram::BucketLowerBound(64)));
  EXPECT_LE(p, static_cast<double>(UINT64_MAX));
  // Quantiles are clamped into [0, 1].
  EXPECT_EQ(histogram.Percentile(-0.5), histogram.Percentile(0.0));
  EXPECT_EQ(histogram.Percentile(1.5), histogram.Percentile(1.0));
}

TEST(MetricsTest, HistogramMerge) {
  Histogram a, b;
  a.Record(10);
  a.Record(100);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 1110u);
}

TEST(MetricsTest, ConcurrentHistogramRecordsSumExactly) {
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.metrics.hist_concurrent");
  histogram.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<uint64_t>(t) * 1000 + (i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
}

TEST(MetricsTest, SnapshotIsIsolatedFromLaterIncrements) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.metrics.snapshot_iso");
  counter.Reset();
  counter.Add(7);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  counter.Add(100);  // must not show through the snapshot

  uint64_t seen = UINT64_MAX;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "test.metrics.snapshot_iso") seen = value;
  }
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(counter.value(), 107u);
}

TEST(MetricsTest, SnapshotIsNameSorted) {
  MetricsRegistry::Global().GetCounter("test.metrics.zz");
  MetricsRegistry::Global().GetCounter("test.metrics.aa");
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  for (size_t i = 1; i < snapshot.counters.size(); ++i) {
    EXPECT_LT(snapshot.counters[i - 1].first, snapshot.counters[i].first);
  }
}

TEST(MetricsTest, JsonAndPrometheusSerialization) {
  Counter& counter =
      MetricsRegistry::Global().GetCounter("test.metrics.json_counter");
  counter.Reset();
  counter.Add(3);
  Histogram& histogram =
      MetricsRegistry::Global().GetHistogram("test.metrics.json_hist");
  histogram.Reset();
  histogram.Record(5);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"test.metrics.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);

  std::string prom = snapshot.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE test_metrics_json_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_metrics_json_counter 3"), std::string::npos);
  EXPECT_NE(prom.find("test_metrics_json_hist_bucket{le=\"8\"} 1"),
            std::string::npos);

  std::string compact;
  snapshot.AppendCompactJson(&compact);
  EXPECT_NE(compact.find("\"test.metrics.json_hist_count\":1"),
            std::string::npos);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge& gauge = MetricsRegistry::Global().GetGauge("test.metrics.gauge");
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.value(), 7);
  gauge.Reset();
  EXPECT_EQ(gauge.value(), 0);
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
