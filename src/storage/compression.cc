#include "storage/compression.h"

#include <cassert>

#include "obs/metrics.h"
#include "util/varint.h"

namespace xtopk {
namespace {

// Header layout: codec byte, then run/row counts, then codec-specific body.

void EncodeRunLength(const Column& column, std::string* out) {
  // Triples (v, r, c), with v and r delta-encoded against the previous
  // triple (both are strictly increasing across runs).
  uint32_t prev_value = 0;
  uint32_t prev_row = 0;
  for (const Run& run : column.runs()) {
    varint::PutU32(out, run.value - prev_value);
    varint::PutU32(out, run.first_row - prev_row);
    varint::PutU32(out, run.count);
    prev_value = run.value;
    prev_row = run.first_row;
  }
}

void EncodeDelta(const Column& column, std::string* out) {
  // Per-row value stream in blocks: the first value of each block is
  // stored in full, subsequent values as deltas from their predecessor
  // (zero while a run spans rows). Row ids are implied by the list's
  // sequence lengths and are not written.
  uint32_t in_block = 0;
  uint32_t prev_value = 0;
  for (const Run& run : column.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) {
      if (in_block == 0) {
        varint::PutU32(out, run.value);
      } else {
        varint::PutU32(out, run.value - prev_value);
      }
      prev_value = run.value;
      if (++in_block == kDeltaBlockRows) in_block = 0;
    }
  }
}

Status DecodeRunLength(const std::string& data, size_t* pos, uint32_t run_count,
                       Column* column) {
  uint32_t prev_value = 0;
  uint32_t prev_row = 0;
  for (uint32_t i = 0; i < run_count; ++i) {
    uint32_t dv = 0, dr = 0, count = 0;
    Status s = varint::GetU32(data, pos, &dv);
    if (s.ok()) s = varint::GetU32(data, pos, &dr);
    if (s.ok()) s = varint::GetU32(data, pos, &count);
    if (!s.ok()) return s;
    uint32_t value = prev_value + dv;
    uint32_t row = prev_row + dr;
    if (count == 0) return Status::Corruption("column: zero-length run");
    for (uint32_t j = 0; j < count; ++j) column->Append(row + j, value);
    prev_value = value;
    prev_row = row;
  }
  return Status::Ok();
}

Status DecodeDelta(const std::string& data, size_t* pos, uint32_t row_count,
                   const std::vector<uint32_t>* present_rows,
                   Column* column) {
  if (present_rows == nullptr) {
    return Status::InvalidArgument(
        "column: delta codec requires the present-row list");
  }
  if (present_rows->size() != row_count) {
    return Status::Corruption("column: present-row count mismatch");
  }
  uint32_t in_block = 0;
  uint32_t prev_value = 0;
  for (uint32_t i = 0; i < row_count; ++i) {
    uint32_t v = 0;
    Status s = varint::GetU32(data, pos, &v);
    if (!s.ok()) return s;
    uint32_t value = in_block == 0 ? v : prev_value + v;
    column->Append((*present_rows)[i], value);
    prev_value = value;
    if (++in_block == kDeltaBlockRows) in_block = 0;
  }
  return Status::Ok();
}

}  // namespace

ColumnCodec ChooseCodec(const Column& column) {
  if (column.run_count() == 0) return ColumnCodec::kRunLength;
  double avg_run = static_cast<double>(column.row_count()) /
                   static_cast<double>(column.run_count());
  return avg_run >= kRleThreshold ? ColumnCodec::kRunLength
                                  : ColumnCodec::kDelta;
}

void EncodeColumn(const Column& column, ColumnCodec codec, std::string* out) {
  if (codec == ColumnCodec::kAuto) codec = ChooseCodec(column);
  size_t before = out->size();
  out->push_back(static_cast<char>(codec));
  if (codec == ColumnCodec::kRunLength) {
    varint::PutU32(out, static_cast<uint32_t>(column.run_count()));
    EncodeRunLength(column, out);
    XTOPK_COUNTER("storage.codec.rle_encodes").Add(1);
  } else {
    varint::PutU32(out, column.row_count());
    EncodeDelta(column, out);
    XTOPK_COUNTER("storage.codec.delta_encodes").Add(1);
  }
  XTOPK_COUNTER("storage.codec.encoded_bytes").Add(out->size() - before);
}

Status DecodeColumn(const std::string& data, size_t* pos,
                    const std::vector<uint32_t>* present_rows,
                    Column* column) {
  if (*pos >= data.size()) return Status::Corruption("column: empty buffer");
  uint8_t codec_byte = static_cast<uint8_t>(data[(*pos)++]);
  uint32_t count = 0;
  Status s = varint::GetU32(data, pos, &count);
  if (!s.ok()) return s;
  switch (static_cast<ColumnCodec>(codec_byte)) {
    case ColumnCodec::kRunLength:
      XTOPK_COUNTER("storage.codec.rle_decodes").Add(1);
      return DecodeRunLength(data, pos, count, column);
    case ColumnCodec::kDelta:
      XTOPK_COUNTER("storage.codec.delta_decodes").Add(1);
      return DecodeDelta(data, pos, count, present_rows, column);
    default:
      return Status::Corruption("column: unknown codec byte");
  }
}

size_t EncodedColumnSize(const Column& column, ColumnCodec codec) {
  std::string buf;
  EncodeColumn(column, codec, &buf);
  return buf.size();
}

}  // namespace xtopk
