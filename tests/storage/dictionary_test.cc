// Front-coded dictionary (storage/dictionary.h): build/lookup/decode
// round trips, restart-boundary behavior, serialization, and corruption
// rejection (every truncation / byte flip must yield a typed Status, never
// a crash or a silently wrong dictionary).

#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace xtopk {
namespace {

std::vector<std::string> SortedUnique(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

TEST(FrontCodedDictTest, EmptyDictionary) {
  auto dict = FrontCodedDict::Build({});
  ASSERT_TRUE(dict.ok());
  EXPECT_EQ(dict->size(), 0u);
  EXPECT_TRUE(dict->empty());
  EXPECT_EQ(dict->Lookup("anything"), FrontCodedDict::kNotFound);
  std::string blob;
  dict->Serialize(&blob);
  size_t pos = 0;
  auto back = FrontCodedDict::Deserialize(blob, &pos);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
  EXPECT_EQ(pos, blob.size());
}

TEST(FrontCodedDictTest, LookupAndDecodeRoundTrip) {
  // Heavily shared prefixes (the case front coding exists for), spanning
  // several restart blocks.
  std::vector<std::string> strings;
  for (int i = 0; i < 100; ++i) {
    strings.push_back("prefix_shared_" + std::to_string(1000 + i));
  }
  strings.push_back("");  // empty string is a valid term edge case
  strings.push_back("zzz");
  strings = SortedUnique(strings);

  auto dict = FrontCodedDict::Build(strings);
  ASSERT_TRUE(dict.ok());
  ASSERT_EQ(dict->size(), strings.size());
  for (uint32_t code = 0; code < strings.size(); ++code) {
    EXPECT_EQ(dict->Decode(code), strings[code]) << code;
    EXPECT_EQ(dict->Lookup(strings[code]), code) << strings[code];
  }
  EXPECT_EQ(dict->DecodeAll(), strings);
  // Misses: near neighbors of present strings, probing both block interiors
  // and restart boundaries.
  EXPECT_EQ(dict->Lookup("prefix_shared_0999"), FrontCodedDict::kNotFound);
  EXPECT_EQ(dict->Lookup("prefix_shared_1050x"), FrontCodedDict::kNotFound);
  EXPECT_EQ(dict->Lookup("zzzz"), FrontCodedDict::kNotFound);
  EXPECT_EQ(dict->Lookup("a"), FrontCodedDict::kNotFound);
}

TEST(FrontCodedDictTest, RejectsUnsortedAndDuplicates) {
  EXPECT_FALSE(FrontCodedDict::Build({"b", "a"}).ok());
  EXPECT_FALSE(FrontCodedDict::Build({"a", "a"}).ok());
}

TEST(FrontCodedDictTest, RandomizedRoundTrip) {
  Rng rng(4242);
  std::vector<std::string> strings;
  for (int i = 0; i < 500; ++i) {
    std::string s;
    size_t len = rng.NextBounded(12);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(6)));
    }
    strings.push_back(std::move(s));
  }
  strings = SortedUnique(strings);
  auto dict = FrontCodedDict::Build(strings);
  ASSERT_TRUE(dict.ok());

  std::string blob = "envelope-prefix";
  size_t start = blob.size();
  dict->Serialize(&blob);
  blob += "trailing-section";
  size_t pos = start;
  auto back = FrontCodedDict::Deserialize(blob, &pos);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(pos, blob.size() - std::string("trailing-section").size());
  ASSERT_EQ(back->size(), strings.size());
  for (uint32_t code = 0; code < strings.size(); ++code) {
    EXPECT_EQ(back->Decode(code), strings[code]);
    EXPECT_EQ(back->Lookup(strings[code]), code);
  }
  // Lookups of absent strings agree between the built and reparsed forms.
  for (int i = 0; i < 200; ++i) {
    std::string s;
    size_t len = rng.NextBounded(12);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>('a' + rng.NextBounded(8)));
    }
    EXPECT_EQ(dict->Lookup(s), back->Lookup(s)) << s;
  }
}

TEST(FrontCodedDictTest, TruncationAlwaysRejected) {
  std::vector<std::string> strings;
  for (int i = 0; i < 40; ++i) strings.push_back("term" + std::to_string(i));
  strings = SortedUnique(strings);
  auto dict = FrontCodedDict::Build(strings);
  ASSERT_TRUE(dict.ok());
  std::string blob;
  dict->Serialize(&blob);
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    std::string truncated = blob.substr(0, cut);
    size_t pos = 0;
    auto result = FrontCodedDict::Deserialize(truncated, &pos);
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

TEST(FrontCodedDictTest, ByteFlipsNeverCrashOrYieldWrongOrder) {
  std::vector<std::string> strings;
  for (int i = 0; i < 48; ++i) {
    strings.push_back("shared_stem_" + std::to_string(100 + i));
  }
  auto dict = FrontCodedDict::Build(SortedUnique(strings));
  ASSERT_TRUE(dict.ok());
  std::string blob;
  dict->Serialize(&blob);
  for (size_t i = 0; i < blob.size(); ++i) {
    for (uint8_t flip : {0x01, 0x80, 0xFF}) {
      std::string corrupted = blob;
      corrupted[i] = static_cast<char>(corrupted[i] ^ flip);
      size_t pos = 0;
      auto result = FrontCodedDict::Deserialize(corrupted, &pos);
      if (!result.ok()) continue;  // typed rejection is the expected path
      // A flip that survives parsing must still decode a sorted, unique
      // sequence (the invariant binary-searched lookups rely on).
      std::vector<std::string> all = result->DecodeAll();
      EXPECT_TRUE(std::is_sorted(all.begin(), all.end()))
          << "byte " << i << " flip " << int(flip);
      std::set<std::string> uniq(all.begin(), all.end());
      EXPECT_EQ(uniq.size(), all.size())
          << "byte " << i << " flip " << int(flip);
    }
  }
}

}  // namespace
}  // namespace xtopk
