// Shared-subtree detection (xml/subtree_dag.h): identical subtrees are
// grouped, near-identical ones are not, chosen classes are node-disjoint,
// and the size/instance thresholds behave.

#include "xml/subtree_dag.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "xml/xml_tree.h"

namespace xtopk {
namespace {

// item -> {name "alpha", props -> payload "beta"}: 4 nodes, depth 3.
NodeId AddItem(XmlTree* tree, NodeId parent, const std::string& name_text,
               const std::string& payload_text) {
  NodeId item = tree->AddChild(parent, "item");
  NodeId name = tree->AddChild(item, "name");
  tree->AppendText(name, name_text);
  NodeId props = tree->AddChild(item, "props");
  NodeId payload = tree->AddChild(props, "payload");
  tree->AppendText(payload, payload_text);
  return item;
}

TEST(SubtreeDagTest, DetectsIdenticalCopies) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  NodeId a = AddItem(&tree, root, "alpha", "beta");
  NodeId b = AddItem(&tree, root, "alpha", "beta");
  NodeId c = AddItem(&tree, root, "alpha", "beta");
  SubtreeDagResult result = DetectSharedSubtrees(tree);
  ASSERT_EQ(result.classes.size(), 1u);
  const SubtreeClass& cls = result.classes[0];
  EXPECT_EQ(cls.level, 2u);
  EXPECT_EQ(cls.node_count, 4u);
  EXPECT_EQ(cls.depth, 3u);
  EXPECT_EQ(cls.roots, (std::vector<NodeId>{a, b, c}));
  EXPECT_EQ(result.shared_nodes, 8u);  // two non-representative copies
}

TEST(SubtreeDagTest, TextTagAndAttributeDifferencesSplitClasses) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  AddItem(&tree, root, "alpha", "beta");
  AddItem(&tree, root, "alpha", "beta");
  // Same shape, different text: must not join the class.
  AddItem(&tree, root, "alpha", "gamma");
  // Same shape and text but an attribute on the payload.
  NodeId d = AddItem(&tree, root, "alpha", "beta");
  tree.AddAttribute(d, "lang", "en");
  SubtreeDagResult result = DetectSharedSubtrees(tree);
  ASSERT_EQ(result.classes.size(), 1u);
  EXPECT_EQ(result.classes[0].roots.size(), 2u);
}

TEST(SubtreeDagTest, RespectsMinimumSize) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  for (int i = 0; i < 5; ++i) {
    NodeId t = tree.AddChild(root, "title");
    tree.AppendText(t, "xml");
  }
  // 1-node subtrees repeated 5 times: below the 4-node default floor.
  EXPECT_TRUE(DetectSharedSubtrees(tree).classes.empty());
  SubtreeDagOptions options;
  options.min_subtree_nodes = 1;
  SubtreeDagResult result = DetectSharedSubtrees(tree, options);
  ASSERT_EQ(result.classes.size(), 1u);
  EXPECT_EQ(result.classes[0].roots.size(), 5u);
}

TEST(SubtreeDagTest, RespectsMinimumInstances) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  AddItem(&tree, root, "alpha", "beta");
  AddItem(&tree, root, "alpha", "beta");
  SubtreeDagOptions options;
  options.min_instances = 3;
  EXPECT_TRUE(DetectSharedSubtrees(tree, options).classes.empty());
  options.min_instances = 2;
  EXPECT_EQ(DetectSharedSubtrees(tree, options).classes.size(), 1u);
}

TEST(SubtreeDagTest, NestedRepetitionPicksDisjointClasses) {
  // Each "block" contains two identical items; blocks themselves are
  // identical. Candidate classes overlap (an item lies inside a block);
  // the greedy pass keeps the larger savings — here the 6-instance item
  // class, 4·(6−1)=20 shared nodes vs the block class's 9·(3−1)=18 — and
  // drops overlapping candidates, so coverage is node-disjoint.
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  for (int b = 0; b < 3; ++b) {
    NodeId block = tree.AddChild(root, "block");
    AddItem(&tree, block, "alpha", "beta");
    AddItem(&tree, block, "alpha", "beta");
  }
  SubtreeDagResult result = DetectSharedSubtrees(tree);
  ASSERT_EQ(result.classes.size(), 1u);
  EXPECT_EQ(result.classes[0].node_count, 4u);
  EXPECT_EQ(result.classes[0].roots.size(), 6u);
  EXPECT_EQ(result.shared_nodes, 20u);
  std::set<NodeId> covered;
  for (const SubtreeClass& cls : result.classes) {
    for (NodeId r : cls.roots) {
      for (NodeId n : SubtreeNodes(tree, r)) {
        EXPECT_TRUE(covered.insert(n).second)
            << "node " << n << " covered twice";
      }
    }
  }
}

TEST(SubtreeDagTest, SameShapeDifferentLevelsDoNotMix) {
  // Identical items at level 2 and level 3: level is part of the class
  // signature (the JDewey translation argument needs same-level roots).
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  AddItem(&tree, root, "alpha", "beta");
  AddItem(&tree, root, "alpha", "beta");
  NodeId wrap = tree.AddChild(root, "wrap");
  AddItem(&tree, wrap, "alpha", "beta");
  AddItem(&tree, wrap, "alpha", "beta");
  SubtreeDagResult result = DetectSharedSubtrees(tree);
  ASSERT_EQ(result.classes.size(), 2u);
  EXPECT_NE(result.classes[0].level, result.classes[1].level);
  for (const SubtreeClass& cls : result.classes) {
    EXPECT_EQ(cls.roots.size(), 2u);
  }
}

TEST(SubtreeDagTest, SubtreeNodesIsDocOrder) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("db");
  NodeId item = AddItem(&tree, root, "alpha", "beta");
  std::vector<NodeId> nodes = SubtreeNodes(tree, item);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  EXPECT_EQ(nodes.front(), item);
}

}  // namespace
}  // namespace xtopk
