// Crash-safety sweeps for the manifest log (storage/manifest_log.h).
//
// The log's contract: Append is atomic-or-absent under any crash, replay
// trusts exactly the longest valid prefix, and RecoverSegmentSet leaves
// the directory agreeing with that prefix — no orphan segment files, no
// torn tail that later appends would land behind. The sweeps here damage
// the log at EVERY byte (truncation) and every byte's bits (flips), plus
// every append call (injected torn writes), and assert the recovered set
// is always one of the states the record sequence passes through.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "storage/manifest_log.h"
#include "util/fault_env.h"

namespace xtopk {
namespace {

std::string TestDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "/manifest_log_" + tag + "." +
                    std::to_string(static_cast<long>(::getpid()));
  std::remove((dir + "/MANIFEST.log").c_str());
  ::rmdir(dir.c_str());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

ManifestRecord Rec(ManifestRecordType type, uint64_t id,
                   uint64_t covered = 0, uint64_t watermark = 0,
                   std::vector<uint64_t> inputs = {}) {
  ManifestRecord r;
  r.type = type;
  r.id = id;
  r.covered_nodes = covered;
  r.watermark = watermark;
  r.inputs = std::move(inputs);
  return r;
}

/// The canonical six-record history the sweeps damage: two seals, one
/// compaction of both, two drops.
std::vector<ManifestRecord> History() {
  return {
      Rec(ManifestRecordType::kSeal, 1, 100, 101),
      Rec(ManifestRecordType::kSeal, 2, 50, 151),
      Rec(ManifestRecordType::kCompactBegin, 3, 0, 0, {1, 2}),
      Rec(ManifestRecordType::kCompactCommit, 3, 150, 0, {1, 2}),
      Rec(ManifestRecordType::kDrop, 1),
      Rec(ManifestRecordType::kDrop, 2),
  };
}

/// live-set / watermark / last-seal expectations after applying the first
/// `k` records of History().
struct ExpectedState {
  std::vector<uint64_t> live;
  uint64_t watermark;
  uint64_t last_seal;
};

ExpectedState StateAfter(size_t k) {
  switch (k) {
    case 0: return {{}, 0, 0};
    case 1: return {{1}, 101, 1};
    case 2: return {{1, 2}, 151, 2};
    case 3: return {{1, 2}, 151, 2};   // begin alone changes nothing
    case 4: return {{3}, 151, 2};      // commit swaps inputs for output
    case 5: return {{3}, 151, 2};
    default: return {{3}, 151, 2};
  }
}

void WriteHistory(const std::string& dir) {
  auto log = ManifestLog::Open(ManifestLogPath(dir));
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  for (const ManifestRecord& r : History()) {
    ASSERT_TRUE((*log)->Append(r).ok());
  }
}

/// Creates dummy files for every id History() ever names, so recovery's
/// orphan GC has something to delete.
void PlantSegmentFiles(const std::string& dir) {
  for (uint64_t id : {1ull, 2ull, 3ull}) {
    WriteFileOrDie(SegmentFilePath(dir, id), "seg");
    WriteFileOrDie(SegmentFilePath(dir, id) + ".manifest", "man");
    WriteFileOrDie(EncodingFilePath(dir, id), "enc");
  }
}

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

/// Asserts the directory holds exactly the recovered state's files:
/// segments for live ids, the authoritative encoding snapshot, nothing
/// else of the planted set.
void CheckDirectoryMatches(const std::string& dir, const ExpectedState& want,
                           const RecoveredSegmentSet& got,
                           const std::string& ctx) {
  EXPECT_EQ(got.live, want.live) << ctx;
  EXPECT_EQ(got.watermark, want.watermark) << ctx;
  EXPECT_EQ(got.last_seal_id, want.last_seal) << ctx;
  std::set<uint64_t> live(want.live.begin(), want.live.end());
  for (uint64_t id : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(FileExists(SegmentFilePath(dir, id)), live.count(id) != 0)
        << ctx << " seg-" << id;
    EXPECT_EQ(FileExists(EncodingFilePath(dir, id)), id == want.last_seal)
        << ctx << " enc-" << id;
  }
}

TEST(ManifestLogTest, RoundTripAllRecordTypes) {
  const std::string dir = TestDir("roundtrip");
  WriteHistory(dir);
  uint64_t valid = 0;
  auto replayed = ManifestLog::Replay(ManifestLogPath(dir), &valid);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  const auto want = History();
  ASSERT_EQ(replayed->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*replayed)[i].type, want[i].type) << i;
    EXPECT_EQ((*replayed)[i].id, want[i].id) << i;
    EXPECT_EQ((*replayed)[i].covered_nodes, want[i].covered_nodes) << i;
    EXPECT_EQ((*replayed)[i].watermark, want[i].watermark) << i;
    EXPECT_EQ((*replayed)[i].inputs, want[i].inputs) << i;
  }
  EXPECT_EQ(valid, ReadFileOrDie(ManifestLogPath(dir)).size());
}

TEST(ManifestLogTest, MissingFileAndBadMagicAreTypedErrors) {
  const std::string dir = TestDir("badmagic");
  EXPECT_FALSE(ManifestLog::Replay(dir + "/nonexistent").ok());
  WriteFileOrDie(dir + "/notalog", "WRONGMAG plus data");
  auto replayed = ManifestLog::Replay(dir + "/notalog");
  EXPECT_FALSE(replayed.ok());
}

/// Truncation at EVERY byte boundary: replay must yield exactly the
/// records whose frames fit in the prefix, and recovery must land the
/// directory on the matching state.
TEST(ManifestLogTest, TruncationSweepRecoversPrefixState) {
  const std::string master = TestDir("trunc_master");
  WriteHistory(master);
  const std::string bytes = ReadFileOrDie(ManifestLogPath(master));

  // Frame boundaries: offset after the magic plus each whole record.
  std::vector<size_t> boundaries = {8};
  for (const ManifestRecord& r : History()) {
    std::string frame;
    ManifestLog::EncodeRecord(r, &frame);
    boundaries.push_back(boundaries.back() + frame.size());
  }
  ASSERT_EQ(boundaries.back(), bytes.size());

  for (size_t cut = 8; cut <= bytes.size(); ++cut) {
    const std::string dir = TestDir("trunc_" + std::to_string(cut));
    WriteFileOrDie(ManifestLogPath(dir), bytes.substr(0, cut));
    PlantSegmentFiles(dir);
    auto rec = RecoverSegmentSet(dir);
    ASSERT_TRUE(rec.ok()) << "cut=" << cut << ": "
                          << rec.status().ToString();
    // How many whole records fit in `cut` bytes?
    size_t k = 0;
    while (k + 1 < boundaries.size() && boundaries[k + 1] <= cut) ++k;
    CheckDirectoryMatches(dir, StateAfter(k), *rec,
                          "cut=" + std::to_string(cut));
    EXPECT_EQ(rec->records_applied, k) << "cut=" << cut;
    // The torn tail must be gone: the log now ends at the trusted prefix
    // and a fresh append must survive its own replay.
    EXPECT_EQ(ReadFileOrDie(ManifestLogPath(dir)).size(), boundaries[k])
        << "cut=" << cut;
    auto log = ManifestLog::Open(ManifestLogPath(dir));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Rec(ManifestRecordType::kDrop, 9)).ok());
    auto replayed = ManifestLog::Replay(ManifestLogPath(dir));
    ASSERT_TRUE(replayed.ok());
    ASSERT_EQ(replayed->size(), k + 1) << "cut=" << cut;
    EXPECT_EQ(replayed->back().type, ManifestRecordType::kDrop);
    EXPECT_EQ(replayed->back().id, 9u);
  }
}

/// One bit flipped at EVERY position: the CRC chain must stop replay at
/// or before the damaged frame — the replayed records are always a clean
/// prefix of the history, never a corrupted record.
TEST(ManifestLogTest, BitFlipSweepNeverYieldsCorruptRecords) {
  const std::string master = TestDir("flip_master");
  WriteHistory(master);
  const std::string bytes = ReadFileOrDie(ManifestLogPath(master));
  const auto want = History();

  const std::string dir = TestDir("flip_scratch");
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = bytes;
      damaged[byte] = static_cast<char>(damaged[byte] ^ (1 << bit));
      WriteFileOrDie(ManifestLogPath(dir), damaged);
      auto replayed = ManifestLog::Replay(ManifestLogPath(dir));
      const std::string ctx =
          "byte=" + std::to_string(byte) + " bit=" + std::to_string(bit);
      if (byte < 8) {
        // Magic damage: the file is not a log at all.
        EXPECT_FALSE(replayed.ok()) << ctx;
        continue;
      }
      ASSERT_TRUE(replayed.ok()) << ctx;
      ASSERT_LE(replayed->size(), want.size()) << ctx;
      for (size_t i = 0; i < replayed->size(); ++i) {
        EXPECT_EQ((*replayed)[i].type, want[i].type) << ctx;
        EXPECT_EQ((*replayed)[i].id, want[i].id) << ctx;
        EXPECT_EQ((*replayed)[i].covered_nodes, want[i].covered_nodes)
            << ctx;
        EXPECT_EQ((*replayed)[i].watermark, want[i].watermark) << ctx;
        EXPECT_EQ((*replayed)[i].inputs, want[i].inputs) << ctx;
      }
    }
  }
}

/// Injected torn writes at every append: arm the injector at append k
/// with each damaging kind, write the history until the first failure
/// (the simulated crash), then recover and demand a pre-/post-operation
/// state — exactly the record-prefix states, nothing in between.
TEST(ManifestLogTest, AppendFaultSweepRecoversConsistentState) {
  const auto history = History();
  const FaultKind kinds[] = {FaultKind::kTruncate, FaultKind::kShortRead,
                             FaultKind::kBitFlip,
                             FaultKind::kTransientIoError};
  for (FaultKind kind : kinds) {
    for (uint64_t trigger = 0; trigger < history.size(); ++trigger) {
      for (uint64_t seed = 1; seed <= 5; ++seed) {
        const std::string ctx = std::string(FaultKindName(kind)) +
                                " trigger=" + std::to_string(trigger) +
                                " seed=" + std::to_string(seed);
        const std::string dir = TestDir("fault");
        std::remove(ManifestLogPath(dir).c_str());
        size_t applied = 0;
        {
          auto log = ManifestLog::Open(ManifestLogPath(dir));
          ASSERT_TRUE(log.ok()) << ctx;
          FaultPlan plan;
          plan.kind = kind;
          plan.site = "manifestlog.append";
          plan.trigger = trigger;
          plan.seed = seed;
          FaultInjector::Global().SetPlan(plan);
          for (const ManifestRecord& r : history) {
            if (!(*log)->Append(r).ok()) break;  // crash point
            ++applied;
          }
          FaultInjector::Global().Clear();
        }
        PlantSegmentFiles(dir);
        auto rec = RecoverSegmentSet(dir);
        ASSERT_TRUE(rec.ok()) << ctx << ": " << rec.status().ToString();
        // A bit-flipped append reports success (silent media damage), so
        // every append lands — but replay's CRC check rejects the flipped
        // frame and, per the torn-tail policy, discards everything behind
        // it: recovery sees exactly the records before the flip. Every
        // other kind fails its append (the simulated crash), so recovery
        // sees exactly the `applied` count the writer observed.
        const size_t k = rec->records_applied;
        ASSERT_LE(k, applied) << ctx;
        if (kind != FaultKind::kBitFlip) {
          EXPECT_EQ(k, applied) << ctx;
        } else {
          EXPECT_EQ(applied, history.size()) << ctx;
          EXPECT_EQ(k, trigger) << ctx;
        }
        CheckDirectoryMatches(dir, StateAfter(k), *rec, ctx);
        // Recovery is idempotent: running it again deletes nothing.
        auto again = RecoverSegmentSet(dir);
        ASSERT_TRUE(again.ok()) << ctx;
        EXPECT_TRUE(again->removed_files.empty()) << ctx;
        EXPECT_EQ(again->live, rec->live) << ctx;
      }
    }
  }
}

/// A stray segment file no record ever named (a torn write before its
/// seal record, or garbage) is deleted by recovery.
TEST(ManifestLogTest, RecoveryDeletesUnloggedStrays) {
  const std::string dir = TestDir("strays");
  WriteHistory(dir);
  PlantSegmentFiles(dir);
  WriteFileOrDie(SegmentFilePath(dir, 99), "stray");
  WriteFileOrDie(SegmentFilePath(dir, 99) + ".manifest", "stray");
  WriteFileOrDie(EncodingFilePath(dir, 99), "stray");
  auto rec = RecoverSegmentSet(dir);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(FileExists(SegmentFilePath(dir, 99)));
  EXPECT_FALSE(FileExists(SegmentFilePath(dir, 99) + ".manifest"));
  EXPECT_FALSE(FileExists(EncodingFilePath(dir, 99)));
  CheckDirectoryMatches(dir, StateAfter(6), *rec, "strays");
}

/// A fresh directory (no log) recovers to the empty set without error.
TEST(ManifestLogTest, FreshDirectoryRecoversEmpty) {
  const std::string dir = TestDir("fresh");
  auto rec = RecoverSegmentSet(dir);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->live.empty());
  EXPECT_EQ(rec->next_segment_id, 1u);
  EXPECT_EQ(rec->watermark, 0u);
}

/// Semantically invalid records (not just byte damage) also stop replay:
/// a commit naming non-live inputs must not be applied, and the log is
/// truncated before it so future appends stay visible.
TEST(ManifestLogTest, SemanticViolationStopsApplication) {
  const std::string dir = TestDir("semantic");
  {
    auto log = ManifestLog::Open(ManifestLogPath(dir));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->Append(Rec(ManifestRecordType::kSeal, 1, 10, 11)).ok());
    // Commit whose input 7 was never sealed.
    ASSERT_TRUE(
        (*log)
            ->Append(Rec(ManifestRecordType::kCompactCommit, 2, 10, 0, {7}))
            .ok());
    ASSERT_TRUE((*log)->Append(Rec(ManifestRecordType::kDrop, 1)).ok());
  }
  PlantSegmentFiles(dir);
  auto rec = RecoverSegmentSet(dir);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->live, std::vector<uint64_t>{1});
  EXPECT_EQ(rec->records_applied, 1u);
  // The poisoned suffix is truncated away — a new append replays cleanly.
  auto log = ManifestLog::Open(ManifestLogPath(dir));
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE((*log)->Append(Rec(ManifestRecordType::kDrop, 1)).ok());
  auto again = RecoverSegmentSet(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->live.empty());
  EXPECT_EQ(again->records_applied, 2u);
}

}  // namespace
}  // namespace xtopk
