#ifndef XTOPK_UTIL_FAULT_ENV_H_
#define XTOPK_UTIL_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace xtopk {

/// What a fault plan does to the I/O call it fires on (DESIGN.md §9).
enum class FaultKind : uint8_t {
  kNone = 0,          ///< observe only: count site calls, inject nothing
  kBitFlip,           ///< read succeeds, one seed-chosen bit of the payload flips
  kShortRead,         ///< read succeeds, a seed-chosen tail of the payload is zeroed
  kTruncate,          ///< the file's tail pages become unreadable (persistent)
  kTransientIoError,  ///< the call fails with IoError; later calls succeed
};

/// A deterministic fault: fire `count` consecutive times starting at the
/// `trigger`-th call (0-based) of the site matching `site`. `seed` picks
/// which bit flips / how much of the payload is lost, so a failing
/// (seed, site, kind, trigger) tuple reproduces exactly.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  std::string site = "pagefile.read";
  uint64_t trigger = 0;
  uint64_t count = 1;
  uint64_t seed = 0;
};

const char* FaultKindName(FaultKind kind);

/// Parses the XTOPK_FAULT_INJECT environment knob, e.g.
///   XTOPK_FAULT_INJECT="kind=bitflip,site=pagefile.read,trigger=7,seed=42"
/// Fields: kind (none|bitflip|shortread|truncate|ioerror), site, trigger,
/// count (default 1, "inf" = persistent), seed. Unknown fields and
/// malformed values yield nullopt (the knob is then ignored).
std::optional<FaultPlan> ParseFaultPlan(std::string_view spec);

/// The process-wide fault-injection switchboard. Inactive by default and in
/// production: the storage layer only routes I/O through the injecting
/// wrappers when a plan is set (programmatically by tests, or at startup
/// via XTOPK_FAULT_INJECT), so the zero-fault hot path never takes the
/// mutex below. Thread-safe.
class FaultInjector {
 public:
  /// The process-wide instance. Applies XTOPK_FAULT_INJECT once at first
  /// use.
  static FaultInjector& Global();

  /// Arms `plan` and resets all site counters.
  void SetPlan(const FaultPlan& plan);
  /// Disarms injection (site counters are kept until the next SetPlan).
  void Clear();
  bool active() const;
  FaultPlan plan() const;

  /// One I/O call at `site` asking whether it should fault. Advances the
  /// site's call counter and returns the fault to apply (kNone = proceed)
  /// plus the call index and plan seed for deterministic payload damage.
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    uint64_t call_index = 0;
    uint64_t seed = 0;
  };
  Decision OnCall(std::string_view site);

  /// Calls observed at `site` since the last SetPlan — measured with a
  /// kNone plan, this is the sweep range for that site.
  uint64_t CallCount(std::string_view site) const;

 private:
  FaultInjector();

  mutable std::mutex mu_;
  bool active_ = false;
  FaultPlan plan_;
  std::map<std::string, uint64_t, std::less<>> counts_;
};

}  // namespace xtopk

#endif  // XTOPK_UTIL_FAULT_ENV_H_
