# Empty dependencies file for core_paper_fig5_test.
# This may be replaced when dependencies are built.
