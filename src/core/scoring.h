#ifndef XTOPK_CORE_SCORING_H_
#define XTOPK_CORE_SCORING_H_

#include <cstdint>

namespace xtopk {

/// Ranking parameters (paper §II-B).
///
/// The local score g(v, w) of an occurrence node v for keyword w is a
/// tf·idf value normalized into (0, 1]:
///     g = (1 + ln tf) * ln(1 + N / df)   then divided by the corpus max.
/// The damping d(Δl) = damping_base^Δl decreases an occurrence's
/// contribution with its vertical distance Δl to the ELCA/SLCA, and the
/// aggregation F is the (monotone) sum of per-keyword maxima.
struct ScoringParams {
  /// Base of the exponential damping function; must be in (0, 1).
  double damping_base = 0.9;
};

/// Computes the raw (unnormalized) tf·idf local score.
double RawLocalScore(uint32_t tf, uint64_t df, uint64_t corpus_nodes);

/// d(Δl): damping for a vertical distance of `delta` levels.
double Damp(const ScoringParams& params, uint32_t delta);

/// g · d(Δl) for an occurrence at level `occ_level` contributing to a
/// result at `result_level` (<= occ_level).
double DampedScore(const ScoringParams& params, double local_score,
                   uint32_t occ_level, uint32_t result_level);

}  // namespace xtopk

#endif  // XTOPK_CORE_SCORING_H_
