#include "storage/buffer_pool.h"

#include <utility>

namespace xtopk {

namespace {

size_t EffectiveShards(size_t capacity_pages, size_t shards) {
  size_t by_capacity = capacity_pages / BufferPool::kMinPagesPerShard;
  if (by_capacity == 0) by_capacity = 1;
  if (shards == 0) shards = 1;
  return std::min(shards, by_capacity);
}

}  // namespace

BufferPool::BufferPool(PageFile* file, size_t capacity_pages, size_t shards)
    : file_(file),
      cache_(capacity_pages == 0 ? 1 : capacity_pages,
             EffectiveShards(capacity_pages == 0 ? 1 : capacity_pages,
                             shards),
             "storage.pool") {}

StatusOr<std::shared_ptr<const std::string>> BufferPool::GetPage(PageId id) {
  if (auto cached = cache_.Get(id)) return std::move(*cached);
  // Miss: read outside any shard lock, then move the bytes into the shared
  // payload instead of copying them.
  std::string bytes;
  Status s = file_->ReadPage(id, &bytes);
  if (!s.ok()) return s;
  if (verifier_) {
    s = verifier_(id, bytes);
    if (!s.ok()) return s;  // damaged page: fail the read, never cache it
  }
  auto page = std::make_shared<const std::string>(std::move(bytes));
  cache_.Put(id, page, /*cost=*/1);
  return page;
}

}  // namespace xtopk
