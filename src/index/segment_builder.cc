#include "index/segment_builder.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "index/index_access.h"
#include "xml/tokenizer.h"

namespace xtopk {

JDeweyIndex BuildSegmentIndex(const XmlTree& tree, const JDeweyEncoding& enc,
                              const std::vector<NodeId>& nodes,
                              const IndexBuildOptions& options) {
  JDeweyIndex index;
  auto* term_ids = IndexIoAccess::TermIds(&index);
  auto* terms = IndexIoAccess::Terms(&index);
  auto* lists = IndexIoAccess::Lists(&index);
  auto* level_nodes = IndexIoAccess::LevelNodes(&index);
  uint32_t* max_level = IndexIoAccess::MaxLevel(&index);

  struct Occ {
    NodeId node = kInvalidNode;
    uint32_t tf = 0;
  };
  std::vector<std::vector<Occ>> occurrences;

  Tokenizer tokenizer(options.tokenizer);
  for (NodeId id : nodes) {
    auto tf_map = tokenizer.TermFrequencies(tree.text(id));
    if (options.index_tag_names) {
      for (const auto& tag_token : tokenizer.Tokenize(tree.TagName(id))) {
        ++tf_map[tag_token];
      }
    }
    for (const auto& [term, tf] : tf_map) {
      auto [it, inserted] =
          term_ids->emplace(term, static_cast<uint32_t>(occurrences.size()));
      if (inserted) occurrences.emplace_back();
      occurrences[it->second].push_back(Occ{id, tf});
    }
  }

  // The sequences drive both the row sort and the column fill; compute each
  // covered node's once.
  std::unordered_map<NodeId, JDeweySeq> seqs;
  seqs.reserve(nodes.size());
  for (const auto& occs : occurrences) {
    for (const Occ& occ : occs) {
      if (seqs.count(occ.node) == 0) {
        seqs.emplace(occ.node, enc.SequenceOf(tree, occ.node));
      }
    }
  }

  terms->resize(term_ids->size());
  for (const auto& [term, id] : *term_ids) (*terms)[id] = term;

  lists->resize(occurrences.size());
  auto* stats = IndexIoAccess::Stats(&index);
  stats->resize(occurrences.size());
  for (size_t t = 0; t < occurrences.size(); ++t) {
    auto& occs = occurrences[t];
    std::sort(occs.begin(), occs.end(), [&](const Occ& a, const Occ& b) {
      return CompareJDewey(seqs.at(a.node), seqs.at(b.node)) < 0;
    });
    JDeweyList& list = (*lists)[t];
    uint32_t rows = static_cast<uint32_t>(occs.size());
    list.lengths.resize(rows);
    list.scores.resize(rows);
    list.nodes.resize(rows);
    for (uint32_t row = 0; row < rows; ++row) {
      const JDeweySeq& seq = seqs.at(occs[row].node);
      uint16_t len = static_cast<uint16_t>(seq.size());
      list.lengths[row] = len;
      list.scores[row] = static_cast<float>(occs[row].tf);
      list.nodes[row] = occs[row].node;
      if (len > list.max_length) list.max_length = len;
      if (list.columns.size() < len) list.columns.resize(len);
      for (uint16_t level = 1; level <= len; ++level) {
        list.columns[level - 1].Append(row, seq[level - 1]);
      }
    }
    (*stats)[t] = ComputeListStats(list, options.stats_buckets);
  }

  // (level, value) -> node over the covered nodes and their ancestors, so
  // results above the segment's own rows still resolve to tree nodes.
  std::vector<char> seen(tree.node_count(), 0);
  uint32_t deepest = 0;
  for (NodeId id : nodes) {
    for (NodeId cur = id; cur != kInvalidNode && !seen[cur];
         cur = tree.parent(cur)) {
      seen[cur] = 1;
      uint32_t level = tree.level(cur);
      deepest = std::max(deepest, level);
      if (level_nodes->size() < level) level_nodes->resize(level);
      (*level_nodes)[level - 1].emplace_back(enc.NumberOf(cur), cur);
    }
  }
  for (auto& level : *level_nodes) std::sort(level.begin(), level.end());
  *max_level = deepest;
  return index;
}

SegmentManifest ManifestFromSegment(const JDeweyIndex& segment) {
  SegmentManifest manifest;
  manifest.terms.reserve(segment.term_count());
  const auto& terms = segment.terms();
  const auto& lists = segment.lists();
  for (size_t t = 0; t < terms.size(); ++t) {
    SegmentTermStats stats;
    stats.term = terms[t];
    stats.rows = lists[t].num_rows();
    for (float tf : lists[t].scores) {
      stats.max_tf = std::max(stats.max_tf, static_cast<uint32_t>(tf));
    }
    // Planner histograms: reuse the build-time statistics when the index
    // carries them, otherwise derive them from the columns directly (the
    // Compact path hands in a merged index assembled via IndexIoAccess).
    const TermStats* list_stats = segment.StatsOf(terms[t]);
    if (list_stats != nullptr && list_stats->has_histograms()) {
      stats.levels = list_stats->levels;
    } else {
      stats.levels =
          ComputeListStats(lists[t], kDefaultStatsBuckets).levels;
    }
    manifest.terms.push_back(std::move(stats));
  }
  std::sort(manifest.terms.begin(), manifest.terms.end(),
            [](const SegmentTermStats& a, const SegmentTermStats& b) {
              return a.term < b.term;
            });
  return manifest;
}

}  // namespace xtopk
