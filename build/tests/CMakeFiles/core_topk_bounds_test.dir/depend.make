# Empty dependencies file for core_topk_bounds_test.
# This may be replaced when dependencies are built.
