#include "workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace xtopk {

ZipfSampler::ZipfSampler(size_t n, double theta, uint64_t seed) : rng_(seed) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfSampler::Next() {
  double u = rng_.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace xtopk
