#include "core/multi_doc.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

TEST(MultiDocTest, MergesDocumentsUnderCollection) {
  MultiDocCorpus corpus;
  ASSERT_TRUE(
      corpus.AddDocumentXml("a.xml", "<bib><t>xml search</t></bib>").ok());
  ASSERT_TRUE(
      corpus.AddDocumentXml("b.xml", "<bib><t>xml data</t></bib>").ok());
  EXPECT_EQ(corpus.document_count(), 2u);
  EXPECT_EQ(corpus.document_name(0), "a.xml");
  const XmlTree& tree = corpus.tree();
  EXPECT_EQ(tree.TagName(tree.root()), "collection");
  EXPECT_EQ(tree.Children(tree.root()).size(), 2u);
}

TEST(MultiDocTest, DocumentOfResolvesMembership) {
  MultiDocCorpus corpus;
  ASSERT_TRUE(corpus.AddDocumentXml("first", "<r><a>x</a></r>").ok());
  ASSERT_TRUE(corpus.AddDocumentXml("second", "<r><b>y</b></r>").ok());
  const XmlTree& tree = corpus.tree();
  EXPECT_EQ(corpus.DocumentOf(tree.root()), std::nullopt);
  // Every non-root node resolves to its document.
  for (NodeId id = 1; id < tree.node_count(); ++id) {
    auto doc = corpus.DocumentOf(id);
    ASSERT_TRUE(doc.has_value()) << id;
  }
  // Last node belongs to the second document.
  auto last = corpus.DocumentOf(static_cast<NodeId>(tree.node_count() - 1));
  EXPECT_EQ(corpus.document_name(*last), "second");
}

TEST(MultiDocTest, CrossDocumentQueriesResolveToCollectionAncestors) {
  MultiDocCorpus corpus;
  ASSERT_TRUE(
      corpus.AddDocumentXml("a", "<bib><t>unicorn</t></bib>").ok());
  ASSERT_TRUE(
      corpus.AddDocumentXml("b", "<bib><t>griffin</t></bib>").ok());
  Engine engine(corpus.tree());
  // The only node containing both terms is the collection root.
  auto hits = engine.Search({"unicorn", "griffin"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, corpus.tree().root());
  // Within-document queries resolve inside the document.
  auto within = engine.Search({"unicorn", "t"});
  ASSERT_FALSE(within.empty());
  auto doc = corpus.DocumentOf(within[0].node);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(corpus.document_name(*doc), "a");
}

TEST(MultiDocTest, CopiedTreePreservesStructureAndText) {
  XmlTree original = ParseXmlStringOrDie(
      "<r><a>one<b>two</b></a><c><d>three</d><e>four</e></c></r>");
  MultiDocCorpus corpus;
  corpus.AddDocument("doc", original);
  const XmlTree& tree = corpus.tree();
  // collection(1) + doc(1) + 6 copied elements.
  EXPECT_EQ(tree.node_count(), 8u);
  // Find the copied root and compare recursively via serialization.
  NodeId wrapper = tree.Children(tree.root())[0];
  NodeId copied_root = tree.Children(wrapper)[0];
  EXPECT_EQ(tree.ToXmlString(copied_root),
            original.ToXmlString(original.root()));
}

TEST(MultiDocTest, EmptyCorpusIsJustTheRoot) {
  MultiDocCorpus corpus;
  EXPECT_EQ(corpus.document_count(), 0u);
  EXPECT_EQ(corpus.tree().node_count(), 1u);
  EXPECT_EQ(corpus.DocumentOf(corpus.tree().root()), std::nullopt);
}

TEST(MultiDocTest, BadXmlPropagatesStatus) {
  MultiDocCorpus corpus;
  auto result = corpus.AddDocumentXml("bad", "<a><b></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(corpus.document_count(), 0u);
}

}  // namespace
}  // namespace xtopk
