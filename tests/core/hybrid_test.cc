#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <memory>

#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;

// Heap-held pieces so cross-references stay valid when Built moves.
struct Built {
  std::unique_ptr<XmlTree> tree;
  std::unique_ptr<IndexBuilder> builder;
  std::unique_ptr<JDeweyIndex> jindex;
  std::unique_ptr<TopKIndex> topk;
};

Built Build(uint64_t seed, size_t nodes, double term_prob) {
  Built b;
  b.tree = std::make_unique<XmlTree>(
      MakeRandomTree(seed, nodes, 4, 6, {"alpha", "beta"}, term_prob));
  IndexBuildOptions options;
  options.index_tag_names = false;
  b.builder = std::make_unique<IndexBuilder>(*b.tree, options);
  b.jindex = std::make_unique<JDeweyIndex>(b.builder->BuildJDeweyIndex());
  b.topk = std::make_unique<TopKIndex>(b.builder->BuildTopKIndex(*b.jindex));
  return b;
}

TEST(HybridTest, HighCorrelationPicksTopKJoin) {
  Built b = Build(1, 1500, 0.3);
  HybridSearch search(*b.topk);
  auto results = search.Search({"alpha", "beta"});
  EXPECT_TRUE(search.decision().used_topk_join);
  EXPECT_GT(search.decision().estimated_results, 8.0);
  EXPECT_FALSE(results.empty());
}

TEST(HybridTest, LowCorrelationPicksCompleteJoin) {
  Built b = Build(2, 1500, 0.004);
  HybridSearch search(*b.topk);
  search.Search({"alpha", "beta"});
  EXPECT_FALSE(search.decision().used_topk_join);
}

TEST(HybridTest, BothPlansReturnTheSameTopK) {
  for (uint64_t seed : {3ull, 4ull, 5ull}) {
    Built b = Build(seed, 800, 0.15);
    HybridOptions low, high;
    low.topk_min_estimated_results = 0.0;   // force top-K join
    high.topk_min_estimated_results = 1e18;  // force complete join
    HybridSearch topk_plan(*b.topk, low), complete_plan(*b.topk, high);
    auto a = topk_plan.Search({"alpha", "beta"});
    auto c = complete_plan.Search({"alpha", "beta"});
    EXPECT_TRUE(topk_plan.decision().used_topk_join);
    EXPECT_FALSE(complete_plan.decision().used_topk_join);
    ASSERT_EQ(a.size(), c.size()) << seed;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].score, c[i].score, 1e-6) << seed << " pos " << i;
    }
  }
}

TEST(HybridTest, EstimateTracksActualCardinality) {
  // Dense co-occurrence must estimate well above sparse co-occurrence.
  Built dense = Build(6, 1000, 0.25);
  Built sparse = Build(7, 1000, 0.01);
  HybridSearch dense_search(*dense.topk), sparse_search(*sparse.topk);
  double dense_est = dense_search.EstimateResultCount({"alpha", "beta"});
  double sparse_est = sparse_search.EstimateResultCount({"alpha", "beta"});
  EXPECT_GT(dense_est, sparse_est);
}

TEST(HybridTest, MissingKeywordEstimatesZero) {
  Built b = Build(8, 200, 0.2);
  HybridSearch search(*b.topk);
  EXPECT_EQ(search.EstimateResultCount({"alpha", "zzz"}), 0.0);
  EXPECT_TRUE(search.Search({"alpha", "zzz"}).empty());
}

}  // namespace
}  // namespace xtopk
