#ifndef XTOPK_BASELINE_RDIL_H_
#define XTOPK_BASELINE_RDIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/elca_eval.h"
#include "core/scoring.h"
#include "core/search_result.h"
#include "index/rdil_index.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct RdilOptions {
  Semantics semantics = Semantics::kElca;
  size_t k = 10;
  ScoringParams scoring;
};

struct RdilStats {
  uint64_t entries_read = 0;        ///< score-ordered entries popped
  uint64_t btree_probes = 0;        ///< Dewey B+-tree lookups
  uint64_t candidates_checked = 0;  ///< distinct candidate LCAs verified
  CandidateEvalStats eval;
};

/// XRank's RDIL top-K baseline (paper §II-C): pop entries from the
/// score-ordered lists round-robin; for each popped occurrence v probe the
/// other keywords' Dewey B+-trees for their occurrence closest to v; the
/// common prefix is the lowest node containing v and all keywords —
/// a candidate, verified against the ELCA/SLCA definition out of document
/// order (the expensive part the paper criticizes). Results are released
/// under the classic TA threshold max_i (s^i + Σ_{j≠i} s_m^j); the damping
/// is bounded by d(0) = 1, which is why the bound is loose and RDIL blocks
/// long (Fig. 10).
class RdilSearch {
 public:
  RdilSearch(const XmlTree& tree, const RdilIndex& index,
             RdilOptions options = {});

  /// Up to `options.k` results in descending score order.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  const RdilStats& stats() const { return stats_; }

 private:
  const XmlTree& tree_;
  const RdilIndex& index_;
  RdilOptions options_;
  RdilStats stats_;
};

}  // namespace xtopk

#endif  // XTOPK_BASELINE_RDIL_H_
