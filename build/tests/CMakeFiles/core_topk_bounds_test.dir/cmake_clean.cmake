file(REMOVE_RECURSE
  "CMakeFiles/core_topk_bounds_test.dir/core/topk_bounds_test.cc.o"
  "CMakeFiles/core_topk_bounds_test.dir/core/topk_bounds_test.cc.o.d"
  "core_topk_bounds_test"
  "core_topk_bounds_test.pdb"
  "core_topk_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_topk_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
