// Engine::Explain: the EXPLAIN/profile surface must return the same answers
// as the plain search calls, and its span tree must follow the fixed
// query -> {tokenize, term_lookup, search, materialize} shape with the
// per-level / per-column spans underneath.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/metrics.h"
#include "testing/corpus.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

constexpr const char* kFixtureXml = R"(
<bib>
  <book year="2008">
    <title>XML data management</title>
    <author>alice</author>
    <chapter>keyword search over xml data</chapter>
  </book>
  <book year="2010">
    <title>top k query processing</title>
    <author>bob</author>
    <chapter>ranked keyword search in databases</chapter>
  </book>
  <article>
    <title>supporting top k keyword search in xml databases</title>
    <author>alice</author>
    <author>bob</author>
  </article>
</bib>)";

const obs::QueryTrace::Span* FindSpan(const obs::QueryTrace& trace,
                                      const std::string& name) {
  for (const auto& span : trace.spans()) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

std::string LabelOr(const obs::QueryTrace::Span& span,
                    const std::string& name, const std::string& fallback) {
  for (const auto& [key, value] : span.labels) {
    if (key == name) return value;
  }
  return fallback;
}

TEST(ExplainTest, CompleteQueryGoldenShape) {
  XmlTree tree = ParseXmlStringOrDie(kFixtureXml);
  Engine engine(tree);

  ExplainResult explained = engine.Explain({"xml", "data"});

  // Answers match the plain search path exactly.
  std::vector<QueryHit> want = engine.Search({"xml", "data"});
  ASSERT_EQ(explained.hits.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(explained.hits[i].node, want[i].node);
    EXPECT_EQ(explained.hits[i].score, want[i].score);
  }
  EXPECT_GT(explained.join_stats.levels_processed, 0u);

  // Golden span sequence: creation order is execution order.
  const auto& spans = explained.trace.spans();
  ASSERT_GE(spans.size(), 5u);
  EXPECT_EQ(spans[0].name, "query");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[1].name, "tokenize");
  EXPECT_EQ(spans[2].name, "term_lookup");
  EXPECT_EQ(spans[3].name, "join_search");
  EXPECT_EQ(spans.back().name, "materialize");
  for (size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].name.rfind("level_", 0) == 0) {
      EXPECT_EQ(spans[i].parent, 3) << "level spans nest under join_search";
    }
  }

  const auto* root = FindSpan(explained.trace, "query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(LabelOr(*root, "semantics", ""), "elca");
  EXPECT_EQ(LabelOr(*root, "mode", ""), "complete");
  EXPECT_EQ(explained.trace.StatOr(0, "hits"),
            static_cast<double>(want.size()));

  const auto* join = FindSpan(explained.trace, "join_search");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(LabelOr(*join, "termination", ""), "complete");
  EXPECT_EQ(explained.trace.StatOr(3, "results"),
            static_cast<double>(explained.join_stats.results));
}

TEST(ExplainTest, TopKQueryHasColumnSpans) {
  XmlTree tree = ParseXmlStringOrDie(kFixtureXml);
  Engine engine(tree);

  ExplainResult explained = engine.Explain({"keyword", "search"}, 2);
  std::vector<QueryHit> want = engine.SearchTopK({"keyword", "search"}, 2);
  ASSERT_EQ(explained.hits.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(explained.hits[i].node, want[i].node);
  }

  const auto* root = FindSpan(explained.trace, "query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(LabelOr(*root, "mode", ""), "topk");
  const auto* topk = FindSpan(explained.trace, "topk_search");
  ASSERT_NE(topk, nullptr);
  EXPECT_NE(LabelOr(*topk, "termination", ""), "");

  // Every processed column shows up as a column_L<level> span with a mode
  // label (the §V-D star-join / complete-sweep decision).
  size_t columns = 0;
  for (const auto& span : explained.trace.spans()) {
    if (span.name.rfind("column_L", 0) == 0) {
      ++columns;
      std::string mode = LabelOr(span, "mode", "");
      EXPECT_TRUE(mode == "star_join" || mode == "complete_join") << mode;
    }
  }
  EXPECT_GT(columns, 0u);
}

TEST(ExplainTest, MissingTermIsLabeled) {
  XmlTree tree = ParseXmlStringOrDie(kFixtureXml);
  Engine engine(tree);
  ExplainResult explained = engine.Explain({"nosuchterm"});
  EXPECT_TRUE(explained.hits.empty());
  const auto* join = FindSpan(explained.trace, "join_search");
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(LabelOr(*join, "termination", ""), "missing_term");
}

TEST(ExplainTest, RenderAndJsonCarryTheTree) {
  XmlTree tree = ParseXmlStringOrDie(kFixtureXml);
  Engine engine(tree);
  ExplainResult explained = engine.Explain({"xml", "search"}, 3);
  std::string rendered = explained.trace.Render();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("topk_search"), std::string::npos);
  std::string json = explained.trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
}

TEST(ExplainTest, CoverageIsHighOnARealQuery) {
  // A corpus big enough that the search dominates the query wall time; the
  // span tree must account for nearly all of it (the >= 90% acceptance bar
  // is checked on the profile tool's corpus; this guards the mechanism).
  XmlTree tree = testing::MakeRandomTree(77, 4000, 4, 7,
                                         {"alpha", "beta", "gamma"}, 0.2);
  Engine engine(tree);
  ExplainResult explained = engine.Explain({"alpha", "beta"});
  EXPECT_GT(explained.trace.ChildCoverage(), 0.75);
}

TEST(ExplainTest, QueriesThroughExplainAreCountedInRegistry) {
  XmlTree tree = ParseXmlStringOrDie(kFixtureXml);
  Engine engine(tree);
  obs::Counter& queries =
      obs::MetricsRegistry::Global().GetCounter("engine.queries");
  uint64_t before = queries.value();
  engine.Explain({"xml"});
  engine.Search({"xml"});
  EXPECT_EQ(queries.value(), before + 2);
}

}  // namespace
}  // namespace xtopk
