// End-to-end tests of the network query service: the listener on an
// ephemeral port, concurrent clients over real sockets, and bit-identical
// results against direct Engine calls across the differential corpus
// configurations (the same seeded corpus family the storage differential
// suite sweeps).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "testing/corpus.h"
#include "testing/serve_client.h"

namespace xtopk {
namespace {

using serve::Client;
using serve::Priority;
using serve::QueryRequest;
using serve::QueryResponse;
using serve::RequestOp;
using serve::ResponseStatus;
using testing::ExpectHitsBitIdentical;
using testing::MakeCorpusSpec;
using testing::MakeCorpusTree;
using testing::MakeHighRepetitionSpec;
using testing::MakeRandomWorkload;
using testing::MakeSmallCorpus;
using testing::ServeHarness;

QueryRequest MakeRequest(const std::vector<std::string>& keywords, uint32_t k,
                         Semantics semantics) {
  QueryRequest request;
  request.request_id = 7;
  request.keywords = keywords;
  request.k = k;
  request.semantics = semantics;
  return request;
}

TEST(ServeEndToEnd, SmallCorpusTopK) {
  ServeHarness harness(MakeSmallCorpus());
  ASSERT_TRUE(harness.started());
  QueryRequest request =
      MakeRequest({"xml", "data"}, /*k=*/5, Semantics::kElca);
  QueryResponse response = harness.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.request_id, 7u);
  ExpectHitsBitIdentical(
      harness.engine().SearchTopK({"xml", "data"}, 5, Semantics::kElca),
      response.hits, "small corpus topk");
}

TEST(ServeEndToEnd, SmallCorpusCompleteSearch) {
  ServeHarness harness(MakeSmallCorpus());
  QueryRequest request =
      MakeRequest({"xml", "data"}, /*k=*/0, Semantics::kSlca);
  QueryResponse response = harness.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ExpectHitsBitIdentical(
      harness.engine().Search({"xml", "data"}, Semantics::kSlca),
      response.hits, "small corpus complete");
}

TEST(ServeEndToEnd, UnknownKeywordEmptyHits) {
  ServeHarness harness(MakeSmallCorpus());
  QueryResponse response =
      harness.Call(MakeRequest({"nosuchword"}, 5, Semantics::kElca));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_TRUE(response.hits.empty());
}

TEST(ServeEndToEnd, PingRoundtrip) {
  ServeHarness harness(MakeSmallCorpus());
  QueryRequest request;
  request.request_id = 42;
  request.op = RequestOp::kPing;
  QueryResponse response = harness.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.request_id, 42u);
  EXPECT_TRUE(response.hits.empty());
}

// The acceptance bar: across the differential corpus family (uniform
// random and high-repetition shapes, both semantics, varying k), served
// answers are bit-identical to in-process Engine answers.
TEST(ServeDifferential, BitIdenticalAcrossCorpusConfigs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto spec = seed % 2 == 0 ? MakeHighRepetitionSpec(seed)
                              : MakeCorpusSpec(seed);
    ServeHarness harness(MakeCorpusTree(spec));
    ASSERT_TRUE(harness.started());

    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
    uint32_t id = 0;
    for (const auto& query : MakeRandomWorkload(spec, 8)) {
      QueryRequest request = MakeRequest(
          query.keywords, static_cast<uint32_t>(query.k), query.semantics);
      request.request_id = ++id;
      QueryResponse response;
      ASSERT_TRUE(client.Call(request, &response).ok());
      ASSERT_EQ(response.status, ResponseStatus::kOk);
      EXPECT_EQ(response.request_id, id);
      ExpectHitsBitIdentical(
          harness.engine().SearchTopK(query.keywords, query.k,
                                      query.semantics),
          response.hits, "seed " + std::to_string(spec.seed));
    }
  }
}

// Many clients hammering one server concurrently: every thread keeps its
// own connection and must see exactly the answers the engine gives
// in-process, regardless of interleaving.
TEST(ServeConcurrency, ConcurrentClientsBitIdentical) {
  auto spec = MakeCorpusSpec(11);
  ServeHarness harness(MakeCorpusTree(spec));
  ASSERT_TRUE(harness.started());
  auto workload = MakeRandomWorkload(spec, 6);

  // Precompute expected answers single-threaded.
  std::vector<std::vector<QueryHit>> expected;
  for (const auto& query : workload) {
    expected.push_back(harness.engine().SearchTopK(query.keywords, query.k,
                                                   query.semantics));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", harness.port()).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < workload.size(); ++q) {
          QueryRequest request = MakeRequest(
              workload[q].keywords, static_cast<uint32_t>(workload[q].k),
              workload[q].semantics);
          request.request_id =
              static_cast<uint32_t>(t * 1000 + round * 100 + q);
          QueryResponse response;
          if (!client.Call(request, &response).ok() ||
              response.status != ResponseStatus::kOk ||
              response.request_id != request.request_id ||
              response.hits.size() != expected[q].size()) {
            failures.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < expected[q].size(); ++i) {
            if (response.hits[i].node != expected[q][i].node ||
                response.hits[i].score != expected[q][i].score) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

// One connection pipelining several requests before reading any response:
// responses come back correlated by request_id.
TEST(ServeConcurrency, PipelinedRequestsCorrelateByRequestId) {
  ServeHarness harness(MakeSmallCorpus());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());
  constexpr uint32_t kInFlight = 10;
  for (uint32_t i = 0; i < kInFlight; ++i) {
    QueryRequest request =
        MakeRequest({"xml", "data"}, 3, Semantics::kElca);
    request.request_id = 100 + i;
    ASSERT_TRUE(client.Send(request).ok());
  }
  std::vector<bool> seen(kInFlight, false);
  std::vector<QueryHit> expected =
      harness.engine().SearchTopK({"xml", "data"}, 3, Semantics::kElca);
  for (uint32_t i = 0; i < kInFlight; ++i) {
    QueryResponse response;
    ASSERT_TRUE(client.Receive(&response).ok());
    ASSERT_GE(response.request_id, 100u);
    ASSERT_LT(response.request_id, 100u + kInFlight);
    EXPECT_FALSE(seen[response.request_id - 100]);
    seen[response.request_id - 100] = true;
    EXPECT_EQ(response.status, ResponseStatus::kOk);
    ExpectHitsBitIdentical(expected, response.hits, "pipelined");
  }
}

TEST(ServeHttp, SearchReturnsJsonAndTelemetrySurfaceAnswers) {
  ServeHarness harness(MakeSmallCorpus());
  int http_status = 0;
  std::string body;
  ASSERT_TRUE(Client::HttpGet("127.0.0.1", harness.port(),
                              "/search?q=xml+data&k=3", &http_status, &body)
                  .ok());
  EXPECT_EQ(http_status, 200);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos) << body;
  EXPECT_NE(body.find("\"hits\":["), std::string::npos) << body;

  ASSERT_TRUE(Client::HttpGet("127.0.0.1", harness.port(), "/healthz",
                              &http_status, &body)
                  .ok());
  EXPECT_EQ(http_status, 200);
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(Client::HttpGet("127.0.0.1", harness.port(),
                              "/search?q=xml&bogus=1", &http_status, &body)
                  .ok());
  EXPECT_EQ(http_status, 400);
  EXPECT_NE(body.find("\"status\":\"bad_request\""), std::string::npos);
}

// The poll() fallback event loop must behave exactly like the epoll path.
TEST(ServePollFallback, QueriesAndHttpWork) {
  serve::QueryServer::Options options;
  options.force_poll = true;
  ServeHarness harness(MakeSmallCorpus(), options);
  ASSERT_TRUE(harness.started());
  QueryResponse response =
      harness.Call(MakeRequest({"xml", "data"}, 4, Semantics::kElca));
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  ExpectHitsBitIdentical(
      harness.engine().SearchTopK({"xml", "data"}, 4, Semantics::kElca),
      response.hits, "poll fallback");

  int http_status = 0;
  std::string body;
  ASSERT_TRUE(Client::HttpGet("127.0.0.1", harness.port(),
                              "/search?q=xml+data&k=2", &http_status, &body)
                  .ok());
  EXPECT_EQ(http_status, 200);
}

TEST(ServeLifecycle, StopThenRestartOnNewPort) {
  auto tree = MakeSmallCorpus();
  Engine engine(tree);
  serve::EngineBackend backend(&engine);
  auto server =
      std::make_unique<serve::QueryServer>(&backend);
  ASSERT_TRUE(server->Start());
  uint16_t old_port = server->port();
  server->Stop();

  // The port is released: a fresh server binds and serves.
  auto server2 = std::make_unique<serve::QueryServer>(&backend);
  ASSERT_TRUE(server2->Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server2->port()).ok());
  QueryRequest request = MakeRequest({"xml"}, 3, Semantics::kElca);
  QueryResponse response;
  ASSERT_TRUE(client.Call(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
  (void)old_port;
  server2->Stop();
}

}  // namespace
}  // namespace xtopk
