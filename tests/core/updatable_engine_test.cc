#include "core/updatable_engine.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/multi_doc.h"
#include "testing/corpus.h"
#include "util/rng.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(UpdatableEngineTest, InsertionsBecomeSearchable) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><paper>xml</paper></db>"));
  EXPECT_TRUE(engine.Search({"xml", "zebra"}).empty());

  NodeId paper = engine.AddElement(engine.tree().root(), "paper");
  engine.AppendText(paper, "zebra xml");
  EXPECT_TRUE(engine.dirty());
  auto hits = engine.Search({"xml", "zebra"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, paper);
  EXPECT_FALSE(engine.dirty());
  // Appends land in the memtable; the base segment is untouched.
  EXPECT_EQ(engine.rebuilds(), 0u);
  EXPECT_EQ(engine.memtable_refreshes(), 1u);
}

TEST(UpdatableEngineTest, MemtableRefreshesAreBatched) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>seed</p></db>"));
  for (int i = 0; i < 50; ++i) {
    engine.AddElement(engine.tree().root(), "p", "word" + std::to_string(i));
  }
  EXPECT_EQ(engine.memtable_refreshes(), 0u);  // no query yet, no refresh
  engine.Search({"word0"});
  engine.Search({"word1"});
  engine.Search({"word2"});
  EXPECT_EQ(engine.memtable_refreshes(), 1u);  // one refresh served all three
  EXPECT_EQ(engine.rebuilds(), 0u);            // and nothing was rebuilt
}

TEST(UpdatableEngineTest, AppendOnlyWorkloadNeverRebuilds) {
  // With a gap wide enough that the sealed root's reservation is never
  // exhausted, re-encodes only ever move memtable nodes. (Overflowing a
  // sealed node's gap legitimately rebuilds — that is the fallback path,
  // covered by AppendTextToSealedNodeRebuilds.)
  EngineOptions options;
  options.index.jdewey_gap = 64;
  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>seed</p></db>"), options);
  // Interleave appends (always under freshly added nodes or the root) with
  // queries: the sealed base never goes stale, so rebuilds() must stay 0.
  NodeId last = engine.tree().root();
  for (int i = 0; i < 40; ++i) {
    last = engine.AddElement(i % 4 == 0 ? engine.tree().root() : last, "n",
                             "tok" + std::to_string(i));
    if (i % 10 == 9) {
      EXPECT_FALSE(engine.Search({"tok" + std::to_string(i)}).empty());
    }
  }
  EXPECT_EQ(engine.rebuilds(), 0u);
  EXPECT_GT(engine.memtable_refreshes(), 0u);
  ASSERT_TRUE(engine.ValidateEncoding().ok());
}

TEST(UpdatableEngineTest, EmptyAppendTextIsNoOp) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>seed</p></db>"));
  ASSERT_FALSE(engine.Search({"seed"}).empty());
  EXPECT_FALSE(engine.dirty());
  // Regression: a no-op mutation must not dirty the index (it used to
  // force a full rebuild on the next query).
  engine.AppendText(engine.tree().root(), "");
  engine.AppendText(1, "");
  EXPECT_FALSE(engine.dirty());
  uint64_t refreshes = engine.memtable_refreshes();
  ASSERT_FALSE(engine.Search({"seed"}).empty());
  EXPECT_EQ(engine.rebuilds(), 0u);
  EXPECT_EQ(engine.memtable_refreshes(), refreshes);
}

TEST(UpdatableEngineTest, AppendTextToSealedNodeRebuilds) {
  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>seed</p></db>"));
  // Node 1 (<p>) is below the watermark: its rows live in the sealed base.
  engine.AppendText(1, "amended");
  EXPECT_TRUE(engine.dirty());
  auto hits = engine.Search({"amended"});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, 1u);
  EXPECT_EQ(engine.rebuilds(), 1u);
}

TEST(UpdatableEngineTest, EncodingMaintainedAcrossManyInserts) {
  UpdatableEngine engine(testing::MakeSmallCorpus());
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    NodeId parent =
        static_cast<NodeId>(rng.NextBounded(engine.tree().node_count()));
    if (engine.tree().level(parent) >= 8) continue;
    engine.AddElement(parent, "n", rng.NextBernoulli(0.3) ? "xml" : "data");
  }
  ASSERT_TRUE(engine.ValidateEncoding().ok());
  EXPECT_GT(engine.encoding_updates(), 0u);
  // Queries over the mutated tree still work end to end.
  auto hits = engine.Search({"xml", "data"});
  EXPECT_FALSE(hits.empty());
  auto topk = engine.SearchTopK({"xml", "data"}, 3);
  ASSERT_LE(topk.size(), 3u);
  for (size_t i = 0; i < topk.size(); ++i) {
    EXPECT_NEAR(topk[i].score, hits[i].score, 1e-9);
  }
}

TEST(UpdatableEngineTest, CheapInsertsUseReservedGaps) {
  EngineOptions options;
  options.index.jdewey_gap = 8;
  UpdatableEngine engine(ParseXmlStringOrDie("<db><a>x</a><b>y</b></db>"),
                         options);
  // Up to the gap, each insert changes exactly one number.
  uint64_t before = engine.encoding_updates();
  for (int i = 0; i < 8; ++i) {
    engine.AddElement(engine.tree().root(), "c");
  }
  EXPECT_EQ(engine.encoding_updates() - before, 8u);
}

TEST(UpdatableEngineTest, AddDocumentMatchesMultiDocCorpus) {
  const char* docs[] = {
      "<paper><title>xml keyword search</title><author>ann</author></paper>",
      "<paper><title>top k ranking</title><author>bo</author></paper>",
      "<book><title>xml databases</title></book>",
  };
  MultiDocCorpus corpus;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(corpus.AddDocumentXml("d" + std::to_string(i), docs[i]).ok());
  }
  Engine monolithic(corpus.tree());

  XmlTree shell;
  shell.CreateRoot("collection");
  UpdatableEngine incremental(std::move(shell));
  for (int i = 0; i < 3; ++i) {
    incremental.AddDocument("d" + std::to_string(i),
                            ParseXmlStringOrDie(docs[i]));
  }

  for (const auto& query : std::vector<std::vector<std::string>>{
           {"xml"}, {"xml", "title"}, {"title", "author"}, {"k", "top"}}) {
    auto want = monolithic.Search(query);
    auto got = incremental.Search(query);
    ASSERT_EQ(got.size(), want.size()) << query[0];
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].level, want[i].level);
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
    }
  }
  EXPECT_EQ(incremental.rebuilds(), 0u);
  EXPECT_EQ(incremental.memtable_docs(), 3u);
}

TEST(UpdatableEngineTest, SealAndCompactPreserveResults) {
  std::string seg1 = TempPath("upd_seal1.seg");
  std::string seg2 = TempPath("upd_seal2.seg");
  std::string compacted = TempPath("upd_compacted.seg");

  UpdatableEngine engine(ParseXmlStringOrDie("<db><p>xml data</p></db>"));
  engine.AddElement(engine.tree().root(), "p", "xml keyword");
  auto before = engine.Search({"xml"});
  ASSERT_FALSE(before.empty());

  ASSERT_TRUE(engine.SealMemtable(seg1).ok());
  EXPECT_EQ(engine.memtable_docs(), 0u);
  auto after_seal = engine.Search({"xml"});
  ASSERT_EQ(after_seal.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(after_seal[i].node, before[i].node);
    EXPECT_DOUBLE_EQ(after_seal[i].score, before[i].score);
  }

  engine.AddElement(engine.tree().root(), "p", "xml ranking");
  ASSERT_TRUE(engine.SealMemtable(seg2).ok());
  EXPECT_GE(engine.segment_count(), 3u);  // base + two sealed

  auto pre_compact = engine.Search({"xml"});
  ASSERT_TRUE(engine.Compact(compacted).ok());
  EXPECT_EQ(engine.segment_count(), 1u);
  auto post_compact = engine.Search({"xml"});
  ASSERT_EQ(post_compact.size(), pre_compact.size());
  for (size_t i = 0; i < pre_compact.size(); ++i) {
    EXPECT_EQ(post_compact[i].node, pre_compact[i].node);
    EXPECT_DOUBLE_EQ(post_compact[i].score, pre_compact[i].score);
  }
  EXPECT_EQ(engine.rebuilds(), 0u);

  std::remove(seg1.c_str());
  std::remove((seg1 + ".manifest").c_str());
  std::remove(seg2.c_str());
  std::remove((seg2 + ".manifest").c_str());
  std::remove(compacted.c_str());
  std::remove((compacted + ".manifest").c_str());
}

}  // namespace
}  // namespace xtopk
