#include "obs/windowed.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace xtopk {
namespace obs {
namespace {

constexpr uint64_t kSlotUs = WindowedHistogram::kDefaultSlotWidthUs;
constexpr uint64_t k10s = WindowedHistogram::kWindow10sUs;
constexpr uint64_t k60s = WindowedHistogram::kWindow60sUs;

TEST(WindowedHistogramTest, EmptyWindowReportsSentinelPercentiles) {
  WindowedHistogram histogram;
  auto window = histogram.WindowAt(k10s, /*now_us=*/kSlotUs * 100);
  EXPECT_EQ(window.count, 0u);
  EXPECT_EQ(window.p50, kEmptyPercentile);
  EXPECT_EQ(window.p99, kEmptyPercentile);
  EXPECT_EQ(window.p999, kEmptyPercentile);
  EXPECT_EQ(window.rate_per_sec, 0.0);
}

TEST(WindowedHistogramTest, RecordsLandInTheCurrentWindow) {
  WindowedHistogram histogram;
  uint64_t now = kSlotUs * 10;
  for (uint64_t v = 1; v <= 100; ++v) histogram.RecordAt(v, now);
  auto window = histogram.WindowAt(k10s, now);
  EXPECT_EQ(window.count, 100u);
  EXPECT_EQ(window.sum, 5050u);
  EXPECT_GT(window.p50, 0.0);
  EXPECT_GE(window.p99, window.p50);
  // 100 samples over a 10s window.
  EXPECT_DOUBLE_EQ(window.rate_per_sec, 10.0);
  EXPECT_DOUBLE_EQ(window.mean, 50.5);
}

TEST(WindowedHistogramTest, OldSamplesExpireFromTheWindow) {
  WindowedHistogram histogram;
  histogram.RecordAt(5, kSlotUs * 10);
  // Same ring slot would be reused 16 slots later; before that, advancing
  // past the window must already hide the sample.
  EXPECT_EQ(histogram.WindowAt(k10s, kSlotUs * 10).count, 1u);
  EXPECT_EQ(histogram.WindowAt(k10s, kSlotUs * 13).count, 0u);
  // The 60s window still covers it (12 slots).
  EXPECT_EQ(histogram.WindowAt(k60s, kSlotUs * 13).count, 1u);
  EXPECT_EQ(histogram.WindowAt(k60s, kSlotUs * 30).count, 0u);
}

TEST(WindowedHistogramTest, SlotRotationReclaimsLappedSlots) {
  WindowedHistogram histogram;
  histogram.RecordAt(7, kSlotUs * 2);
  // 16 slots later the same slot is reused for a new epoch; the old count
  // must not leak into the new window.
  uint64_t later = kSlotUs * (2 + WindowedHistogram::kSlots);
  histogram.RecordAt(9, later);
  auto window = histogram.WindowAt(k10s, later);
  EXPECT_EQ(window.count, 1u);
  EXPECT_EQ(window.sum, 9u);
}

TEST(WindowedHistogramTest, StaleWriterNeverRotatesBackwards) {
  WindowedHistogram histogram;
  uint64_t later = kSlotUs * (3 + WindowedHistogram::kSlots);
  histogram.RecordAt(11, later);
  // A straggler carrying the lapped epoch for the same slot must not wipe
  // the newer slot; its sample lands there (bounded error by design).
  histogram.RecordAt(100, kSlotUs * 3);
  auto window = histogram.WindowAt(k10s, later);
  EXPECT_EQ(window.count, 2u);
  EXPECT_EQ(window.sum, 111u);
}

TEST(WindowedHistogramTest, SnapshotIsIsolatedAcrossRotation) {
  WindowedHistogram histogram;
  uint64_t now = kSlotUs * 5;
  for (int i = 0; i < 50; ++i) histogram.RecordAt(10, now);
  auto before = histogram.WindowAt(k10s, now);
  // Lap the ring: every slot the snapshot summed gets rotated and reused.
  for (size_t s = 0; s <= WindowedHistogram::kSlots; ++s) {
    histogram.RecordAt(9999, now + kSlotUs * (s + 1));
  }
  // The snapshot took plain-integer copies; later rotations cannot reach it.
  EXPECT_EQ(before.count, 50u);
  EXPECT_EQ(before.sum, 500u);
}

TEST(WindowedHistogramTest, EightThreadsSumExactlyWithoutRotation) {
  // All writers share one fixed timestamp, so no rotation happens and the
  // count must be exact (the lock-free fast path is just atomic adds).
  WindowedHistogram histogram;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  constexpr uint64_t kNow = kSlotUs * 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.RecordAt(static_cast<uint64_t>(t) * 100 + (i % 13), kNow);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  auto window = histogram.WindowAt(k10s, kNow);
  EXPECT_EQ(window.count, kThreads * kPerThread);
}

TEST(WindowedHistogramTest, ConcurrentRotationKeepsCountsSane) {
  // Writers race across slot boundaries; rotation races may misplace a
  // bounded number of samples but must never corrupt counts beyond the
  // total written or crash.
  WindowedHistogram histogram(/*slot_width_us=*/100);
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        histogram.RecordAt(i % 50, i);  // epoch advances every 100 ticks
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // now = last timestamp; a 100*16-wide ring at width 100 means the window
  // covering everything is 5000 ticks wide at most kSlots slots.
  auto window = histogram.WindowAt(/*window_us=*/1500, kPerThread - 1);
  EXPECT_LE(window.count, kThreads * kPerThread);
}

TEST(WindowedHistogramTest, WallClockRecordIsVisibleInWindow) {
  WindowedHistogram& histogram =
      MetricsRegistry::Global().GetWindowedHistogram("test.windowed.wall");
  histogram.Record(42);
  auto window = histogram.Window(k10s);
  EXPECT_GE(window.count, 1u);
}

TEST(WindowedCounterTest, SumsAndRatesPerWindow) {
  WindowedCounter counter;
  counter.AddAt(3, kSlotUs * 10);
  counter.AddAt(4, kSlotUs * 11);
  EXPECT_EQ(counter.SumInWindowAt(k10s, kSlotUs * 11), 7u);
  EXPECT_DOUBLE_EQ(counter.RateInWindowAt(k10s, kSlotUs * 11), 0.7);
  // First add expires out of the 10s window two slots later.
  EXPECT_EQ(counter.SumInWindowAt(k10s, kSlotUs * 13), 4u);
  EXPECT_EQ(counter.SumInWindowAt(k60s, kSlotUs * 13), 7u);
}

TEST(WindowedCounterTest, LappedSlotIsReclaimed) {
  WindowedCounter counter;
  counter.AddAt(100, kSlotUs * 1);
  uint64_t later = kSlotUs * (1 + WindowedCounter::kSlots);
  counter.AddAt(1, later);
  EXPECT_EQ(counter.SumInWindowAt(k10s, later), 1u);
}

TEST(WindowedRegistryTest, SnapshotCarriesWindowedMetrics) {
  MetricsRegistry::Global()
      .GetWindowedHistogram("test.windowed.snap_hist")
      .Record(5);
  MetricsRegistry::Global().GetWindowedCounter("test.windowed.snap_ctr").Add(2);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  bool saw_histogram = false, saw_counter = false;
  for (const auto& w : snapshot.windowed_histograms) {
    if (w.name == "test.windowed.snap_hist") {
      saw_histogram = true;
      EXPECT_GE(w.w60s.count, 1u);
    }
  }
  for (const auto& w : snapshot.windowed_counters) {
    if (w.name == "test.windowed.snap_ctr") {
      saw_counter = true;
      EXPECT_GE(w.sum_60s, 2u);
    }
  }
  EXPECT_TRUE(saw_histogram);
  EXPECT_TRUE(saw_counter);
  // Both serializations include the windows section.
  EXPECT_NE(snapshot.ToJson().find("\"windows\""), std::string::npos);
  EXPECT_NE(snapshot.ToPrometheusText().find("_w60s_p99"), std::string::npos);
}

TEST(WindowedJsonTest, IdleWindowSerializesNullPercentilesNotSentinel) {
  WindowedHistogram histogram;
  auto window = histogram.WindowAt(k10s, kSlotUs * 100);
  ASSERT_EQ(window.count, 0u);
  std::string json;
  window.AppendJson(&json);
  // The -1 sentinel is an in-process convention; on the wire an idle
  // window's percentiles are null, never a negative "latency".
  EXPECT_NE(json.find("\"p50\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p999\":null"), std::string::npos) << json;
  EXPECT_EQ(json.find("-1"), std::string::npos) << json;

  // With samples, real numbers come back.
  histogram.RecordAt(100, kSlotUs * 100);
  auto active = histogram.WindowAt(k10s, kSlotUs * 100);
  std::string active_json;
  active.AppendJson(&active_json);
  EXPECT_EQ(active_json.find("null"), std::string::npos) << active_json;
  EXPECT_NE(active_json.find("\"p50\":"), std::string::npos);
}

TEST(WindowedJsonTest, RegistrySnapshotNeverLeaksSentinelForIdleWindows) {
  // Registered but never recorded: both windows are idle at snapshot time.
  MetricsRegistry::Global().GetWindowedHistogram("test.windowed.idle");
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();

  std::string json = snapshot.ToJson();
  size_t at = json.find("\"test.windowed.idle\"");
  ASSERT_NE(at, std::string::npos);
  // Both window objects of this metric serialize null percentiles.
  std::string entry = json.substr(at, 220);
  EXPECT_NE(entry.find("\"p50\":null"), std::string::npos) << entry;
  EXPECT_EQ(entry.find("-1.0000"), std::string::npos) << entry;

  // Prometheus has no null: idle-window percentile gauges are omitted
  // entirely, while the rate gauges (a true 0) stay — the telemetry smoke
  // checks key on their presence.
  std::string prom = snapshot.ToPrometheusText();
  EXPECT_EQ(prom.find("test_windowed_idle_w10s_p50"), std::string::npos);
  EXPECT_EQ(prom.find("test_windowed_idle_w60s_p999"), std::string::npos);
  EXPECT_NE(prom.find("test_windowed_idle_w10s_rate"), std::string::npos);
  EXPECT_NE(prom.find("test_windowed_idle_w60s_rate"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
