// Quickstart: parse an XML document, build the engine, and run keyword
// queries under both semantics — the five-minute tour of the public API.
//
//   ./quickstart            # uses the built-in bibliography document
//   ./quickstart file.xml   # or your own document

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine.h"
#include "xml/xml_parser.h"

namespace {

constexpr const char* kDemoXml = R"(
<bib>
  <book year="2008">
    <title>XML data management</title>
    <author>alice</author>
    <chapter>keyword search over xml data</chapter>
  </book>
  <book year="2010">
    <title>top k query processing</title>
    <author>bob</author>
    <chapter>ranked keyword search in databases</chapter>
  </book>
  <article>
    <title>supporting top k keyword search in xml databases</title>
    <author>alice</author>
    <author>bob</author>
  </article>
</bib>)";

void PrintHits(const char* heading,
               const std::vector<xtopk::QueryHit>& hits) {
  std::printf("%s (%zu hits)\n", heading, hits.size());
  for (const auto& hit : hits) {
    std::printf("  <%s> at level %u, score %.4f", hit.tag.c_str(), hit.level,
                hit.score);
    if (!hit.snippet.empty()) {
      std::printf("  \"%.60s\"", hit.snippet.c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  xtopk::XmlTree tree;
  if (argc > 1) {
    auto parsed = xtopk::ParseXmlFile(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    tree = std::move(parsed).value();
  } else {
    tree = xtopk::ParseXmlStringOrDie(kDemoXml);
  }
  std::printf("document: %zu elements, depth %u\n\n", tree.node_count(),
              tree.max_level());

  xtopk::Engine engine(tree);

  const std::vector<std::string> query = {"keyword", "search"};
  std::printf("query: {keyword, search}\n");
  std::printf("  frequency(keyword) = %u, frequency(search) = %u\n\n",
              engine.Frequency("keyword"), engine.Frequency("search"));

  PrintHits("ELCA, complete result set",
            engine.Search(query, xtopk::Semantics::kElca));
  std::printf("\n");
  PrintHits("SLCA, complete result set",
            engine.Search(query, xtopk::Semantics::kSlca));
  std::printf("\n");
  PrintHits("ELCA, top-2 via the join-based top-K algorithm",
            engine.SearchTopK(query, 2));
  return 0;
}
