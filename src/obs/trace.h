#ifndef XTOPK_OBS_TRACE_H_
#define XTOPK_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace xtopk {
namespace obs {

/// A per-query tree of timed spans with span-local counters and labels —
/// the substrate of Engine::Explain and the per-query half of the
/// observability layer (the process-wide half is the MetricsRegistry).
///
/// Spans nest by call order: OpenSpan parents the new span under the
/// innermost still-open span. Stats are numeric and deterministic (rows
/// scanned, candidates, threshold values); durations are wall-clock and are
/// excluded from determinism comparisons.
///
/// Tracing is opt-in and carried as a `QueryTrace*` that is null when
/// disabled; every instrumentation site is guarded, so a disabled query
/// performs zero tracing work and zero allocations (pinned by tests via the
/// obs.spans_opened registry counter).
class QueryTrace {
 public:
  struct Span {
    std::string name;
    int parent = -1;  ///< index into spans(); -1 = root
    double start_us = 0.0;
    double duration_us = 0.0;
    bool open = true;
    /// Deterministic numeric counters, insertion-ordered.
    std::vector<std::pair<std::string, double>> stats;
    /// String annotations (mode=star_join, termination=k_reached, ...).
    std::vector<std::pair<std::string, std::string>> labels;
  };

  QueryTrace() = default;

  /// Starts a span under the innermost open span; returns its id.
  int OpenSpan(std::string_view name);
  /// Ends span `id`, fixing its duration. Spans close innermost-first.
  void CloseSpan(int id);

  /// Adds `delta` to stat `name` of span `id` (created at 0 on first use).
  void AddStat(int id, std::string_view name, double delta);
  /// Sets label `name` of span `id`.
  void SetLabel(int id, std::string_view name, std::string value);

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// Duration of the first root span (the whole query), 0 if none closed.
  double total_us() const;
  /// Sum of stat `name` over all spans (0 when absent) — the unified
  /// per-query counter view.
  double StatTotal(std::string_view name) const;
  /// Value of stat `name` on span `id`, or `fallback` when absent.
  double StatOr(int id, std::string_view name, double fallback = 0.0) const;

  /// Fraction of the root span's duration covered by its direct children
  /// (the EXPLAIN coverage figure); 0 when there is no closed root span.
  double ChildCoverage() const;

  /// Human-readable tree: one line per span with duration, labels, stats.
  std::string Render() const;
  /// Nested JSON: {"name":...,"duration_us":...,"stats":{...},
  /// "labels":{...},"children":[...]}.
  std::string ToJson() const;

 private:
  void AppendSpanJson(int id, const std::vector<std::vector<int>>& children,
                      std::string* out) const;

  std::vector<Span> spans_;
  std::vector<int> open_stack_;
  Timer epoch_;
};

/// RAII span guard: no-op (and allocation-free) when `trace` is null.
///
///   obs::ScopedSpan span(trace, "term_lookup");   // trace may be null
///   ...
///   span.Stat("rows", rows);
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, std::string_view name)
      : trace_(trace), id_(trace != nullptr ? trace->OpenSpan(name) : -1) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { Close(); }

  /// Ends the span early (idempotent).
  void Close() {
    if (trace_ != nullptr) {
      trace_->CloseSpan(id_);
      trace_ = nullptr;
    }
  }

  void Stat(std::string_view name, double delta) {
    if (trace_ != nullptr) trace_->AddStat(id_, name, delta);
  }
  void Label(std::string_view name, std::string value) {
    if (trace_ != nullptr) trace_->SetLabel(id_, name, std::move(value));
  }

  bool enabled() const { return trace_ != nullptr; }
  QueryTrace* trace() const { return trace_; }
  int id() const { return id_; }

 private:
  QueryTrace* trace_;
  int id_;
};

}  // namespace obs
}  // namespace xtopk

#endif  // XTOPK_OBS_TRACE_H_
