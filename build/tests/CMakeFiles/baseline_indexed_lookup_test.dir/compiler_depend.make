# Empty compiler generated dependencies file for baseline_indexed_lookup_test.
# This may be replaced when dependencies are built.
