#include "baseline/stack_search.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace xtopk {
namespace {

/// One stack frame = one component of the current Dewey path.
struct Frame {
  NodeId node = kInvalidNode;
  /// Per keyword: best damped score of a (non-consumed, for ELCA)
  /// occurrence in the part of the subtree seen so far; < 0 means absent.
  std::vector<double> best;
  /// SLCA only: some strict descendant contained all keywords.
  bool descendant_matched = false;

  explicit Frame(size_t k) : best(k, -1.0) {}

  bool ContainsAll() const {
    for (double b : best) {
      if (b < 0.0) return false;
    }
    return true;
  }
};

}  // namespace

StackSearch::StackSearch(const XmlTree& tree, const DeweyIndex& index,
                         StackSearchOptions options)
    : tree_(tree), index_(index), options_(options) {}

std::vector<SearchResult> StackSearch::Search(
    const std::vector<std::string>& keywords) {
  stats_ = StackSearchStats{};
  std::vector<SearchResult> results;
  const size_t k = keywords.size();
  if (k == 0) return results;

  std::vector<const DeweyList*> lists;
  for (const std::string& kw : keywords) {
    const DeweyList* list = index_.GetList(kw);
    if (list == nullptr || list->num_rows() == 0) return results;
    lists.push_back(list);
  }

  // K-way merge of the Dewey lists in document order.
  struct Cursor {
    size_t list = 0;
    uint32_t row = 0;
  };
  auto cursor_greater = [&](const Cursor& a, const Cursor& b) {
    int cmp = lists[a.list]->deweys[a.row].Compare(lists[b.list]->deweys[b.row]);
    if (cmp != 0) return cmp > 0;
    return a.list > b.list;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cursor_greater)>
      merge(cursor_greater);
  for (size_t i = 0; i < k; ++i) merge.push(Cursor{i, 0});

  const double lambda = options_.scoring.damping_base;
  std::vector<Frame> stack;
  // The Dewey path of the current stack (stack[i] <-> path component i).
  DeweyId stack_path;

  // Pops the deepest frame, deciding answers and propagating state.
  auto pop_frame = [&]() {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    bool all = frame.ContainsAll();
    Frame* parent = stack.empty() ? nullptr : &stack.back();

    if (options_.semantics == Semantics::kElca) {
      if (all) {
        double score = 0.0;
        if (options_.compute_scores) {
          for (double b : frame.best) score += b;
        }
        results.push_back(
            SearchResult{frame.node, tree_.level(frame.node), score});
        // Consumed: nothing propagates past an ELCA.
      } else if (parent != nullptr) {
        for (size_t i = 0; i < k; ++i) {
          if (frame.best[i] >= 0.0) {
            parent->best[i] =
                std::max(parent->best[i], frame.best[i] * lambda);
          }
        }
      }
    } else {  // SLCA
      if (all && !frame.descendant_matched) {
        double score = 0.0;
        if (options_.compute_scores) {
          for (double b : frame.best) score += b;
        }
        results.push_back(
            SearchResult{frame.node, tree_.level(frame.node), score});
      }
      if (parent != nullptr) {
        parent->descendant_matched |= all || frame.descendant_matched;
        for (size_t i = 0; i < k; ++i) {
          if (frame.best[i] >= 0.0) {
            parent->best[i] =
                std::max(parent->best[i], frame.best[i] * lambda);
          }
        }
      }
    }
  };

  while (!merge.empty()) {
    Cursor cur = merge.top();
    merge.pop();
    const DeweyList& list = *lists[cur.list];
    const DeweyId& dewey = list.deweys[cur.row];
    ++stats_.ids_scanned;

    // Align the stack with this id: pop below the common prefix, push the
    // remainder.
    size_t lcp = stack_path.CommonPrefixLength(dewey);
    while (stack.size() > lcp) pop_frame();
    if (stack.size() < dewey.length()) {
      std::vector<NodeId> path = tree_.PathTo(list.nodes[cur.row]);
      assert(path.size() == dewey.length());
      for (size_t depth = stack.size(); depth < dewey.length(); ++depth) {
        Frame frame(k);
        frame.node = path[depth];
        stack.push_back(std::move(frame));
        ++stats_.frames_pushed;
      }
    }
    stack_path = dewey;

    Frame& top = stack.back();
    assert(top.node == list.nodes[cur.row]);
    top.best[cur.list] =
        std::max(top.best[cur.list],
                 static_cast<double>(list.scores[cur.row]));

    if (cur.row + 1 < list.num_rows()) {
      merge.push(Cursor{cur.list, cur.row + 1});
    }
  }
  while (!stack.empty()) pop_frame();

  return results;
}

}  // namespace xtopk
