// QueryTrace / ScopedSpan: span nesting must follow call order, stats and
// labels must attach to the right span, and a null trace must cost nothing
// (pinned by the obs.spans_opened registry counter).

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xtopk {
namespace obs {
namespace {

TEST(TraceTest, SpansNestByCallOrder) {
  QueryTrace trace;
  int root = trace.OpenSpan("query");
  int child = trace.OpenSpan("tokenize");
  trace.CloseSpan(child);
  int second = trace.OpenSpan("join");
  int grandchild = trace.OpenSpan("level_3");
  trace.CloseSpan(grandchild);
  trace.CloseSpan(second);
  trace.CloseSpan(root);

  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_EQ(trace.spans()[root].parent, -1);
  EXPECT_EQ(trace.spans()[child].parent, root);
  EXPECT_EQ(trace.spans()[second].parent, root);
  EXPECT_EQ(trace.spans()[grandchild].parent, second);
  for (const auto& span : trace.spans()) {
    EXPECT_FALSE(span.open);
    EXPECT_GE(span.duration_us, 0.0);
  }
}

TEST(TraceTest, DisabledTracingOpensNoSpans) {
  Counter& opened =
      MetricsRegistry::Global().GetCounter("obs.spans_opened");
  uint64_t before = opened.value();
  {
    // The exact pattern instrumented code uses: null trace, RAII guard.
    ScopedSpan span(nullptr, "query");
    span.Stat("rows", 123);
    span.Label("mode", "star_join");
    EXPECT_FALSE(span.enabled());
    ScopedSpan child(nullptr, "level_1");
    child.Stat("candidates", 7);
  }
  EXPECT_EQ(opened.value(), before);  // zero spans -> zero tracing work
}

TEST(TraceTest, ScopedSpanRecordsOnRealTrace) {
  QueryTrace trace;
  {
    ScopedSpan root(&trace, "query");
    root.Stat("k", 10);
    {
      ScopedSpan level(&trace, "level_2");
      level.Stat("candidates", 5);
      level.Stat("candidates", 3);  // accumulates
      level.Label("mode", "complete_join");
    }
  }
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.StatOr(0, "k"), 10.0);
  EXPECT_EQ(trace.StatOr(1, "candidates"), 8.0);
  EXPECT_EQ(trace.spans()[1].labels[0].second, "complete_join");
  EXPECT_EQ(trace.StatTotal("candidates"), 8.0);
  EXPECT_GT(trace.total_us(), 0.0);
}

TEST(TraceTest, CloseIsIdempotentAndEarlyCloseWorks) {
  QueryTrace trace;
  ScopedSpan span(&trace, "query");
  span.Close();
  span.Close();  // no-op
  EXPECT_FALSE(span.enabled());
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_FALSE(trace.spans()[0].open);
}

TEST(TraceTest, OutOfOrderCloseClosesAbandonedChildren) {
  QueryTrace trace;
  int root = trace.OpenSpan("query");
  trace.OpenSpan("child");  // never closed explicitly
  trace.CloseSpan(root);
  for (const auto& span : trace.spans()) EXPECT_FALSE(span.open);
}

TEST(TraceTest, ChildCoverageReflectsChildDurations) {
  QueryTrace trace;
  int root = trace.OpenSpan("query");
  int child = trace.OpenSpan("work");
  // Burn a little time inside the child so it dominates the root.
  volatile double sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + i * 0.5;
  trace.CloseSpan(child);
  trace.CloseSpan(root);
  EXPECT_GT(trace.ChildCoverage(), 0.5);
  EXPECT_LE(trace.ChildCoverage(), 1.0);
}

TEST(TraceTest, RenderAndJson) {
  QueryTrace trace;
  {
    ScopedSpan root(&trace, "query");
    root.Label("semantics", "elca");
    {
      ScopedSpan child(&trace, "level_1");
      child.Stat("results", 2);
    }
  }
  std::string rendered = trace.Render();
  EXPECT_NE(rendered.find("query"), std::string::npos);
  EXPECT_NE(rendered.find("└─ level_1"), std::string::npos);
  EXPECT_NE(rendered.find("[semantics=elca]"), std::string::npos);
  EXPECT_NE(rendered.find("results=2"), std::string::npos);

  std::string json = trace.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":[{\"name\":\"level_1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"results\":2.0000"), std::string::npos);
}

TEST(TraceTest, EmptyTrace) {
  QueryTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.total_us(), 0.0);
  EXPECT_EQ(trace.ChildCoverage(), 0.0);
  EXPECT_EQ(trace.ToJson(), "[]");
  EXPECT_EQ(trace.Render(), "");
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
