#include "index/segment_view.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "core/scoring.h"
#include "index/index_access.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"

namespace xtopk {

namespace {

/// The lookup form of a manifest.
std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> StatsOf(
    const SegmentManifest& manifest) {
  std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> stats;
  stats.reserve(manifest.terms.size());
  for (const SegmentTermStats& t : manifest.terms) {
    stats.emplace(t.term, std::make_pair(t.rows, t.max_tf));
  }
  return stats;
}

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

}  // namespace

std::shared_ptr<const SealedSegment> SealedSegment::FromMemory(
    JDeweyIndex segment, uint64_t covered_nodes) {
  auto sealed = std::shared_ptr<SealedSegment>(new SealedSegment());
  sealed->manifest_ = ManifestFromSegment(segment);
  sealed->manifest_.covered_nodes = covered_nodes;
  sealed->stats_ = StatsOf(sealed->manifest_);
  sealed->memory_ =
      std::make_unique<const JDeweyIndex>(std::move(segment));
  return sealed;
}

StatusOr<std::shared_ptr<const SealedSegment>> SealedSegment::FromDisk(
    const std::string& path, DiskIndexOptions options, uint64_t id) {
  StatusOr<SegmentManifest> manifest =
      SegmentManifest::Load(path + ".manifest");
  if (!manifest.ok()) return manifest.status();
  StatusOr<std::shared_ptr<DiskIndexEnv>> env =
      DiskIndexEnv::Open(path, options);
  if (!env.ok()) return env.status();
  auto sealed = std::shared_ptr<SealedSegment>(new SealedSegment());
  sealed->env_ = *env;
  sealed->manifest_ = std::move(*manifest);
  sealed->stats_ = StatsOf(sealed->manifest_);
  sealed->id_ = id;
  sealed->path_ = path;
  sealed->data_bytes_ = FileBytes(path);
  return std::shared_ptr<const SealedSegment>(std::move(sealed));
}

SealedSegment::~SealedSegment() {
  // Epoch reclamation: we are here because the last version referencing
  // this segment died, so no query can still be reading the file.
  if (superseded() && !path_.empty()) {
    env_.reset();  // close before unlink (harmless on POSIX, tidy anyway)
    std::remove(path_.c_str());
    std::remove((path_ + ".manifest").c_str());
  }
}

uint32_t SealedSegment::MaxLengthOf(const std::string& term) const {
  if (memory_ != nullptr) {
    const JDeweyList* list = memory_->GetList(term);
    return list != nullptr ? list->max_length : 0;
  }
  return env_->MaxLength(term);
}

NodeId SealedSegment::NodeAt(uint32_t level, uint32_t value) const {
  return memory_ != nullptr ? memory_->NodeAt(level, value)
                            : env_->NodeAt(level, value);
}

uint32_t SealedSegment::max_level() const {
  return memory_ != nullptr ? memory_->max_level() : env_->max_level();
}

SegmentSetVersion::SegmentSetVersion(
    uint64_t version, std::vector<std::shared_ptr<const SealedSegment>> sealed,
    std::shared_ptr<const JDeweyIndex> memtable, uint64_t corpus_nodes)
    : version_(version),
      sealed_(std::move(sealed)),
      memtable_(std::move(memtable)),
      corpus_nodes_(corpus_nodes) {
  XTOPK_GAUGE("index.segment_versions_live").Add(1);
}

SegmentSetVersion::~SegmentSetVersion() {
  XTOPK_GAUGE("index.segment_versions_live").Add(-1);
}

uint32_t SegmentSetVersion::Frequency(const std::string& term) const {
  uint64_t total = 0;
  for (const auto& seg : sealed_) {
    auto it = seg->stats().find(term);
    if (it != seg->stats().end()) total += it->second.first;
  }
  if (memtable_ != nullptr) total += memtable_->Frequency(term);
  return static_cast<uint32_t>(total);
}

uint32_t SegmentSetVersion::MaxLength(const std::string& term) const {
  uint32_t deepest = 0;
  for (const auto& seg : sealed_) {
    if (seg->stats().find(term) == seg->stats().end()) continue;
    deepest = std::max(deepest, seg->MaxLengthOf(term));
  }
  if (memtable_ != nullptr) {
    const JDeweyList* list = memtable_->GetList(term);
    if (list != nullptr) deepest = std::max(deepest, list->max_length);
  }
  return deepest;
}

const TermStats* SegmentSetVersion::Stats(const std::string& term) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cached = stats_cache_.find(term);
  if (cached != stats_cache_.end()) {
    return cached->second.rows == 0 ? nullptr : &cached->second;
  }

  TermStats merged;
  for (const auto& seg : sealed_) {
    // Manifests are sorted by term.
    const auto& terms = seg->manifest().terms;
    auto it = std::lower_bound(
        terms.begin(), terms.end(), term,
        [](const SegmentTermStats& a, const std::string& t) {
          return a.term < t;
        });
    if (it == terms.end() || it->term != term || it->rows == 0) continue;
    TermStats part;
    part.rows = it->rows;
    part.levels = it->levels;  // empty for v1 manifests -> rows only
    merged.Merge(part, kMergedStatsBuckets);
  }
  if (memtable_ != nullptr && memtable_->Frequency(term) > 0) {
    const TermStats* mt = memtable_->StatsOf(term);
    if (mt != nullptr) {
      merged.Merge(*mt, kMergedStatsBuckets);
    } else {
      TermStats part;
      part.rows = memtable_->Frequency(term);
      merged.Merge(part, kMergedStatsBuckets);
    }
  }
  auto [it, inserted] = stats_cache_.emplace(term, std::move(merged));
  (void)inserted;
  return it->second.rows == 0 ? nullptr : &it->second;
}

NodeId SegmentSetVersion::NodeAt(uint32_t level, uint32_t value) const {
  if (memtable_ != nullptr) {
    NodeId node = memtable_->NodeAt(level, value);
    if (node != kInvalidNode) return node;
  }
  for (const auto& seg : sealed_) {
    NodeId node = seg->NodeAt(level, value);
    if (node != kInvalidNode) return node;
  }
  return kInvalidNode;
}

uint32_t SegmentSetVersion::max_level() const {
  uint32_t deepest = memtable_ != nullptr ? memtable_->max_level() : 0;
  for (const auto& seg : sealed_) {
    deepest = std::max(deepest, seg->max_level());
  }
  return deepest;
}

void SegmentSetVersion::RefreshGlobalsLocked() const {
  if (globals_ready_) return;
  globals_.clear();
  for (const auto& seg : sealed_) {
    for (const SegmentTermStats& t : seg->manifest().terms) {
      TermGlobal& g = globals_[t.term];
      g.df += t.rows;
      g.max_tf = std::max(g.max_tf, t.max_tf);
    }
  }
  if (memtable_ != nullptr) {
    const auto& terms = memtable_->terms();
    const auto& lists = memtable_->lists();
    for (size_t t = 0; t < terms.size(); ++t) {
      TermGlobal& g = globals_[terms[t]];
      g.df += lists[t].num_rows();
      for (float tf : lists[t].scores) {
        g.max_tf = std::max(g.max_tf, static_cast<uint32_t>(tf));
      }
    }
  }
  // The corpus-wide normalizer: RawLocalScore is monotone in tf for a
  // fixed df, so each term's max raw score is attained at its max tf and
  // the global max is the max over terms — exactly the max a monolithic
  // build takes over every occurrence.
  max_raw_ = 0.0;
  for (const auto& [term, g] : globals_) {
    max_raw_ =
        std::max(max_raw_, RawLocalScore(g.max_tf, g.df, corpus_nodes_));
  }
  if (max_raw_ <= 0.0) max_raw_ = 1.0;
  globals_ready_ = true;
}

Status SegmentSetVersion::CollectPartsLocked(
    const std::string& term, std::vector<const JDeweyList*>* parts) const {
  if (sessions_.size() < sealed_.size()) sessions_.resize(sealed_.size());
  size_t fanout = 0;
  for (size_t i = 0; i < sealed_.size(); ++i) {
    const SealedSegment& seg = *sealed_[i];
    if (seg.stats().find(term) == seg.stats().end()) continue;
    ++fanout;
    if (seg.is_memory()) {
      const JDeweyList* list = seg.memory()->GetList(term);
      if (list != nullptr) parts->push_back(list);
    } else {
      if (sessions_[i] == nullptr) sessions_[i] = seg.env()->NewSession();
      StatusOr<const JDeweyList*> loaded =
          sessions_[i]->LoadList(term, UINT32_MAX, /*need_scores=*/true,
                                 /*level_bounds=*/nullptr);
      if (!loaded.ok()) return loaded.status();
      if (*loaded != nullptr) parts->push_back(*loaded);
    }
  }
  if (memtable_ != nullptr) {
    const JDeweyList* list = memtable_->GetList(term);
    if (list != nullptr) {
      parts->push_back(list);
      ++fanout;
    }
  }
  XTOPK_COUNTER("core.join.segment_fanout").Add(fanout);
  return Status::Ok();
}

StatusOr<const JDeweyList*> SegmentSetVersion::Resolve(
    const std::string& term) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto cached = cache_.find(term);
  if (cached != cache_.end()) return &cached->second;
  if (Frequency(term) == 0) return static_cast<const JDeweyList*>(nullptr);

  RefreshGlobalsLocked();
  std::vector<const JDeweyList*> parts;
  Status s = CollectPartsLocked(term, &parts);
  if (!s.ok()) return s;
  JDeweyList merged = MergeJDeweyParts(parts);

  // tf -> normalized tf·idf, with the corpus-global df and normalizer.
  const TermGlobal& global = globals_.at(term);
  for (uint32_t row = 0; row < merged.num_rows(); ++row) {
    uint32_t tf = static_cast<uint32_t>(merged.scores[row]);
    double raw = RawLocalScore(tf, global.df, corpus_nodes_);
    merged.scores[row] = static_cast<float>(raw / max_raw_);
  }
  // Rows that came from disk segments carry no NodeId; the (level, value)
  // mapping recovers them.
  for (uint32_t row = 0; row < merged.num_rows(); ++row) {
    if (merged.nodes[row] != kInvalidNode) continue;
    JDeweySeq seq = merged.SequenceOf(row);
    merged.nodes[row] = NodeAt(merged.lengths[row], seq.back());
  }

  auto [it, inserted] = cache_.emplace(term, std::move(merged));
  (void)inserted;
  return &it->second;
}

JDeweyList MergeJDeweyParts(const std::vector<const JDeweyList*>& parts) {
  struct RowRef {
    const JDeweyList* list = nullptr;
    uint32_t row = 0;
    JDeweySeq seq;
  };
  size_t total = 0;
  for (const JDeweyList* part : parts) total += part->num_rows();
  std::vector<RowRef> rows;
  rows.reserve(total);
  for (const JDeweyList* part : parts) {
    for (uint32_t r = 0; r < part->num_rows(); ++r) {
      rows.push_back(RowRef{part, r, part->SequenceOf(r)});
    }
  }
  // Children cover disjoint node sets, so sequences are pairwise distinct
  // and the comparison is a strict weak order.
  std::sort(rows.begin(), rows.end(), [](const RowRef& a, const RowRef& b) {
    return CompareJDewey(a.seq, b.seq) < 0;
  });

  JDeweyList merged;
  merged.lengths.resize(total);
  merged.scores.resize(total);
  merged.nodes.resize(total, kInvalidNode);
  for (uint32_t i = 0; i < total; ++i) {
    const RowRef& ref = rows[i];
    uint16_t len = ref.list->lengths[ref.row];
    merged.lengths[i] = len;
    merged.scores[i] = ref.list->scores[ref.row];
    if (ref.row < ref.list->nodes.size()) {
      merged.nodes[i] = ref.list->nodes[ref.row];  // disk lists leave these
    }
    if (len > merged.max_length) merged.max_length = len;
    if (merged.columns.size() < len) merged.columns.resize(len);
    for (uint16_t level = 1; level <= len; ++level) {
      merged.columns[level - 1].Append(i, ref.seq[level - 1]);
    }
  }
  return merged;
}

StatusOr<JDeweyIndex> BuildCompactedSegment(
    const std::vector<std::shared_ptr<const SealedSegment>>& inputs,
    uint64_t* covered_nodes) {
  // Term universe and covered-node total from the manifests alone.
  uint64_t covered = 0;
  std::vector<std::string> all_terms;
  for (const auto& seg : inputs) {
    covered += seg->manifest().covered_nodes;
    for (const SegmentTermStats& t : seg->manifest().terms) {
      all_terms.push_back(t.term);
    }
  }
  std::sort(all_terms.begin(), all_terms.end());
  all_terms.erase(std::unique(all_terms.begin(), all_terms.end()),
                  all_terms.end());

  // Private sessions: serving versions keep their own, so the merge can
  // run on the maintenance thread while queries read the same segments.
  std::vector<std::unique_ptr<DiskJDeweyIndex>> sessions(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (!inputs[i]->is_memory()) sessions[i] = inputs[i]->env()->NewSession();
  }

  JDeweyIndex merged;
  auto* term_ids = IndexIoAccess::TermIds(&merged);
  auto* terms = IndexIoAccess::Terms(&merged);
  auto* lists = IndexIoAccess::Lists(&merged);
  for (const std::string& term : all_terms) {
    std::vector<const JDeweyList*> parts;
    for (size_t i = 0; i < inputs.size(); ++i) {
      const SealedSegment& seg = *inputs[i];
      if (seg.stats().find(term) == seg.stats().end()) continue;
      if (seg.is_memory()) {
        const JDeweyList* list = seg.memory()->GetList(term);
        if (list != nullptr) parts.push_back(list);
      } else {
        StatusOr<const JDeweyList*> loaded =
            sessions[i]->LoadList(term, UINT32_MAX, /*need_scores=*/true,
                                  /*level_bounds=*/nullptr);
        if (!loaded.ok()) return loaded.status();
        if (*loaded != nullptr) parts.push_back(*loaded);
      }
    }
    term_ids->emplace(term, static_cast<uint32_t>(lists->size()));
    terms->push_back(term);
    lists->push_back(MergeJDeweyParts(parts));  // raw tf preserved
  }

  // Union of the children's (level, value) -> node mappings. Shared
  // ancestors appear in several segments with identical pairs; sort +
  // unique collapses them.
  auto* level_nodes = IndexIoAccess::LevelNodes(&merged);
  for (size_t i = 0; i < inputs.size(); ++i) {
    const SealedSegment& seg = *inputs[i];
    const auto& child = seg.is_memory()
                            ? IndexIoAccess::LevelNodes(*seg.memory())
                            : IndexIoAccess::LevelNodes(sessions[i]->view());
    if (level_nodes->size() < child.size()) level_nodes->resize(child.size());
    for (size_t l = 0; l < child.size(); ++l) {
      auto& dst = (*level_nodes)[l];
      dst.insert(dst.end(), child[l].begin(), child[l].end());
    }
  }
  for (auto& level : *level_nodes) {
    std::sort(level.begin(), level.end());
    level.erase(std::unique(level.begin(), level.end()), level.end());
  }
  *IndexIoAccess::MaxLevel(&merged) =
      static_cast<uint32_t>(level_nodes->size());

  if (covered_nodes != nullptr) *covered_nodes = covered;
  return merged;
}

}  // namespace xtopk
