# Empty dependencies file for core_integration_test.
# This may be replaced when dependencies are built.
