#ifndef XTOPK_UTIL_INTERVAL_SET_H_
#define XTOPK_UTIL_INTERVAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <map>

namespace xtopk {

/// A set of disjoint half-open uint32 intervals with merge-on-insert.
/// Backs the range-checking semantic pruning (paper §III-E): erased row
/// ranges of an inverted list are kept here; a candidate node's run is
/// checked by counting the erased rows it covers. The paper's containment
/// property (a parent's range either contains a matched child range or is
/// disjoint from it) means queries see nested/disjoint intervals only, but
/// the structure is general.
class IntervalSet {
 public:
  /// Inserts [begin, end), merging with overlapping/adjacent intervals.
  void Add(uint32_t begin, uint32_t end) {
    if (begin >= end) return;
    // Find the first interval with start > begin, then step back to a
    // potential overlapper.
    auto it = intervals_.upper_bound(begin);
    if (it != intervals_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= begin) {  // overlaps or touches
        begin = prev->first;
        end = end > prev->second ? end : prev->second;
        covered_ -= prev->second - prev->first;
        it = intervals_.erase(prev);
      }
    }
    while (it != intervals_.end() && it->first <= end) {
      end = end > it->second ? end : it->second;
      covered_ -= it->second - it->first;
      it = intervals_.erase(it);
    }
    intervals_.emplace(begin, end);
    covered_ += end - begin;
  }

  /// Number of elements of [begin, end) covered by the set.
  uint32_t CountOverlap(uint32_t begin, uint32_t end) const {
    if (begin >= end) return 0;
    uint32_t total = 0;
    auto it = intervals_.upper_bound(begin);
    if (it != intervals_.begin()) --it;
    for (; it != intervals_.end() && it->first < end; ++it) {
      uint32_t lo = it->first > begin ? it->first : begin;
      uint32_t hi = it->second < end ? it->second : end;
      if (lo < hi) total += hi - lo;
    }
    return total;
  }

  /// True iff the whole of [begin, end) is covered.
  bool Covers(uint32_t begin, uint32_t end) const {
    return CountOverlap(begin, end) == end - begin;
  }

  /// True iff `x` is in the set.
  bool Contains(uint32_t x) const { return CountOverlap(x, x + 1) == 1; }

  /// Calls fn(lo, hi) for each maximal uncovered sub-range of [begin, end).
  /// Used to take the max local score over the non-erased rows of a run.
  template <typename Fn>
  void ForEachUncovered(uint32_t begin, uint32_t end, Fn&& fn) const {
    uint32_t cursor = begin;
    auto it = intervals_.upper_bound(begin);
    if (it != intervals_.begin()) --it;
    for (; it != intervals_.end() && it->first < end; ++it) {
      if (it->second <= cursor) continue;
      if (it->first > cursor) fn(cursor, it->first < end ? it->first : end);
      cursor = it->second;
      if (cursor >= end) return;
    }
    if (cursor < end) fn(cursor, end);
  }

  /// Total number of covered elements.
  uint64_t covered() const { return covered_; }
  size_t interval_count() const { return intervals_.size(); }
  void Clear() {
    intervals_.clear();
    covered_ = 0;
  }

 private:
  std::map<uint32_t, uint32_t> intervals_;  // begin -> end
  uint64_t covered_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_UTIL_INTERVAL_SET_H_
