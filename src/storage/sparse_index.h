#ifndef XTOPK_STORAGE_SPARSE_INDEX_H_
#define XTOPK_STORAGE_SPARSE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace xtopk {

/// A sparse index over one column (paper §V: "sparse indices can be built
/// over columns to improve efficiency" of the index join). Every
/// `sample_rate`-th run contributes a (value, run index) sample; a probe
/// narrows the binary search to one sample stride. Small enough to pin in
/// memory — Table I reports it separately from the inverted lists.
class SparseIndex {
 public:
  SparseIndex() = default;

  /// Builds over `column`, sampling every `sample_rate` runs.
  static SparseIndex Build(const Column& column, uint32_t sample_rate = 64);

  /// Narrowed search window [lo, hi) of run indexes that may hold `value`.
  struct Window {
    size_t lo = 0;
    size_t hi = 0;
  };
  Window Probe(uint32_t value) const;

  size_t sample_count() const { return values_.size(); }
  uint32_t sample_rate() const { return sample_rate_; }

  /// Serialized footprint in bytes (for index-size stats).
  size_t EncodedSize() const;
  void Encode(std::string* out) const;
  static Status Decode(const std::string& data, size_t* pos, SparseIndex* out);

 private:
  std::vector<uint32_t> values_;      // sampled run values (ascending)
  std::vector<uint32_t> run_indexes_; // parallel: run index of each sample
  uint32_t sample_rate_ = 64;
  uint32_t total_runs_ = 0;
};

/// Per-block skip directory of a group-varint coded column (DESIGN.md §8).
/// Each fixed-row block contributes `(min_value, max_value, byte_len)`;
/// row offsets are implied by the block-row stride and byte offsets by a
/// prefix sum, so the serialized form is three varints per block with the
/// min delta-coded against the previous max (values are non-decreasing
/// across blocks, Property 3.1). A probe for value range [lo, hi] returns
/// the contiguous block range that can intersect it — everything outside
/// is skipped without decoding.
class BlockSkipIndex {
 public:
  BlockSkipIndex() = default;

  /// Appends the next block's metadata (blocks arrive in column order).
  void AddBlock(uint32_t min_value, uint32_t max_value, uint32_t byte_len);

  /// Contiguous block range [lo, hi) whose value ranges can intersect
  /// [lo_value, hi_value]. Monotone values make the overlap set contiguous.
  struct Range {
    size_t lo = 0;
    size_t hi = 0;
  };
  Range ProbeRange(uint32_t lo_value, uint32_t hi_value) const;

  size_t block_count() const { return min_values_.size(); }
  uint32_t min_value(size_t block) const { return min_values_[block]; }
  uint32_t max_value(size_t block) const { return max_values_[block]; }
  uint32_t byte_len(size_t block) const { return byte_lens_[block]; }
  /// Byte offset of `block`'s data relative to the data section start.
  uint64_t byte_offset(size_t block) const { return byte_offsets_[block]; }
  /// Total bytes of the data section (all blocks back to back).
  uint64_t data_bytes() const { return data_bytes_; }

  void Encode(std::string* out) const;
  static Status Decode(const std::string& data, size_t* pos,
                       BlockSkipIndex* out);

 private:
  std::vector<uint32_t> min_values_;    // non-decreasing
  std::vector<uint32_t> max_values_;    // non-decreasing
  std::vector<uint32_t> byte_lens_;
  std::vector<uint64_t> byte_offsets_;  // prefix sums of byte_lens_
  uint64_t data_bytes_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_SPARSE_INDEX_H_
