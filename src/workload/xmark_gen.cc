#include "workload/xmark_gen.h"

#include <string>

#include "util/rng.h"
#include "workload/zipf.h"

namespace xtopk {
namespace {

const char* const kRegions[] = {"africa",  "asia",   "australia",
                                "europe",  "namerica", "samerica"};

}  // namespace

XmarkCorpus GenerateXmark(const XmarkGenOptions& options) {
  XmarkCorpus corpus;
  XmlTree& tree = corpus.tree;
  Vocab vocab(options.vocab_size);
  ZipfSampler zipf(options.vocab_size, options.zipf_theta, options.seed);
  Rng rng(options.seed ^ 0xA5A5A5A55A5A5A5AULL);

  auto sample_text = [&](uint32_t words) {
    std::string text;
    for (uint32_t w = 0; w < words; ++w) {
      if (w > 0) text += ' ';
      text += vocab.word(zipf.Next());
    }
    return text;
  };
  auto add_text_node = [&](NodeId parent, const char* tag) {
    NodeId node = tree.AddChild(parent, tag);
    tree.AppendText(node, sample_text(options.words_per_text));
    corpus.text_nodes.push_back(node);
    return node;
  };

  NodeId site = tree.CreateRoot("site");

  // regions / <region> / item / {name, description/parlist/listitem/text,
  // mailbox/mail/text}: text at levels 5 and 8.
  NodeId regions = tree.AddChild(site, "regions");
  for (const char* region_name : kRegions) {
    NodeId region = tree.AddChild(regions, region_name);
    for (uint32_t i = 0; i < options.items_per_region; ++i) {
      NodeId item = tree.AddChild(region, "item");
      tree.AddAttribute(item, "id", "item" + std::to_string(i));
      add_text_node(item, "name");
      NodeId description = tree.AddChild(item, "description");
      NodeId parlist = tree.AddChild(description, "parlist");
      for (uint32_t p = 0; p < options.description_paragraphs; ++p) {
        NodeId listitem = tree.AddChild(parlist, "listitem");
        add_text_node(listitem, "text");
      }
      if (rng.NextBernoulli(0.5)) {
        NodeId mailbox = tree.AddChild(item, "mailbox");
        NodeId mail = tree.AddChild(mailbox, "mail");
        add_text_node(mail, "text");
      }
    }
  }

  // people / person / {name, address/{street, city}}: text at levels 4-5.
  NodeId people = tree.AddChild(site, "people");
  for (uint32_t i = 0; i < options.num_people; ++i) {
    NodeId person = tree.AddChild(people, "person");
    tree.AddAttribute(person, "id", "person" + std::to_string(i));
    add_text_node(person, "name");
    NodeId address = tree.AddChild(person, "address");
    add_text_node(address, "street");
    add_text_node(address, "city");
  }

  // categories / category / {name, description/text}.
  NodeId categories = tree.AddChild(site, "categories");
  for (uint32_t i = 0; i < options.num_categories; ++i) {
    NodeId category = tree.AddChild(categories, "category");
    tree.AddAttribute(category, "id", "category" + std::to_string(i));
    add_text_node(category, "name");
    NodeId description = tree.AddChild(category, "description");
    add_text_node(description, "text");
  }

  // open_auctions / open_auction / {initial, bidder/increase,
  // annotation/description/text}.
  NodeId auctions = tree.AddChild(site, "open_auctions");
  for (uint32_t i = 0; i < options.num_open_auctions; ++i) {
    NodeId auction = tree.AddChild(auctions, "open_auction");
    NodeId initial = tree.AddChild(auction, "initial");
    tree.AppendText(initial, std::to_string(rng.NextBounded(10000)));
    for (uint32_t b = 0; b < options.bidders_per_auction; ++b) {
      NodeId bidder = tree.AddChild(auction, "bidder");
      NodeId increase = tree.AddChild(bidder, "increase");
      tree.AppendText(increase, std::to_string(1 + rng.NextBounded(500)));
    }
    NodeId annotation = tree.AddChild(auction, "annotation");
    NodeId description = tree.AddChild(annotation, "description");
    add_text_node(description, "text");
  }

  PlantTerms(&tree, corpus.text_nodes, options.planted, &rng);
  return corpus;
}

}  // namespace xtopk
