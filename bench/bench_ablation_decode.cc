// Decode-kernel ablation (DESIGN.md §8): what the group-varint codec and
// its vector kernel buy over the legacy per-byte varint delta decode, and
// what block skipping saves when a query only touches a narrow value range.
//
// Sections (each emits one machine-readable BENCH line):
//   1. full-column decode: delta(scalar) vs gvb(scalar) vs gvb(simd)
//   2. bounded decode over a wide column: skip on vs off
//
// The speedup target from the PR checklist: gvb decode >= 2x the scalar
// varint baseline on distinct-heavy columns (single thread).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "storage/compression.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"
#include "util/varint.h"

namespace {

using xtopk::Column;
using xtopk::ColumnCodec;
using xtopk::Run;
using xtopk::ValueBounds;

Column MakeColumn(uint64_t seed, uint32_t rows, double dup_prob,
                  uint32_t max_jump) {
  xtopk::Rng rng(seed);
  Column col;
  uint32_t row = 0, value = 1;
  for (uint32_t i = 0; i < rows; ++i) {
    col.Append(row++, value);
    if (!rng.NextBernoulli(dup_prob)) {
      value += 1 + static_cast<uint32_t>(rng.NextBounded(max_jump));
    }
  }
  return col;
}

std::vector<uint32_t> PresentRows(const Column& col) {
  std::vector<uint32_t> rows;
  for (const Run& run : col.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) rows.push_back(run.first_row + i);
  }
  return rows;
}

/// Best-of-N decode wall time in milliseconds (hot cache, single thread).
template <typename Fn>
double BestOfMs(int n, Fn&& fn) {
  double best = 1e100;
  for (int i = 0; i < n; ++i) {
    xtopk::Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

double DecodeFullMs(const std::string& buf,
                    const std::vector<uint32_t>& rows) {
  return BestOfMs(7, [&] {
    Column out;
    size_t pos = 0;
    if (!xtopk::DecodeColumn(buf, &pos, &rows, &out).ok()) std::abort();
  });
}

}  // namespace

int main() {
  std::printf("=== Ablation: decode kernels & block skipping ===\n\n");
  constexpr uint32_t kRows = 4 * 1000 * 1000;

  // --- Raw value-decode kernels -------------------------------------
  // The same delta stream packed two ways: one varint per value (the
  // legacy layout) vs groups of four behind a control byte. Both loops
  // end with the identical prefix sum, so the difference is purely the
  // byte-parsing kernel — the number the >= 2x checklist item is about.
  {
    xtopk::Rng rng(3);
    std::vector<uint32_t> deltas(kRows);
    for (uint32_t& d : deltas) {
      d = 1 + static_cast<uint32_t>(rng.NextBounded(16));
    }
    std::string varint_buf;
    std::string gvb_raw;
    for (size_t i = 0; i < deltas.size(); i += 4) {
      size_t n = std::min<size_t>(4, deltas.size() - i);
      uint8_t ctrl = 0;
      std::string payload;
      for (size_t j = 0; j < n; ++j) {
        uint32_t v = deltas[i + j];
        uint8_t len = v < (1u << 8) ? 1 : v < (1u << 16) ? 2
                      : v < (1u << 24) ? 3 : 4;
        ctrl |= static_cast<uint8_t>((len - 1) << (2 * j));
        for (uint8_t b = 0; b < len; ++b) {
          payload.push_back(static_cast<char>((v >> (8 * b)) & 0xFF));
        }
      }
      gvb_raw.push_back(static_cast<char>(ctrl));
      gvb_raw.append(payload);
    }
    for (uint32_t d : deltas) xtopk::varint::PutU32(&varint_buf, d);

    std::vector<uint32_t> out(kRows);
    double varint_ms = BestOfMs(7, [&] {
      size_t pos = 0;
      uint32_t acc = 0;
      for (uint32_t i = 0; i < kRows; ++i) {
        uint32_t d = 0;
        if (!xtopk::varint::GetU32(varint_buf, &pos, &d).ok()) std::abort();
        acc += d;
        out[i] = acc;
      }
    });
    auto gvb_kernel_ms = [&] {
      return BestOfMs(7, [&] {
        size_t used = xtopk::simd::GvbDecodeValues(
            reinterpret_cast<const uint8_t*>(gvb_raw.data()), gvb_raw.size(),
            out.data(), kRows);
        if (used == 0) std::abort();
        uint32_t acc = 0;
        for (uint32_t i = 0; i < kRows; ++i) {
          acc += out[i];
          out[i] = acc;
        }
      });
    };
    xtopk::simd::SetGvbSimdEnabled(false);
    double kernel_scalar_ms = gvb_kernel_ms();
    xtopk::simd::SetGvbSimdEnabled(true);
    double kernel_simd_ms = gvb_kernel_ms();

    auto mv = [&](double ms) { return kRows / 1000.0 / ms; };
    std::printf("raw value decode, %u deltas (+ prefix sum):\n", kRows);
    std::printf("  varint scalar  %8.2f ms  %7.1f Mvalues/s\n", varint_ms,
                mv(varint_ms));
    std::printf("  gvb scalar     %8.2f ms  %7.1f Mvalues/s  (%.2fx)\n",
                kernel_scalar_ms, mv(kernel_scalar_ms),
                varint_ms / kernel_scalar_ms);
    std::printf("  gvb simd       %8.2f ms  %7.1f Mvalues/s  (%.2fx)\n\n",
                kernel_simd_ms, mv(kernel_simd_ms),
                varint_ms / kernel_simd_ms);
    xtopk::bench::BenchJson("ablation_decode_kernel")
        .Field("rows", static_cast<uint64_t>(kRows))
        .Field("varint_ms", varint_ms)
        .Field("gvb_scalar_ms", kernel_scalar_ms)
        .Field("gvb_simd_ms", kernel_simd_ms)
        .Field("speedup_gvb_scalar", varint_ms / kernel_scalar_ms)
        .Field("speedup_gvb_simd", varint_ms / kernel_simd_ms)
        .Emit();
  }

  // Distinct-heavy column: the shape both delta and gvb are built for.
  Column col = MakeColumn(1, kRows, /*dup_prob=*/0.05, /*max_jump=*/16);
  std::vector<uint32_t> rows = PresentRows(col);
  std::string delta_buf, gvb_buf;
  xtopk::EncodeColumn(col, ColumnCodec::kDelta, &delta_buf);
  xtopk::EncodeColumn(col, ColumnCodec::kGroupVarint, &gvb_buf);

  double delta_ms = DecodeFullMs(delta_buf, rows);
  xtopk::simd::SetGvbSimdEnabled(false);
  double gvb_scalar_ms = DecodeFullMs(gvb_buf, rows);
  xtopk::simd::SetGvbSimdEnabled(true);
  double gvb_simd_ms = DecodeFullMs(gvb_buf, rows);
  bool simd_available = xtopk::simd::GvbSimdAvailable();

  auto mvps = [&](double ms) { return kRows / 1000.0 / ms; };
  std::printf("full decode, %u rows (distinct-heavy):\n", kRows);
  std::printf("  delta scalar   %8.2f ms  %7.1f Mvalues/s  (%zu bytes)\n",
              delta_ms, mvps(delta_ms), delta_buf.size());
  std::printf("  gvb scalar     %8.2f ms  %7.1f Mvalues/s  (%zu bytes)\n",
              gvb_scalar_ms, mvps(gvb_scalar_ms), gvb_buf.size());
  std::printf("  gvb simd       %8.2f ms  %7.1f Mvalues/s  (simd %s)\n",
              gvb_simd_ms, mvps(gvb_simd_ms),
              simd_available ? "available" : "UNAVAILABLE, scalar fallback");
  std::printf("  speedup gvb-scalar/delta = %.2fx, gvb-simd/delta = %.2fx\n\n",
              delta_ms / gvb_scalar_ms, delta_ms / gvb_simd_ms);

  xtopk::bench::BenchJson("ablation_decode")
      .Field("rows", static_cast<uint64_t>(kRows))
      .Field("delta_ms", delta_ms)
      .Field("gvb_scalar_ms", gvb_scalar_ms)
      .Field("gvb_simd_ms", gvb_simd_ms)
      .Field("simd_available", simd_available ? 1 : 0)
      .Field("speedup_gvb_scalar", delta_ms / gvb_scalar_ms)
      .Field("speedup_gvb_simd", delta_ms / gvb_simd_ms)
      .Emit();

  // Block skipping: probe a ~1% value range of the wide column.
  uint32_t max_value = col.runs().back().value;
  ValueBounds narrow{max_value / 2, max_value / 2 + max_value / 100};
  double skip_ms = BestOfMs(7, [&] {
    Column out;
    size_t pos = 0;
    if (!xtopk::DecodeColumnWithBounds(gvb_buf, &pos, &rows, narrow, &out,
                                       nullptr)
             .ok()) {
      std::abort();
    }
  });
  xtopk::SkipDecodeStats stats;
  {
    Column out;
    size_t pos = 0;
    if (!xtopk::DecodeColumnWithBounds(gvb_buf, &pos, &rows, narrow, &out,
                                       &stats)
             .ok()) {
      std::abort();
    }
  }
  double full_ms = gvb_simd_ms;
  std::printf("bounded decode (~1%% value range, %llu of %llu blocks):\n",
              static_cast<unsigned long long>(stats.blocks_decoded),
              static_cast<unsigned long long>(stats.blocks_decoded +
                                              stats.blocks_skipped));
  std::printf("  skip on   %8.3f ms\n", skip_ms);
  std::printf("  skip off  %8.2f ms (full decode)\n", full_ms);
  std::printf("  skip saves %.1fx\n\n", full_ms / skip_ms);

  xtopk::bench::BenchJson("ablation_decode_skip")
      .Field("rows", static_cast<uint64_t>(kRows))
      .Field("blocks_decoded", stats.blocks_decoded)
      .Field("blocks_skipped", stats.blocks_skipped)
      .Field("skip_on_ms", skip_ms)
      .Field("skip_off_ms", full_ms)
      .Field("skip_speedup", full_ms / skip_ms)
      .Emit();

  // Duplicate-heavy shape for completeness: RLE stays the auto choice and
  // skipping still works through the fallback full decode.
  Column dup_col = MakeColumn(2, kRows / 4, /*dup_prob=*/0.95, 16);
  std::vector<uint32_t> dup_rows = PresentRows(dup_col);
  std::string rle_buf;
  xtopk::EncodeColumn(dup_col, ColumnCodec::kAuto, &rle_buf);
  double rle_ms = DecodeFullMs(rle_buf, dup_rows);
  std::printf("duplicate-heavy auto (rle), %u rows: %.2f ms\n", kRows / 4,
              rle_ms);
  xtopk::bench::BenchJson("ablation_decode_rle")
      .Field("rows", static_cast<uint64_t>(kRows / 4))
      .Field("rle_ms", rle_ms)
      .Emit();
  return 0;
}
