#ifndef XTOPK_INDEX_INDEX_STATS_H_
#define XTOPK_INDEX_INDEX_STATS_H_

#include <cstdint>
#include <string>

#include "index/index_builder.h"

namespace xtopk {

/// Serialized-size accounting for every index family of Table I.
struct IndexSizeReport {
  std::string corpus;
  uint64_t join_based_il = 0;      ///< JDewey columns, kAuto compression.
  uint64_t join_based_sparse = 0;  ///< Sparse per-column indexes.
  uint64_t stack_based_il = 0;     ///< Prefix-compressed Dewey lists.
  uint64_t index_based_btree = 0;  ///< Single (keyword, Dewey) B+-tree.
  uint64_t topk_join_il = 0;       ///< Columns + scores + segment orders.
  uint64_t topk_join_sparse = 0;   ///< Same sparse indexes.
  uint64_t rdil_il = 0;            ///< Score-ordered Dewey entries.
  uint64_t rdil_btree = 0;         ///< Per-keyword Dewey B+-trees.

  /// Renders the Table I layout ("IL" / "sparse" / "B+-tree" columns).
  std::string ToTable() const;
};

/// Builds every index family for `builder`'s corpus and measures it.
/// `corpus` labels the report ("DBLP", "XMark").
IndexSizeReport MeasureIndexSizes(const IndexBuilder& builder,
                                  const std::string& corpus);

}  // namespace xtopk

#endif  // XTOPK_INDEX_INDEX_STATS_H_
