#ifndef XTOPK_XML_XML_PARSER_H_
#define XTOPK_XML_XML_PARSER_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// From-scratch non-validating XML parser (the Xerces stand-in; see
/// DESIGN.md §4). Supports the XML subset exercised by the evaluated
/// corpora: prolog, DOCTYPE (skipped), elements, attributes, character data,
/// CDATA sections, comments, processing instructions (skipped), and the five
/// predefined entities plus decimal/hex character references.
///
/// The parser is a single-pass recursive-descent scanner over the input
/// buffer; errors carry a line number.
class XmlParser {
 public:
  /// Parses a complete document. On success the returned tree has one root.
  static StatusOr<XmlTree> Parse(std::string_view input);
};

/// Convenience wrapper: parses an XML string, aborting on malformed input
/// (examples/benches use this; library code uses XmlParser::Parse).
XmlTree ParseXmlStringOrDie(std::string_view input);

/// Reads and parses a file.
StatusOr<XmlTree> ParseXmlFile(const std::string& path);

}  // namespace xtopk

#endif  // XTOPK_XML_XML_PARSER_H_
