#!/usr/bin/env python3
"""Lint metric names at XTOPK_* registration call sites.

Scans src/ for string-literal names passed to the metric macros
(XTOPK_COUNTER, XTOPK_GAUGE, XTOPK_HISTOGRAM, XTOPK_WINDOWED_COUNTER,
XTOPK_WINDOWED_HISTOGRAM) and the registry accessors (GetCounter, ...),
and enforces the repo naming convention:

  layer.noun[.noun].verb_or_unit     e.g. storage.pool.hits

 - all lowercase, segments of [a-z0-9_]+ joined by dots, 2-4 segments;
 - the first segment names the owning layer (engine, core, storage,
   index, obs, server);
 - histogram names end in a unit suffix (us, ms, bytes, rows, pages,
   docs, peak) so dashboards know what they plot;
 - one name, one metric kind: the same name must not register as both a
   counter and a gauge (a windowed metric may shadow the cumulative
   metric of the same kind — that pairing is the designed layout).

Names built at runtime (prefix + ".hits") are out of scope; the
registration sites that matter for dashboards are the literal ones.

Usage: check_metric_names.py [src_dir]    (default: <repo>/src)
"""

import os
import re
import sys

LAYERS = {"engine", "core", "storage", "index", "obs", "server"}
UNIT_SUFFIXES = {"us", "ms", "bytes", "rows", "pages", "docs", "peak"}
SEGMENT = re.compile(r"^[a-z][a-z0-9_]*$")

# macro/accessor -> metric kind (windowed variants map to the same kind:
# shadowing cumulative metrics of the same kind is the designed layout).
SITES = {
    "XTOPK_COUNTER": "counter",
    "XTOPK_GAUGE": "gauge",
    "XTOPK_HISTOGRAM": "histogram",
    "XTOPK_WINDOWED_COUNTER": "counter",
    "XTOPK_WINDOWED_HISTOGRAM": "histogram",
    "GetCounter": "counter",
    "GetGauge": "gauge",
    "GetHistogram": "histogram",
    "GetWindowedCounter": "counter",
    "GetWindowedHistogram": "histogram",
}
CALL = re.compile(
    r"\b(" + "|".join(SITES) + r")\s*\(\s*\"([^\"]+)\"\s*[),]")


def check_name(name, kind):
    """Returns a list of problems with one metric name."""
    problems = []
    segments = name.split(".")
    if not 2 <= len(segments) <= 4:
        problems.append(f"has {len(segments)} segments (want 2-4)")
    bad = [s for s in segments if not SEGMENT.match(s)]
    if bad:
        problems.append(
            f"segment(s) {bad} not lowercase [a-z][a-z0-9_]*")
    if segments and SEGMENT.match(segments[0]) and segments[0] not in LAYERS:
        problems.append(
            f"layer {segments[0]!r} not in {sorted(LAYERS)}")
    if kind == "histogram":
        last = segments[-1]
        if not any(last == u or last.endswith("_" + u)
                   for u in UNIT_SUFFIXES):
            problems.append(
                f"histogram lacks a unit suffix {sorted(UNIT_SUFFIXES)}")
    return problems


def main(argv):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = argv[1] if len(argv) > 1 else os.path.join(repo, "src")

    registrations = {}  # name -> set of kinds
    failures = 0
    sites = 0
    for root, _dirs, files in os.walk(src):
        for filename in sorted(files):
            if not filename.endswith((".h", ".cc")):
                continue
            path = os.path.join(root, filename)
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for match in CALL.finditer(line):
                        site, name = match.group(1), match.group(2)
                        kind = SITES[site]
                        sites += 1
                        registrations.setdefault(name, set()).add(kind)
                        where = f"{os.path.relpath(path, repo)}:{lineno}"
                        for problem in check_name(name, kind):
                            print(f"FAIL: {where}: {name!r} {problem}")
                            failures += 1

    for name, kinds in sorted(registrations.items()):
        if len(kinds) > 1:
            print(f"FAIL: {name!r} registered as multiple kinds: "
                  f"{sorted(kinds)}")
            failures += 1

    if sites == 0:
        print(f"FAIL: found no metric call sites under {src}")
        return 1
    if failures:
        return 1
    print(f"OK: {len(registrations)} metric names at {sites} call sites "
          "follow the naming convention")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
