#include "core/plan_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace xtopk {

std::shared_ptr<const JoinPlan> PlanCache::Lookup(uint64_t fingerprint,
                                                  uint64_t watermark) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plans_.find(fingerprint);
  if (it != plans_.end() && it->second->watermark == watermark) {
    ++hits_;
    XTOPK_COUNTER("core.plan.cache_hits").Add(1);
    return it->second;
  }
  ++misses_;
  XTOPK_COUNTER("core.plan.cache_misses").Add(1);
  return nullptr;
}

void PlanCache::Insert(std::shared_ptr<const JoinPlan> plan) {
  if (plan == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t key = plan->fingerprint;
  auto [it, inserted] = plans_.insert_or_assign(key, std::move(plan));
  (void)it;
  if (inserted) {
    insertion_order_.push_back(key);
    while (plans_.size() > capacity_ && !insertion_order_.empty()) {
      plans_.erase(insertion_order_.front());
      insertion_order_.erase(insertion_order_.begin());
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  plans_.clear();
  insertion_order_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

uint64_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace xtopk
