#include "xml/jdewey_builder.h"

#include <cassert>
#include <vector>

namespace xtopk {

JDeweyEncoding JDeweyBuilder::Assign(const XmlTree& tree, uint32_t gap) {
  JDeweyEncoding enc;
  size_t n = tree.node_count();
  enc.jnum_.assign(n, 0);
  enc.child_next_.assign(n, 0);
  enc.child_end_.assign(n, 0);
  enc.next_free_.assign(tree.max_level() + 2, 1);
  if (n == 0) return enc;

  // Level-order walk. Parents are visited in increasing number order, so
  // handing each parent the next contiguous child range satisfies the
  // order requirement by construction.
  std::vector<NodeId> current = {tree.root()};
  enc.jnum_[tree.root()] = enc.next_free_[1]++;
  uint32_t level = 1;
  while (!current.empty()) {
    std::vector<NodeId> next;
    uint32_t child_level = level + 1;
    for (NodeId u : current) {
      uint32_t count = 0;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        ++count;
      }
      uint32_t start = enc.next_free_[child_level];
      uint32_t cursor = start;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        enc.jnum_[c] = cursor++;
        next.push_back(c);
      }
      enc.child_next_[u] = cursor;
      enc.child_end_[u] = start + count + gap;
      enc.next_free_[child_level] = enc.child_end_[u];
    }
    current = std::move(next);
    ++level;
  }
  return enc;
}

size_t JDeweyBuilder::InsertAssign(const XmlTree& tree, NodeId node,
                                   uint32_t gap, JDeweyEncoding* enc) {
  NodeId ignored;
  return InsertAssign(tree, node, gap, enc, &ignored);
}

size_t JDeweyBuilder::InsertAssign(const XmlTree& tree, NodeId node,
                                   uint32_t gap, JDeweyEncoding* enc,
                                   NodeId* reencoded_root) {
  *reencoded_root = kInvalidNode;
  assert(node == tree.node_count() - 1 &&
         "InsertAssign must follow the AddChild that created `node`");
  // Grow the per-node arrays for the new node.
  enc->jnum_.push_back(0);
  enc->child_next_.push_back(0);
  enc->child_end_.push_back(0);
  uint32_t node_level = tree.level(node);
  if (enc->next_free_.size() <= node_level + 1) {
    enc->next_free_.resize(node_level + 2, 1);
  }

  NodeId parent = tree.parent(node);
  assert(parent != kInvalidNode && "cannot insert a second root");
  if (enc->child_next_[parent] < enc->child_end_[parent]) {
    enc->jnum_[node] = enc->child_next_[parent]++;
    // The new node has no reserved range of its own; a child inserted under
    // it later triggers the re-encode path.
    enc->child_next_[node] = enc->child_end_[node] = 0;
    return 1;
  }

  // Reserved range exhausted: part of the tree must move to the end of its
  // levels (the paper's partial re-encoding). Moving the subtree rooted at
  // `a` is order-safe only when a's parent already owns the topmost child
  // range of a's level — otherwise some node numbered above the parent has
  // children, and handing a a fresh end-of-level number would break
  // requirement 2 one level up. Climb to the lowest safely movable
  // ancestor (the root is always safe: it is alone on level 1).
  NodeId a = node;
  while (true) {
    NodeId g = tree.parent(a);
    if (g == kInvalidNode) break;  // a is the root: full re-encode
    uint32_t a_level = tree.level(a);
    if (enc->child_end_[g] != 0 &&
        enc->child_end_[g] == enc->next_free_[a_level]) {
      break;  // subtree(a) can move without disturbing g's level
    }
    a = g;
  }
  if (a == node) {
    // Fast path: the exhausted parent owns the topmost range of the new
    // node's level. Extend the range in place and reserve a fresh gap.
    uint32_t l = node_level;
    enc->jnum_[node] = enc->next_free_[l]++;
    enc->child_next_[parent] = enc->next_free_[l];
    enc->child_end_[parent] = enc->next_free_[l] + gap;
    enc->next_free_[l] = enc->child_end_[parent];
    return 1;
  }
  *reencoded_root = a;
  return ReencodeSubtree(tree, a, gap, enc);
}

size_t JDeweyBuilder::ReencodeSubtree(const XmlTree& tree, NodeId root,
                                      uint32_t gap, JDeweyEncoding* enc) {
  // Move the subtree to the end of every level: the subtree root takes the
  // next free number at its level, and each parent hands out a fresh
  // contiguous range (with a new reserved gap) at the child level.
  size_t changed = 0;
  uint32_t root_level = tree.level(root);
  enc->jnum_[root] = enc->next_free_[root_level]++;
  ++changed;

  // The move was safe because root's parent owned the topmost child range
  // of this level; re-grant it a fresh range above the moved node so it
  // still does. Without this, the next overflow anywhere else on the level
  // finds no safely movable ancestor below the tree root and escalates to
  // a full re-encode.
  NodeId g = tree.parent(root);
  if (g != kInvalidNode) {
    enc->child_next_[g] = enc->next_free_[root_level];
    enc->child_end_[g] = enc->next_free_[root_level] + gap;
    enc->next_free_[root_level] = enc->child_end_[g];
  }

  std::vector<NodeId> current = {root};
  uint32_t level = root_level;
  while (!current.empty()) {
    std::vector<NodeId> next;
    uint32_t child_level = level + 1;
    if (enc->next_free_.size() <= child_level) {
      enc->next_free_.resize(child_level + 1, 1);
    }
    for (NodeId u : current) {
      uint32_t count = 0;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        ++count;
      }
      uint32_t start = enc->next_free_[child_level];
      uint32_t cursor = start;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        enc->jnum_[c] = cursor++;
        next.push_back(c);
        ++changed;
      }
      enc->child_next_[u] = cursor;
      enc->child_end_[u] = start + count + gap;
      enc->next_free_[child_level] = enc->child_end_[u];
    }
    current = std::move(next);
    ++level;
  }
  return changed;
}

}  // namespace xtopk
