#include "baseline/naive.h"

#include <algorithm>
#include <unordered_set>

namespace xtopk {

NaiveOracle::NaiveOracle(const XmlTree& tree, const DeweyIndex& index,
                         NaiveOptions options)
    : tree_(tree), index_(index), options_(options) {}

std::vector<SearchResult> NaiveOracle::Search(
    const std::vector<std::string>& keywords, Semantics semantics) {
  std::vector<SearchResult> results;
  const size_t k = keywords.size();
  if (k == 0) return results;

  std::vector<const DeweyList*> lists;
  for (const std::string& kw : keywords) {
    const DeweyList* list = index_.GetList(kw);
    if (list == nullptr || list->num_rows() == 0) return results;
    lists.push_back(list);
  }

  const size_t n = tree_.node_count();
  // counts[u][i]: occurrences of keyword i in the subtree of u.
  // own[u][i]: local score of u's direct occurrence (0 if none).
  std::vector<std::vector<uint32_t>> counts(n, std::vector<uint32_t>(k, 0));
  std::vector<std::vector<double>> own(n, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (uint32_t row = 0; row < lists[i]->num_rows(); ++row) {
      NodeId node = lists[i]->nodes[row];
      counts[node][i] += 1;
      own[node][i] = lists[i]->scores[row];
    }
  }
  // Children are created after parents, so a reverse NodeId sweep is a
  // bottom-up traversal.
  for (NodeId id = static_cast<NodeId>(n); id-- > 1;) {
    NodeId parent = tree_.parent(id);
    for (size_t i = 0; i < k; ++i) counts[parent][i] += counts[id][i];
  }
  auto contains_all = [&](NodeId u) {
    for (size_t i = 0; i < k; ++i) {
      if (counts[u][i] == 0) return false;
    }
    return true;
  };

  const double lambda = options_.scoring.damping_base;

  if (semantics == Semantics::kSlca) {
    // best_all[u][i]: damped per-keyword maxima over every occurrence.
    std::vector<std::vector<double>> best_all;
    if (options_.compute_scores) {
      best_all = own;
      for (NodeId id = static_cast<NodeId>(n); id-- > 1;) {
        NodeId parent = tree_.parent(id);
        for (size_t i = 0; i < k; ++i) {
          best_all[parent][i] =
              std::max(best_all[parent][i], best_all[id][i] * lambda);
        }
      }
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!contains_all(u)) continue;
      bool is_result = true;
      for (NodeId c = tree_.node(u).first_child; c != kInvalidNode;
           c = tree_.node(c).next_sibling) {
        if (contains_all(c)) {
          is_result = false;
          break;
        }
      }
      if (!is_result) continue;
      double score = 0.0;
      if (options_.compute_scores) {
        for (size_t i = 0; i < k; ++i) score += best_all[u][i];
      }
      results.push_back(SearchResult{u, tree_.level(u), score});
    }
    return results;
  }

  // ELCA, recursive: bottom-up, nc[u][i] counts the keyword-i occurrences
  // under u not consumed by a descendant ELCA; an ELCA consumes its whole
  // subtree (contributes nothing upward). Children have larger NodeIds, so
  // a descending sweep visits children before parents.
  std::vector<std::vector<uint32_t>> nc(n, std::vector<uint32_t>(k, 0));
  std::vector<std::vector<double>> best(n, std::vector<double>(k, 0.0));
  std::vector<char> is_elca(n, 0);
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    for (size_t i = 0; i < k; ++i) {
      nc[id][i] = own[id][i] > 0.0 ? 1u : 0u;
      best[id][i] = own[id][i];
    }
    for (NodeId c = tree_.node(id).first_child; c != kInvalidNode;
         c = tree_.node(c).next_sibling) {
      if (is_elca[c]) continue;
      for (size_t i = 0; i < k; ++i) {
        nc[id][i] += nc[c][i];
        best[id][i] = std::max(best[id][i], best[c][i] * lambda);
      }
    }
    bool all = true;
    for (size_t i = 0; i < k; ++i) {
      if (nc[id][i] == 0) all = false;
    }
    is_elca[id] = all ? 1 : 0;
  }
  for (NodeId u = 0; u < n; ++u) {
    if (!is_elca[u]) continue;
    double score = 0.0;
    if (options_.compute_scores) {
      for (size_t i = 0; i < k; ++i) score += best[u][i];
    }
    results.push_back(SearchResult{u, tree_.level(u), score});
  }
  return results;
}

std::vector<NodeId> NaiveOracle::AllLcas(
    const std::vector<std::string>& keywords) {
  std::vector<const DeweyList*> lists;
  for (const std::string& kw : keywords) {
    const DeweyList* list = index_.GetList(kw);
    if (list == nullptr || list->num_rows() == 0) return {};
    lists.push_back(list);
  }
  std::vector<NodeId> lcas;
  std::vector<uint32_t> pick(lists.size(), 0);
  // Odometer over all combinations (exponential; tiny inputs only).
  while (true) {
    // LCA of the picked nodes via repeated parent alignment.
    NodeId lca = lists[0]->nodes[pick[0]];
    for (size_t i = 1; i < lists.size(); ++i) {
      NodeId a = lca, b = lists[i]->nodes[pick[i]];
      while (tree_.level(a) > tree_.level(b)) a = tree_.parent(a);
      while (tree_.level(b) > tree_.level(a)) b = tree_.parent(b);
      while (a != b) {
        a = tree_.parent(a);
        b = tree_.parent(b);
      }
      lca = a;
    }
    lcas.push_back(lca);
    // Advance the odometer.
    size_t i = 0;
    while (i < lists.size()) {
      if (++pick[i] < lists[i]->num_rows()) break;
      pick[i] = 0;
      ++i;
    }
    if (i == lists.size()) break;
  }
  return lcas;
}

}  // namespace xtopk
