// Snapshot isolation of SegmentSetVersion (index/segment_view.h): pinned
// queries are immune to concurrent publishes, superseded segment files
// survive exactly as long as the last pin, and the version gauge tracks
// live snapshots.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "index/index_builder.h"
#include "index/segment.h"
#include "index/segment_builder.h"
#include "index/segment_view.h"
#include "obs/metrics.h"
#include "storage/segment_manifest.h"
#include "xml/jdewey_builder.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "." +
         std::to_string(static_cast<long>(::getpid()));
}

constexpr char kXml[] =
    "<db>"
    "  <conf><paper><title>xml keyword search</title>"
    "    <author>ann</author></paper>"
    "  <paper><title>top k ranking for xml</title>"
    "    <author>bo</author></paper></conf>"
    "  <journal><article><title>xml databases</title>"
    "    <note>keyword ranking</note></article></journal>"
    "</db>";

bool FileExists(const std::string& path) {
  std::ifstream in(path);
  return in.good();
}

struct Fixture {
  XmlTree tree;
  IndexBuildOptions options;
  JDeweyEncoding enc;
  std::vector<std::string> paths;

  Fixture() : tree(ParseXmlStringOrDie(kXml)) {
    enc = JDeweyBuilder::Assign(tree, options.jdewey_gap);
  }

  /// Splits the nodes round-robin into `parts` on-disk segments and adds
  /// them to `segmented` with ids 1..parts.
  void AddDiskSegments(SegmentedIndex* segmented, size_t parts,
                       const std::string& tag) {
    std::vector<std::vector<NodeId>> groups(parts);
    for (NodeId id = 0; id < tree.node_count(); ++id) {
      groups[id % parts].push_back(id);
    }
    for (size_t i = 0; i < parts; ++i) {
      std::string path = TempPath(tag + "_seg" + std::to_string(i));
      JDeweyIndex segment = BuildSegmentIndex(tree, enc, groups[i], options);
      ASSERT_TRUE(DiskIndexWriter::Write(segment, true, path).ok());
      SegmentManifest manifest = ManifestFromSegment(segment);
      manifest.covered_nodes = groups[i].size();
      ASSERT_TRUE(manifest.Save(path + ".manifest").ok());
      ASSERT_TRUE(segmented->AddDiskSegment(path, {}, i + 1).ok());
      paths.push_back(path);
    }
  }
};

std::vector<SearchResult> RunQuery(
    const std::shared_ptr<const SegmentSetVersion>& version,
    const std::vector<std::string>& keywords) {
  SegmentSetReader reader(version);
  JoinSearchOptions options;
  options.compute_scores = true;
  JoinSearch search(&reader, options);
  return search.Search(keywords);
}

void ExpectSameResults(const std::vector<SearchResult>& got,
                       const std::vector<SearchResult>& want,
                       const std::string& ctx) {
  ASSERT_EQ(got.size(), want.size()) << ctx;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node) << ctx << " i=" << i;
    EXPECT_EQ(got[i].level, want[i].level) << ctx << " i=" << i;
    // Bit identity, not approximate equality: compaction must not move a
    // single mantissa bit.
    EXPECT_EQ(got[i].score, want[i].score) << ctx << " i=" << i;
  }
}

TEST(SegmentVersionTest, PinnedVersionSurvivesCompactionBitIdentically) {
  Fixture fx;
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(fx.tree.node_count());
  fx.AddDiskSegments(&segmented, 3, "pinbit");

  const std::vector<std::vector<std::string>> queries = {
      {"xml", "keyword"}, {"title", "ranking"}, {"xml", "ann"}};

  auto pinned = segmented.Pin();
  const uint64_t version_before = pinned->version();
  std::vector<std::vector<SearchResult>> before;
  for (const auto& q : queries) before.push_back(RunQuery(pinned, q));

  std::string compacted = TempPath("pinbit_out");
  ASSERT_TRUE(segmented.Compact(compacted).ok());
  EXPECT_EQ(segmented.sealed_count(), 1u);
  EXPECT_GT(segmented.version(), version_before);

  // The OLD pin still answers from the pre-compaction segments...
  EXPECT_EQ(pinned->version(), version_before);
  EXPECT_EQ(pinned->sealed().size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResults(RunQuery(pinned, queries[i]), before[i], "old pin");
  }
  // ...and the NEW version answers bit-identically through the merged
  // segment.
  auto fresh = segmented.Pin();
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResults(RunQuery(fresh, queries[i]), before[i], "fresh pin");
  }

  pinned.reset();
  fresh.reset();
  std::remove(compacted.c_str());
  std::remove((compacted + ".manifest").c_str());
}

TEST(SegmentVersionTest, SupersededFilesDeletedWhenLastPinDrops) {
  Fixture fx;
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(fx.tree.node_count());
  fx.AddDiskSegments(&segmented, 2, "epoch");

  auto pinned = segmented.Pin();  // holds the inputs alive
  std::string compacted = TempPath("epoch_out");
  ASSERT_TRUE(segmented.Compact(compacted).ok());

  // The publish superseded the inputs, but the pin still reads them: the
  // files must survive.
  for (const std::string& p : fx.paths) {
    EXPECT_TRUE(FileExists(p)) << p;
  }
  // A query through the old pin still works (would crash / corrupt on a
  // deleted mmap otherwise).
  EXPECT_FALSE(RunQuery(pinned, {"xml", "keyword"}).empty());

  // Epoch reclamation: the last pin dropping unlinks the superseded
  // files.
  pinned.reset();
  for (const std::string& p : fx.paths) {
    EXPECT_FALSE(FileExists(p)) << p;
    EXPECT_FALSE(FileExists(p + ".manifest")) << p;
  }
  // The compacted output is NOT superseded and stays.
  EXPECT_TRUE(FileExists(compacted));
  std::remove(compacted.c_str());
  std::remove((compacted + ".manifest").c_str());
}

TEST(SegmentVersionTest, VersionGaugeTracksLiveSnapshots) {
  auto& gauge =
      obs::MetricsRegistry::Global().GetGauge("index.segment_versions_live");
  Fixture fx;
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(fx.tree.node_count());
  const int64_t base = gauge.value();  // the index's own head version

  auto pin_a = segmented.Pin();
  auto pin_b = segmented.Pin();
  // Both pins share the head version object — no new snapshots yet.
  EXPECT_EQ(gauge.value(), base);

  JDeweyIndex memtable;
  segmented.SetMemtable(&memtable);  // publish: head replaced
  auto pin_c = segmented.Pin();
  // Old version still pinned by a/b + new head = one more live snapshot.
  EXPECT_EQ(gauge.value(), base + 1);

  pin_a.reset();
  EXPECT_EQ(gauge.value(), base + 1);  // b still holds the old version
  pin_b.reset();
  EXPECT_EQ(gauge.value(), base);  // old snapshot reclaimed
  pin_c.reset();
}

TEST(SegmentVersionTest, PublishCompactionAbortsWhenInputsChanged) {
  Fixture fx;
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(fx.tree.node_count());
  fx.AddDiskSegments(&segmented, 2, "abort");

  auto pinned = segmented.Pin();
  std::vector<std::shared_ptr<const SealedSegment>> inputs(
      pinned->sealed().begin(), pinned->sealed().end());

  uint64_t covered = 0;
  auto merged = BuildCompactedSegment(inputs, &covered);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  auto output = SealedSegment::FromMemory(std::move(*merged), covered);

  // The set changes under the compactor's feet (a rebuild cleared it):
  // the publish must refuse rather than resurrect stale inputs.
  segmented.Clear();
  EXPECT_FALSE(segmented.PublishCompaction(inputs, output));
  EXPECT_EQ(segmented.sealed_count(), 0u);

  // On an unchanged set the publish succeeds and swaps atomically.
  SegmentedIndex second;
  second.SetCorpusNodes(fx.tree.node_count());
  Fixture fx2;
  fx2.AddDiskSegments(&second, 2, "abort2");
  auto pinned2 = second.Pin();
  std::vector<std::shared_ptr<const SealedSegment>> inputs2(
      pinned2->sealed().begin(), pinned2->sealed().end());
  uint64_t covered2 = 0;
  auto merged2 = BuildCompactedSegment(inputs2, &covered2);
  ASSERT_TRUE(merged2.ok());
  EXPECT_TRUE(second.PublishCompaction(
      inputs2, SealedSegment::FromMemory(std::move(*merged2), covered2)));
  EXPECT_EQ(second.sealed_count(), 1u);
}

}  // namespace
}  // namespace xtopk
