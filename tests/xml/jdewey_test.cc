#include "xml/jdewey.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/corpus.h"
#include "xml/jdewey_builder.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

TEST(JDeweyTest, AssignSatisfiesBothRequirements) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/0);
  ASSERT_TRUE(enc.Validate(tree).ok());
}

TEST(JDeweyTest, SequencesFollowPaths) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/0);
  JDeweySeq seq = enc.SequenceOf(tree, Ids::kP4Title);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0], enc.NumberOf(Ids::kDb));
  EXPECT_EQ(seq[1], enc.NumberOf(Ids::kConf1));
  EXPECT_EQ(seq[2], enc.NumberOf(Ids::kPaper4));
  EXPECT_EQ(seq[3], enc.NumberOf(Ids::kP4Title));
}

TEST(JDeweyTest, PairIdentifiesNodeUniquelyPerLevel) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/3);
  // Unlike Dewey, (level, number) is unique across the whole tree.
  for (NodeId a = 0; a < tree.node_count(); ++a) {
    for (NodeId b = a + 1; b < tree.node_count(); ++b) {
      if (tree.level(a) == tree.level(b)) {
        EXPECT_NE(enc.NumberOf(a), enc.NumberOf(b));
      }
    }
  }
}

TEST(JDeweyTest, LcaByLargestMatchingIndex) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/0);
  JDeweySeq a = enc.SequenceOf(tree, Ids::kP1Title);
  JDeweySeq b = enc.SequenceOf(tree, Ids::kP1Abs);
  auto lca = JDeweyLca(a, b);
  ASSERT_TRUE(lca.has_value());
  EXPECT_EQ(lca->level, 3u);
  EXPECT_EQ(lca->value, enc.NumberOf(Ids::kPaper1));

  JDeweySeq c = enc.SequenceOf(tree, Ids::kP3Title);
  lca = JDeweyLca(a, c);
  ASSERT_TRUE(lca.has_value());
  EXPECT_EQ(lca->level, 1u);
  EXPECT_EQ(lca->value, enc.NumberOf(Ids::kDb));
}

TEST(JDeweyTest, CompareOrdersPrefixFirst) {
  EXPECT_LT(CompareJDewey({1, 2}, {1, 2, 5}), 0);
  EXPECT_GT(CompareJDewey({1, 3}, {1, 2, 5}), 0);
  EXPECT_EQ(CompareJDewey({1, 2, 5}, {1, 2, 5}), 0);
}

// Property 3.1: if S1 < S2 in JDewey order, every shared position has
// S1(i) <= S2(i). Verified over random trees.
TEST(JDeweyTest, Property31HoldsOnRandomTrees) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    XmlTree tree = MakeRandomTree(seed, 300, 5, 8, {}, 0.0);
    JDeweyEncoding enc =
        JDeweyBuilder::Assign(tree, /*gap=*/seed % 3);
    ASSERT_TRUE(enc.Validate(tree).ok()) << "seed " << seed;
    std::vector<JDeweySeq> seqs;
    for (NodeId id = 0; id < tree.node_count(); ++id) {
      seqs.push_back(enc.SequenceOf(tree, id));
    }
    std::sort(seqs.begin(), seqs.end(),
              [](const JDeweySeq& a, const JDeweySeq& b) {
                return CompareJDewey(a, b) < 0;
              });
    for (size_t i = 1; i < seqs.size(); ++i) {
      const JDeweySeq& s1 = seqs[i - 1];
      const JDeweySeq& s2 = seqs[i];
      size_t n = std::min(s1.size(), s2.size());
      for (size_t j = 0; j < n; ++j) {
        ASSERT_LE(s1[j], s2[j]) << "seed " << seed;
      }
    }
  }
}

// JDewey LCA must agree with the tree's real LCA on random node pairs.
TEST(JDeweyTest, LcaAgreesWithTreeOnRandomPairs) {
  XmlTree tree = MakeRandomTree(77, 400, 4, 9, {}, 0.0);
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/2);
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(tree.node_count()));
    NodeId b = static_cast<NodeId>(rng.NextBounded(tree.node_count()));
    // Reference LCA by parent walking.
    NodeId x = a, y = b;
    while (tree.level(x) > tree.level(y)) x = tree.parent(x);
    while (tree.level(y) > tree.level(x)) y = tree.parent(y);
    while (x != y) {
      x = tree.parent(x);
      y = tree.parent(y);
    }
    auto got = JDeweyLca(enc.SequenceOf(tree, a), enc.SequenceOf(tree, b));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->level, tree.level(x));
    EXPECT_EQ(got->value, enc.NumberOf(x));
  }
}

TEST(JDeweyTest, GapReservesSlots) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/2);
  EXPECT_EQ(enc.ReservedSlots(Ids::kConf0), 2u);
  EXPECT_EQ(enc.ReservedSlots(Ids::kP4Title), 2u);
}

TEST(JDeweyTest, ValidateDetectsViolations) {
  XmlTree tree = MakeSmallCorpus();
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/0);
  // Encoding for a different tree shape must be rejected.
  XmlTree other;
  other.CreateRoot("r");
  EXPECT_FALSE(enc.Validate(other).ok());
}

}  // namespace
}  // namespace xtopk
