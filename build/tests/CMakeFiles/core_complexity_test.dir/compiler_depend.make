# Empty compiler generated dependencies file for core_complexity_test.
# This may be replaced when dependencies are built.
