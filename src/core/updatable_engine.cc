#include "core/updatable_engine.h"

#include <numeric>
#include <unordered_set>
#include <utility>

#include "core/search_result.h"
#include "index/disk_index.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/windowed.h"
#include "storage/segment_manifest.h"
#include "util/timer.h"
#include "xml/jdewey_builder.h"
#include "xml/tokenizer.h"

namespace xtopk {

UpdatableEngine::UpdatableEngine(XmlTree initial, EngineOptions options)
    : tree_(std::move(initial)), options_(options) {
  options_.index.scoring = options_.scoring;
  encoding_ = JDeweyBuilder::Assign(tree_, options_.index.jdewey_gap);
  segments_.SetCorpusNodes(tree_.node_count());
  if (tree_.node_count() > 1) {
    // The initial document becomes the base sealed segment; everything
    // added afterwards accumulates in the memtable. A bare root shell is
    // not worth sealing: it carries no indexable rows, and the first
    // insert under a childless root re-encodes the root itself — which
    // would read as a stale base and force a pointless full rebuild.
    Status s = Seal("");
    (void)s;  // in-memory seal cannot fail
  }
}

NodeId UpdatableEngine::AddElement(NodeId parent, const std::string& tag,
                                   const std::string& text) {
  NodeId node = tree_.AddChild(parent, tag);
  if (!text.empty()) tree_.AppendText(node, text);
  NodeId reencoded = kInvalidNode;
  uint64_t updates = JDeweyBuilder::InsertAssign(
      tree_, node, options_.index.jdewey_gap, &encoding_, &reencoded);
  encoding_updates_ += updates;
  XTOPK_COUNTER("engine.encoding_updates").Add(updates);
  // A re-encode above the watermark only moved memtable nodes (the next
  // refresh re-reads their numbers anyway); one below it invalidated
  // sealed columns.
  if (reencoded != kInvalidNode && reencoded < watermark_) {
    needs_full_rebuild_ = true;
  }
  memtable_dirty_ = true;
  return node;
}

void UpdatableEngine::AppendText(NodeId node, const std::string& text) {
  if (text.empty()) return;  // nothing to index; the index stays clean
  tree_.AppendText(node, text);
  if (node < watermark_) {
    needs_full_rebuild_ = true;  // sealed rows of this node are stale
  } else {
    memtable_dirty_ = true;
  }
}

NodeId UpdatableEngine::AddDocument(const std::string& name,
                                    const XmlTree& doc) {
  NodeId wrapper = AddElement(tree_.root(), "doc");
  tree_.AddAttribute(wrapper, "name", name);
  if (!doc.empty()) {
    NodeId root_copy =
        AddElement(wrapper, doc.TagName(doc.root()), doc.text(doc.root()));
    std::vector<std::pair<NodeId, NodeId>> stack;  // (src, dst)
    stack.emplace_back(doc.root(), root_copy);
    while (!stack.empty()) {
      auto [src, dst] = stack.back();
      stack.pop_back();
      std::vector<NodeId> kids = doc.Children(src);
      std::vector<NodeId> copies;
      copies.reserve(kids.size());
      for (NodeId child : kids) {
        copies.push_back(AddElement(dst, doc.TagName(child), doc.text(child)));
      }
      for (size_t i = 0; i < kids.size(); ++i) {
        stack.emplace_back(kids[i], copies[i]);
      }
    }
  }
  ++memtable_docs_;
  return wrapper;
}

void UpdatableEngine::FullRebuild() {
  segments_.Clear();
  std::vector<NodeId> nodes(tree_.node_count());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  // The MAINTAINED encoding stays authoritative — the rebuilt base segment
  // uses the same numbers, so the memtable keeps extending it without a
  // re-assignment.
  segments_.AddMemorySegment(
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index),
      nodes.size());
  watermark_ = static_cast<NodeId>(tree_.node_count());
  memtable_ = nullptr;
  segments_.SetMemtable(nullptr);
  memtable_dirty_ = false;
  needs_full_rebuild_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  ++rebuilds_;
  XTOPK_COUNTER("engine.rebuilds").Add(1);
}

void UpdatableEngine::RefreshMemtable() {
  size_t count = tree_.node_count();
  if (watermark_ >= count) {
    memtable_ = nullptr;
    segments_.SetMemtable(nullptr);
  } else {
    std::vector<NodeId> nodes;
    nodes.reserve(count - watermark_);
    for (NodeId id = watermark_; id < count; ++id) nodes.push_back(id);
    memtable_ = std::make_unique<JDeweyIndex>(
        BuildSegmentIndex(tree_, encoding_, nodes, options_.index));
    segments_.SetMemtable(memtable_.get());
  }
  memtable_dirty_ = false;
  ++memtable_refreshes_;
  XTOPK_COUNTER("engine.memtable_refreshes").Add(1);
  XTOPK_GAUGE("index.memtable_docs")
      .Set(static_cast<int64_t>(memtable_docs_));
}

void UpdatableEngine::EnsureFresh() {
  if (needs_full_rebuild_) {
    FullRebuild();
  } else if (memtable_dirty_) {
    RefreshMemtable();
  }
  // N of the idf term grows with the tree; a change invalidates the
  // segmented index's score caches (version bump inside).
  segments_.SetCorpusNodes(tree_.node_count());
}

Status UpdatableEngine::Seal(const std::string& disk_path) {
  size_t count = tree_.node_count();
  std::vector<NodeId> nodes;
  nodes.reserve(count - watermark_);
  for (NodeId id = watermark_; id < count; ++id) nodes.push_back(id);
  JDeweyIndex segment =
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index);
  if (disk_path.empty()) {
    segments_.AddMemorySegment(std::move(segment), nodes.size());
  } else {
    Status s = DiskIndexWriter::Write(segment, /*include_scores=*/true,
                                      disk_path);
    if (!s.ok()) return s;
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = nodes.size();
    s = manifest.Save(disk_path + ".manifest");
    if (!s.ok()) return s;
    s = segments_.AddDiskSegment(disk_path);
    if (!s.ok()) return s;
  }
  watermark_ = static_cast<NodeId>(count);
  memtable_ = nullptr;
  segments_.SetMemtable(nullptr);
  memtable_dirty_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  return Status::Ok();
}

Status UpdatableEngine::SealMemtable(const std::string& path) {
  if (needs_full_rebuild_) {
    // Sealed data went stale; fold everything into a fresh base first so
    // the seal captures sound numbers. The memtable is empty afterwards.
    FullRebuild();
  }
  if (watermark_ >= tree_.node_count()) {
    return Status::InvalidArgument("updatable engine: memtable is empty");
  }
  return Seal(path);
}

Status UpdatableEngine::Compact(const std::string& path) {
  EnsureFresh();
  return segments_.Compact(path);
}

uint64_t UpdatableEngine::plan_watermark() {
  // Fold pending mutations in first: ingest only dirties the memtable and
  // the version bumps at the lazy refresh, so without this a cache keyed
  // on the watermark would serve pre-ingest results after an AddDocument.
  EnsureFresh();
  return segments_.PlanWatermark();
}

std::vector<QueryHit> UpdatableEngine::Materialize(
    const std::vector<SearchResult>& results) const {
  std::vector<QueryHit> hits;
  hits.reserve(results.size());
  for (const SearchResult& r : results) {
    QueryHit hit;
    hit.node = r.node;
    hit.level = r.level;
    hit.score = r.score;
    hit.tag = tree_.TagName(r.node);
    hit.snippet = tree_.text(r.node);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::string> UpdatableEngine::Normalize(
    const std::vector<std::string>& keywords) const {
  Tokenizer tokenizer(options_.index.tokenizer);
  std::vector<std::string> normalized;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      if (seen.insert(token).second) normalized.push_back(token);
    }
  }
  return normalized;
}

std::vector<QueryHit> UpdatableEngine::Search(
    const std::vector<std::string>& keywords, Semantics semantics,
    DeadlineToken deadline) {
  EnsureFresh();
  Timer timer;
  const double cpu_start = obs::ThreadCpuMicros();
  obs::ResourceAccounting accounting;
  std::vector<std::string> normalized = Normalize(keywords);
  std::vector<QueryHit> hits;
  {
    obs::ScopedAccounting scope(&accounting);
    JoinSearchOptions join_options;
    join_options.semantics = semantics;
    join_options.compute_scores = true;
    join_options.scoring = options_.scoring;
    join_options.plan_cache = &plan_cache_;
    join_options.deadline = deadline;
    JoinSearch search(&segments_, join_options);
    std::vector<SearchResult> found = search.Search(normalized);
    SortByScoreDesc(&found);
    hits = Materialize(found);
    last_status_ = search.status();
    accounting.planner_mode =
        search.stats().planned
            ? (search.stats().plan_cache_hit ? "planned_cached" : "planned")
            : "heuristic";
  }
  FinishQuery(normalized, /*k=*/0, semantics, timer.ElapsedMicros(),
              obs::ThreadCpuMicros() - cpu_start, hits, &accounting);
  return hits;
}

std::vector<QueryHit> UpdatableEngine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k, Semantics semantics,
    DeadlineToken deadline) {
  EnsureFresh();
  Timer timer;
  const double cpu_start = obs::ThreadCpuMicros();
  obs::ResourceAccounting accounting;
  std::vector<std::string> normalized = Normalize(keywords);
  std::vector<QueryHit> hits;
  {
    obs::ScopedAccounting scope(&accounting);
    TopKSearchOptions topk_options;
    topk_options.semantics = semantics;
    topk_options.k = k;
    topk_options.scoring = options_.scoring;
    topk_options.plan_cache = &plan_cache_;
    topk_options.deadline = deadline;
    TopKSearch search(&segments_, topk_options);
    hits = Materialize(search.Search(normalized));
    last_status_ = search.status();
    accounting.planner_mode =
        search.stats().planned
            ? (search.stats().plan_cache_hit ? "planned_cached" : "planned")
            : "heuristic";
  }
  FinishQuery(normalized, k, semantics, timer.ElapsedMicros(),
              obs::ThreadCpuMicros() - cpu_start, hits, &accounting);
  return hits;
}

void UpdatableEngine::FinishQuery(const std::vector<std::string>& normalized,
                                  size_t k, Semantics semantics,
                                  double wall_us, double cpu_us,
                                  const std::vector<QueryHit>& hits,
                                  obs::ResourceAccounting* accounting) {
  accounting->wall_us = wall_us;
  accounting->cpu_us = cpu_us;
  last_accounting_ = *accounting;
  XTOPK_COUNTER("engine.queries").Add(1);
  XTOPK_HISTOGRAM("engine.query_us").Record(static_cast<uint64_t>(wall_us));
  XTOPK_WINDOWED_COUNTER("engine.queries").Add(1);
  XTOPK_WINDOWED_HISTOGRAM("engine.query_us")
      .Record(static_cast<uint64_t>(wall_us));
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  if (slow_log.ShouldCapture(wall_us, accounting->pages_read)) {
    obs::SlowQueryCapture capture;
    capture.ts_us = obs::MonotonicNowUs();
    capture.keywords = normalized;
    capture.k = k;
    capture.semantics = semantics == Semantics::kElca ? "elca" : "slca";
    capture.wall_us = wall_us;
    capture.hits = hits.size();
    capture.result_fingerprint = ResultFingerprint(hits);
    capture.accounting = *accounting;
    obs::SlowQueryLog::Global().Record(capture);
  }
}

}  // namespace xtopk
