file(REMOVE_RECURSE
  "CMakeFiles/dblp_topk.dir/dblp_topk.cpp.o"
  "CMakeFiles/dblp_topk.dir/dblp_topk.cpp.o.d"
  "dblp_topk"
  "dblp_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
