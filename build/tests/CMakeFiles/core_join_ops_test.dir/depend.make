# Empty dependencies file for core_join_ops_test.
# This may be replaced when dependencies are built.
