file(REMOVE_RECURSE
  "CMakeFiles/baseline_stack_search_test.dir/baseline/stack_search_test.cc.o"
  "CMakeFiles/baseline_stack_search_test.dir/baseline/stack_search_test.cc.o.d"
  "baseline_stack_search_test"
  "baseline_stack_search_test.pdb"
  "baseline_stack_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_stack_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
