#ifndef XTOPK_STORAGE_PAGE_FILE_H_
#define XTOPK_STORAGE_PAGE_FILE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "util/status.h"

namespace xtopk {

/// A page id within a PageFile.
using PageId = uint32_t;

/// Fixed-size-page file — the I/O unit of the on-disk index (the paper's
/// compression schemes are phrased per disk block; we use the classic
/// 8 KiB page). Writing is append-only; reads are random-access by page id
/// and are counted, which is what the I/O experiments report.
///
/// Concurrency contract: writing (AppendPage) is single-threaded, but once
/// the file is in its read-only serving phase ReadPage may be called from
/// any number of threads concurrently — reads use pread on the underlying
/// descriptor (no shared file position) and the read counter is atomic.
/// Buffered appends are flushed before the first pread that follows them,
/// so interleaved write-then-read on one thread stays coherent.
///
/// The I/O entry points are virtual so a fault-injecting wrapper
/// (storage/fault_pagefile.h) can interpose on exactly the same surface
/// the index layer uses; production code always holds the concrete type
/// or calls through DiskIndexEnv, which only wraps when fault injection
/// is armed.
class PageFile {
 public:
  static constexpr size_t kPageSize = 8192;

  PageFile() = default;
  virtual ~PageFile();
  PageFile(PageFile&& other) noexcept;
  PageFile& operator=(PageFile&& other) noexcept;
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Creates (truncating) or opens an existing file.
  virtual Status Open(const std::string& path, bool create);
  virtual Status Close();
  bool is_open() const { return file_ != nullptr; }

  /// Appends one page (data padded with zeros to kPageSize; must not
  /// exceed it). Returns the new page's id.
  virtual StatusOr<PageId> AppendPage(const std::string& data);

  /// Reads page `id` into `out` (resized to kPageSize). Safe to call
  /// concurrently with other ReadPage calls.
  virtual Status ReadPage(PageId id, std::string* out);

  /// Flushes buffered writes.
  virtual Status Sync();

  uint32_t page_count() const { return page_count_; }
  uint64_t pages_read() const {
    return pages_read_.load(std::memory_order_relaxed);
  }
  uint64_t pages_written() const { return pages_written_; }
  void ResetStats() {
    pages_read_.store(0, std::memory_order_relaxed);
    pages_written_ = 0;
  }

 private:
  std::FILE* file_ = nullptr;
  uint32_t page_count_ = 0;
  uint64_t pages_written_ = 0;
  std::atomic<uint64_t> pages_read_{0};
  /// Set by AppendPage, consumed by the next ReadPage: pread bypasses the
  /// stdio buffer, so pending buffered writes must be flushed first.
  std::atomic<bool> dirty_{false};
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_PAGE_FILE_H_
