# Empty dependencies file for xtopk.
# This may be replaced when dependencies are built.
