file(REMOVE_RECURSE
  "CMakeFiles/baseline_rdil_test.dir/baseline/rdil_test.cc.o"
  "CMakeFiles/baseline_rdil_test.dir/baseline/rdil_test.cc.o.d"
  "baseline_rdil_test"
  "baseline_rdil_test.pdb"
  "baseline_rdil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_rdil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
