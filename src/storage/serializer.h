#ifndef XTOPK_STORAGE_SERIALIZER_H_
#define XTOPK_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace xtopk {

/// Framing helpers shared by the index serializers: length-prefixed strings,
/// IEEE floats, and file I/O. All index families (Table I) serialize through
/// these so their byte counts are measured consistently.
namespace ser {

void PutLengthPrefixed(std::string* out, std::string_view value);
Status GetLengthPrefixed(const std::string& data, size_t* pos,
                         std::string* value);

/// Little-endian IEEE-754 single precision (local ranking scores).
void PutFloat(std::string* out, float value);
Status GetFloat(const std::string& data, size_t* pos, float* value);

/// Little-endian fixed-width 32-bit value (checksums and other fields that
/// must not vary in width — the segment footer's CRCs use this so the
/// checksummed byte range is self-delimiting).
void PutFixed32(std::string* out, uint32_t value);
Status GetFixed32(const std::string& data, size_t* pos, uint32_t* value);

Status WriteFile(const std::string& path, const std::string& contents);
Status ReadFile(const std::string& path, std::string* contents);

}  // namespace ser
}  // namespace xtopk

#endif  // XTOPK_STORAGE_SERIALIZER_H_
