# Empty compiler generated dependencies file for xtopk_cli.
# This may be replaced when dependencies are built.
