#ifndef XTOPK_UTIL_STRING_UTIL_H_
#define XTOPK_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace xtopk {

/// ASCII-lowercases `s` in place. The corpora and queries are ASCII; full
/// Unicode folding is out of scope (the tokenizer documents this).
void AsciiLowerInPlace(std::string* s);

/// Returns an ASCII-lowercased copy.
std::string AsciiLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s,
                                       std::string_view delims);

/// Human-readable byte count ("327.0 MB", "14.2 KB") used by the Table I
/// bench output.
std::string HumanBytes(uint64_t bytes);

}  // namespace xtopk

#endif  // XTOPK_UTIL_STRING_UTIL_H_
