# Empty dependencies file for baseline_rdil_test.
# This may be replaced when dependencies are built.
