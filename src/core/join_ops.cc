#include "core/join_ops.h"

namespace xtopk {

std::vector<LevelMatch> SeedMatches(const Column& column) {
  std::vector<LevelMatch> matches;
  matches.reserve(column.run_count());
  for (const Run& run : column.runs()) {
    LevelMatch m;
    m.value = run.value;
    m.runs.push_back(&run);
    matches.push_back(std::move(m));
  }
  return matches;
}

std::vector<LevelMatch> MergeIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats) {
  ++stats->merge_joins;
  std::vector<LevelMatch> out;
  const auto& runs = column.runs();
  size_t i = 0, j = 0;
  while (i < matches.size() && j < runs.size()) {
    ++stats->run_comparisons;
    if (matches[i].value < runs[j].value) {
      ++i;
    } else if (matches[i].value > runs[j].value) {
      ++j;
    } else {
      matches[i].runs.push_back(&runs[j]);
      out.push_back(std::move(matches[i]));
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<LevelMatch> IndexIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats) {
  ++stats->index_joins;
  std::vector<LevelMatch> out;
  for (LevelMatch& m : matches) {
    ++stats->probes;
    const Run* run = column.FindValue(m.value);
    if (run != nullptr) {
      m.runs.push_back(run);
      out.push_back(std::move(m));
    }
  }
  return out;
}

}  // namespace xtopk
