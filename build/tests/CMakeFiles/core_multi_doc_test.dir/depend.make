# Empty dependencies file for core_multi_doc_test.
# This may be replaced when dependencies are built.
