file(REMOVE_RECURSE
  "CMakeFiles/core_scoring_test.dir/core/scoring_test.cc.o"
  "CMakeFiles/core_scoring_test.dir/core/scoring_test.cc.o.d"
  "core_scoring_test"
  "core_scoring_test.pdb"
  "core_scoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
