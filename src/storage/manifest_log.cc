#include "storage/manifest_log.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/crc32c.h"
#include "util/fault_env.h"
#include "util/varint.h"

namespace xtopk {

namespace {

constexpr char kMagic[] = "XTKMLOG1";
constexpr size_t kMagicSize = 8;

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(buf, 4);
}

uint32_t ReadFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

bool ValidType(uint8_t type) {
  return type >= static_cast<uint8_t>(ManifestRecordType::kSeal) &&
         type <= static_cast<uint8_t>(ManifestRecordType::kDrop);
}

/// Parses one frame body (type byte + payload). Returns false on any
/// malformation — the caller treats that exactly like a CRC mismatch.
bool ParseBody(const std::string& body, ManifestRecord* record) {
  if (body.empty() || !ValidType(static_cast<uint8_t>(body[0]))) return false;
  record->type = static_cast<ManifestRecordType>(body[0]);
  size_t pos = 1;
  if (!varint::GetU64(body, &pos, &record->id).ok()) return false;
  record->covered_nodes = 0;
  record->watermark = 0;
  record->inputs.clear();
  switch (record->type) {
    case ManifestRecordType::kSeal:
      if (!varint::GetU64(body, &pos, &record->covered_nodes).ok())
        return false;
      if (!varint::GetU64(body, &pos, &record->watermark).ok()) return false;
      break;
    case ManifestRecordType::kCompactBegin:
    case ManifestRecordType::kCompactCommit: {
      if (!varint::GetU64(body, &pos, &record->covered_nodes).ok())
        return false;
      if (!varint::GetU64(body, &pos, &record->watermark).ok()) return false;
      uint64_t count = 0;
      if (!varint::GetU64(body, &pos, &count).ok()) return false;
      if (count > body.size()) return false;  // each input is >= 1 byte
      record->inputs.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t input = 0;
        if (!varint::GetU64(body, &pos, &input).ok()) return false;
        record->inputs.push_back(input);
      }
      break;
    }
    case ManifestRecordType::kDrop:
      break;
  }
  return pos == body.size();
}

Status ReadWholeFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size < 0 ? 0 : static_cast<size_t>(size));
  size_t got = out->empty() ? 0 : std::fread(&(*out)[0], 1, out->size(), f);
  std::fclose(f);
  if (got != out->size())
    return Status::IoError("short read of " + path);
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const char* ManifestRecordTypeName(ManifestRecordType type) {
  switch (type) {
    case ManifestRecordType::kSeal:
      return "seal";
    case ManifestRecordType::kCompactBegin:
      return "compact_begin";
    case ManifestRecordType::kCompactCommit:
      return "compact_commit";
    case ManifestRecordType::kDrop:
      return "drop";
  }
  return "unknown";
}

ManifestLog::ManifestLog(std::string path, std::FILE* file)
    : path_(std::move(path)), file_(file) {}

ManifestLog::~ManifestLog() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<ManifestLog>> ManifestLog::Open(
    const std::string& path) {
  // "a+b" creates if missing and positions writes at the end; the header
  // is written only when the file is empty so reopen never re-stamps it.
  std::FILE* f = std::fopen(path.c_str(), "a+b");
  if (f == nullptr)
    return Status::IoError("cannot open manifest log " + path + ": " +
                           std::strerror(errno));
  std::fseek(f, 0, SEEK_END);
  if (std::ftell(f) == 0) {
    if (std::fwrite(kMagic, 1, kMagicSize, f) != kMagicSize ||
        std::fflush(f) != 0 || ::fsync(fileno(f)) != 0) {
      std::fclose(f);
      return Status::IoError("cannot write manifest log header " + path);
    }
  }
  return std::unique_ptr<ManifestLog>(new ManifestLog(path, f));
}

void ManifestLog::EncodeRecord(const ManifestRecord& record,
                               std::string* out) {
  std::string body;
  body.push_back(static_cast<char>(record.type));
  varint::PutU64(&body, record.id);
  switch (record.type) {
    case ManifestRecordType::kSeal:
      varint::PutU64(&body, record.covered_nodes);
      varint::PutU64(&body, record.watermark);
      break;
    case ManifestRecordType::kCompactBegin:
    case ManifestRecordType::kCompactCommit:
      varint::PutU64(&body, record.covered_nodes);
      varint::PutU64(&body, record.watermark);
      varint::PutU64(&body, record.inputs.size());
      for (uint64_t input : record.inputs) varint::PutU64(&body, input);
      break;
    case ManifestRecordType::kDrop:
      break;
  }
  varint::PutU64(out, body.size());
  out->append(body);
  PutFixed32(out, crc32c::Compute(body.data(), body.size()));
}

Status ManifestLog::Append(const ManifestRecord& record) {
  std::string frame;
  EncodeRecord(record, &frame);

  std::lock_guard<std::mutex> lock(mu_);
  FaultInjector& injector = FaultInjector::Global();
  if (injector.active()) {
    FaultInjector::Decision d = injector.OnCall("manifestlog.append");
    switch (d.kind) {
      case FaultKind::kNone:
        break;
      case FaultKind::kTransientIoError:
        // The write never reached the kernel: nothing on disk changed.
        return Status::IoError("injected transient io error on " + path_);
      case FaultKind::kTruncate:
      case FaultKind::kShortRead: {
        // A torn write: a strict prefix of the frame hits the disk and
        // the writer dies. (seed + call_index) keeps the cut point
        // deterministic per sweep position while varying across a sweep.
        size_t cut = static_cast<size_t>((d.seed + d.call_index) %
                                         frame.size());
        if (cut > 0) {
          std::fwrite(frame.data(), 1, cut, file_);
          std::fflush(file_);
          ::fsync(fileno(file_));
        }
        return Status::IoError("injected torn write on " + path_);
      }
      case FaultKind::kBitFlip: {
        // Silent media damage: the full frame lands but one bit is wrong.
        // Append still reports success — only Replay can catch this.
        size_t bit = static_cast<size_t>((d.seed + d.call_index) %
                                         (frame.size() * 8));
        frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        break;
      }
    }
  }

  std::fseek(file_, 0, SEEK_END);
  long start = std::ftell(file_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) == frame.size() &&
      std::fflush(file_) == 0 && ::fsync(fileno(file_)) == 0) {
    return Status::Ok();
  }
  // A real write failure may have left a torn frame; cut back to the
  // pre-append length so the log stays clean for later appends. (The
  // injected torn-write branches above deliberately skip this — they
  // simulate a crash, where no repair runs.)
  if (start >= 0) {
    std::fflush(file_);
    if (::ftruncate(fileno(file_), static_cast<off_t>(start)) == 0)
      std::fseek(file_, 0, SEEK_END);
  }
  return Status::IoError("manifest log write failed on " + path_);
}

StatusOr<std::vector<ManifestRecord>> ManifestLog::Replay(
    const std::string& path, uint64_t* valid_bytes) {
  std::string data;
  Status st = ReadWholeFile(path, &data);
  if (!st.ok()) return st;
  if (data.size() < kMagicSize ||
      std::memcmp(data.data(), kMagic, kMagicSize) != 0)
    return Status::Corruption("bad manifest log magic in " + path);

  std::vector<ManifestRecord> records;
  size_t pos = kMagicSize;
  size_t valid = pos;
  while (pos < data.size()) {
    uint64_t body_len = 0;
    size_t p = pos;
    if (!varint::GetU64(data, &p, &body_len).ok()) break;
    if (body_len == 0 || body_len > data.size() - p ||
        data.size() - p - body_len < 4)
      break;
    std::string body = data.substr(p, body_len);
    uint32_t stored_crc = ReadFixed32(data.data() + p + body_len);
    if (crc32c::Compute(body.data(), body.size()) != stored_crc) break;
    ManifestRecord record;
    if (!ParseBody(body, &record)) break;
    records.push_back(std::move(record));
    pos = p + body_len + 4;
    valid = pos;
  }
  if (valid_bytes != nullptr) *valid_bytes = valid;
  return records;
}

std::string ManifestLogPath(const std::string& dir) {
  return dir + "/MANIFEST.log";
}

std::string SegmentFilePath(const std::string& dir, uint64_t id) {
  return dir + "/seg-" + std::to_string(id);
}

std::string EncodingFilePath(const std::string& dir, uint64_t id) {
  return dir + "/enc-" + std::to_string(id);
}

StatusOr<RecoveredSegmentSet> RecoverSegmentSet(const std::string& dir) {
  RecoveredSegmentSet out;
  const std::string log_path = ManifestLogPath(dir);
  if (!FileExists(log_path)) return out;  // fresh directory

  uint64_t valid_bytes = 0;
  StatusOr<std::vector<ManifestRecord>> replay =
      ManifestLog::Replay(log_path, &valid_bytes);
  if (!replay.ok()) return replay.status();

  // Apply records in order, stopping at the first semantic violation the
  // same way Replay stops at the first damaged frame: everything after a
  // record that contradicts the live set is untrusted. `applied_bytes`
  // tracks the byte length of the applied prefix (encoding is canonical,
  // so re-encoding reproduces the on-disk frame sizes exactly) — the log
  // is truncated there so post-recovery appends extend the trusted
  // prefix rather than landing after an ignored record.
  std::vector<uint64_t> live;
  uint64_t max_id = 0;
  uint64_t applied_bytes = kMagicSize;
  for (const ManifestRecord& record : replay.value()) {
    max_id = std::max(max_id, record.id);
    switch (record.type) {
      case ManifestRecordType::kSeal: {
        if (std::find(live.begin(), live.end(), record.id) != live.end())
          goto done;  // duplicate seal: log damage Replay could not see
        live.push_back(record.id);
        out.watermark = record.watermark;
        out.last_seal_id = record.id;
        break;
      }
      case ManifestRecordType::kCompactBegin:
        // Only reserves the id (counted through max_id above). The output
        // is not live until the commit record.
        break;
      case ManifestRecordType::kCompactCommit: {
        bool inputs_live =
            !record.inputs.empty() &&
            std::all_of(record.inputs.begin(), record.inputs.end(),
                        [&](uint64_t id) {
                          return std::find(live.begin(), live.end(), id) !=
                                 live.end();
                        });
        if (!inputs_live ||
            std::find(live.begin(), live.end(), record.id) != live.end())
          goto done;
        // The output takes the first input's position so publish order is
        // preserved (matters for stable merge tie-breaks).
        auto first = std::find(live.begin(), live.end(), record.inputs[0]);
        *first = record.id;
        // A durable full rebuild commits with a non-zero watermark: the
        // output covers the whole tree, and its encoding snapshot becomes
        // authoritative. Plain compactions leave both fields zero.
        if (record.watermark > 0) {
          out.watermark = record.watermark;
          out.last_seal_id = record.id;
        }
        live.erase(std::remove_if(live.begin(), live.end(),
                                  [&](uint64_t id) {
                                    return std::find(record.inputs.begin(),
                                                     record.inputs.end(),
                                                     id) !=
                                               record.inputs.end() &&
                                           id != record.id;
                                  }),
                   live.end());
        break;
      }
      case ManifestRecordType::kDrop: {
        auto it = std::find(live.begin(), live.end(), record.id);
        if (it != live.end()) live.erase(it);
        break;
      }
    }
    ++out.records_applied;
    {
      std::string frame;
      ManifestLog::EncodeRecord(record, &frame);
      applied_bytes += frame.size();
    }
  }
done:
  out.live = live;
  out.next_segment_id = max_id + 1;

  // Truncate the torn/untrusted tail so future appends extend a clean log.
  (void)valid_bytes;  // applied_bytes <= valid_bytes covers both stops
  struct stat st;
  if (::stat(log_path.c_str(), &st) == 0 &&
      static_cast<uint64_t>(st.st_size) > applied_bytes) {
    if (::truncate(log_path.c_str(), static_cast<off_t>(applied_bytes)) != 0)
      return Status::IoError("cannot truncate manifest log " + log_path);
  }

  // Delete every segment/encoding file the live set does not claim:
  // torn seals, uncommitted compaction outputs, dropped inputs whose
  // unlink the crash interrupted, and superseded encoding snapshots.
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr)
    return Status::IoError("cannot scan data dir " + dir + ": " +
                           std::strerror(errno));
  std::vector<std::string> doomed;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t id = 0;
    bool is_seg = false, is_enc = false;
    if (name.rfind("seg-", 0) == 0) {
      std::string tail = name.substr(4);
      size_t dot = tail.find('.');
      if (dot != std::string::npos) {
        if (tail.substr(dot) != ".manifest") continue;
        tail = tail.substr(0, dot);
      }
      if (tail.empty() ||
          tail.find_first_not_of("0123456789") != std::string::npos)
        continue;
      id = std::strtoull(tail.c_str(), nullptr, 10);
      is_seg = true;
    } else if (name.rfind("enc-", 0) == 0) {
      std::string tail = name.substr(4);
      if (tail.empty() ||
          tail.find_first_not_of("0123456789") != std::string::npos)
        continue;
      id = std::strtoull(tail.c_str(), nullptr, 10);
      is_enc = true;
    } else {
      continue;
    }
    bool keep = is_seg ? std::find(live.begin(), live.end(), id) != live.end()
                       : (is_enc && id == out.last_seal_id);
    if (!keep) doomed.push_back(name);
  }
  ::closedir(d);
  std::sort(doomed.begin(), doomed.end());
  for (const std::string& name : doomed) {
    if (::unlink((dir + "/" + name).c_str()) == 0)
      out.removed_files.push_back(name);
  }
  return out;
}

}  // namespace xtopk
