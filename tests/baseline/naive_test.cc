#include "baseline/naive.h"

#include <gtest/gtest.h>

#include <set>

#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

class NaiveTest : public ::testing::Test {
 protected:
  NaiveTest() : tree_(MakeSmallCorpus()), builder_(tree_) {
    index_ = builder_.BuildDeweyIndex();
  }
  XmlTree tree_;
  IndexBuilder builder_;
  DeweyIndex index_;
};

TEST_F(NaiveTest, ElcaBySpec) {
  NaiveOracle oracle(tree_, index_);
  auto results = oracle.Search({"xml", "data"}, Semantics::kElca);
  std::set<NodeId> nodes;
  for (const auto& r : results) nodes.insert(r.node);
  // Recursive semantics: db keeps p2t's xml and p3t's data (conf0/conf1
  // are not ELCAs, so nothing at level 2 consumes them).
  EXPECT_EQ(nodes, (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1,
                                     Ids::kP4Title, Ids::kDb}));
}

TEST_F(NaiveTest, SlcaBySpec) {
  NaiveOracle oracle(tree_, index_);
  auto results = oracle.Search({"xml", "data"}, Semantics::kSlca);
  std::set<NodeId> nodes;
  for (const auto& r : results) nodes.insert(r.node);
  EXPECT_EQ(nodes,
            (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1, Ids::kP4Title}));
}

TEST_F(NaiveTest, ScoresAreSumsOfDampedMaxima) {
  NaiveOracle oracle(tree_, index_);
  auto results = oracle.Search({"xml", "data"}, Semantics::kElca);
  const DeweyList* xml = index_.GetList("xml");
  const DeweyList* data = index_.GetList("data");
  float xml_p0 = 0, data_p0 = 0;
  for (uint32_t r = 0; r < xml->num_rows(); ++r) {
    if (xml->nodes[r] == Ids::kPaper0) xml_p0 = xml->scores[r];
  }
  for (uint32_t r = 0; r < data->num_rows(); ++r) {
    if (data->nodes[r] == Ids::kPaper0) data_p0 = data->scores[r];
  }
  // paper0 contains both keywords directly: no damping at all.
  for (const auto& r : results) {
    if (r.node == Ids::kPaper0) {
      EXPECT_NEAR(r.score, xml_p0 + data_p0, 1e-9);
    }
  }
}

TEST_F(NaiveTest, AllLcasIsTheFullCrossProduct) {
  // The paper's motivating blow-up (§I): a two-keyword query produces
  // |L_xml| x |L_data| LCAs (with duplicates).
  NaiveOracle oracle(tree_, index_);
  auto lcas = oracle.AllLcas({"xml", "data"});
  EXPECT_EQ(lcas.size(), 4u * 4u);
  // And far fewer distinct ELCAs: the pruning is the whole point.
  std::set<NodeId> distinct(lcas.begin(), lcas.end());
  auto elcas = oracle.Search({"xml", "data"}, Semantics::kElca);
  EXPECT_LT(elcas.size(), lcas.size());
  EXPECT_GE(distinct.size(), elcas.size());
}

TEST_F(NaiveTest, MissingKeywordEmpty) {
  NaiveOracle oracle(tree_, index_);
  EXPECT_TRUE(oracle.Search({"xml", "zzz"}, Semantics::kElca).empty());
  EXPECT_TRUE(oracle.AllLcas({"zzz"}).empty());
}

}  // namespace
}  // namespace xtopk
