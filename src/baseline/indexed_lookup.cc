#include "baseline/indexed_lookup.h"

#include <algorithm>
#include <unordered_set>

namespace xtopk {
namespace {

/// Longest common prefix between `v` and its closest occurrence in `list`
/// (the deeper of predecessor / successor around v's sorted position).
size_t ClosestLcp(const DeweyList& list, const DeweyId& v,
                  IndexedLookupStats* stats) {
  ++stats->probes;
  uint32_t lb = list.LowerBound(v);
  size_t best = 0;
  if (lb < list.num_rows()) {
    best = std::max(best, v.CommonPrefixLength(list.deweys[lb]));
  }
  if (lb > 0) {
    best = std::max(best, v.CommonPrefixLength(list.deweys[lb - 1]));
  }
  return best;
}

}  // namespace

IndexedLookupSearch::IndexedLookupSearch(const XmlTree& tree,
                                         const DeweyIndex& index,
                                         IndexedLookupOptions options)
    : tree_(tree), index_(index), options_(options) {}

std::vector<SearchResult> IndexedLookupSearch::Search(
    const std::vector<std::string>& keywords) {
  stats_ = IndexedLookupStats{};
  std::vector<SearchResult> results;
  if (keywords.empty()) return results;

  std::vector<const DeweyList*> lists;
  for (const std::string& kw : keywords) {
    const DeweyList* list = index_.GetList(kw);
    if (list == nullptr || list->num_rows() == 0) return results;
    lists.push_back(list);
  }
  // Drive from the shortest list.
  size_t shortest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i]->num_rows() < lists[shortest]->num_rows()) shortest = i;
  }

  // slca_cand(v) = prefix of v at the shallowest closest-match depth: the
  // lowest node containing v together with every other keyword.
  const DeweyList& drive = *lists[shortest];
  std::vector<DeweyId> candidates;
  candidates.reserve(drive.num_rows());
  for (uint32_t row = 0; row < drive.num_rows(); ++row) {
    const DeweyId& v = drive.deweys[row];
    size_t depth = v.length();
    for (size_t j = 0; j < lists.size(); ++j) {
      if (j == shortest) continue;
      depth = std::min(depth, ClosestLcp(*lists[j], v, &stats_));
    }
    // All Dewey ids share the root component, so depth >= 1.
    candidates.push_back(v.Prefix(depth));
  }

  ElcaCandidateEvaluator evaluator(lists, options_.scoring);

  if (options_.semantics == Semantics::kSlca) {
    // Dedup, sort in document order, and drop every candidate that has a
    // candidate descendant (in sorted order the first descendant, if any,
    // is the immediate successor).
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (i + 1 < candidates.size() &&
          candidates[i].IsAncestorOf(candidates[i + 1])) {
        continue;
      }
      ++stats_.candidates;
      double score = 0.0;
      if (options_.compute_scores) {
        bool ok = evaluator.IsSlca(candidates[i], &score);
        (void)ok;
      }
      NodeId node = NodeByDewey(tree_, candidates[i]);
      results.push_back(SearchResult{
          node, static_cast<uint32_t>(candidates[i].length()), score});
    }
  } else {
    // ELCA: every answer is an ancestor-or-self of some candidate
    // (DESIGN.md §5); expand, dedup, verify each against the definition.
    std::unordered_set<std::string> seen;
    std::vector<DeweyId> expanded;
    for (const DeweyId& cand : candidates) {
      for (size_t len = 1; len <= cand.length(); ++len) {
        DeweyId prefix = cand.Prefix(len);
        if (seen.insert(EncodeDeweyKey(prefix)).second) {
          expanded.push_back(std::move(prefix));
        }
      }
    }
    std::sort(expanded.begin(), expanded.end());
    for (const DeweyId& u : expanded) {
      ++stats_.candidates;
      double score = 0.0;
      if (evaluator.IsElca(u, options_.compute_scores ? &score : nullptr)) {
        NodeId node = NodeByDewey(tree_, u);
        results.push_back(
            SearchResult{node, static_cast<uint32_t>(u.length()), score});
      }
    }
  }
  stats_.eval = *evaluator.stats();
  return results;
}

}  // namespace xtopk
