// Ablation A1 (paper §III-D): what the two column codecs buy.
//
// Prints the serialized inverted-list size of the DBLP-like corpus under
// forced delta, forced run-length, and the per-column auto choice; then
// google-benchmark micro-benchmarks of encode/decode throughput on
// representative column shapes (duplicate-heavy conference-level columns
// vs distinct-heavy paper-level columns).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "storage/compression.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

xtopk::Column MakeColumn(uint64_t seed, uint32_t rows, double dup_prob) {
  xtopk::Rng rng(seed);
  xtopk::Column col;
  uint32_t row = 0, value = 1;
  for (uint32_t i = 0; i < rows; ++i) {
    col.Append(row++, value);
    if (!rng.NextBernoulli(dup_prob)) {
      value += 1 + static_cast<uint32_t>(rng.NextBounded(16));
    }
  }
  return col;
}

void BM_EncodeDelta(benchmark::State& state) {
  xtopk::Column col = MakeColumn(1, 100000, 0.05);
  for (auto _ : state) {
    std::string buf;
    xtopk::EncodeColumn(col, xtopk::ColumnCodec::kDelta, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EncodeDelta);

void BM_EncodeRunLength(benchmark::State& state) {
  xtopk::Column col = MakeColumn(2, 100000, 0.95);
  for (auto _ : state) {
    std::string buf;
    xtopk::EncodeColumn(col, xtopk::ColumnCodec::kRunLength, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EncodeRunLength);

void BM_DecodeDelta(benchmark::State& state) {
  xtopk::Column col = MakeColumn(3, 100000, 0.05);
  std::string buf;
  xtopk::EncodeColumn(col, xtopk::ColumnCodec::kDelta, &buf);
  std::vector<uint32_t> rows;
  for (const xtopk::Run& run : col.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) rows.push_back(run.first_row + i);
  }
  for (auto _ : state) {
    xtopk::Column out;
    size_t pos = 0;
    benchmark::DoNotOptimize(xtopk::DecodeColumn(buf, &pos, &rows, &out).ok());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DecodeDelta);

void BM_DecodeRunLength(benchmark::State& state) {
  xtopk::Column col = MakeColumn(4, 100000, 0.95);
  std::string buf;
  xtopk::EncodeColumn(col, xtopk::ColumnCodec::kRunLength, &buf);
  for (auto _ : state) {
    xtopk::Column out;
    size_t pos = 0;
    benchmark::DoNotOptimize(
        xtopk::DecodeColumn(buf, &pos, nullptr, &out).ok());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DecodeRunLength);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A1: column compression ===\n\n");
  {
    // Index size under each codec, over the real bench corpus.
    xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
    xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
    // EncodedListBytes uses kAuto; re-measure per forced codec here.
    uint64_t delta_total = 0, rle_total = 0, gvb_total = 0, auto_total = 0;
    for (const std::string& term : jindex.terms()) {
      const xtopk::JDeweyList* list = jindex.GetList(term);
      for (const xtopk::Column& col : list->columns) {
        delta_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kDelta);
        rle_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kRunLength);
        gvb_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kGroupVarint);
        auto_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kAuto);
      }
    }
    std::printf("inverted-list columns, DBLP-like corpus:\n");
    std::printf("  forced delta       %s  (legacy read-only codec)\n",
                xtopk::HumanBytes(delta_total).c_str());
    std::printf("  forced run-length  %s\n",
                xtopk::HumanBytes(rle_total).c_str());
    std::printf("  forced gvb         %s  (~30%% over delta, buys the\n"
                "                     vector decode + block skipping)\n",
                xtopk::HumanBytes(gvb_total).c_str());
    std::printf("  auto (per column)  %s  <= min(run-length, gvb)\n\n",
                xtopk::HumanBytes(auto_total).c_str());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
