// Failure-injection tests for the XML parser: mutated and random inputs
// must produce a Status, never a crash or a malformed tree.

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

const char* kSeedDocs[] = {
    "<a><b x=\"1\">text &amp; more</b><!-- c --><![CDATA[raw]]></a>",
    "<?xml version=\"1.0\"?><dblp><conf name='icde'><paper>top k"
    "</paper></conf></dblp>",
    "<r><n><n><n>deep</n></n></n></r>",
};

void CheckDoesNotCrash(const std::string& input) {
  auto result = XmlParser::Parse(input);
  if (result.ok()) {
    // Whatever parsed must be a structurally sane tree.
    const XmlTree& tree = *result;
    ASSERT_GT(tree.node_count(), 0u);
    for (NodeId id = 1; id < tree.node_count(); ++id) {
      ASSERT_LT(tree.parent(id), id);
      ASSERT_EQ(tree.level(id), tree.level(tree.parent(id)) + 1);
    }
  }
}

TEST(ParserFuzzTest, TruncationsNeverCrash) {
  for (const char* doc : kSeedDocs) {
    std::string s = doc;
    for (size_t cut = 0; cut <= s.size(); ++cut) {
      CheckDoesNotCrash(s.substr(0, cut));
    }
  }
}

TEST(ParserFuzzTest, ByteFlipsNeverCrash) {
  Rng rng(4242);
  for (const char* doc : kSeedDocs) {
    std::string base = doc;
    for (int trial = 0; trial < 400; ++trial) {
      std::string s = base;
      int flips = 1 + static_cast<int>(rng.NextBounded(3));
      for (int f = 0; f < flips; ++f) {
        size_t pos = rng.NextBounded(s.size());
        s[pos] = static_cast<char>(rng.NextBounded(256));
      }
      CheckDoesNotCrash(s);
    }
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    size_t len = rng.NextBounded(200);
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      // Bias toward XML-ish characters so some inputs get deep into the
      // parser.
      const char* alphabet = "<>=/!?\"'&;abc \n-[]";
      s.push_back(rng.NextBernoulli(0.7)
                      ? alphabet[rng.NextBounded(18)]
                      : static_cast<char>(rng.NextBounded(256)));
    }
    CheckDoesNotCrash(s);
  }
}

TEST(ParserFuzzTest, PathologicalNestingDepth) {
  // 20k-deep nesting: the recursive-descent parser must survive (each
  // frame is small); reject if implementation limits are ever added.
  std::string deep;
  for (int i = 0; i < 20000; ++i) deep += "<a>";
  deep += "x";
  for (int i = 0; i < 20000; ++i) deep += "</a>";
  auto result = XmlParser::Parse(deep);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node_count(), 20000u);
  EXPECT_EQ(result->max_level(), 20000u);
}

TEST(ParserFuzzTest, HugeAttributeAndTextValues) {
  std::string big(1 << 18, 'x');
  std::string doc = "<a v=\"" + big + "\">" + big + "</a>";
  auto result = XmlParser::Parse(doc);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->text(0).size(), big.size());
}

}  // namespace
}  // namespace xtopk
