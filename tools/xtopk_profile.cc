// xtopk_profile: EXPLAIN/profile CLI. Runs keyword queries against a
// document with tracing on and emits one JSON profile document on stdout —
// per query: the span tree, hit count, wall time, and span coverage; plus a
// process-wide metrics-registry snapshot. The human-readable EXPLAIN trees
// go to stderr so stdout stays pure, schema-validatable JSON.
//
//   ./xtopk_profile                         # built-in document + queries
//   ./xtopk_profile file.xml "xml data" "top k:5"
//
// Each query argument is a space-separated keyword list; a ":N" suffix
// requests top-N (default: the complete result set). The JSON layout is
// pinned by tools/profile_schema.json (CI validates it).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "demo_doc.h"
#include "obs/metrics.h"
#include "xml/xml_parser.h"

namespace {

using xtopk_tools::BuildDemoXml;

struct ProfileQuery {
  std::vector<std::string> keywords;
  size_t k = 0;  // 0 = complete result set
};

// "top k:5" -> keywords {top, k}, k = 5.
ProfileQuery ParseQueryArg(const std::string& arg) {
  ProfileQuery query;
  std::string spec = arg;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos && colon + 1 < spec.size()) {
    bool numeric = true;
    for (size_t i = colon + 1; i < spec.size(); ++i) {
      if (spec[i] < '0' || spec[i] > '9') numeric = false;
    }
    if (numeric) {
      query.k = static_cast<size_t>(std::stoul(spec.substr(colon + 1)));
      spec.resize(colon);
    }
  }
  std::string token;
  for (char c : spec + " ") {
    if (c == ' ' || c == '\t') {
      if (!token.empty()) query.keywords.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  return query;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

int main(int argc, char** argv) {
  std::string document = "builtin";
  xtopk::XmlTree tree;
  int query_arg_start = 1;
  if (argc > 1 && std::strchr(argv[1], '.') != nullptr) {
    auto parsed = xtopk::ParseXmlFile(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    tree = std::move(parsed).value();
    document = argv[1];
    query_arg_start = 2;
  } else {
    tree = xtopk::ParseXmlStringOrDie(BuildDemoXml());
  }

  std::vector<ProfileQuery> queries;
  for (int i = query_arg_start; i < argc; ++i) {
    queries.push_back(ParseQueryArg(argv[i]));
  }
  if (queries.empty()) {
    queries.push_back(ParseQueryArg("xml data"));
    queries.push_back(ParseQueryArg("keyword search:25"));
    queries.push_back(ParseQueryArg("top k xml:10"));
  }

  xtopk::Engine engine(tree);

  std::string out = "{\"tool\":\"xtopk_profile\",\"document\":";
  AppendJsonString(&out, document);
  out += ",\"queries\":[";
  for (size_t q = 0; q < queries.size(); ++q) {
    const ProfileQuery& pq = queries[q];
    xtopk::BatchQuery batch_query;
    batch_query.keywords = pq.keywords;
    batch_query.k = pq.k;
    engine.Explain(batch_query);  // warm-up: metric registration, lists
    xtopk::ExplainResult explained = engine.Explain(batch_query);

    std::fprintf(stderr, "--- query %zu (k=%zu) ---\n%s\n", q, pq.k,
                 explained.trace.Render().c_str());

    if (q > 0) out.push_back(',');
    out += "{\"keywords\":[";
    for (size_t i = 0; i < pq.keywords.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendJsonString(&out, pq.keywords[i]);
    }
    out += "],\"k\":" + std::to_string(pq.k);
    out += ",\"hits\":" + std::to_string(explained.hits.size());
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"wall_us\":%.1f",
                  explained.trace.total_us());
    out += buf;
    std::snprintf(buf, sizeof(buf), ",\"coverage\":%.4f",
                  explained.trace.ChildCoverage());
    out += buf;
    out += ",\"accounting\":" + explained.accounting.ToJson();
    out += ",\"trace\":" + explained.trace.ToJson() + "}";
  }
  out += "],\"metrics\":";
  out += xtopk::obs::MetricsRegistry::Global().Snapshot().ToJson();
  out += "}";

  std::printf("%s\n", out.c_str());
  return 0;
}
