#ifndef XTOPK_BASELINE_INDEXED_LOOKUP_H_
#define XTOPK_BASELINE_INDEXED_LOOKUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/elca_eval.h"
#include "core/scoring.h"
#include "core/search_result.h"
#include "index/dewey_index.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct IndexedLookupOptions {
  Semantics semantics = Semantics::kElca;
  /// The paper's Fig. 9 runs compute unranked complete sets; scores are
  /// optional because they force occurrence-range scans per result.
  bool compute_scores = false;
  ScoringParams scoring;
};

struct IndexedLookupStats {
  uint64_t probes = 0;       ///< closest-occurrence binary searches
  uint64_t candidates = 0;   ///< candidate nodes evaluated
  CandidateEvalStats eval;
};

/// The index-based baseline (paper §II-C; Xu & Papakonstantinou's Indexed
/// Lookup family): for every node v of the shortest inverted list, probe
/// the other lists for the occurrence closest to v (the neighbour with the
/// longest common Dewey prefix) — the LCA of v with those is the lowest
/// node containing v and all keywords. SLCA answers are the candidates
/// without a candidate descendant; ELCA answers are found among the
/// candidates' ancestors-or-selves and verified against the definition.
/// Cost scales with the shortest list times log of the longest — the
/// behaviour Fig. 9 contrasts with both other algorithms.
class IndexedLookupSearch {
 public:
  IndexedLookupSearch(const XmlTree& tree, const DeweyIndex& index,
                      IndexedLookupOptions options = {});

  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  const IndexedLookupStats& stats() const { return stats_; }

 private:
  const XmlTree& tree_;
  const DeweyIndex& index_;
  IndexedLookupOptions options_;
  IndexedLookupStats stats_;
};

}  // namespace xtopk

#endif  // XTOPK_BASELINE_INDEXED_LOOKUP_H_
