// Differential correctness harness: on seeded random corpora and
// workloads, every execution configuration of the join-based engine —
// in-memory, disk-resident across codecs (legacy delta vs group-varint),
// checksummed and legacy segment formats, skip-decode on/off, galloping
// joins on/off — must produce exactly the node sets and scores of the
// independent baselines (the stack-based DIL algorithm and the
// Indexed-Lookup eager algorithm), and top-K must equal the sorted prefix
// of the complete result. A disagreement anywhere pins the failing seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/indexed_lookup.h"
#include "baseline/stack_search.h"
#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "index/segment.h"
#include "index/segment_builder.h"
#include "storage/segment_manifest.h"
#include "testing/corpus.h"
#include "xml/jdewey_builder.h"

namespace xtopk {
namespace {

using testing::CorpusSpec;
using testing::MakeCorpusSpec;
using testing::MakeCorpusTree;
using testing::MakeRandomWorkload;
using testing::WorkloadQuery;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameResults(const std::vector<SearchResult>& got_in,
                       const std::vector<SearchResult>& want_in,
                       const std::string& label) {
  std::vector<SearchResult> got = got_in, want = want_in;
  SortByNode(&got);
  SortByNode(&want);
  std::set<NodeId> got_nodes, want_nodes;
  for (const auto& r : got) got_nodes.insert(r.node);
  for (const auto& r : want) want_nodes.insert(r.node);
  ASSERT_EQ(got_nodes, want_nodes) << label;
  ASSERT_EQ(got.size(), want.size()) << label << " (duplicate results)";
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].score, want[i].score, 1e-6)
        << label << " node " << got[i].node;
  }
}

/// Top-K must rank like the sorted complete result: same size, the same
/// score at every rank, and every returned node present in the complete
/// set with a matching score (ties may order differently only among
/// exactly-equal scores, which the node-presence check still covers).
void ExpectTopKMatchesComplete(const std::vector<SearchResult>& topk,
                               std::vector<SearchResult> complete, size_t k,
                               const std::string& label) {
  SortByScoreDesc(&complete);
  size_t want_size = std::min(k, complete.size());
  ASSERT_EQ(topk.size(), want_size) << label;
  for (size_t i = 0; i < topk.size(); ++i) {
    ASSERT_NEAR(topk[i].score, complete[i].score, 1e-6)
        << label << " rank " << i;
    bool found = false;
    for (const auto& r : complete) {
      if (r.node == topk[i].node) {
        ASSERT_NEAR(topk[i].score, r.score, 1e-6) << label;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << label << " node " << topk[i].node
                       << " not in complete result";
  }
}

/// One disk configuration under test.
struct DiskConfig {
  ColumnCodec codec;
  bool checksums;
  bool skip;
  const char* name;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnSeededCorpus) {
  const uint64_t seed = GetParam();
  CorpusSpec spec = MakeCorpusSpec(seed);
  XmlTree tree = MakeCorpusTree(spec);
  std::vector<WorkloadQuery> workload = MakeRandomWorkload(spec, 6);

  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  DeweyIndex dindex = builder.BuildDeweyIndex();

  // The same corpus with structure-aware compression enabled: DAG-shared
  // subtrees plus a compacted term dictionary. Must answer bit-identically.
  IndexBuildOptions compressed_options = build_options;
  compressed_options.enable_dag = true;
  compressed_options.enable_dict = true;
  IndexBuilder compressed_builder(tree, compressed_options);
  JDeweyIndex jindex_compressed = compressed_builder.BuildJDeweyIndex();

  // Disk segments: the current group-varint/auto checksummed format, the
  // legacy delta codec in both the checksummed and pre-checksum (v1)
  // container, each served with skip-decode on and off.
  const DiskConfig kConfigs[] = {
      {ColumnCodec::kAuto, true, true, "auto_v2_skip"},
      {ColumnCodec::kAuto, true, false, "auto_v2_noskip"},
      {ColumnCodec::kDelta, true, true, "delta_v2_skip"},
      {ColumnCodec::kDelta, false, false, "delta_v1_noskip"},
      {ColumnCodec::kAuto, false, true, "auto_v1_skip"},
  };
  std::vector<std::shared_ptr<DiskIndexEnv>> envs;
  std::vector<std::string> config_names;
  std::vector<std::string> paths;
  for (const DiskConfig& config : kConfigs) {
    std::string path = TempPath("differential_" + std::to_string(seed) + "_" +
                                config.name);
    ASSERT_TRUE(DiskIndexWriter::Write(jindex, /*include_scores=*/true, path,
                                       config.codec, config.checksums)
                    .ok());
    DiskIndexOptions options;
    options.enable_skip = config.skip;
    auto env = DiskIndexEnv::Open(path, options);
    ASSERT_TRUE(env.ok()) << config.name << ": " << env.status().ToString();
    EXPECT_EQ((*env)->checksums_verified(), config.checksums) << config.name;
    envs.push_back(*env);
    config_names.push_back(config.name);
    paths.push_back(std::move(path));
  }

  // The compressed v3 container: front-coded term dictionary, DAG sidecar,
  // dictionary-coded length/score rows — served by the same session layer.
  {
    std::string path =
        TempPath("differential_" + std::to_string(seed) + "_dict_dag_v3");
    DiskIndexWriter::Options v3;
    v3.dict_terms = true;
    v3.dag = true;
    v3.dict_rows = true;
    ASSERT_TRUE(DiskIndexWriter::Write(jindex_compressed, path, v3).ok());
    auto env = DiskIndexEnv::Open(path, DiskIndexOptions{});
    ASSERT_TRUE(env.ok()) << "dict_dag_v3: " << env.status().ToString();
    envs.push_back(*env);
    config_names.push_back("dict_dag_v3");
    paths.push_back(std::move(path));
    paths.push_back(paths.back() + ".manifest");
  }

  // Segmented configuration: the same corpus split round-robin across
  // 1 + (seed % 3) sealed disk segments plus one in-memory memtable, all
  // merged at the cursor layer into the same JoinSearch/TopKSearch
  // implementations the monolithic configurations use.
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, build_options.jdewey_gap);
  size_t sealed_parts = 1 + static_cast<size_t>(seed % 3);
  std::vector<std::vector<NodeId>> groups(sealed_parts + 1);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    groups[id % groups.size()].push_back(id);
  }
  JDeweyIndex memtable =
      BuildSegmentIndex(tree, enc, groups.back(), build_options);
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(tree.node_count());
  for (size_t i = 0; i < sealed_parts; ++i) {
    JDeweyIndex segment = BuildSegmentIndex(tree, enc, groups[i], build_options);
    std::string path = TempPath("differential_" + std::to_string(seed) +
                                "_seg" + std::to_string(i));
    ASSERT_TRUE(
        DiskIndexWriter::Write(segment, /*include_scores=*/true, path).ok());
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = groups[i].size();
    ASSERT_TRUE(manifest.Save(path + ".manifest").ok());
    ASSERT_TRUE(segmented.AddDiskSegment(path).ok());
    paths.push_back(std::move(path));
    paths.push_back(paths.back() + ".manifest");
  }
  segmented.SetMemtable(&memtable);
  std::vector<std::vector<SearchResult>> segmented_complete;

  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const WorkloadQuery& query = workload[qi];
    std::string label = "seed=" + std::to_string(seed) +
                        " query=" + std::to_string(qi) +
                        (query.semantics == Semantics::kElca ? " ELCA"
                                                             : " SLCA");

    // Oracle: the stack-based DIL baseline, cross-checked against the
    // eager Indexed-Lookup baseline (independent implementations).
    std::vector<SearchResult> want;
    {
      StackSearchOptions options;
      options.semantics = query.semantics;
      StackSearch search(tree, dindex, options);
      want = search.Search(query.keywords);
    }
    {
      IndexedLookupOptions options;
      options.semantics = query.semantics;
      options.compute_scores = true;
      IndexedLookupSearch search(tree, dindex, options);
      ExpectSameResults(search.Search(query.keywords), want,
                        label + " indexed-lookup");
    }

    // Join-based in memory, galloping enabled (dynamic) and disabled
    // (forced linear merges).
    for (JoinPolicy policy : {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      options.planner.policy = policy;
      JoinSearch search(jindex, options);
      ExpectSameResults(search.Search(query.keywords), want,
                        label + " join policy=" +
                            std::to_string(static_cast<int>(policy)));
      JoinSearch compressed_search(jindex_compressed, options);
      ExpectSameResults(compressed_search.Search(query.keywords), want,
                        label + " join compressed policy=" +
                            std::to_string(static_cast<int>(policy)));
    }

    // Disk-resident: every codec/container/skip configuration, each with
    // galloping on and off; plus top-K against the complete prefix.
    for (size_t c = 0; c < envs.size(); ++c) {
      for (JoinPolicy policy :
           {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
        auto session = envs[c]->NewSession();
        JoinSearchOptions options;
        options.semantics = query.semantics;
        options.planner.policy = policy;
        auto got = session->SearchComplete(query.keywords, options);
        ASSERT_TRUE(got.ok()) << label << " " << config_names[c] << ": "
                              << got.status().ToString();
        ExpectSameResults(*got, want,
                          label + " disk " + config_names[c] + " policy=" +
                              std::to_string(static_cast<int>(policy)));
      }
      {
        auto session = envs[c]->NewSession();
        TopKSearchOptions options;
        options.semantics = query.semantics;
        options.k = query.k;
        auto got = session->SearchTopK(query.keywords, options);
        ASSERT_TRUE(got.ok()) << label << " " << config_names[c] << ": "
                              << got.status().ToString();
        ExpectTopKMatchesComplete(*got, want, query.k,
                                  label + " topk " + config_names[c]);
      }
    }

    // Segmented: sealed disk segments + memtable, same answers.
    {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      JoinSearch search(&segmented, options);
      auto got = search.Search(query.keywords);
      ExpectSameResults(got, want, label + " segmented");
      segmented_complete.push_back(got);

      TopKSearchOptions topk_options;
      topk_options.semantics = query.semantics;
      topk_options.k = query.k;
      TopKSearch topk(&segmented, topk_options);
      ExpectTopKMatchesComplete(topk.Search(query.keywords), want, query.k,
                                label + " segmented topk");
    }
  }

  // Compaction folds every sealed segment into one disk segment; the
  // memtable keeps riding on top. Results must be bit-identical to the
  // pre-compaction merge, not merely close.
  {
    std::string compacted =
        TempPath("differential_" + std::to_string(seed) + "_compacted");
    ASSERT_TRUE(segmented.Compact(compacted).ok());
    paths.push_back(compacted);
    paths.push_back(compacted + ".manifest");
    EXPECT_EQ(segmented.sealed_count(), 1u);
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      const WorkloadQuery& query = workload[qi];
      JoinSearchOptions options;
      options.semantics = query.semantics;
      JoinSearch search(&segmented, options);
      std::vector<SearchResult> got = search.Search(query.keywords);
      std::vector<SearchResult> want_exact = segmented_complete[qi];
      SortByNode(&got);
      SortByNode(&want_exact);
      ASSERT_EQ(got.size(), want_exact.size()) << "post-compact q" << qi;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].node, want_exact[i].node) << "post-compact q" << qi;
        EXPECT_EQ(got[i].score, want_exact[i].score)
            << "post-compact q" << qi << " node " << got[i].node;
      }
    }
  }

  envs.clear();
  for (const std::string& path : paths) std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(SeededCorpora, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 56),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// High-repetition family: trees built from repeated identical subtrees —
// the corpus shape the DAG/dictionary compression exists for, so shared
// classes are plentiful and every query path exercises dedup expansion.
class HighRepetitionDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HighRepetitionDifferentialTest, CompressedEnginesMatchOracle) {
  const uint64_t seed = GetParam();
  CorpusSpec spec = testing::MakeHighRepetitionSpec(seed);
  XmlTree tree = MakeCorpusTree(spec);
  std::vector<WorkloadQuery> workload = MakeRandomWorkload(spec, 6);

  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  DeweyIndex dindex = builder.BuildDeweyIndex();

  IndexBuildOptions compressed_options = build_options;
  compressed_options.enable_dag = true;
  compressed_options.enable_dict = true;
  IndexBuilder compressed_builder(tree, compressed_options);
  JDeweyIndex jindex_compressed = compressed_builder.BuildJDeweyIndex();
  // This family must actually trigger the DAG: at least one shared class.
  size_t dag_lists = 0;
  for (const std::string& term : spec.terms) {
    const JDeweyList* list = jindex_compressed.GetList(term);
    if (list != nullptr && list->dag != nullptr) ++dag_lists;
  }
  EXPECT_GT(dag_lists, 0u) << "seed=" << seed
                           << ": high-repetition corpus built no DAG";

  // Compressed v3 container over the compressed build.
  std::string v3_path =
      TempPath("differential_hirep_" + std::to_string(seed) + "_v3");
  DiskIndexWriter::Options v3;
  v3.dict_terms = true;
  v3.dag = true;
  v3.dict_rows = true;
  ASSERT_TRUE(DiskIndexWriter::Write(jindex_compressed, v3_path, v3).ok());
  auto env = DiskIndexEnv::Open(v3_path, DiskIndexOptions{});
  ASSERT_TRUE(env.ok()) << env.status().ToString();

  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const WorkloadQuery& query = workload[qi];
    std::string label = "hirep seed=" + std::to_string(seed) +
                        " query=" + std::to_string(qi) +
                        (query.semantics == Semantics::kElca ? " ELCA"
                                                             : " SLCA");

    std::vector<SearchResult> want;
    {
      StackSearchOptions options;
      options.semantics = query.semantics;
      StackSearch search(tree, dindex, options);
      want = search.Search(query.keywords);
    }
    {
      IndexedLookupOptions options;
      options.semantics = query.semantics;
      options.compute_scores = true;
      IndexedLookupSearch search(tree, dindex, options);
      ExpectSameResults(search.Search(query.keywords), want,
                        label + " indexed-lookup");
    }

    for (JoinPolicy policy : {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      options.planner.policy = policy;
      JoinSearch plain(jindex, options);
      ExpectSameResults(plain.Search(query.keywords), want, label + " plain");
      JoinSearch compressed(jindex_compressed, options);
      ExpectSameResults(compressed.Search(query.keywords), want,
                        label + " compressed policy=" +
                            std::to_string(static_cast<int>(policy)));

      auto session = (*env)->NewSession();
      auto got = session->SearchComplete(query.keywords, options);
      ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
      ExpectSameResults(*got, want,
                        label + " disk v3 policy=" +
                            std::to_string(static_cast<int>(policy)));
    }
    {
      auto session = (*env)->NewSession();
      TopKSearchOptions options;
      options.semantics = query.semantics;
      options.k = query.k;
      auto got = session->SearchTopK(query.keywords, options);
      ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
      ExpectTopKMatchesComplete(*got, want, query.k, label + " disk v3 topk");
    }
  }

  (*env).reset();
  std::remove(v3_path.c_str());
  std::remove((v3_path + ".manifest").c_str());
}

INSTANTIATE_TEST_SUITE_P(HighRepetitionCorpora, HighRepetitionDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace xtopk
