#ifndef XTOPK_STORAGE_BUFFER_POOL_H_
#define XTOPK_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "storage/page_file.h"
#include "storage/sharded_lru.h"
#include "util/status.h"

namespace xtopk {

/// Sharded LRU page cache over a PageFile — the hot-cache layer the paper's
/// experiments assume ("all the experiments are on hot cache"; the
/// stack-based and join-based systems "use the cache provided by the file
/// system", which this models deterministically).
///
/// Thread-safe for concurrent GetPage calls: pages are spread over
/// independent LRU shards by PageId hash (per-shard mutex), physical reads
/// go through PageFile::ReadPage (pread, no shared file position), and the
/// hit/miss counters are atomic. Two threads missing on the same page may
/// both read it from disk; the page contents are immutable so either copy
/// is correct and one simply replaces the other in the shard.
///
/// Pages are returned as shared_ptr so entries may be evicted while a
/// caller still decodes a previous page.
class BufferPool {
 public:
  static constexpr size_t kDefaultShards = 16;
  /// Pools smaller than shards * kMinPagesPerShard drop to fewer shards so
  /// per-shard budgets stay meaningful and tiny pools keep exact global
  /// LRU eviction (a 1-shard pool is a plain LRU).
  static constexpr size_t kMinPagesPerShard = 8;

  /// `capacity_pages` must be >= 1. The pool borrows `file`.
  BufferPool(PageFile* file, size_t capacity_pages,
             size_t shards = kDefaultShards);

  /// Called on the miss path with the freshly read page before it is
  /// admitted to the cache. A non-ok return (checksum mismatch) fails the
  /// GetPage call and the page is NOT cached, so a later retry re-reads
  /// from disk instead of serving the damaged copy. Cached hits skip the
  /// verifier — a page is checked once per physical read.
  using PageVerifier = std::function<Status(PageId, const std::string&)>;
  void SetVerifier(PageVerifier verifier) { verifier_ = std::move(verifier); }

  /// The page contents (kPageSize bytes), from cache or disk.
  StatusOr<std::shared_ptr<const std::string>> GetPage(PageId id);

  /// Hit/miss/eviction counters live in the metrics registry
  /// (`storage.pool.hits` / `.misses` / `.evictions`, aggregated across
  /// pools); scope to one pool by diffing registry values around the work.
  size_t cached_pages() const { return cache_.entry_count(); }
  size_t shard_count() const { return cache_.shard_count(); }
  void ResetStats() { cache_.ResetStats(); }
  void Clear() { cache_.Clear(); }

 private:
  PageFile* file_;
  PageVerifier verifier_;
  ShardedLruCache<PageId, std::shared_ptr<const std::string>> cache_;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_BUFFER_POOL_H_
