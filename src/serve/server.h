#ifndef XTOPK_SERVE_SERVER_H_
#define XTOPK_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/query_service.h"

namespace xtopk {
namespace serve {

/// The network front of the query service: one event-loop thread
/// multiplexing every connection (epoll on Linux, poll everywhere else —
/// same fallback split obs::ExpositionServer uses), nonblocking sockets,
/// and a QueryService behind it doing admission, shedding, deadlines, and
/// execution on its worker pool.
///
/// Two dialects share the port, distinguished by the first bytes of each
/// connection:
///  - binary frames (protocol.h): persistent connections, many requests
///    in flight, responses ordered by completion and correlated by
///    request_id;
///  - HTTP/1.0 ("GET ..."): one request per connection. GET /search runs
///    a query and returns JSON; every other GET path is delegated to
///    obs::ExpositionServer::HandleRequest, so /metrics, /vars, /slowlog,
///    /events and /healthz work on the serve port too.
///
/// Worker completions marshal back to the event loop through a completion
/// queue and a self-pipe wakeup; connections are addressed by a
/// generation id, so a completion for a connection that died in the
/// meantime is dropped, never written to a reused fd.
class QueryServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port (tests); read it back with port().
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
    /// Use poll() even where epoll is available — exercised by tests so
    /// the fallback path stays correct on Linux CI.
    bool force_poll = false;
    /// Accepted connections above this are closed immediately (fd
    /// exhaustion guard).
    size_t max_connections = 256;
    QueryServiceOptions service;
  };

  /// `backend` must outlive the server.
  explicit QueryServer(ServeBackend* backend);
  QueryServer(ServeBackend* backend, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, starts the service workers and the event loop.
  /// False (reason in *error if given) when the bind fails.
  bool Start(std::string* error = nullptr);
  /// Stops the event loop, closes every connection, stops the service
  /// (queued queries answer kShuttingDown). Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  QueryService& service() { return service_; }

 private:
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string read_buffer;
    std::string write_buffer;
    /// -1 unknown (no bytes yet), 0 binary, 1 http.
    int dialect = -1;
    /// Responses still owed by the service; the connection lingers in a
    /// half-closed state until they drain.
    size_t in_flight = 0;
    /// Close once the write buffer drains (protocol poison, HTTP
    /// one-shot).
    bool close_after_write = false;
    /// The peer vanished; drop service completions on the floor.
    bool dead = false;
  };

  void EventLoop();
  void AcceptNew();
  /// Reads whatever is available; decodes and dispatches complete
  /// binary frames / HTTP requests. Returns false when the connection
  /// must be torn down.
  bool HandleReadable(Connection* conn);
  bool FlushWrites(Connection* conn);
  void DispatchBinaryFrame(Connection* conn, const std::string& payload);
  void DispatchHttp(Connection* conn, std::string_view request_line);
  /// Queues `bytes` on the connection's write buffer (event-loop thread
  /// only).
  void QueueWrite(Connection* conn, std::string bytes);
  /// epoll path: re-registers the connection's read/write interest after
  /// its write buffer changed state. No-op on the poll path, which
  /// rebuilds its fd set every iteration.
  void UpdateInterest(Connection* conn);
  void CloseConnection(uint64_t id);
  /// Thread-safe: called from service workers; wakes the event loop.
  void PostCompletion(uint64_t conn_id, std::string bytes,
                      bool close_after);
  void DrainCompletions();

  ServeBackend* backend_;  // not owned
  Options options_;
  QueryService service_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int epoll_fd_ = -1;  ///< -1 on the poll path
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;

  /// Event-loop-owned state (no lock: only that thread touches it).
  std::map<uint64_t, Connection> connections_;
  uint64_t next_conn_id_ = 1;

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;
    bool close_after = false;
  };
  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

}  // namespace serve
}  // namespace xtopk

#endif  // XTOPK_SERVE_SERVER_H_
