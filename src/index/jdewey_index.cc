#include "index/jdewey_index.h"

#include <algorithm>
#include <cassert>

#include "index/dag.h"
#include "index/index_access.h"
#include "obs/metrics.h"
#include "storage/compression.h"

namespace xtopk {

uint32_t JDeweyList::Component(uint32_t row, uint32_t level) const {
  assert(level >= 1 && level <= lengths[row]);
  const Run* run = columns[level - 1].FindRow(row);
  assert(run != nullptr);
  return run->value;
}

JDeweySeq JDeweyList::SequenceOf(uint32_t row) const {
  JDeweySeq seq(lengths[row]);
  for (uint32_t level = 1; level <= lengths[row]; ++level) {
    seq[level - 1] = Component(row, level);
  }
  return seq;
}

uint32_t JDeweyIndex::TermIdOf(const std::string& term) const {
  if (dictionary_compacted()) {
    uint32_t code = term_dict_.Lookup(term);
    return code == FrontCodedDict::kNotFound ? UINT32_MAX
                                             : dict_code_to_id_[code];
  }
  auto it = term_ids_.find(term);
  return it == term_ids_.end() ? UINT32_MAX : it->second;
}

const JDeweyList* JDeweyIndex::GetList(const std::string& term) const {
  XTOPK_COUNTER("index.term_lookups").Add(1);
  uint32_t id = TermIdOf(term);
  if (id == UINT32_MAX) {
    XTOPK_COUNTER("index.term_lookup_misses").Add(1);
    return nullptr;
  }
  return &lists_[id];
}

uint32_t JDeweyIndex::Frequency(const std::string& term) const {
  const JDeweyList* list = GetList(term);
  return list == nullptr ? 0 : list->num_rows();
}

const TermStats* JDeweyIndex::StatsOf(const std::string& term) const {
  if (stats_.empty()) return nullptr;
  uint32_t id = TermIdOf(term);
  if (id == UINT32_MAX || id >= stats_.size()) return nullptr;
  return &stats_[id];
}

void JDeweyIndex::CompactTermDictionary() {
  if (dictionary_compacted() || terms_.empty()) return;
  std::vector<std::string> sorted = terms_;
  std::sort(sorted.begin(), sorted.end());
  StatusOr<FrontCodedDict> dict = FrontCodedDict::Build(sorted);
  assert(dict.ok());  // terms_ is unique by construction
  if (!dict.ok()) return;
  term_dict_ = std::move(dict).value();
  dict_code_to_id_.resize(sorted.size());
  for (uint32_t code = 0; code < sorted.size(); ++code) {
    dict_code_to_id_[code] = term_ids_.at(sorted[code]);
  }
  term_ids_.clear();
  // Free the hash map's buckets, not just its entries.
  std::unordered_map<std::string, uint32_t>().swap(term_ids_);
}

TermStats ComputeListStats(const JDeweyList& list, size_t max_buckets) {
  TermStats stats;
  stats.rows = list.num_rows();
  stats.levels.reserve(list.columns.size());
  for (const Column& column : list.columns) {
    stats.levels.push_back(LevelHistogram::FromColumn(column, max_buckets));
  }
  return stats;
}

NodeId JDeweyIndex::NodeAt(uint32_t level, uint32_t value) const {
  const auto& level_nodes =
      borrowed_level_nodes_ != nullptr ? *borrowed_level_nodes_ : level_nodes_;
  if (level == 0 || level >= level_nodes.size() + 1 ||
      level_nodes[level - 1].empty()) {
    return kInvalidNode;
  }
  const auto& nodes = level_nodes[level - 1];
  auto it = std::lower_bound(
      nodes.begin(), nodes.end(), value,
      [](const std::pair<uint32_t, NodeId>& p, uint32_t v) {
        return p.first < v;
      });
  if (it != nodes.end() && it->first == value) return it->second;
  return kInvalidNode;
}

uint64_t JDeweyIndex::EncodedListBytes(bool include_scores) const {
  uint64_t total = 0;
  for (const JDeweyList& list : lists_) {
    // Per-term header: term id, row count, max length.
    total += 12;
    // Row lengths are stored as a varint stream (usually 1 byte each).
    total += list.num_rows();
    for (const Column& column : list.columns) {
      total += EncodedColumnSize(column, ColumnCodec::kAuto);
    }
    if (include_scores) {
      total += 4ull * list.num_rows();  // float32 per row
    }
  }
  return total;
}

uint64_t JDeweyIndex::SparseIndexBytes(uint32_t sample_rate) const {
  uint64_t total = 0;
  for (const JDeweyList& list : lists_) {
    for (const Column& column : list.columns) {
      total += SparseIndex::Build(column, sample_rate).EncodedSize();
    }
  }
  return total;
}

ResidentBytesReport MeasureResidentBytes(const JDeweyIndex& index) {
  ResidentBytesReport report;
  const auto& level_nodes = IndexIoAccess::LevelNodes(index);
  for (const auto& level : level_nodes) {
    report.tree += level.size() * sizeof(std::pair<uint32_t, NodeId>);
  }
  const DagCatalog* catalog = nullptr;
  for (const JDeweyList& list : index.lists()) {
    report.postings += list.lengths.size() * sizeof(uint16_t) +
                       list.scores.size() * sizeof(float) +
                       list.nodes.size() * sizeof(NodeId);
    for (const Column& column : list.columns) {
      report.postings += column.run_count() * sizeof(Run);
    }
    if (list.dag != nullptr) {
      report.postings += list.dag->ResidentBytes();
      catalog = list.dag->catalog.get();
    }
  }
  if (catalog != nullptr) report.postings += catalog->ResidentBytes();
  if (index.dictionary_compacted()) {
    report.dictionary = index.term_dictionary().ResidentBytes() +
                        index.terms().size() * sizeof(uint32_t);
  } else {
    // Hash map estimate: per entry one bucket slot, the key string (SSO
    // header + spill), and the 4-byte id.
    for (const std::string& term : index.terms()) {
      report.dictionary += sizeof(std::string) + 16 + term.size() + 4;
    }
  }
  // The terms_ vector itself (kept in both forms for id -> term decoding).
  for (const std::string& term : index.terms()) {
    report.dictionary += sizeof(std::string) + term.size();
  }
  return report;
}

void PublishResidentBytes(const ResidentBytesReport& report) {
  XTOPK_GAUGE("index.resident_bytes.tree")
      .Set(static_cast<int64_t>(report.tree));
  XTOPK_GAUGE("index.resident_bytes.postings")
      .Set(static_cast<int64_t>(report.postings));
  XTOPK_GAUGE("index.resident_bytes.dictionary")
      .Set(static_cast<int64_t>(report.dictionary));
  XTOPK_GAUGE("index.resident_bytes.total")
      .Set(static_cast<int64_t>(report.total()));
}

}  // namespace xtopk
