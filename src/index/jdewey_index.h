#ifndef XTOPK_INDEX_JDEWEY_INDEX_H_
#define XTOPK_INDEX_JDEWEY_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "storage/dictionary.h"
#include "storage/histogram.h"
#include "storage/sparse_index.h"
#include "util/status.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct DagListData;

/// The column-oriented inverted list of one keyword (paper §III-A).
///
/// Rows are keyword occurrences sorted by JDewey sequence; column `l` holds
/// S(l) of every row whose sequence reaches level l, run-length encoded
/// (storage/column.h). Each row also carries the occurrence's sequence
/// length, its local ranking score g(v, w), and (in memory only) the
/// occurrence's NodeId for materializing results and cross-checking against
/// oracles.
struct JDeweyList {
  std::vector<uint16_t> lengths;  ///< Per row: |S| (level of the occurrence).
  std::vector<float> scores;      ///< Per row: local score g(v, w).
  std::vector<NodeId> nodes;      ///< Per row: occurrence node.
  std::vector<Column> columns;    ///< columns[l-1] holds level l.
  uint32_t max_length = 0;        ///< Deepest occurrence level.
  /// Structure-aware compression companion (DESIGN.md §15): per-level
  /// deduplicated columns plus the exact expansion metadata. Null for
  /// terms untouched by subtree sharing (and whenever the builder ran
  /// with the DAG disabled); the full `columns` above always stay the
  /// source of truth, so every consumer that ignores `dag` is unaffected.
  std::shared_ptr<const DagListData> dag;

  uint32_t num_rows() const { return static_cast<uint32_t>(lengths.size()); }

  /// Column of 1-based `level`. Must satisfy 1 <= level <= max_length.
  const Column& column(uint32_t level) const { return columns[level - 1]; }

  /// S_row(level), i.e., the JDewey number of row's ancestor at `level`.
  /// Requires level <= lengths[row]. O(log runs).
  uint32_t Component(uint32_t row, uint32_t level) const;

  /// The full JDewey sequence of `row` (tests / result materialization).
  JDeweySeq SequenceOf(uint32_t row) const;
};

/// Keyword -> column-oriented inverted list, plus the (level, value) ->
/// NodeId reverse mapping needed to hand results back as tree nodes.
class JDeweyIndex {
 public:
  JDeweyIndex() = default;
  JDeweyIndex(JDeweyIndex&&) = default;
  JDeweyIndex& operator=(JDeweyIndex&&) = default;
  JDeweyIndex(const JDeweyIndex&) = delete;
  JDeweyIndex& operator=(const JDeweyIndex&) = delete;

  /// List for `term`, or nullptr if the term does not occur.
  const JDeweyList* GetList(const std::string& term) const;

  /// Document frequency (inverted-list length) of `term`; 0 if absent.
  uint32_t Frequency(const std::string& term) const;

  /// Node with JDewey number `value` at `level`; kInvalidNode if none.
  NodeId NodeAt(uint32_t level, uint32_t value) const;

  size_t term_count() const { return lists_.size(); }
  const std::vector<std::string>& terms() const { return terms_; }

  /// Deepest level of the encoded tree.
  uint32_t max_level() const { return max_level_; }

  /// Serialized size in bytes of the inverted lists under kAuto compression
  /// (Table I "IL" column). `include_scores` adds the per-row local scores
  /// (the Top-K Join variant stores them; the plain join-based one does
  /// not).
  uint64_t EncodedListBytes(bool include_scores) const;

  /// Serialized size of per-column sparse indexes (Table I "sparse").
  uint64_t SparseIndexBytes(uint32_t sample_rate = 64) const;

  /// All lists, index-aligned with terms() (term id order).
  const std::vector<JDeweyList>& lists() const { return lists_; }

  /// Planner statistics of `term` (per-level value histograms), or nullptr
  /// when the term is absent or the index carries no statistics (e.g. it
  /// was deserialized from the score-less in-memory format).
  const TermStats* StatsOf(const std::string& term) const;

  /// Whether this index carries build-time planner statistics.
  bool has_stats() const { return !stats_.empty(); }

  /// Replaces the term-id hash map with a front-coded dictionary
  /// (storage/dictionary.h): lookups translate through dictionary codes,
  /// term ids stay stable via a code -> id permutation. Only valid on a
  /// static index — incremental ingestion paths (disk sessions, index IO)
  /// mutate the hash map and must not run after compaction.
  void CompactTermDictionary();
  bool dictionary_compacted() const { return term_dict_.size() > 0; }
  const FrontCodedDict& term_dictionary() const { return term_dict_; }

 private:
  friend class IndexBuilder;
  friend struct IndexIoAccess;

  /// Looks a term up through whichever dictionary form is active; returns
  /// the term id or UINT32_MAX.
  uint32_t TermIdOf(const std::string& term) const;

  std::unordered_map<std::string, uint32_t> term_ids_;
  /// Compacted term space (CompactTermDictionary): codes are sorted
  /// positions; dict_code_to_id_ maps them back to stable term ids.
  FrontCodedDict term_dict_;
  std::vector<uint32_t> dict_code_to_id_;
  std::vector<std::string> terms_;
  std::vector<JDeweyList> lists_;
  /// Per-term planner statistics, index-aligned with lists_; empty when the
  /// index was built without statistics.
  std::vector<TermStats> stats_;
  /// Per level (1-based), (value, node) pairs sorted by value.
  std::vector<std::vector<std::pair<uint32_t, NodeId>>> level_nodes_;
  /// When set, NodeAt resolves against this mapping instead of
  /// level_nodes_. Disk-index sessions borrow the mapping their shared
  /// environment decoded once at Open instead of copying it per session;
  /// the owner must outlive this index. Set via IndexIoAccess.
  const std::vector<std::vector<std::pair<uint32_t, NodeId>>>*
      borrowed_level_nodes_ = nullptr;
  uint32_t max_level_ = 0;
};

/// Computes the planner statistics of one list: its row count plus one
/// equal-height histogram (<= `max_buckets` buckets) per level over the
/// list's distinct JDewey values. Used at build time by IndexBuilder and
/// BuildSegmentIndex, and by Compact when re-deriving exact statistics for
/// a merged segment.
TermStats ComputeListStats(const JDeweyList& list, size_t max_buckets);

/// Per-component resident footprint of an in-memory index: what the
/// index.resident_bytes.{tree,postings,dictionary} gauges report and the
/// Table I bench breaks down. `tree` is the (level, value) -> node reverse
/// mapping, `postings` the row arrays + run columns (+ DAG companion
/// data), `dictionary` the term strings and their lookup structure.
struct ResidentBytesReport {
  uint64_t tree = 0;
  uint64_t postings = 0;
  uint64_t dictionary = 0;
  uint64_t total() const { return tree + postings + dictionary; }
};
ResidentBytesReport MeasureResidentBytes(const JDeweyIndex& index);

/// Publishes `report` to the index.resident_bytes.* gauges (exposed via
/// xtopk_statsd /vars and the compact BENCH snapshot).
void PublishResidentBytes(const ResidentBytesReport& report);

}  // namespace xtopk

#endif  // XTOPK_INDEX_JDEWEY_INDEX_H_
