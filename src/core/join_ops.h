#ifndef XTOPK_CORE_JOIN_OPS_H_
#define XTOPK_CORE_JOIN_OPS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/join_planner.h"
#include "storage/column.h"

namespace xtopk {

/// A value matched across several columns of one level, carrying the run of
/// each joined column (runs arrive in join order; JoinSearch remaps them to
/// query keyword order). The joins follow set semantics (§III-B): one match
/// per value, regardless of run lengths.
struct LevelMatch {
  uint32_t value = 0;
  std::vector<const Run*> runs;
};

/// Execution counters for the join operators (tests assert on the dynamic
/// optimizer through these; benches report them).
struct JoinOpStats {
  uint64_t merge_joins = 0;
  uint64_t index_joins = 0;
  uint64_t gallop_joins = 0;
  uint64_t run_comparisons = 0;  ///< merge/gallop cursor steps
  uint64_t probes = 0;           ///< index-join binary searches
  uint64_t gallops = 0;          ///< exponential searches performed
  /// Levels whose intersection emptied before the last column, skipping
  /// the remaining steps (an empty left side would otherwise still be fed
  /// to ChooseJoinAlgo as a degenerate merge).
  uint64_t early_empty = 0;
};

/// Sort-merge intersection of the current matches with `column` (both are
/// value-sorted). Appends the matching run to each surviving match.
std::vector<LevelMatch> MergeIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats);

/// Like MergeIntersect, but advances the lagging cursor by exponential +
/// binary search instead of one step at a time, so the larger side is
/// skipped over in O(log distance) per gap. Chosen by the planner when the
/// sides are skewed (gallop_ratio); output is identical to MergeIntersect.
std::vector<LevelMatch> GallopIntersect(std::vector<LevelMatch> matches,
                                        const Column& column,
                                        JoinOpStats* stats);

/// Index-join intersection: binary-probes `column` for every current match
/// value. Preferable when |matches| << |column| (§III-C).
std::vector<LevelMatch> IndexIntersect(std::vector<LevelMatch> matches,
                                       const Column& column,
                                       JoinOpStats* stats);

/// Seeds the match list from a column's runs (the left-most input of the
/// left-deep join).
std::vector<LevelMatch> SeedMatches(const Column& column);

/// Observes one step of a left-deep intersection: position in join order,
/// the algorithm the planner picked, the right-hand column's run count, and
/// how many matches survived. The EXPLAIN hook.
using IntersectStepFn =
    std::function<void(size_t join_pos, JoinAlgo algo, uint64_t input_runs,
                       uint64_t output_matches)>;

/// The left-deep pipeline of Algorithm 1 for one level: seeds from
/// `columns[0]` and folds each subsequent column in, re-making the §III-C
/// dynamic merge/gallop/probe choice per step. `columns` must already be in
/// join order and non-null. This is THE intersection implementation — the
/// complete-result join and the top-K hybrid sweep both call it.
std::vector<LevelMatch> IntersectColumns(
    const std::vector<const Column*>& columns, const PlannerOptions& planner,
    JoinOpStats* stats, const IntersectStepFn& on_step = nullptr);

/// Plan-driven variant: step j (1-based over `columns`) runs
/// `algos[j - 1]`, fixed ahead of execution from the cost-based planner's
/// ESTIMATED sizes, instead of re-reading the observed sizes per step.
/// Output is identical to IntersectColumns — every operator computes the
/// same intersection — only the work differs. `algos` must have
/// columns.size() - 1 entries.
std::vector<LevelMatch> IntersectColumnsPlanned(
    const std::vector<const Column*>& columns,
    const std::vector<JoinAlgo>& algos, JoinOpStats* stats,
    const IntersectStepFn& on_step = nullptr);

}  // namespace xtopk

#endif  // XTOPK_CORE_JOIN_OPS_H_
