#include "core/engine.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

using Ids = testing::SmallCorpusIds;

TEST(EngineTest, EndToEndFromXmlText) {
  XmlTree tree = ParseXmlStringOrDie(R"(
    <db>
      <conf><paper>xml data</paper>
            <paper><title>xml</title><abs>data</abs></paper>
            <paper><title>xml</title></paper></conf>
      <conf><paper><title>data</title></paper>
            <paper><title>xml data xml</title></paper></conf>
    </db>)");
  Engine engine(tree);
  auto hits = engine.Search({"xml", "data"});
  ASSERT_EQ(hits.size(), 4u);
  // Sorted by score descending; every hit carries presentation context.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  for (const QueryHit& hit : hits) {
    EXPECT_FALSE(hit.tag.empty());
    EXPECT_NE(hit.node, kInvalidNode);
  }
}

TEST(EngineTest, TopKAgreesWithCompleteSearch) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  auto all = engine.Search({"xml", "data"});
  auto top2 = engine.SearchTopK({"xml", "data"}, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].node, all[0].node);
  EXPECT_NEAR(top2[0].score, all[0].score, 1e-9);
  EXPECT_NEAR(top2[1].score, all[1].score, 1e-9);
}

TEST(EngineTest, HybridReturnsSameAnswers) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  auto top = engine.SearchTopK({"xml", "data"}, 3);
  auto hybrid = engine.SearchHybrid({"xml", "data"}, 3);
  ASSERT_EQ(top.size(), hybrid.size());
  for (size_t i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].score, hybrid[i].score, 1e-9);
  }
}

TEST(EngineTest, SlcaSemantics) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  auto hits = engine.Search({"xml", "data"}, Semantics::kSlca);
  EXPECT_EQ(hits.size(), 3u);  // SLCA is unaffected: db has SLCA descendants
}

TEST(EngineTest, FrequencyLookup) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  EXPECT_EQ(engine.Frequency("xml"), 4u);
  EXPECT_EQ(engine.Frequency("absent"), 0u);
}

TEST(EngineTest, SnippetsComeFromAnswerRoot) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  auto hits = engine.Search({"xml", "data"});
  bool found_direct = false;
  for (const QueryHit& hit : hits) {
    if (hit.node == Ids::kPaper0) {
      EXPECT_EQ(hit.snippet, "xml data");
      EXPECT_EQ(hit.tag, "paper");
      found_direct = true;
    }
  }
  EXPECT_TRUE(found_direct);
}

TEST(EngineTest, QueryNormalization) {
  XmlTree tree = testing::MakeSmallCorpus();
  Engine engine(tree);
  // Case folding and tokenization at query time.
  auto upper = engine.Search({"XML", "Data"});
  auto lower = engine.Search({"xml", "data"});
  ASSERT_EQ(upper.size(), lower.size());
  for (size_t i = 0; i < upper.size(); ++i) {
    EXPECT_EQ(upper[i].node, lower[i].node);
  }
  // A multi-token keyword expands ("xml data" == {"xml", "data"}).
  auto phrase = engine.Search({"xml data"});
  ASSERT_EQ(phrase.size(), lower.size());
  // Duplicate keywords collapse instead of producing a degenerate join.
  auto dup = engine.Search({"xml", "XML", "data"});
  ASSERT_EQ(dup.size(), lower.size());
}

TEST(EngineTest, HighlightKeywords) {
  EXPECT_EQ(HighlightKeywords("xml data management", {"data"}),
            "xml [data] management");
  EXPECT_EQ(HighlightKeywords("XML and xml", {"xml"}), "[XML] and [xml]");
  EXPECT_EQ(HighlightKeywords("metadata is not data", {"data"}),
            "metadata is not [data]");  // whole tokens only
  EXPECT_EQ(HighlightKeywords("a,b;c", {"b"}), "a,[b];c");
  EXPECT_EQ(HighlightKeywords("", {"x"}), "");
  EXPECT_EQ(HighlightKeywords("top-k search", {"top-k"}, "<b>", "</b>"),
            "<b>top</b>-<b>k</b> search");
}

}  // namespace
}  // namespace xtopk
