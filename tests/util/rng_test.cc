#include "util/rng.h"

#include <gtest/gtest.h>

namespace xtopk {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextU64();
    EXPECT_EQ(va, b.NextU64());
    if (va != c.NextU64()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(7), 7u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(4);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(5);
  constexpr uint64_t kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kTrials, 0.1, 0.02);
  }
}

}  // namespace
}  // namespace xtopk
