// Figure 10 reproduction: top-10 ELCA query time for the join-based top-K
// algorithm vs the complete join-based evaluation (+ sort) and RDIL.
//
//   (a) randomly selected queries (low keyword correlation): one
//       low-frequency + one high-frequency keyword per query, low freq
//       swept 10 … 10k. Paper shape: the top-K join is WORSE than the
//       complete join here (few results -> it drains the lists), improves
//       as the low frequency (hence result count) grows, and RDIL wins at
//       the very low end only.
//   (b) hand-picked correlated pairs ({sensor, network} style).
//   (c) hand-picked correlated triples ({xml, keyword, search} style).
//       Paper shape: the top-K join terminates far earlier than the
//       complete evaluation; RDIL is much less effective.
//
// The "topk-hybrid" column runs the §V-D per-level hybrid (sweep a column
// completely when its estimated match count is small, star-join it
// otherwise): it should remove the top-K join's low-correlation pathology
// in (a) while keeping its wins in (b)/(c) — the paper's "complementary
// plans" conclusion realized inside one operator.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/rdil.h"
#include "bench_util.h"
#include "core/join_search.h"
#include "core/topk_search.h"

namespace {

constexpr size_t kTopK = 10;

struct Measure {
  double topk_ms = 0;
  double hybrid_ms = 0;
  double complete_ms = 0;
  double rdil_ms = 0;
};

Measure RunQueries(const xtopk::XmlTree& tree,
                   const xtopk::JDeweyIndex& jindex,
                   const xtopk::TopKIndex& topk_index,
                   const xtopk::RdilIndex& rdil_index,
                   const std::vector<std::vector<std::string>>& queries) {
  Measure m;
  for (const auto& query : queries) {
    m.topk_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::TopKSearchOptions options;
      options.k = kTopK;
      xtopk::TopKSearch search(topk_index, options);
      search.Search(query);
    });
    m.hybrid_ms += xtopk::bench::TimeOnceMs([&] {
      // §V-D per-level hybrid: sweep low-cardinality columns.
      xtopk::TopKSearchOptions options;
      options.k = kTopK;
      options.hybrid_min_matches = 32.0;
      xtopk::TopKSearch search(topk_index, options);
      search.Search(query);
    });
    m.complete_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::JoinSearch search(jindex);
      auto results = search.Search(query);
      xtopk::SortByScoreDesc(&results);
      if (results.size() > kTopK) results.resize(kTopK);
    });
    m.rdil_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::RdilOptions options;
      options.k = kTopK;
      xtopk::RdilSearch search(tree, rdil_index, options);
      search.Search(query);
    });
  }
  m.topk_ms /= queries.size();
  m.hybrid_ms /= queries.size();
  m.complete_ms /= queries.size();
  m.rdil_ms /= queries.size();
  return m;
}

}  // namespace

int main() {
  xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
  xtopk::TopKIndex topk_index = corpus.builder->BuildTopKIndex(jindex);
  xtopk::DeweyIndex dindex = corpus.builder->BuildDeweyIndex();
  xtopk::RdilIndex rdil_index = corpus.builder->BuildRdilIndex(dindex);

  std::printf("=== Figure 10(a): top-%zu, randomly selected queries ===\n",
              kTopK);
  std::printf("%-10s %14s %14s %16s %12s\n", "low freq", "topk-join",
              "topk-hybrid", "complete+sort", "RDIL");
  for (uint32_t f : xtopk::bench::kLowFreqs) {
    std::vector<std::vector<std::string>> queries;
    for (size_t i = 0; i < xtopk::bench::kQueriesPerPoint; ++i) {
      queries.push_back(xtopk::bench::MixedQuery(f, 2, i));
    }
    Measure m =
        RunQueries(*corpus.tree, jindex, topk_index, rdil_index, queries);
    std::printf("%-10u %11.3f ms %11.3f ms %13.3f ms %9.3f ms\n", f,
                m.topk_ms, m.hybrid_ms, m.complete_ms, m.rdil_ms);
  }

  std::printf("\n=== Figure 10(b): correlated 2-keyword queries ===\n");
  {
    std::vector<std::vector<std::string>> queries = {
        {"corr2a", "corr2b"},
        {"corr2b", "corr2a"},
    };
    std::printf("%-22s %14s %14s %16s %12s\n", "query", "topk-join",
                "topk-hybrid", "complete+sort", "RDIL");
    for (const auto& query : queries) {
      Measure m = RunQueries(*corpus.tree, jindex, topk_index, rdil_index,
                             {query});
      std::printf("%-22s %11.3f ms %11.3f ms %13.3f ms %9.3f ms\n",
                  (query[0] + "+" + query[1]).c_str(), m.topk_ms,
                  m.hybrid_ms, m.complete_ms, m.rdil_ms);
    }
  }

  std::printf("\n=== Figure 10(c): correlated 3-keyword queries ===\n");
  {
    std::vector<std::vector<std::string>> queries = {
        {"corr3a", "corr3b", "corr3c"},
        {"corr3c", "corr3b", "corr3a"},
        {"corr2a", "corr2b", "corr3a"},
    };
    std::printf("%-26s %14s %14s %16s %12s\n", "query", "topk-join",
                "topk-hybrid", "complete+sort", "RDIL");
    for (const auto& query : queries) {
      Measure m = RunQueries(*corpus.tree, jindex, topk_index, rdil_index,
                             {query});
      std::string name = query[0] + "+" + query[1] + "+" + query[2];
      std::printf("%-26s %11.3f ms %11.3f ms %13.3f ms %9.3f ms\n",
                  name.c_str(), m.topk_ms, m.hybrid_ms, m.complete_ms,
                  m.rdil_ms);
    }
  }
  return 0;
}
