#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "index/index_builder.h"
#include "workload/dblp_gen.h"
#include "workload/query_gen.h"
#include "workload/vocab.h"
#include "workload/xmark_gen.h"
#include "workload/zipf.h"

namespace xtopk {
namespace {

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfSampler zipf(1000, 1.1, 42);
  std::vector<uint32_t> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Next()];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 50000 / 50);  // rank 0 is heavy
  uint64_t tail = 0;
  for (size_t r = 500; r < 1000; ++r) tail += counts[r];
  EXPECT_LT(tail, 50000u / 4);
}

TEST(ZipfTest, DeterministicPerSeed) {
  ZipfSampler a(100, 1.0, 7), b(100, 1.0, 7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.Next(), b.Next());
}

TEST(VocabTest, WordsUniqueAndTokenizerStable) {
  Vocab vocab(5000);
  std::set<std::string> seen;
  for (size_t i = 0; i < vocab.size(); ++i) {
    const std::string& w = vocab.word(i);
    EXPECT_TRUE(seen.insert(w).second) << w;
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

TEST(DblpGenTest, ShapeMatchesSchema) {
  DblpGenOptions options;
  options.num_conferences = 4;
  options.years_per_conference = 3;
  options.papers_per_year = 5;
  DblpCorpus corpus = GenerateDblp(options);
  const XmlTree& tree = corpus.tree;
  EXPECT_EQ(tree.TagName(tree.root()), "dblp");
  EXPECT_EQ(tree.Children(tree.root()).size(), 4u);
  EXPECT_EQ(corpus.titles.size(), 4u * 3 * 5);
  for (NodeId title : corpus.titles) {
    EXPECT_EQ(tree.TagName(title), "title");
    EXPECT_EQ(tree.level(title), 5u);
    EXPECT_FALSE(tree.text(title).empty());
    EXPECT_EQ(tree.TagName(tree.parent(title)), "paper");
  }
}

TEST(DblpGenTest, PlantedFrequenciesExact) {
  DblpGenOptions options;
  options.num_conferences = 5;
  options.years_per_conference = 4;
  options.papers_per_year = 10;  // 200 titles
  options.planted = {
      PlantedTerm{"qlow", 7, "", 0.0},
      PlantedTerm{"qhigh", 120, "", 0.0},
      PlantedTerm{"qcorr", 30, "qhigh", 0.9},
  };
  DblpCorpus corpus = GenerateDblp(options);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  EXPECT_EQ(index.Frequency("qlow"), 7u);
  EXPECT_EQ(index.Frequency("qhigh"), 120u);
  EXPECT_EQ(index.Frequency("qcorr"), 30u);
  // Correlation: most qcorr titles also carry qhigh.
  const JDeweyList* corr = index.GetList("qcorr");
  const JDeweyList* high = index.GetList("qhigh");
  std::set<NodeId> high_nodes(high->nodes.begin(), high->nodes.end());
  uint32_t overlap = 0;
  for (NodeId n : corr->nodes) overlap += high_nodes.count(n);
  EXPECT_GT(overlap, 20u);
}

TEST(DblpGenTest, DeterministicPerSeed) {
  DblpGenOptions options;
  options.num_conferences = 2;
  options.years_per_conference = 2;
  options.papers_per_year = 3;
  DblpCorpus a = GenerateDblp(options);
  DblpCorpus b = GenerateDblp(options);
  ASSERT_EQ(a.tree.node_count(), b.tree.node_count());
  for (NodeId id = 0; id < a.tree.node_count(); ++id) {
    ASSERT_EQ(a.tree.text(id), b.tree.text(id));
  }
}

TEST(XmarkGenTest, ShapeIsDeepAndIrregular) {
  XmarkGenOptions options;
  options.items_per_region = 20;
  options.num_people = 30;
  options.num_open_auctions = 15;
  XmarkCorpus corpus = GenerateXmark(options);
  const XmlTree& tree = corpus.tree;
  EXPECT_EQ(tree.TagName(tree.root()), "site");
  EXPECT_GE(tree.max_level(), 7u);
  // Occurrence levels vary (the top-K index needs several segments).
  std::set<uint32_t> levels;
  for (NodeId n : corpus.text_nodes) levels.insert(tree.level(n));
  EXPECT_GE(levels.size(), 3u);
}

TEST(XmarkGenTest, PlantedFrequenciesExact) {
  XmarkGenOptions options;
  options.items_per_region = 40;
  options.num_people = 60;
  options.num_open_auctions = 30;
  options.planted = {PlantedTerm{"needle", 25, "", 0.0}};
  XmarkCorpus corpus = GenerateXmark(options);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  EXPECT_EQ(index.Frequency("needle"), 25u);
}

TEST(QueryGenTest, BandsRespected) {
  DblpGenOptions options;
  options.planted = {
      PlantedTerm{"f10a", 10, "", 0.0}, PlantedTerm{"f10b", 10, "", 0.0},
      PlantedTerm{"f10c", 10, "", 0.0}, PlantedTerm{"f500a", 500, "", 0.0},
      PlantedTerm{"f500b", 500, "", 0.0}, PlantedTerm{"f500c", 500, "", 0.0},
  };
  DblpCorpus corpus = GenerateDblp(options);
  IndexBuilder builder(corpus.tree);
  QueryGenerator gen(builder.terms(), /*seed=*/5);

  FrequencyBand low{10, 10}, high{500, 500};
  EXPECT_GE(gen.BandSize(low), 3u);
  EXPECT_GE(gen.BandSize(high), 3u);

  auto queries = gen.MixedFrequencyQueries(10, 3, low, high);
  ASSERT_EQ(queries.size(), 10u);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  for (const auto& q : queries) {
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(index.Frequency(q[0]), 10u);
    EXPECT_EQ(index.Frequency(q[1]), 500u);
    EXPECT_EQ(index.Frequency(q[2]), 500u);
    EXPECT_NE(q[1], q[2]);
  }

  auto equal = gen.EqualFrequencyQueries(5, 2, high);
  for (const auto& q : equal) {
    EXPECT_EQ(index.Frequency(q[0]), 500u);
    EXPECT_EQ(index.Frequency(q[1]), 500u);
  }
}

TEST(QueryGenTest, EmptyBandYieldsNothing) {
  DblpGenOptions options;
  options.num_conferences = 2;
  options.years_per_conference = 2;
  options.papers_per_year = 2;
  DblpCorpus corpus = GenerateDblp(options);
  IndexBuilder builder(corpus.tree);
  QueryGenerator gen(builder.terms(), 1);
  FrequencyBand impossible{1000000, 2000000};
  EXPECT_EQ(gen.BandSize(impossible), 0u);
  EXPECT_FALSE(gen.SampleInBand(impossible).has_value());
  EXPECT_TRUE(gen.MixedFrequencyQueries(5, 2, impossible, impossible).empty());
}

}  // namespace
}  // namespace xtopk
