# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_walkthrough "/root/repo/build/examples/paper_walkthrough")
set_tests_properties(example_paper_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dblp_topk "/root/repo/build/examples/dblp_topk" "10")
set_tests_properties(example_dblp_topk PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xmark_explorer "/root/repo/build/examples/xmark_explorer" "50")
set_tests_properties(example_xmark_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_demo "/root/repo/build/examples/hybrid_demo")
set_tests_properties(example_hybrid_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_usage "/root/repo/build/examples/xtopk_cli")
set_tests_properties(example_cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
