file(REMOVE_RECURSE
  "CMakeFiles/util_interval_set_test.dir/util/interval_set_test.cc.o"
  "CMakeFiles/util_interval_set_test.dir/util/interval_set_test.cc.o.d"
  "util_interval_set_test"
  "util_interval_set_test.pdb"
  "util_interval_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_interval_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
