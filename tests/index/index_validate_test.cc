#include "index/index_validate.h"

#include <gtest/gtest.h>

#include "index/index_builder.h"
#include "index/index_io.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;

TEST(IndexValidateTest, FreshIndexesAreValid) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    XmlTree tree = MakeRandomTree(seed, 300, 4, 7, {"alpha", "beta"}, 0.2);
    IndexBuilder builder(tree);
    JDeweyIndex index = builder.BuildJDeweyIndex();
    EXPECT_TRUE(ValidateIndex(index).ok()) << seed;
    EXPECT_TRUE(ValidateIndex(index, &tree).ok()) << seed;
  }
}

TEST(IndexValidateTest, LoadedIndexValidates) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, /*include_scores=*/true, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());
  EXPECT_TRUE(ValidateIndex(loaded, &tree).ok());
}

TEST(IndexValidateTest, NoScoresVariantAccepted) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, /*include_scores=*/false, &buf);
  JDeweyIndex loaded;
  ASSERT_TRUE(index_io::DecodeJDeweyIndex(buf, &loaded).ok());
  EXPECT_TRUE(ValidateIndex(loaded, &tree).ok());
}

TEST(IndexValidateTest, BitFlippedFilesEitherFailDecodeOrValidate) {
  // Mutate serialized bytes: the decoder or the validator must catch the
  // corruption (or the mutation was benign and both pass) — never a crash.
  XmlTree tree = MakeRandomTree(9, 150, 4, 6, {"alpha", "beta"}, 0.25);
  IndexBuilder builder(tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  std::string buf;
  index_io::EncodeJDeweyIndex(index, true, &buf);

  Rng rng(123);
  int decode_failures = 0, validate_failures = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = buf;
    size_t pos = 5 + rng.NextBounded(mutated.size() - 5);  // keep magic
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1u << rng.NextBounded(8)));
    JDeweyIndex out;
    Status s = index_io::DecodeJDeweyIndex(mutated, &out);
    if (!s.ok()) {
      ++decode_failures;
      continue;
    }
    if (!ValidateIndex(out).ok()) ++validate_failures;
  }
  // A large share of single-bit flips must be caught somewhere. (Flips in
  // the score payload often stay within the valid (0,1] range and are
  // undetectable in principle; structural bytes dominate the rest.)
  EXPECT_GT(decode_failures + validate_failures, 60);
}

}  // namespace
}  // namespace xtopk
