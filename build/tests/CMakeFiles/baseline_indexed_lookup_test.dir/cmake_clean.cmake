file(REMOVE_RECURSE
  "CMakeFiles/baseline_indexed_lookup_test.dir/baseline/indexed_lookup_test.cc.o"
  "CMakeFiles/baseline_indexed_lookup_test.dir/baseline/indexed_lookup_test.cc.o.d"
  "baseline_indexed_lookup_test"
  "baseline_indexed_lookup_test.pdb"
  "baseline_indexed_lookup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_indexed_lookup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
