#ifndef XTOPK_CORE_UPDATABLE_ENGINE_H_
#define XTOPK_CORE_UPDATABLE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// An Engine over a mutable document. Node insertions maintain the JDewey
/// encoding incrementally (§III-A: reserved gaps, partial re-encoding);
/// the inverted lists are refreshed lazily — a query rebuilds them only if
/// the tree changed since the last build. This is the amortization real
/// engines use for append-mostly corpora: the encoding (the part the paper
/// worries about) is maintained per insert, the index in batches.
class UpdatableEngine {
 public:
  explicit UpdatableEngine(XmlTree initial, EngineOptions options = {});

  /// Adds an element under `parent`, with optional direct text. Returns
  /// the new node. O(1) amortized encoding maintenance.
  NodeId AddElement(NodeId parent, const std::string& tag,
                    const std::string& text = "");

  /// Appends text to an existing element (marks the index dirty).
  void AppendText(NodeId node, const std::string& text);

  /// Queries (rebuild the index first if dirty).
  std::vector<QueryHit> Search(const std::vector<std::string>& keywords,
                               Semantics semantics = Semantics::kElca);
  std::vector<QueryHit> SearchTopK(const std::vector<std::string>& keywords,
                                   size_t k,
                                   Semantics semantics = Semantics::kElca);

  const XmlTree& tree() const { return tree_; }

  /// Numbers changed by encoding maintenance since construction (1 per
  /// plain insert; subtree size when a reserved range forced a partial
  /// re-encode).
  uint64_t encoding_updates() const { return encoding_updates_; }
  /// Index rebuilds triggered by queries after mutations.
  uint64_t rebuilds() const { return rebuilds_; }
  bool dirty() const { return dirty_; }

  /// Invariant check (tests): the maintained encoding still satisfies both
  /// JDewey requirements.
  Status ValidateEncoding() const { return encoding_.Validate(tree_); }

 private:
  void EnsureFresh();

  XmlTree tree_;
  EngineOptions options_;
  JDeweyEncoding encoding_;
  std::unique_ptr<Engine> engine_;
  bool dirty_ = false;
  uint64_t encoding_updates_ = 0;
  uint64_t rebuilds_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_UPDATABLE_ENGINE_H_
