file(REMOVE_RECURSE
  "CMakeFiles/storage_page_file_test.dir/storage/page_file_test.cc.o"
  "CMakeFiles/storage_page_file_test.dir/storage/page_file_test.cc.o.d"
  "storage_page_file_test"
  "storage_page_file_test.pdb"
  "storage_page_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_page_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
