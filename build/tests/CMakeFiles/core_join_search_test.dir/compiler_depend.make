# Empty compiler generated dependencies file for core_join_search_test.
# This may be replaced when dependencies are built.
