# Empty compiler generated dependencies file for index_index_validate_test.
# This may be replaced when dependencies are built.
