file(REMOVE_RECURSE
  "CMakeFiles/index_index_io_test.dir/index/index_io_test.cc.o"
  "CMakeFiles/index_index_io_test.dir/index/index_io_test.cc.o.d"
  "index_index_io_test"
  "index_index_io_test.pdb"
  "index_index_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_index_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
