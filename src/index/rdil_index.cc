#include "index/rdil_index.h"

#include "util/varint.h"

namespace xtopk {

const RdilList* RdilIndex::GetList(const std::string& term) const {
  auto it = term_ids_.find(term);
  if (it == term_ids_.end()) return nullptr;
  return &lists_[it->second];
}

uint64_t RdilIndex::EncodedListBytes() const {
  uint64_t total = 0;
  for (const RdilList& list : lists_) {
    total += 8;  // per-term header
    for (uint32_t row : list.by_score) {
      const DeweyId& d = list.base->deweys[row];
      total += 1;  // component count
      for (size_t i = 0; i < d.length(); ++i) {
        total += varint::LengthU64(d[i]);
      }
      total += 4;  // float score
    }
  }
  return total;
}

uint64_t RdilIndex::BTreeBytes() const {
  uint64_t total = 0;
  for (const RdilList& list : lists_) {
    if (list.dewey_btree != nullptr) {
      total += list.dewey_btree->EncodedSizeBytes();
    }
  }
  return total;
}

}  // namespace xtopk
