#include "index/segment.h"

#include <algorithm>
#include <utility>

#include "index/segment_builder.h"
#include "obs/metrics.h"

namespace xtopk {

namespace {

/// Wraps a borrowed pointer for the legacy SetMemtable overload: the
/// caller owns the memtable and keeps it alive across every version that
/// may still reference it.
std::shared_ptr<const JDeweyIndex> Borrow(const JDeweyIndex* memtable) {
  return std::shared_ptr<const JDeweyIndex>(memtable,
                                            [](const JDeweyIndex*) {});
}

}  // namespace

SegmentedIndex::SegmentedIndex() {
  head_ = std::make_shared<const SegmentSetVersion>(
      next_version_++, std::vector<std::shared_ptr<const SealedSegment>>{},
      nullptr, 0);
}

std::shared_ptr<const SegmentSetVersion> SegmentedIndex::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

void SegmentedIndex::PublishLocked(
    std::vector<std::shared_ptr<const SealedSegment>> sealed,
    std::shared_ptr<const JDeweyIndex> memtable, uint64_t corpus_nodes) {
  size_t sealed_count = sealed.size();
  head_ = std::make_shared<const SegmentSetVersion>(
      next_version_++, std::move(sealed), std::move(memtable), corpus_nodes);
  XTOPK_GAUGE("index.segments").Set(static_cast<int64_t>(sealed_count));
}

void SegmentedIndex::AddMemorySegment(JDeweyIndex segment,
                                      uint64_t covered_nodes) {
  std::shared_ptr<const SealedSegment> sealed =
      SealedSegment::FromMemory(std::move(segment), covered_nodes);
  std::lock_guard<std::mutex> lock(mu_);
  auto list = head_->sealed();
  list.push_back(std::move(sealed));
  PublishLocked(std::move(list), head_->memtable_ref(),
                head_->corpus_nodes());
}

Status SegmentedIndex::AddDiskSegment(const std::string& path,
                                      DiskIndexOptions options, uint64_t id) {
  StatusOr<std::shared_ptr<const SealedSegment>> sealed =
      SealedSegment::FromDisk(path, options, id);
  if (!sealed.ok()) return sealed.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto list = head_->sealed();
  list.push_back(std::move(*sealed));
  PublishLocked(std::move(list), head_->memtable_ref(),
                head_->corpus_nodes());
  return Status::Ok();
}

void SegmentedIndex::SetMemtable(const JDeweyIndex* memtable) {
  SetMemtable(memtable == nullptr ? nullptr : Borrow(memtable));
}

void SegmentedIndex::SetMemtable(std::shared_ptr<const JDeweyIndex> memtable) {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked(head_->sealed(), std::move(memtable), head_->corpus_nodes());
}

void SegmentedIndex::SetCorpusNodes(uint64_t corpus_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (corpus_nodes == head_->corpus_nodes()) return;
  PublishLocked(head_->sealed(), head_->memtable_ref(), corpus_nodes);
}

void SegmentedIndex::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  PublishLocked({}, nullptr, head_->corpus_nodes());
}

bool SegmentedIndex::PublishCompaction(
    const std::vector<std::shared_ptr<const SealedSegment>>& inputs,
    std::shared_ptr<const SealedSegment> output) {
  std::lock_guard<std::mutex> lock(mu_);
  auto list = head_->sealed();
  // Identity-match every input in the head; the output takes the first
  // input's position so publish order is preserved.
  for (const auto& input : inputs) {
    if (std::find(list.begin(), list.end(), input) == list.end())
      return false;
  }
  if (inputs.empty()) return false;
  auto first = std::find(list.begin(), list.end(), inputs.front());
  *first = std::move(output);
  list.erase(std::remove_if(list.begin(), list.end(),
                            [&](const std::shared_ptr<const SealedSegment>&
                                    seg) {
                              return std::find(inputs.begin(), inputs.end(),
                                               seg) != inputs.end();
                            }),
             list.end());
  PublishLocked(std::move(list), head_->memtable_ref(),
                head_->corpus_nodes());
  return true;
}

uint32_t SegmentedIndex::Frequency(const std::string& term) const {
  return Pin()->Frequency(term);
}

uint32_t SegmentedIndex::MaxLength(const std::string& term) const {
  return Pin()->MaxLength(term);
}

const TermStats* SegmentedIndex::Stats(const std::string& term) const {
  return Pin()->Stats(term);
}

NodeId SegmentedIndex::NodeAt(uint32_t level, uint32_t value) const {
  return Pin()->NodeAt(level, value);
}

uint32_t SegmentedIndex::max_level() const { return Pin()->max_level(); }

StatusOr<const JDeweyList*> SegmentedIndex::Resolve(
    const std::string& term, uint32_t /*up_to_level*/, bool /*need_scores*/,
    const std::vector<ValueBounds>* /*level_bounds*/) {
  return Pin()->Resolve(term);
}

Status SegmentedIndex::Compact(const std::string& path,
                               DiskIndexOptions options) {
  std::shared_ptr<const SegmentSetVersion> pinned = Pin();
  if (pinned->sealed().empty()) return Status::Ok();

  uint64_t covered = 0;
  StatusOr<JDeweyIndex> merged =
      BuildCompactedSegment(pinned->sealed(), &covered);
  if (!merged.ok()) return merged.status();

  Status s = DiskIndexWriter::Write(*merged, /*include_scores=*/true, path);
  if (!s.ok()) return s;
  SegmentManifest manifest = ManifestFromSegment(*merged);
  manifest.covered_nodes = covered;
  s = manifest.Save(path + ".manifest");
  if (!s.ok()) return s;

  StatusOr<std::shared_ptr<const SealedSegment>> output =
      SealedSegment::FromDisk(path, options);
  if (!output.ok()) return output.status();

  if (!PublishCompaction(pinned->sealed(), *output)) {
    // A concurrent mutation changed the set since the pin; the merge no
    // longer describes the head. Leave the head alone — the caller sees
    // the conflict and may retry.
    return Status::Internal("segment set changed during Compact");
  }
  // Superseded inputs' files are deleted when the last pinned version
  // drops them — except an input living at the output path, which would
  // delete the file just written.
  for (const auto& seg : pinned->sealed()) {
    if (!seg->path().empty() && seg->path() != path) seg->MarkSuperseded();
  }
  XTOPK_COUNTER("index.compactions").Add(1);
  return Status::Ok();
}

}  // namespace xtopk
