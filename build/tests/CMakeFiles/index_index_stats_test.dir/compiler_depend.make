# Empty compiler generated dependencies file for index_index_stats_test.
# This may be replaced when dependencies are built.
