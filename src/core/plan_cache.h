#ifndef XTOPK_CORE_PLAN_CACHE_H_
#define XTOPK_CORE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/join_planner.h"

namespace xtopk {

/// Bounded cache of join plans, keyed by the term-set fingerprint. A hit
/// additionally requires the cached plan's watermark to equal the
/// caller's current TermSource::PlanWatermark — a stale entry (the index
/// sealed, ingested, or compacted since) counts as a miss and is replaced
/// on the next Insert, so invalidation is free: no mutation path ever has
/// to reach into the cache.
///
/// Thread-safe (Engine::RunBatch plans from worker threads); plans are
/// immutable and handed out as shared_ptr so a replaced entry stays valid
/// for queries still holding it. Hits and misses are counted both locally
/// and in the process-wide registry (core.plan.cache_hits / _misses).
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  /// The cached plan for `fingerprint` if present AND planned at
  /// `watermark`; nullptr otherwise (counted as a miss).
  std::shared_ptr<const JoinPlan> Lookup(uint64_t fingerprint,
                                         uint64_t watermark);

  /// Caches `plan` under its own fingerprint/watermark, replacing any
  /// prior entry. Evicts in insertion order when over capacity.
  void Insert(std::shared_ptr<const JoinPlan> plan);

  void Clear();
  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::unordered_map<uint64_t, std::shared_ptr<const JoinPlan>> plans_;
  std::vector<uint64_t> insertion_order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_PLAN_CACHE_H_
