# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for util_interval_set_test.
