#ifndef XTOPK_OBS_ACCOUNTING_H_
#define XTOPK_OBS_ACCOUNTING_H_

#include <cstdint>
#include <string>

namespace xtopk {
namespace obs {

/// Per-query resource attribution. An engine query installs one of these in
/// thread-local storage for its duration (ScopedAccounting); the storage,
/// index, and core layers blindly call the Account* hooks below, which are
/// a null-check plus a plain add when no query is active — cheap enough to
/// leave compiled in everywhere.
///
/// All counts are per-query deltas, not process totals: the cumulative
/// process view stays in MetricsRegistry; this struct answers "what did
/// *this* query cost".
struct ResourceAccounting {
  uint64_t pages_read = 0;     ///< physical page-file reads
  uint64_t bytes_decoded = 0;  ///< compressed bytes run through a decoder
  uint64_t cache_hits = 0;     ///< sharded-LRU hits (buffer pool + decoded)
  uint64_t cache_misses = 0;
  uint64_t rows_joined = 0;  ///< join candidates materialized
  double wall_us = 0;
  double cpu_us = 0;  ///< this thread's CPU time (CLOCK_THREAD_CPUTIME_ID)
  /// How the join order was chosen: "planned_cached" | "planned" |
  /// "heuristic" | "" (single-term / not applicable).
  std::string planner_mode;

  void Clear() { *this = ResourceAccounting(); }

  /// {"pages_read":...,"bytes_decoded":...,...,"planner_mode":"..."}
  void AppendJson(std::string* out) const;
  std::string ToJson() const {
    std::string out;
    AppendJson(&out);
    return out;
  }
};

namespace internal {
/// The accounting sink for the current thread, or nullptr when no query is
/// in flight on it.
extern thread_local ResourceAccounting* tls_accounting;
}  // namespace internal

/// Installs `acc` as this thread's accounting sink for the scope, restoring
/// whatever was installed before on destruction (so nested scopes — e.g. a
/// replay harness timing a batch that times each query — attribute to the
/// innermost one).
class ScopedAccounting {
 public:
  explicit ScopedAccounting(ResourceAccounting* acc)
      : previous_(internal::tls_accounting) {
    internal::tls_accounting = acc;
  }
  ~ScopedAccounting() { internal::tls_accounting = previous_; }

  ScopedAccounting(const ScopedAccounting&) = delete;
  ScopedAccounting& operator=(const ScopedAccounting&) = delete;

 private:
  ResourceAccounting* previous_;
};

/// The accounting sink active on this thread (nullptr if none). Exposed for
/// code that wants to attribute something custom.
inline ResourceAccounting* CurrentAccounting() {
  return internal::tls_accounting;
}

// --- hooks, called from the instrumented layers ---------------------------

inline void AccountPagesRead(uint64_t n) {
  if (auto* a = internal::tls_accounting) a->pages_read += n;
}
inline void AccountBytesDecoded(uint64_t n) {
  if (auto* a = internal::tls_accounting) a->bytes_decoded += n;
}
inline void AccountCacheHit(uint64_t n = 1) {
  if (auto* a = internal::tls_accounting) a->cache_hits += n;
}
inline void AccountCacheMiss(uint64_t n = 1) {
  if (auto* a = internal::tls_accounting) a->cache_misses += n;
}
inline void AccountRowsJoined(uint64_t n) {
  if (auto* a = internal::tls_accounting) a->rows_joined += n;
}

/// CPU time consumed by the calling thread, in microseconds
/// (CLOCK_THREAD_CPUTIME_ID; 0 where unsupported).
double ThreadCpuMicros();

}  // namespace obs
}  // namespace xtopk

#endif  // XTOPK_OBS_ACCOUNTING_H_
