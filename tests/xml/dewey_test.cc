#include "xml/dewey.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

TEST(DeweyTest, CompareIsDocumentOrder) {
  DeweyId a({1, 1, 2});
  DeweyId b({1, 1, 2, 1});
  DeweyId c({1, 2});
  EXPECT_LT(a.Compare(b), 0);  // prefix before extension
  EXPECT_LT(b.Compare(c), 0);
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_GT(c.Compare(a), 0);
}

TEST(DeweyTest, LongestCommonPrefixIsLca) {
  DeweyId u({1, 1, 2, 2, 1});
  DeweyId v({1, 1, 2, 3, 2});
  DeweyId lca = u.LongestCommonPrefix(v);
  EXPECT_EQ(lca.ToString(), "1.1.2");
  EXPECT_EQ(u.CommonPrefixLength(v), 3u);
}

TEST(DeweyTest, AncestorChecks) {
  DeweyId anc({1, 1});
  DeweyId desc({1, 1, 3, 4});
  EXPECT_TRUE(anc.IsAncestorOf(desc));
  EXPECT_FALSE(desc.IsAncestorOf(anc));
  EXPECT_FALSE(anc.IsAncestorOf(anc));
  EXPECT_TRUE(anc.IsAncestorOf(anc, /*or_self=*/true));
  DeweyId sibling({1, 2});
  EXPECT_FALSE(anc.IsAncestorOf(sibling));
}

TEST(DeweyTest, AssignMatchesTreeStructure) {
  XmlTree tree = MakeSmallCorpus();
  std::vector<DeweyId> ids = AssignDeweyIds(tree);
  EXPECT_EQ(ids[Ids::kDb].ToString(), "1");
  EXPECT_EQ(ids[Ids::kConf0].ToString(), "1.1");
  EXPECT_EQ(ids[Ids::kConf1].ToString(), "1.2");
  EXPECT_EQ(ids[Ids::kPaper2].ToString(), "1.1.3");
  EXPECT_EQ(ids[Ids::kP4Title].ToString(), "1.2.2.1");
  // Document order of Dewey ids equals NodeId (creation/preorder) order
  // within this corpus... siblings created in order.
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    EXPECT_EQ(ids[id].length(), tree.level(id));
  }
}

TEST(DeweyTest, NodeByDeweyInvertsAssignment) {
  XmlTree tree = MakeSmallCorpus();
  std::vector<DeweyId> ids = AssignDeweyIds(tree);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    EXPECT_EQ(NodeByDewey(tree, ids[id]), id);
  }
  EXPECT_EQ(NodeByDewey(tree, DeweyId({1, 9})), kInvalidNode);
  EXPECT_EQ(NodeByDewey(tree, DeweyId({2})), kInvalidNode);
  EXPECT_EQ(NodeByDewey(tree, DeweyId()), kInvalidNode);
}

TEST(DeweyTest, EncodedSizeDeltaSharesPrefixes) {
  DeweyId prev({1, 5, 3, 2});
  DeweyId close({1, 5, 3, 4});
  DeweyId far({2, 900000, 100000, 5, 6});
  // A neighbour sharing a long prefix costs less than a distant id.
  EXPECT_LT(DeweyId::EncodedSizeDelta(prev, close),
            DeweyId::EncodedSizeDelta(prev, far));
}

TEST(DeweyTest, PrefixTruncates) {
  DeweyId d({1, 2, 3, 4});
  EXPECT_EQ(d.Prefix(2).ToString(), "1.2");
  EXPECT_EQ(d.Prefix(4).ToString(), "1.2.3.4");
  EXPECT_TRUE(d.Prefix(0).empty());
}

}  // namespace
}  // namespace xtopk
