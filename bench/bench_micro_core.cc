// Micro-benchmarks of the substrate operations every query touches: the
// two join operators, JDewey LCA, B+-tree probes, interval-set pruning,
// and the score-segment heap. Not a paper figure — regression guardrails
// for the operators the figure benches are built from.

#include <benchmark/benchmark.h>

#include <cstring>

#include "btree/btree.h"
#include "core/join_ops.h"
#include "util/interval_set.h"
#include "util/rng.h"
#include "xml/jdewey.h"

namespace {

xtopk::Column MakeColumn(uint64_t seed, uint32_t values, double keep) {
  xtopk::Rng rng(seed);
  xtopk::Column col;
  uint32_t row = 0;
  for (uint32_t v = 1; v <= values; ++v) {
    if (rng.NextBernoulli(keep)) col.Append(row++, v);
  }
  return col;
}

void BM_MergeJoin(benchmark::State& state) {
  xtopk::Column a = MakeColumn(1, 100000, 0.5);
  xtopk::Column b = MakeColumn(2, 100000, 0.5);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::MergeIntersect(xtopk::SeedMatches(a), b, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.run_count() + b.run_count()));
}
BENCHMARK(BM_MergeJoin);

void BM_MergeJoinSkewed(benchmark::State& state) {
  // 1:50 size skew — the regime the planner hands to galloping.
  xtopk::Column small = MakeColumn(8, 100000, 0.02);  // ~2k runs
  xtopk::Column big = MakeColumn(9, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::MergeIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (small.run_count() + big.run_count()));
}
BENCHMARK(BM_MergeJoinSkewed);

void BM_GallopJoinSkewed(benchmark::State& state) {
  xtopk::Column small = MakeColumn(8, 100000, 0.02);
  xtopk::Column big = MakeColumn(9, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::GallopIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (small.run_count() + big.run_count()));
}
BENCHMARK(BM_GallopJoinSkewed);

void BM_GallopJoinBalanced(benchmark::State& state) {
  // Balanced inputs — the regime where galloping should roughly tie merge,
  // guarding the planner's gallop_ratio cutoff from below.
  xtopk::Column a = MakeColumn(1, 100000, 0.5);
  xtopk::Column b = MakeColumn(2, 100000, 0.5);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::GallopIntersect(xtopk::SeedMatches(a), b, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          (a.run_count() + b.run_count()));
}
BENCHMARK(BM_GallopJoinBalanced);

void BM_IndexJoinSmallProbe(benchmark::State& state) {
  xtopk::Column small = MakeColumn(3, 100000, 0.002);  // ~200 runs
  xtopk::Column big = MakeColumn(4, 100000, 0.9);
  for (auto _ : state) {
    xtopk::JoinOpStats stats;
    auto out = xtopk::IndexIntersect(xtopk::SeedMatches(small), big, &stats);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * small.run_count());
}
BENCHMARK(BM_IndexJoinSmallProbe);

void BM_JDeweyLca(benchmark::State& state) {
  xtopk::Rng rng(5);
  std::vector<xtopk::JDeweySeq> seqs;
  for (int i = 0; i < 1024; ++i) {
    xtopk::JDeweySeq seq = {1};
    uint32_t len = 2 + static_cast<uint32_t>(rng.NextBounded(10));
    for (uint32_t l = 1; l < len; ++l) {
      seq.push_back(seq.back() * 3 + static_cast<uint32_t>(
                                         rng.NextBounded(3)));
    }
    seqs.push_back(std::move(seq));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto lca = xtopk::JDeweyLca(seqs[i & 1023], seqs[(i * 7 + 3) & 1023]);
    benchmark::DoNotOptimize(lca);
    ++i;
  }
}
BENCHMARK(BM_JDeweyLca);

void BM_BTreeLowerBound(benchmark::State& state) {
  xtopk::BTree tree(128);
  xtopk::Rng rng(6);
  for (int i = 0; i < 100000; ++i) {
    char key[8];
    uint64_t v = rng.NextU64();
    std::memcpy(key, &v, 8);
    tree.Insert(std::string_view(key, 8), i);
  }
  for (auto _ : state) {
    char key[8];
    uint64_t v = rng.NextU64();
    std::memcpy(key, &v, 8);
    auto it = tree.LowerBound(std::string_view(key, 8));
    benchmark::DoNotOptimize(it.Valid());
  }
}
BENCHMARK(BM_BTreeLowerBound);

void BM_IntervalSetPruning(benchmark::State& state) {
  // The range-checking access pattern: nested adds + overlap counts.
  xtopk::Rng rng(7);
  for (auto _ : state) {
    xtopk::IntervalSet set;
    for (int i = 0; i < 1000; ++i) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(1u << 20));
      uint32_t b = a + 1 + static_cast<uint32_t>(rng.NextBounded(512));
      if (rng.NextBernoulli(0.5)) {
        set.Add(a, b);
      } else {
        benchmark::DoNotOptimize(set.CountOverlap(a, b));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_IntervalSetPruning);

}  // namespace

BENCHMARK_MAIN();
