#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "obs/metrics.h"
#include "storage/buffer_pool.h"
#include "util/rng.h"

namespace xtopk {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

uint64_t RegistryCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name).value();
}

TEST(PageFileTest, AppendAndReadBack) {
  std::string path = TempPath("pagefile_basic");
  PageFile file;
  ASSERT_TRUE(file.Open(path, /*create=*/true).ok());
  auto p0 = file.AppendPage("hello");
  auto p1 = file.AppendPage(std::string(PageFile::kPageSize, 'x'));
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p0, 0u);
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(file.page_count(), 2u);

  std::string out;
  ASSERT_TRUE(file.ReadPage(*p0, &out).ok());
  EXPECT_EQ(out.substr(0, 5), "hello");
  EXPECT_EQ(out.size(), PageFile::kPageSize);
  EXPECT_EQ(out[5], '\0');  // zero padding
  ASSERT_TRUE(file.ReadPage(*p1, &out).ok());
  EXPECT_EQ(out, std::string(PageFile::kPageSize, 'x'));
  ASSERT_TRUE(file.Close().ok());
  std::remove(path.c_str());
}

TEST(PageFileTest, ReopenPersists) {
  std::string path = TempPath("pagefile_reopen");
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    ASSERT_TRUE(file.AppendPage("first").ok());
    ASSERT_TRUE(file.AppendPage("second").ok());
    ASSERT_TRUE(file.Sync().ok());
    ASSERT_TRUE(file.Close().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  EXPECT_EQ(file.page_count(), 2u);
  std::string out;
  ASSERT_TRUE(file.ReadPage(1, &out).ok());
  EXPECT_EQ(out.substr(0, 6), "second");
  std::remove(path.c_str());
}

TEST(PageFileTest, ErrorsAreStatuses) {
  PageFile file;
  std::string out;
  EXPECT_FALSE(file.ReadPage(0, &out).ok());  // not open
  EXPECT_FALSE(file.Open("/nonexistent/dir/f.pg", false).ok());

  std::string path = TempPath("pagefile_errors");
  ASSERT_TRUE(file.Open(path, true).ok());
  EXPECT_EQ(file.ReadPage(5, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(
      file.AppendPage(std::string(PageFile::kPageSize + 1, 'y')).status()
          .code(),
      StatusCode::kInvalidArgument);
  ASSERT_TRUE(file.Close().ok());
  std::remove(path.c_str());
}

TEST(PageFileTest, CountsIo) {
  std::string path = TempPath("pagefile_stats");
  PageFile file;
  ASSERT_TRUE(file.Open(path, true).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(file.AppendPage("p").ok());
  }
  std::string out;
  ASSERT_TRUE(file.ReadPage(0, &out).ok());
  ASSERT_TRUE(file.ReadPage(4, &out).ok());
  EXPECT_EQ(file.pages_written(), 5u);
  EXPECT_EQ(file.pages_read(), 2u);
  file.ResetStats();
  EXPECT_EQ(file.pages_read(), 0u);
  std::remove(path.c_str());
}

TEST(BufferPoolTest, CachesAndEvictsLru) {
  std::string path = TempPath("bufferpool_lru");
  PageFile file;
  ASSERT_TRUE(file.Open(path, true).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(file.AppendPage(std::string(1, static_cast<char>('a' + i)))
                    .ok());
  }
  BufferPool pool(&file, /*capacity_pages=*/3);
  const uint64_t hits_before = RegistryCounter("storage.pool.hits");
  const uint64_t misses_before = RegistryCounter("storage.pool.misses");
  // Misses fill the pool.
  for (PageId id = 0; id < 3; ++id) {
    auto page = pool.GetPage(id);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ((**page)[0], static_cast<char>('a' + id));
  }
  EXPECT_EQ(RegistryCounter("storage.pool.misses") - misses_before, 3u);
  EXPECT_EQ(RegistryCounter("storage.pool.hits") - hits_before, 0u);
  // Hits don't touch the file.
  uint64_t reads_before = file.pages_read();
  ASSERT_TRUE(pool.GetPage(1).ok());
  EXPECT_EQ(RegistryCounter("storage.pool.hits") - hits_before, 1u);
  EXPECT_EQ(file.pages_read(), reads_before);
  // Page 0 is now LRU... order after hits: 1,2,0 -> inserting 3 evicts 0.
  ASSERT_TRUE(pool.GetPage(3).ok());
  EXPECT_EQ(pool.cached_pages(), 3u);
  reads_before = file.pages_read();
  ASSERT_TRUE(pool.GetPage(0).ok());  // must re-read
  EXPECT_EQ(file.pages_read(), reads_before + 1);
}

TEST(BufferPoolTest, EvictedPageStaysValidViaSharedPtr) {
  std::string path = TempPath("bufferpool_shared");
  PageFile file;
  ASSERT_TRUE(file.Open(path, true).ok());
  ASSERT_TRUE(file.AppendPage("keepme").ok());
  ASSERT_TRUE(file.AppendPage("other").ok());
  BufferPool pool(&file, 1);
  auto kept = pool.GetPage(0);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(pool.GetPage(1).ok());  // evicts page 0 from the pool
  EXPECT_EQ((**kept).substr(0, 6), "keepme");  // still alive
  std::remove(path.c_str());
}

TEST(BufferPoolTest, RandomizedAgainstDirectReads) {
  std::string path = TempPath("bufferpool_random");
  PageFile file;
  ASSERT_TRUE(file.Open(path, true).ok());
  constexpr int kPages = 32;
  for (int i = 0; i < kPages; ++i) {
    ASSERT_TRUE(file.AppendPage(std::string(8, static_cast<char>(i))).ok());
  }
  BufferPool pool(&file, 7);
  const uint64_t hits_before = RegistryCounter("storage.pool.hits");
  const uint64_t misses_before = RegistryCounter("storage.pool.misses");
  Rng rng(31337);
  for (int trial = 0; trial < 2000; ++trial) {
    PageId id = static_cast<PageId>(rng.NextBounded(kPages));
    auto page = pool.GetPage(id);
    ASSERT_TRUE(page.ok());
    ASSERT_EQ((**page)[0], static_cast<char>(id));
    ASSERT_LE(pool.cached_pages(), 7u);
  }
  EXPECT_GT(RegistryCounter("storage.pool.hits"), hits_before);
  EXPECT_GT(RegistryCounter("storage.pool.misses"), misses_before);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtopk
