// Incremental-indexing throughput (DESIGN.md "Readers & segments").
//
// The paper's index is built once and queried; this bench measures the
// orthogonal maintenance axis: how fast the UpdatableEngine ingests new
// documents, what queries cost while ingest is in flight, and what
// sealing/compaction costs. Three sections:
//
//   A. ingest — AddDocument over generated paper-like documents with a
//      query mixed in every kQueriesEvery docs (the reader forcing the
//      memtable refresh), reporting docs/sec, rebuilds (must stay 0 on
//      this append-only workload), and memtable refresh count;
//   B. query latency during ingest — p50/p95/p99 of the interleaved
//      queries, i.e. the cost of reading a half-built memtable on top of
//      the sealed base;
//   C. seal + compact — milliseconds to seal the memtable into a disk
//      segment and to fold all sealed segments into one, with a
//      before/after query to show the fanout collapsing.
//
// Each section emits a `BENCH {json}` line so the numbers land in the
// BENCH_* trajectory.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/updatable_engine.h"
#include "util/rng.h"
#include "util/timer.h"
#include "xml/xml_parser.h"

namespace {

using namespace xtopk;

constexpr size_t kQueriesEvery = 10;  // one query per this many ingested docs

const char* const kTitleWords[] = {"xml",     "keyword", "search",  "ranking",
                                   "index",   "query",   "top",     "stream",
                                   "dewey",   "join",    "column",  "segment"};
const char* const kVenues[] = {"icde", "vldb", "sigmod", "edbt"};

std::string MakeDocXml(Rng* rng, size_t i) {
  std::string title;
  for (int w = 0; w < 4; ++w) {
    if (w > 0) title += ' ';
    title += kTitleWords[rng->NextBounded(sizeof(kTitleWords) /
                                          sizeof(kTitleWords[0]))];
  }
  return "<paper><title>" + title + "</title><author>author" +
         std::to_string(rng->NextBounded(200)) + "</author><venue>" +
         kVenues[i % 4] + "</venue><year>" +
         std::to_string(2000 + i % 26) + "</year></paper>";
}

int RunBench() {
  const size_t num_docs = 2000 * bench::BenchScale();
  Rng rng(2029);

  XmlTree shell;
  shell.CreateRoot("collection");
  UpdatableEngine engine(std::move(shell));

  const std::vector<std::vector<std::string>> queries = {
      {"xml", "keyword"}, {"ranking", "join"}, {"segment", "icde"},
      {"dewey", "column"}};

  std::printf("=== Update throughput: incremental segmented ingest ===\n");
  std::printf("docs: %zu, one query per %zu docs\n\n", num_docs,
              kQueriesEvery);

  // --- Sections A+B: interleaved ingest and queries -----------------------
  obs::Histogram query_us;
  double ingest_millis = 0, query_millis = 0;
  uint64_t result_checksum = 0;
  size_t queries_run = 0;
  for (size_t i = 0; i < num_docs; ++i) {
    XmlTree doc = ParseXmlStringOrDie(MakeDocXml(&rng, i));
    Timer add_timer;
    engine.AddDocument("p" + std::to_string(i), doc);
    ingest_millis += add_timer.ElapsedMillis();
    if (i % kQueriesEvery == kQueriesEvery - 1) {
      const auto& q = queries[(i / kQueriesEvery) % queries.size()];
      Timer query_timer;
      auto hits = engine.SearchTopK(q, 10);
      double micros = query_timer.ElapsedMicros();
      query_millis += micros / 1000.0;
      query_us.Record(static_cast<uint64_t>(micros));
      result_checksum += hits.size() * (i + 1);
      ++queries_run;
    }
  }
  double docs_per_sec = 1000.0 * static_cast<double>(num_docs) / ingest_millis;
  std::printf("ingest: %10.0f docs/sec (%.1f ms total)\n", docs_per_sec,
              ingest_millis);
  std::printf("        rebuilds %llu (append-only: must be 0), "
              "memtable refreshes %llu, encoding updates %llu\n",
              (unsigned long long)engine.rebuilds(),
              (unsigned long long)engine.memtable_refreshes(),
              (unsigned long long)engine.encoding_updates());
  if (engine.rebuilds() != 0) {
    std::fprintf(stderr, "REGRESSION: append-only ingest triggered %llu full "
                 "rebuilds\n",
                 (unsigned long long)engine.rebuilds());
    return 1;
  }
  double p50 = query_us.Percentile(0.50);
  double p95 = query_us.Percentile(0.95);
  double p99 = query_us.Percentile(0.99);
  std::printf("queries during ingest: %zu, p50 %.0f us  p95 %.0f us  "
              "p99 %.0f us (checksum %llu)\n",
              queries_run, p50, p95, p99,
              (unsigned long long)result_checksum);
  {
    bench::BenchJson json("update_throughput");
    json.Field("mode", "ingest")
        .Field("docs", num_docs)
        .Field("docs_per_sec", docs_per_sec)
        .Field("rebuilds", engine.rebuilds())
        .Field("memtable_refreshes", engine.memtable_refreshes())
        .Field("queries", queries_run)
        .Field("query_p50_us", p50)
        .Field("query_p95_us", p95)
        .Field("query_p99_us", p99);
    json.Emit();
  }

  // --- Section C: seal + compact ------------------------------------------
  std::string seg_path = "/tmp/xtopk_bench_update_seg1";
  std::string compact_path = "/tmp/xtopk_bench_update_compacted";
  auto before = engine.SearchTopK(queries[0], 10);

  Timer seal_timer;
  Status s = engine.SealMemtable(seg_path);
  double seal_millis = seal_timer.ElapsedMillis();
  if (!s.ok()) {
    std::fprintf(stderr, "seal: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nseal memtable -> disk segment: %.1f ms (%zu segments)\n",
              seal_millis, engine.segment_count());

  Timer compact_timer;
  s = engine.Compact(compact_path);
  double compact_millis = compact_timer.ElapsedMillis();
  if (!s.ok()) {
    std::fprintf(stderr, "compact: %s\n", s.ToString().c_str());
    return 1;
  }
  auto after = engine.SearchTopK(queries[0], 10);
  bool identical = before.size() == after.size();
  for (size_t i = 0; identical && i < before.size(); ++i) {
    identical = before[i].node == after[i].node &&
                before[i].score == after[i].score;
  }
  std::printf("compact %s-> 1 segment: %.1f ms (results %s)\n",
              identical ? "" : "MISMATCH ", compact_millis,
              identical ? "identical" : "DIFFER");
  if (!identical) return 1;
  {
    bench::BenchJson json("update_throughput");
    json.Field("mode", "maintenance")
        .Field("docs", num_docs)
        .Field("seal_ms", seal_millis)
        .Field("compact_ms", compact_millis)
        .Field("segments_after", engine.segment_count());
    json.Emit();
  }

  std::remove(seg_path.c_str());
  std::remove((seg_path + ".manifest").c_str());
  std::remove(compact_path.c_str());
  std::remove((compact_path + ".manifest").c_str());
  return 0;
}

}  // namespace

int main() { return RunBench(); }
