# Empty dependencies file for storage_sparse_index_test.
# This may be replaced when dependencies are built.
