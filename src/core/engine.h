#ifndef XTOPK_CORE_ENGINE_H_
#define XTOPK_CORE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/hybrid.h"
#include "core/join_search.h"
#include "core/search_result.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "index/jdewey_index.h"
#include "index/topk_index.h"
#include "obs/accounting.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/status.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Engine construction options.
struct EngineOptions {
  IndexBuildOptions index;
  /// Planner / scoring defaults applied to queries unless overridden.
  ScoringParams scoring;
};

/// A materialized search answer with presentation context.
struct QueryHit {
  NodeId node = kInvalidNode;
  uint32_t level = 0;
  double score = 0.0;
  std::string tag;      ///< Element tag of the answer root.
  std::string snippet;  ///< Direct text of the answer root (may be empty).
};

/// One query of a concurrent batch (Engine::RunBatch).
struct BatchQuery {
  std::vector<std::string> keywords;
  /// 0 = complete result set (join-based Algorithm 1); > 0 = top-k.
  size_t k = 0;
  Semantics semantics = Semantics::kElca;
  /// Per-query time budget (default unbounded). Checked at level/column
  /// boundaries and TermSource::Resolve call sites; on expiry the result
  /// carries the partial answer and status kDeadlineExceeded.
  DeadlineToken deadline;
};

/// Result of one batch query, with its race-free per-query counters.
struct BatchQueryResult {
  std::vector<QueryHit> hits;
  /// kDeadlineExceeded when the query's deadline expired mid-execution
  /// (hits then hold the proven partial answer); non-ok on resolution
  /// failures the search layers surface. Ok otherwise.
  Status status = Status::Ok();
  /// Complete-search queries only (k == 0); top-k queries leave defaults.
  JoinSearchStats join_stats;
  /// What this query cost: pages, decoded bytes, cache traffic, joined
  /// rows, wall/CPU time, planner mode. Filled for every query.
  obs::ResourceAccounting accounting;
  /// Per-query span tree; set only when RunBatch collects traces (or the
  /// query ran through Explain). Single-query and batch execution share one
  /// code path, so the trace carries identical span/stat fields either way.
  std::unique_ptr<obs::QueryTrace> trace;
};

/// Engine::Explain output: the query's answers plus the span tree of its
/// execution. `trace.Render()` gives the human-readable EXPLAIN tree,
/// `trace.ToJson()` the machine-readable profile.
struct ExplainResult {
  std::vector<QueryHit> hits;
  /// Complete-search queries only (k == 0).
  JoinSearchStats join_stats;
  obs::QueryTrace trace;
  /// Per-query resource bill (same struct RunBatch results carry).
  obs::ResourceAccounting accounting;
};

/// Stable digest of a result set: 16-hex-digit FNV-1a over every hit's
/// (node, level, score rounded via %.9g). Two runs that return the same
/// answers produce the same fingerprint; tools/xtopk_replay compares these
/// instead of shipping full result sets around.
std::string ResultFingerprint(const std::vector<QueryHit>& hits);

/// Marks every occurrence of `keywords` (tokenizer-normalized, whole-token
/// matches, case-insensitive) in `text` with `open`/`close`, e.g.
/// "xml [data] management" for keyword "data". Presentation helper for
/// QueryHit snippets.
std::string HighlightKeywords(const std::string& text,
                              const std::vector<std::string>& keywords,
                              const std::string& open = "[",
                              const std::string& close = "]");

/// The library facade: builds the indexes for one document and runs keyword
/// queries under either semantics.
///
///   XmlTree doc = ParseXmlStringOrDie(xml);
///   Engine engine(doc);
///   auto all  = engine.Search({"xml", "data"}, Semantics::kElca);
///   auto topk = engine.SearchTopK({"xml", "data"}, 10);
///
/// The tree must outlive the engine.
class Engine {
 public:
  explicit Engine(const XmlTree& tree, EngineOptions options = {});

  /// Complete result set (join-based Algorithm 1), scored and sorted by
  /// score descending.
  ///
  /// Query keywords are normalized through the same tokenizer the index
  /// used ("XML" matches, "top-k" splits into {top, k}); duplicates are
  /// dropped. This applies to every Search* method.
  std::vector<QueryHit> Search(const std::vector<std::string>& keywords,
                               Semantics semantics = Semantics::kElca) const;

  /// Top-k results (join-based top-K algorithm, §IV).
  std::vector<QueryHit> SearchTopK(const std::vector<std::string>& keywords,
                                   size_t k,
                                   Semantics semantics = Semantics::kElca) const;

  /// Top-k through the hybrid planner (§V-D): picks the top-K join or the
  /// complete join by estimated cardinality.
  std::vector<QueryHit> SearchHybrid(const std::vector<std::string>& keywords,
                                     size_t k,
                                     Semantics semantics = Semantics::kElca) const;

  /// Executes independent queries concurrently against the shared
  /// read-only indexes on a fixed pool of up to `threads` workers
  /// (util/parallel.h work stealing). The indexes are immutable after
  /// construction and every query gets its own search object, so results
  /// and per-query JoinSearchStats are bit-identical to running the
  /// queries one by one; results[i] always answers queries[i].
  /// `collect_traces` attaches a QueryTrace to every result — the same
  /// span tree Explain produces, since both run through one query path.
  std::vector<BatchQueryResult> RunBatch(const std::vector<BatchQuery>& queries,
                                         size_t threads,
                                         bool collect_traces = false) const;

  /// EXPLAIN/profile: runs `query` with tracing on and returns its span
  /// tree (tokenize → term lookup → per-level join rounds → materialize)
  /// alongside the answers.
  ExplainResult Explain(const BatchQuery& query) const;
  ExplainResult Explain(const std::vector<std::string>& keywords, size_t k = 0,
                        Semantics semantics = Semantics::kElca) const;

  /// Keyword frequency (inverted-list length); 0 for unknown keywords.
  uint32_t Frequency(const std::string& keyword) const;

  /// The index's analyzer applied to raw query keywords: multi-token
  /// inputs expand, duplicates drop, order is first-occurrence. Exposed so
  /// callers that key caches on queries (serve::ResultCache) normalize
  /// exactly the way RunQuery will.
  std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) const;

  const XmlTree& tree() const { return tree_; }
  const JDeweyIndex& jdewey_index() const { return jdewey_index_; }
  const TopKIndex& topk_index() const { return topk_index_; }
  const IndexBuilder& builder() const { return *builder_; }
  /// The join-plan cache (tests assert hit/miss behavior through it).
  PlanCache& plan_cache() const { return plan_cache_; }

 private:
  /// The single execution path behind Search, SearchTopK, RunBatch and
  /// Explain. `trace` may be null (zero tracing cost); the returned
  /// result's `trace` member is left empty — callers own the trace.
  BatchQueryResult RunQuery(const BatchQuery& query,
                            obs::QueryTrace* trace) const;
  std::vector<QueryHit> Materialize(
      const std::vector<SearchResult>& results) const;

  const XmlTree& tree_;
  EngineOptions options_;
  std::unique_ptr<IndexBuilder> builder_;
  JDeweyIndex jdewey_index_;
  TopKIndex topk_index_;
  /// Shared join-plan cache (the indexes are immutable, so entries never
  /// go stale). mutable: RunQuery is const and may plan from RunBatch's
  /// worker threads — PlanCache is internally synchronized.
  mutable PlanCache plan_cache_;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_ENGINE_H_
