// Ablation A4 (paper §III-E): range-granular semantic pruning vs per-row
// erasure. The compressed runs let the pruning erase and count whole
// matched ranges; the per-row variant touches every row. The gap widens
// with keyword frequency (larger matched subtree extents).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/join_search.h"

namespace {

struct Measure {
  double ms = 0;
  uint64_t touches = 0;
};

Measure Run(const xtopk::JDeweyIndex& jindex, bool use_range_check,
            const std::vector<std::vector<std::string>>& queries) {
  Measure m;
  for (const auto& query : queries) {
    xtopk::JoinSearchOptions options;
    options.compute_scores = false;
    options.use_range_check = use_range_check;
    xtopk::JoinSearch search(jindex, options);
    m.ms += xtopk::bench::TimeOnceMs([&] { search.Search(query); });
    m.touches += search.stats().erasure_touches;
  }
  m.ms /= queries.size();
  m.touches /= queries.size();
  return m;
}

}  // namespace

int main() {
  xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();

  std::printf("=== Ablation A4: range checking vs per-row erasure ===\n");
  std::printf("2-keyword queries, ELCA complete set\n");
  std::printf("(touches = erasure-structure work units; the paper's range\n");
  std::printf(" checking targets these — on disk-resident lists they are\n");
  std::printf(" the I/O; in-memory at this scale the per-row bitmap's\n");
  std::printf(" cache friendliness can win wall-clock anyway)\n");
  std::printf("%-14s %13s %11s | %13s %13s %9s\n", "frequencies",
              "range ms", "row ms", "range touch", "row touch", "ratio");
  struct Point {
    const char* label;
    std::vector<std::vector<std::string>> queries;
  };
  std::vector<Point> points;
  for (uint32_t f : xtopk::bench::kLowFreqs) {
    Point p;
    static char labels[4][24];
    static int slot = 0;
    std::snprintf(labels[slot], sizeof(labels[slot]), "%u + %u", f,
                  xtopk::bench::kHighFreq);
    p.label = labels[slot++];
    for (size_t i = 0; i < xtopk::bench::kQueriesPerPoint; ++i) {
      p.queries.push_back(xtopk::bench::MixedQuery(f, 2, i));
    }
    points.push_back(std::move(p));
  }
  {
    Point p;
    p.label = "20000 + 20000";
    for (size_t i = 0; i < 4; ++i) {
      p.queries.push_back({"hi" + std::to_string(i),
                           "hi" + std::to_string(i + 4)});
    }
    points.push_back(std::move(p));
  }
  for (const Point& p : points) {
    Measure ranges = Run(jindex, true, p.queries);
    Measure rows = Run(jindex, false, p.queries);
    std::printf("%-14s %10.3f ms %8.3f ms | %13llu %13llu %8.1fx\n", p.label,
                ranges.ms, rows.ms, (unsigned long long)ranges.touches,
                (unsigned long long)rows.touches,
                double(rows.touches) / std::max<uint64_t>(1, ranges.touches));
  }
  return 0;
}
