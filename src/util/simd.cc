#include "util/simd.h"

#include <atomic>
#include <cstdlib>

#if defined(XTOPK_SIMD) && (defined(__x86_64__) || defined(__i386__))
#include <tmmintrin.h>
#define XTOPK_GVB_SSE 1
#elif defined(XTOPK_SIMD) && defined(__aarch64__)
#include <arm_neon.h>
#define XTOPK_GVB_NEON 1
#endif

namespace xtopk {
namespace simd {
namespace {

/// Shuffle masks and group byte lengths, one entry per control byte. Lane i
/// of the mask gathers the (1 + 2-bit length code) payload bytes of value i
/// into a little-endian uint32; unused lanes read index 0xFF, which both
/// pshufb and tbl turn into zero bytes.
struct GvbTables {
  alignas(16) uint8_t shuffle[256][16] = {};
  uint8_t length[256] = {};
};

constexpr GvbTables BuildGvbTables() {
  GvbTables t;
  for (int ctrl = 0; ctrl < 256; ++ctrl) {
    uint8_t offset = 0;
    for (int lane = 0; lane < 4; ++lane) {
      uint8_t len = static_cast<uint8_t>(((ctrl >> (2 * lane)) & 3) + 1);
      for (int byte = 0; byte < 4; ++byte) {
        t.shuffle[ctrl][lane * 4 + byte] =
            byte < len ? static_cast<uint8_t>(offset + byte) : 0xFF;
      }
      offset = static_cast<uint8_t>(offset + len);
    }
    t.length[ctrl] = offset;  // payload bytes, control byte not included
  }
  return t;
}

constexpr GvbTables kGvb = BuildGvbTables();

#if defined(XTOPK_GVB_SSE)
__attribute__((target("ssse3"))) size_t GvbDecodeValuesSse(const uint8_t* src,
                                                           size_t src_len,
                                                           uint32_t* out,
                                                           size_t count) {
  const uint8_t* p = src;
  const uint8_t* end = src + src_len;
  size_t i = 0;
  // Full groups with 16 readable payload bytes: one shuffle per group. The
  // tail (short payload or partial group) falls through to the scalar loop.
  while (i + 4 <= count && p + 17 <= end) {
    uint8_t ctrl = *p++;
    __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    __m128i mask =
        _mm_load_si128(reinterpret_cast<const __m128i*>(kGvb.shuffle[ctrl]));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_shuffle_epi8(raw, mask));
    p += kGvb.length[ctrl];
    i += 4;
  }
  if (i == count) return static_cast<size_t>(p - src);
  size_t tail = GvbDecodeValuesScalar(p, static_cast<size_t>(end - p), out + i,
                                      count - i);
  return tail == 0 ? 0 : static_cast<size_t>(p - src) + tail;
}
#endif

#if defined(XTOPK_GVB_NEON)
size_t GvbDecodeValuesNeon(const uint8_t* src, size_t src_len, uint32_t* out,
                           size_t count) {
  const uint8_t* p = src;
  const uint8_t* end = src + src_len;
  size_t i = 0;
  while (i + 4 <= count && p + 17 <= end) {
    uint8_t ctrl = *p++;
    uint8x16_t raw = vld1q_u8(p);
    uint8x16_t mask = vld1q_u8(kGvb.shuffle[ctrl]);
    vst1q_u8(reinterpret_cast<uint8_t*>(out + i), vqtbl1q_u8(raw, mask));
    p += kGvb.length[ctrl];
    i += 4;
  }
  if (i == count) return static_cast<size_t>(p - src);
  size_t tail = GvbDecodeValuesScalar(p, static_cast<size_t>(end - p), out + i,
                                      count - i);
  return tail == 0 ? 0 : static_cast<size_t>(p - src) + tail;
}
#endif

bool DetectGvbSimd() {
#if defined(XTOPK_GVB_SSE)
  return __builtin_cpu_supports("ssse3") != 0;
#elif defined(XTOPK_GVB_NEON)
  return true;  // NEON is baseline on aarch64
#else
  return false;
#endif
}

bool InitialEnabled() {
  if (!DetectGvbSimd()) return false;
  const char* env = std::getenv("XTOPK_DISABLE_SIMD");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    return false;
  }
  return true;
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{InitialEnabled()};
  return enabled;
}

}  // namespace

bool GvbSimdAvailable() {
  static const bool available = DetectGvbSimd();
  return available;
}

bool GvbSimdEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetGvbSimdEnabled(bool enabled) {
  EnabledFlag().store(enabled && GvbSimdAvailable(),
                      std::memory_order_relaxed);
}

size_t GvbDecodeValuesScalar(const uint8_t* src, size_t src_len, uint32_t* out,
                             size_t count) {
  const uint8_t* p = src;
  const uint8_t* end = src + src_len;
  size_t i = 0;
  while (i < count) {
    if (p >= end) return 0;
    uint8_t ctrl = *p++;
    size_t group = count - i < 4 ? count - i : 4;
    for (size_t lane = 0; lane < group; ++lane) {
      uint32_t len = ((ctrl >> (2 * lane)) & 3u) + 1;
      if (static_cast<size_t>(end - p) < len) return 0;
      uint32_t v = 0;
      for (uint32_t b = 0; b < len; ++b) {
        v |= static_cast<uint32_t>(p[b]) << (8 * b);
      }
      p += len;
      out[i++] = v;
    }
  }
  return static_cast<size_t>(p - src);
}

size_t GvbDecodeValues(const uint8_t* src, size_t src_len, uint32_t* out,
                       size_t count) {
#if defined(XTOPK_GVB_SSE)
  if (GvbSimdEnabled()) return GvbDecodeValuesSse(src, src_len, out, count);
#elif defined(XTOPK_GVB_NEON)
  if (GvbSimdEnabled()) return GvbDecodeValuesNeon(src, src_len, out, count);
#endif
  return GvbDecodeValuesScalar(src, src_len, out, count);
}

}  // namespace simd
}  // namespace xtopk
