#!/usr/bin/env python3
"""Validate a slow-query log (JSON lines) against tools/slowlog_schema.json.

Each non-empty line must parse as JSON and match the per-line schema.
Reuses the stdlib-only JSON Schema subset validator from
check_profile_schema.py.

Usage:
  check_slowlog_schema.py slowlog.jsonl
  cat slowlog.jsonl | check_slowlog_schema.py -
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_profile_schema import validate  # noqa: E402


def main(argv):
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "slowlog_schema.json")
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    if len(argv) == 2 and argv[1] != "-":
        with open(argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    failures = 0
    lines = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        lines += 1
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            print(f"FAIL: line {lineno} is not valid JSON: {exc}")
            failures += 1
            continue
        for error in validate(entry, schema, schema, path=f"line {lineno}"):
            print(f"FAIL: {error}")
            failures += 1

    if lines == 0:
        print("FAIL: no entries to validate")
        return 1
    if failures:
        return 1
    print(f"OK: {lines} schema-valid slow-log entries")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
