#include "xml/tokenizer.h"

#include <gtest/gtest.h>

namespace xtopk {
namespace {

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("Top-K Keyword Search, in XML!");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0], "top");
  EXPECT_EQ(tokens[1], "k");
  EXPECT_EQ(tokens[2], "keyword");
  EXPECT_EQ(tokens[5], "xml");
}

TEST(TokenizerTest, DigitsKept) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("icde2010 vldb 03");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "icde2010");
  EXPECT_EQ(tokens[2], "03");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("... --- !!!").empty());
}

TEST(TokenizerTest, TermFrequencies) {
  Tokenizer tok;
  auto tf = tok.TermFrequencies("xml data xml XML keyword");
  EXPECT_EQ(tf["xml"], 3u);
  EXPECT_EQ(tf["data"], 1u);
  EXPECT_EQ(tf["keyword"], 1u);
  EXPECT_EQ(tf.size(), 3u);
}

TEST(TokenizerTest, MinTokenLengthFilters) {
  Tokenizer::Options options;
  options.min_token_length = 3;
  Tokenizer tok(options);
  auto tokens = tok.Tokenize("a an the xml");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "xml");
}

}  // namespace
}  // namespace xtopk
