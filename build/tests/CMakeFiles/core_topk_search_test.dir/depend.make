# Empty dependencies file for core_topk_search_test.
# This may be replaced when dependencies are built.
