#include "baseline/indexed_lookup.h"

#include <gtest/gtest.h>

#include <set>

#include "index/index_builder.h"
#include "testing/corpus.h"
#include "workload/dblp_gen.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

class IndexedLookupTest : public ::testing::Test {
 protected:
  IndexedLookupTest() : tree_(MakeSmallCorpus()), builder_(tree_) {
    index_ = builder_.BuildDeweyIndex();
  }
  std::set<NodeId> Nodes(const std::vector<SearchResult>& results) {
    std::set<NodeId> out;
    for (const auto& r : results) out.insert(r.node);
    return out;
  }
  XmlTree tree_;
  IndexBuilder builder_;
  DeweyIndex index_;
};

TEST_F(IndexedLookupTest, ElcaMatchesHandChecked) {
  IndexedLookupSearch search(tree_, index_);
  auto results = search.Search({"xml", "data"});
  EXPECT_EQ(Nodes(results), (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1,
                                              Ids::kP4Title, Ids::kDb}));
}

TEST_F(IndexedLookupTest, SlcaMatchesHandChecked) {
  IndexedLookupOptions options;
  options.semantics = Semantics::kSlca;
  IndexedLookupSearch search(tree_, index_, options);
  auto results = search.Search({"xml", "data"});
  EXPECT_EQ(Nodes(results),
            (std::set<NodeId>{Ids::kPaper0, Ids::kPaper1, Ids::kP4Title}));
}

TEST_F(IndexedLookupTest, ProbesScaleWithShortestList) {
  // The defining cost property (paper §II-C): work scales with the
  // shortest list's length, not the longest.
  DblpGenOptions gen;
  gen.planted = {{"tiny", 8, "", 0.0}, {"huge", 4000, "", 0.0}};
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  DeweyIndex dindex = builder.BuildDeweyIndex();

  IndexedLookupOptions options;
  options.semantics = Semantics::kSlca;
  IndexedLookupSearch search(corpus.tree, dindex, options);
  search.Search({"tiny", "huge"});
  // One closest-occurrence probe per driving-list row per other keyword.
  EXPECT_EQ(search.stats().probes, 8u);
}

TEST_F(IndexedLookupTest, ElcaExpandsAncestorCandidates) {
  IndexedLookupSearch search(tree_, index_);
  search.Search({"xml", "data"});
  // ELCA answers can sit above the per-occurrence candidates, so the
  // candidate set includes ancestors: strictly more candidates than
  // driving-list rows.
  EXPECT_GT(search.stats().candidates, index_.Frequency("xml"));
  EXPECT_GT(search.stats().eval.range_probes, 0u);
}

TEST_F(IndexedLookupTest, ScoresOptionalButCorrect) {
  IndexedLookupOptions with, without;
  with.compute_scores = true;
  without.compute_scores = false;
  IndexedLookupSearch a(tree_, index_, with), b(tree_, index_, without);
  auto scored = a.Search({"xml", "data"});
  auto bare = b.Search({"xml", "data"});
  ASSERT_EQ(scored.size(), bare.size());
  for (const auto& r : scored) EXPECT_GT(r.score, 0.0);
  for (const auto& r : bare) EXPECT_EQ(r.score, 0.0);
}

TEST_F(IndexedLookupTest, EmptyAndMissingInputs) {
  IndexedLookupSearch search(tree_, index_);
  EXPECT_TRUE(search.Search({}).empty());
  EXPECT_TRUE(search.Search({"xml", "missing"}).empty());
}

}  // namespace
}  // namespace xtopk
