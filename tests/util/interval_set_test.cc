#include "util/interval_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace xtopk {
namespace {

TEST(IntervalSetTest, AddAndCount) {
  IntervalSet set;
  set.Add(10, 20);
  EXPECT_EQ(set.covered(), 10u);
  EXPECT_EQ(set.CountOverlap(0, 100), 10u);
  EXPECT_EQ(set.CountOverlap(15, 18), 3u);
  EXPECT_EQ(set.CountOverlap(0, 10), 0u);
  EXPECT_EQ(set.CountOverlap(20, 30), 0u);
  EXPECT_TRUE(set.Contains(10));
  EXPECT_FALSE(set.Contains(20));
}

TEST(IntervalSetTest, MergeOverlapping) {
  IntervalSet set;
  set.Add(10, 20);
  set.Add(15, 25);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.covered(), 15u);
  set.Add(25, 30);  // touching merges
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.covered(), 20u);
  set.Add(40, 50);
  EXPECT_EQ(set.interval_count(), 2u);
  set.Add(5, 60);  // swallows everything
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.covered(), 55u);
}

TEST(IntervalSetTest, NestedAddIsIdempotent) {
  // The paper's containment property: matched ranges are nested or
  // disjoint. Re-adding a contained range must not change the count.
  IntervalSet set;
  set.Add(0, 100);
  set.Add(10, 20);
  EXPECT_EQ(set.covered(), 100u);
  EXPECT_EQ(set.CountOverlap(0, 100), 100u);
}

TEST(IntervalSetTest, EmptyRangeIsNoop) {
  IntervalSet set;
  set.Add(5, 5);
  EXPECT_EQ(set.covered(), 0u);
  EXPECT_EQ(set.CountOverlap(5, 5), 0u);
}

TEST(IntervalSetTest, ForEachUncovered) {
  IntervalSet set;
  set.Add(10, 20);
  set.Add(30, 40);
  std::vector<std::pair<uint32_t, uint32_t>> gaps;
  set.ForEachUncovered(0, 50, [&](uint32_t lo, uint32_t hi) {
    gaps.emplace_back(lo, hi);
  });
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0], (std::pair<uint32_t, uint32_t>{0, 10}));
  EXPECT_EQ(gaps[1], (std::pair<uint32_t, uint32_t>{20, 30}));
  EXPECT_EQ(gaps[2], (std::pair<uint32_t, uint32_t>{40, 50}));
}

TEST(IntervalSetTest, ForEachUncoveredFullyCovered) {
  IntervalSet set;
  set.Add(0, 100);
  int calls = 0;
  set.ForEachUncovered(10, 90, [&](uint32_t, uint32_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(IntervalSetTest, RandomizedAgainstBitmap) {
  Rng rng(99);
  constexpr uint32_t kUniverse = 512;
  for (int trial = 0; trial < 50; ++trial) {
    IntervalSet set;
    std::vector<char> bitmap(kUniverse, 0);
    for (int op = 0; op < 60; ++op) {
      uint32_t a = static_cast<uint32_t>(rng.NextBounded(kUniverse));
      uint32_t b = static_cast<uint32_t>(rng.NextBounded(kUniverse));
      if (a > b) std::swap(a, b);
      set.Add(a, b);
      for (uint32_t i = a; i < b; ++i) bitmap[i] = 1;
      // Random count queries.
      uint32_t qa = static_cast<uint32_t>(rng.NextBounded(kUniverse));
      uint32_t qb = static_cast<uint32_t>(rng.NextBounded(kUniverse));
      if (qa > qb) std::swap(qa, qb);
      uint32_t expected = 0;
      for (uint32_t i = qa; i < qb; ++i) expected += bitmap[i];
      ASSERT_EQ(set.CountOverlap(qa, qb), expected);
      // Uncovered enumeration must partition the complement.
      uint32_t uncovered = 0;
      set.ForEachUncovered(qa, qb, [&](uint32_t lo, uint32_t hi) {
        ASSERT_LT(lo, hi);
        for (uint32_t i = lo; i < hi; ++i) {
          ASSERT_EQ(bitmap[i], 0);
          ++uncovered;
        }
      });
      ASSERT_EQ(uncovered, (qb - qa) - expected);
    }
    uint64_t total = 0;
    for (char c : bitmap) total += c;
    ASSERT_EQ(set.covered(), total);
  }
}

}  // namespace
}  // namespace xtopk
