// Fault-injection sweep over the storage stack (DESIGN.md §9): every
// deterministically injected fault — bit flips, short reads, transient
// I/O errors during open/search/multi-query serving, truncation at open —
// must end in one of exactly two outcomes: the query returns the correct
// result (the bounded retry or a degradation path recovered), or a typed
// kIoError/kCorruption Status reaches the caller. Never a crash, a hang,
// or a silently wrong answer; and a failed read must never poison the
// buffer pool or decoded-block cache (re-queries after the fault clears
// must be correct on the *same* environment and session).
//
// Failing (seed, site, kind, trigger) tuples are appended to
// fault_injection_failures.txt (override with XTOPK_FAULT_LOG) so CI can
// upload the exact reproduction recipe.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baseline/stack_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "obs/metrics.h"
#include "testing/corpus.h"
#include "util/fault_env.h"
#include "xml/xml_tree.h"

namespace xtopk {
namespace {

using testing::CorpusSpec;
using testing::MakeCorpusTree;
using testing::MakeRandomWorkload;
using testing::WorkloadQuery;

std::string FailureLogPath() {
  if (const char* env = std::getenv("XTOPK_FAULT_LOG");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "fault_injection_failures.txt";
}

void RecordFailingTuple(const std::string& tuple) {
  std::ofstream out(FailureLogPath(), std::ios::app);
  out << tuple << "\n";
}

bool TypedStorageFailure(const Status& s) {
  return s.code() == StatusCode::kIoError ||
         s.code() == StatusCode::kCorruption;
}

bool ResultsMatch(const std::vector<SearchResult>& got_in,
                  const std::vector<SearchResult>& want_in) {
  if (got_in.size() != want_in.size()) return false;
  std::vector<SearchResult> got = got_in, want = want_in;
  SortByNode(&got);
  SortByNode(&want);
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].node != want[i].node) return false;
    if (std::fabs(got[i].score - want[i].score) > 1e-6) return false;
  }
  return true;
}

/// Top-K is correct iff it is score-for-score the sorted prefix of the
/// complete result, with every returned node present in the complete set
/// (ties may reorder among exactly-equal scores).
bool TopKMatches(const std::vector<SearchResult>& topk,
                 std::vector<SearchResult> complete, size_t k) {
  SortByScoreDesc(&complete);
  if (topk.size() != std::min(k, complete.size())) return false;
  for (size_t i = 0; i < topk.size(); ++i) {
    if (std::fabs(topk[i].score - complete[i].score) > 1e-6) return false;
    bool found = false;
    for (const auto& r : complete) {
      if (r.node == topk[i].node) {
        found = std::fabs(topk[i].score - r.score) <= 1e-6;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

/// Short backoff so the 1000+-injection sweep (whose persistent plans
/// exhaust every retry) stays fast.
DiskIndexOptions FastRetryOptions() {
  DiskIndexOptions options;
  options.retry_backoff_us = 1;
  return options;
}

/// Sweep configuration: a one-page pool and no decoded cache, so every
/// blob access is a physical read the injector can hit. On a corpus this
/// small the default pool absorbs the whole segment at Open and the sweep
/// would have almost no injection points.
DiskIndexOptions SweepOptions() {
  DiskIndexOptions options = FastRetryOptions();
  options.pool_pages = 1;
  options.pool_shards = 1;
  options.decoded_cache_bytes = 0;
  return options;
}

/// One corpus + workload + fault-free expected results, shared by every
/// test in this file. Segments are written (and the oracle evaluated)
/// with the injector disarmed; the observe pass then measures how many
/// pagefile.read calls one full open + workload run makes against each
/// segment — that count is the trigger sweep range.
struct SharedCorpus {
  XmlTree tree;
  JDeweyIndex jindex;
  DeweyIndex dindex;
  std::vector<WorkloadQuery> workload;
  std::vector<std::vector<SearchResult>> expected;
  std::string v2_path;
  std::string v1_path;
  uint64_t observed_reads_v2 = 0;
  uint64_t observed_reads_v1 = 0;
};

std::vector<std::string> RunWorkloadChecked(const SharedCorpus& c,
                                            DiskIndexEnv* env, bool strict,
                                            const std::string& tuple);

const SharedCorpus& Corpus() {
  static SharedCorpus* shared = [] {
    auto* s = new SharedCorpus;
    FaultInjector::Global().Clear();

    // A corpus big enough that the segment spans several data pages — on a
    // one-page corpus everything rides in the pool after Open and a sweep
    // would have no physical reads left to hit.
    CorpusSpec spec;
    spec.seed = 7;
    spec.nodes = 4000;
    spec.max_children = 6;
    spec.max_depth = 10;
    spec.term_prob = 0.25;
    spec.terms = {"alpha", "beta", "gamma", "delta"};
    s->tree = MakeCorpusTree(spec);
    IndexBuildOptions build_options;
    build_options.index_tag_names = false;
    IndexBuilder builder(s->tree, build_options);
    s->jindex = builder.BuildJDeweyIndex();
    s->dindex = builder.BuildDeweyIndex();
    s->workload = MakeRandomWorkload(spec, 4);
    for (const WorkloadQuery& query : s->workload) {
      StackSearchOptions options;
      options.semantics = query.semantics;
      StackSearch search(s->tree, s->dindex, options);
      s->expected.push_back(search.Search(query.keywords));
    }

    // Process-unique paths: ctest runs each TEST as its own process, and
    // every process rewrites the corpus at static-init — a shared name
    // lets a parallel sibling observe a half-written file.
    const std::string pid = std::to_string(static_cast<long>(::getpid()));
    s->v2_path =
        ::testing::TempDir() + "/fault_injection_v2_segment." + pid;
    s->v1_path =
        ::testing::TempDir() + "/fault_injection_v1_segment." + pid;
    Status w2 = DiskIndexWriter::Write(s->jindex, /*include_scores=*/true,
                                       s->v2_path, ColumnCodec::kAuto,
                                       /*write_checksums=*/true);
    Status w1 = DiskIndexWriter::Write(s->jindex, /*include_scores=*/true,
                                       s->v1_path, ColumnCodec::kAuto,
                                       /*write_checksums=*/false);
    if (!w2.ok() || !w1.ok()) std::abort();

    // Observe pass: a kNone plan counts site calls without injecting, and
    // arming any plan before Open makes the environment route reads
    // through the fault-aware PageFile (same code path the sweep uses).
    for (bool v2 : {true, false}) {
      FaultPlan observe;
      observe.kind = FaultKind::kNone;
      FaultInjector::Global().SetPlan(observe);
      auto env = DiskIndexEnv::Open(v2 ? s->v2_path : s->v1_path,
                                    SweepOptions());
      if (!env.ok()) std::abort();
      // NOTE: pass *s explicitly — calling Corpus() here would re-enter
      // the still-initializing static's guard and deadlock.
      if (!RunWorkloadChecked(*s, env->get(), /*strict=*/true, "observe")
               .empty()) {
        std::abort();
      }
      uint64_t reads = FaultInjector::Global().CallCount("pagefile.read");
      (v2 ? s->observed_reads_v2 : s->observed_reads_v1) = reads;
      FaultInjector::Global().Clear();
    }
    return s;
  }();
  return *shared;
}

/// Runs the whole workload — complete and top-K — on one fresh session of
/// `env`. In strict mode every query must succeed with the fault-free
/// result; otherwise a typed kIoError/kCorruption failure is also an
/// accepted outcome (but a success must still be byte-correct). Returns
/// violation descriptions (empty = clean); the session is reused across
/// queries on purpose, so a failed load must not poison later queries.
std::vector<std::string> RunWorkloadChecked(const SharedCorpus& c,
                                            DiskIndexEnv* env, bool strict,
                                            const std::string& tuple) {
  std::vector<std::string> violations;
  auto fail = [&](size_t query, const std::string& what) {
    violations.push_back(tuple + " query=" + std::to_string(query) + " : " +
                         what);
  };
  auto session = env->NewSession();
  for (size_t i = 0; i < c.workload.size(); ++i) {
    const WorkloadQuery& query = c.workload[i];
    {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      auto got = session->SearchComplete(query.keywords, options);
      if (got.ok()) {
        if (!ResultsMatch(*got, c.expected[i])) {
          fail(i, "complete result differs from fault-free oracle");
        }
      } else if (strict) {
        fail(i, "complete failed in strict mode: " + got.status().ToString());
      } else if (!TypedStorageFailure(got.status())) {
        fail(i, "untyped failure: " + got.status().ToString());
      }
    }
    {
      TopKSearchOptions options;
      options.semantics = query.semantics;
      options.k = query.k;
      auto got = session->SearchTopK(query.keywords, options);
      if (got.ok()) {
        if (!TopKMatches(*got, c.expected[i], query.k)) {
          fail(i, "top-K result differs from fault-free oracle");
        }
      } else if (strict) {
        fail(i, "top-K failed in strict mode: " + got.status().ToString());
      } else if (!TypedStorageFailure(got.status())) {
        fail(i, "untyped failure: " + got.status().ToString());
      }
    }
  }
  return violations;
}

std::string TupleString(const FaultPlan& plan, const std::string& segment) {
  return "segment=" + segment + " site=" + plan.site +
         " kind=" + FaultKindName(plan.kind) +
         " trigger=" + std::to_string(plan.trigger) + " count=" +
         (plan.count == UINT64_MAX ? std::string("inf")
                                   : std::to_string(plan.count)) +
         " seed=" + std::to_string(plan.seed);
}

void ReportViolations(const std::vector<std::string>& violations) {
  for (const std::string& v : violations) {
    RecordFailingTuple(v);
    ADD_FAILURE() << v;
  }
}

/// One sweep iteration: arm the plan, open the segment under injection,
/// run the workload (faults allowed), then clear the plan and require the
/// SAME environment — its pool and decoded cache included — to serve the
/// fault-free results (nothing from a failed read may have been admitted).
void RunOneInjection(const SharedCorpus& c, const FaultPlan& plan,
                     const std::string& path, const std::string& segment) {
  const std::string tuple = TupleString(plan, segment);
  FaultInjector::Global().SetPlan(plan);
  auto env = DiskIndexEnv::Open(path, SweepOptions());
  if (!env.ok()) {
    if (!TypedStorageFailure(env.status())) {
      std::string v = tuple + " : untyped open failure: " +
                      env.status().ToString();
      RecordFailingTuple(v);
      ADD_FAILURE() << v;
    }
    FaultInjector::Global().Clear();
    return;
  }
  ReportViolations(RunWorkloadChecked(c, env->get(), /*strict=*/false, tuple));
  FaultInjector::Global().Clear();
  ReportViolations(RunWorkloadChecked(c, env->get(), /*strict=*/true,
                                      tuple + " post-clear"));
}

/// The tentpole sweep: bit flips, short reads and transient I/O errors at
/// every observed read index of a full open + workload run, transient
/// (count=1, the bounded retry must recover) and persistent (count=inf,
/// a typed Status must surface), across several damage seeds, against the
/// checksummed v2 segment. At least 1000 injections must actually fire.
TEST(FaultInjectionTest, SweepChecksummedSegmentDetectsOrRecovers) {
  const SharedCorpus& c = Corpus();
  obs::Counter& injected = XTOPK_COUNTER("storage.fault.injected");
  const uint64_t fired_before = injected.value();

  const FaultKind kKinds[] = {FaultKind::kBitFlip, FaultKind::kShortRead,
                              FaultKind::kTransientIoError};
  const uint64_t reads = std::max<uint64_t>(c.observed_reads_v2, 1);
  // Sample at most ~48 trigger points per (kind, mode) so the sweep stays
  // bounded on large corpora while still covering open- and search-phase
  // reads end to end.
  const uint64_t stride = std::max<uint64_t>(1, reads / 48);

  for (uint64_t damage_seed = 1; damage_seed <= 8; ++damage_seed) {
    for (FaultKind kind : kKinds) {
      for (bool persistent : {false, true}) {
        for (uint64_t trigger = 0; trigger < reads; trigger += stride) {
          FaultPlan plan;
          plan.kind = kind;
          plan.site = "pagefile.read";
          plan.trigger = trigger;
          plan.count = persistent ? UINT64_MAX : 1;
          plan.seed = damage_seed * 1000003ull + trigger;
          RunOneInjection(c, plan, c.v2_path, "v2");
          if (HasFailure()) return;  // first failing tuple pins the repro
        }
      }
    }
    if (injected.value() - fired_before >= 1500) break;
  }
  EXPECT_GE(injected.value() - fired_before, 1000u)
      << "sweep fired too few injections to satisfy the coverage bar";
}

/// Truncation at open: the footer page is always in the lost tail, so
/// Open must fail with a typed Status — and once the plan clears, the
/// on-disk file (undamaged; truncation is simulated in the wrapper) must
/// open and serve correctly again.
TEST(FaultInjectionTest, TruncatedSegmentFailsOpenWithTypedStatus) {
  const SharedCorpus& c = Corpus();
  for (const std::string& path : {c.v2_path, c.v1_path}) {
    const std::string segment = path == c.v2_path ? "v2" : "v1";
    for (uint64_t seed = 1; seed <= 20; ++seed) {
      FaultPlan plan;
      plan.kind = FaultKind::kTruncate;
      plan.site = "pagefile.open";
      plan.trigger = 0;
      plan.seed = seed;
      const std::string tuple = TupleString(plan, segment);
      FaultInjector::Global().SetPlan(plan);
      auto env = DiskIndexEnv::Open(path, FastRetryOptions());
      if (env.ok() || !TypedStorageFailure(env.status())) {
        std::string v = tuple + " : truncated open did not fail typed (" +
                        env.status().ToString() + ")";
        RecordFailingTuple(v);
        ADD_FAILURE() << v;
      }
      FaultInjector::Global().Clear();
    }
    auto env = DiskIndexEnv::Open(path, FastRetryOptions());
    ASSERT_TRUE(env.ok()) << env.status().ToString();
    ReportViolations(RunWorkloadChecked(c, env->get(), /*strict=*/true,
                                        segment + " post-truncate-sweep"));
  }
}

/// Legacy v1 segments carry no checksums, so payload damage (bit flips,
/// short reads) can by design go undetected — the sweep for them uses the
/// fault kinds the stack can still observe: transient and persistent I/O
/// errors at every read index.
TEST(FaultInjectionTest, LegacySegmentSurvivesDetectableFaults) {
  const SharedCorpus& c = Corpus();
  const uint64_t reads = std::max<uint64_t>(c.observed_reads_v1, 1);
  const uint64_t stride = std::max<uint64_t>(1, reads / 48);
  for (uint64_t damage_seed = 1; damage_seed <= 3; ++damage_seed) {
    for (bool persistent : {false, true}) {
      for (uint64_t trigger = 0; trigger < reads; trigger += stride) {
        FaultPlan plan;
        plan.kind = FaultKind::kTransientIoError;
        plan.site = "pagefile.read";
        plan.trigger = trigger;
        plan.count = persistent ? UINT64_MAX : 1;
        plan.seed = damage_seed * 999983ull + trigger;
        RunOneInjection(c, plan, c.v1_path, "v1");
        if (HasFailure()) return;
      }
    }
  }
}

/// Regression for the poisoned-session bug: a session whose column load
/// failed partway must not reuse the half-materialized view on the next
/// query — SearchComplete after the fault clears must re-read and return
/// the correct result on the SAME session.
TEST(FaultInjectionTest, SessionRecoversAfterPartialLoadFailure) {
  const SharedCorpus& c = Corpus();
  FaultPlan observe;
  observe.kind = FaultKind::kNone;
  FaultInjector::Global().SetPlan(observe);
  auto env = DiskIndexEnv::Open(c.v2_path, SweepOptions());
  ASSERT_TRUE(env.ok()) << env.status().ToString();

  JoinSearchOptions options;
  options.semantics = c.workload[0].semantics;
  // Fail the load at every read index of the query in turn, so the
  // materialization is interrupted at every possible point — before the
  // lengths blob, between columns, mid-column.
  size_t failures_seen = 0;
  for (uint64_t trigger = 0; trigger < 64; ++trigger) {
    auto session = (*env)->NewSession();
    FaultPlan plan;
    plan.kind = FaultKind::kTransientIoError;
    plan.site = "pagefile.read";
    plan.trigger = trigger;
    plan.count = UINT64_MAX;  // outlasts every retry
    plan.seed = trigger + 1;
    FaultInjector::Global().SetPlan(plan);
    auto bad = session->SearchComplete(c.workload[0].keywords, options);
    FaultInjector::Global().Clear();
    if (bad.ok()) {
      // Trigger beyond the query's read count: nothing left to interrupt.
      EXPECT_TRUE(ResultsMatch(*bad, c.expected[0]));
      break;
    }
    ++failures_seen;
    EXPECT_TRUE(TypedStorageFailure(bad.status())) << bad.status().ToString();
    auto good = session->SearchComplete(c.workload[0].keywords, options);
    ASSERT_TRUE(good.ok())
        << "trigger=" << trigger << ": " << good.status().ToString();
    EXPECT_TRUE(ResultsMatch(*good, c.expected[0]))
        << "session reused poisoned partial-load state after a failed read "
        << "at trigger " << trigger;
  }
  EXPECT_GT(failures_seen, 0u);
}

/// Multi-session serving under a persistent fault: several sessions of one
/// environment run the workload concurrently while every read past the
/// trigger is bit-flipped. Each query must independently end correct or
/// typed, and after the plan clears the shared pool/cache must be clean.
TEST(FaultInjectionTest, ConcurrentSessionsUnderFaultStayConsistent) {
  const SharedCorpus& c = Corpus();
  FaultPlan observe;
  observe.kind = FaultKind::kNone;
  FaultInjector::Global().SetPlan(observe);
  auto env = DiskIndexEnv::Open(c.v2_path, FastRetryOptions());
  ASSERT_TRUE(env.ok()) << env.status().ToString();

  FaultPlan plan;
  plan.kind = FaultKind::kBitFlip;
  plan.site = "pagefile.read";
  plan.trigger = 4;
  plan.count = UINT64_MAX;
  plan.seed = 9001;
  const std::string tuple = TupleString(plan, "v2 concurrent");
  FaultInjector::Global().SetPlan(plan);

  std::mutex mu;
  std::vector<std::string> violations;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      auto batch = RunWorkloadChecked(c, env->get(), /*strict=*/false,
                                      tuple + " thread=" + std::to_string(t));
      std::lock_guard<std::mutex> lock(mu);
      violations.insert(violations.end(), batch.begin(), batch.end());
    });
  }
  for (auto& w : workers) w.join();
  ReportViolations(violations);

  FaultInjector::Global().Clear();
  ReportViolations(RunWorkloadChecked(c, env->get(), /*strict=*/true,
                                      tuple + " post-clear"));
}

/// Compressed v3 corpus: a high-repetition document indexed with the DAG
/// and dictionary enabled, written as a v3 container (front-coded term
/// dictionary, DAG sidecar, dictionary-coded rows). Reuses the SharedCorpus
/// shape so the same RunOneInjection machinery sweeps it: v2_path holds the
/// v3 segment and observed_reads_v2 its read count.
const SharedCorpus& CompressedCorpus() {
  static SharedCorpus* shared = [] {
    auto* s = new SharedCorpus;
    FaultInjector::Global().Clear();

    CorpusSpec spec;
    spec.seed = 11;
    spec.repeated = true;
    spec.rep_groups = 6;
    spec.rep_copies = 30;
    spec.terms = {"alpha", "beta", "gamma", "delta"};
    s->tree = MakeCorpusTree(spec);
    IndexBuildOptions build_options;
    build_options.index_tag_names = false;
    build_options.enable_dag = true;
    build_options.enable_dict = true;
    IndexBuilder builder(s->tree, build_options);
    s->jindex = builder.BuildJDeweyIndex();
    s->dindex = builder.BuildDeweyIndex();
    s->workload = MakeRandomWorkload(spec, 4);
    for (const WorkloadQuery& query : s->workload) {
      StackSearchOptions options;
      options.semantics = query.semantics;
      StackSearch search(s->tree, s->dindex, options);
      s->expected.push_back(search.Search(query.keywords));
    }

    s->v2_path = ::testing::TempDir() + "/fault_injection_v3_compressed";
    DiskIndexWriter::Options v3;
    v3.dict_terms = true;
    v3.dag = true;
    v3.dict_rows = true;
    if (!DiskIndexWriter::Write(s->jindex, s->v2_path, v3).ok()) std::abort();

    FaultPlan observe;
    observe.kind = FaultKind::kNone;
    FaultInjector::Global().SetPlan(observe);
    auto env = DiskIndexEnv::Open(s->v2_path, SweepOptions());
    if (!env.ok()) std::abort();
    if (!RunWorkloadChecked(*s, env->get(), /*strict=*/true, "observe v3")
             .empty()) {
      std::abort();
    }
    s->observed_reads_v2 = FaultInjector::Global().CallCount("pagefile.read");
    FaultInjector::Global().Clear();
    return s;
  }();
  return *shared;
}

/// The sweep for the compressed container: damage at every observed read
/// index must be detected or recovered exactly like the plain v2 format —
/// the dictionary, DAG sidecar and dictionary-coded row sections included
/// (a corrupt sidecar must never crash or silently mistranslate a term,
/// and a damaged dedup column must never expand to a wrong full column).
TEST(FaultInjectionTest, SweepCompressedV3SegmentDetectsOrRecovers) {
  const SharedCorpus& c = CompressedCorpus();
  const FaultKind kKinds[] = {FaultKind::kBitFlip, FaultKind::kShortRead,
                              FaultKind::kTransientIoError};
  const uint64_t reads = std::max<uint64_t>(c.observed_reads_v2, 1);
  const uint64_t stride = std::max<uint64_t>(1, reads / 48);
  for (uint64_t damage_seed = 1; damage_seed <= 3; ++damage_seed) {
    for (FaultKind kind : kKinds) {
      for (bool persistent : {false, true}) {
        for (uint64_t trigger = 0; trigger < reads; trigger += stride) {
          FaultPlan plan;
          plan.kind = kind;
          plan.site = "pagefile.read";
          plan.trigger = trigger;
          plan.count = persistent ? UINT64_MAX : 1;
          plan.seed = damage_seed * 1000033ull + trigger;
          RunOneInjection(c, plan, c.v2_path, "v3_dict_dag");
          if (HasFailure()) return;
        }
      }
    }
  }
}

/// Truncation of the compressed container: the sidecar and footer live in
/// the lost tail, so Open must fail typed; the undamaged file must serve
/// correctly once the plan clears.
TEST(FaultInjectionTest, TruncatedCompressedV3FailsOpenWithTypedStatus) {
  const SharedCorpus& c = CompressedCorpus();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FaultPlan plan;
    plan.kind = FaultKind::kTruncate;
    plan.site = "pagefile.open";
    plan.trigger = 0;
    plan.seed = seed;
    const std::string tuple = TupleString(plan, "v3_dict_dag");
    FaultInjector::Global().SetPlan(plan);
    auto env = DiskIndexEnv::Open(c.v2_path, FastRetryOptions());
    if (env.ok() || !TypedStorageFailure(env.status())) {
      std::string v = tuple + " : truncated open did not fail typed (" +
                      env.status().ToString() + ")";
      RecordFailingTuple(v);
      ADD_FAILURE() << v;
    }
    FaultInjector::Global().Clear();
  }
  auto env = DiskIndexEnv::Open(c.v2_path, FastRetryOptions());
  ASSERT_TRUE(env.ok()) << env.status().ToString();
  ReportViolations(RunWorkloadChecked(c, env->get(), /*strict=*/true,
                                      "v3_dict_dag post-truncate-sweep"));
}

/// The environment knob drives the same machinery: a parsed
/// XTOPK_FAULT_INJECT-style spec armed as a plan makes a persistent read
/// fault surface as a typed error, exactly like the programmatic path.
TEST(FaultInjectionTest, EnvKnobSpecParsesAndInjects) {
  const SharedCorpus& c = Corpus();
  auto plan = ParseFaultPlan(
      "kind=ioerror,site=pagefile.read,trigger=0,count=inf,seed=5");
  ASSERT_TRUE(plan.has_value());
  FaultInjector::Global().SetPlan(*plan);
  auto env = DiskIndexEnv::Open(c.v2_path, FastRetryOptions());
  EXPECT_FALSE(env.ok());
  if (!env.ok()) {
    EXPECT_TRUE(TypedStorageFailure(env.status()));
  }
  FaultInjector::Global().Clear();
}

}  // namespace
}  // namespace xtopk
