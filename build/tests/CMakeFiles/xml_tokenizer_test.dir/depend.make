# Empty dependencies file for xml_tokenizer_test.
# This may be replaced when dependencies are built.
