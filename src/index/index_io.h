#ifndef XTOPK_INDEX_INDEX_IO_H_
#define XTOPK_INDEX_INDEX_IO_H_

#include <string>

#include "index/dewey_index.h"
#include "index/jdewey_index.h"
#include "util/status.h"

namespace xtopk {

/// On-disk persistence for the two primary index families. The JDewey
/// format is the paper's physical design: per term, the row lengths (which
/// double as the present-row map of every column), optional per-row local
/// scores, then each column under its kAuto codec — delta columns store
/// values only because the lengths vector reconstructs their rows. The
/// (level, value) -> node mapping is stored per level, delta-encoded.
///
/// Format (all varints unless noted):
///   magic "XTK1", flags byte (bit0: scores present)
///   max_level, term_count
///   per term: name (length-prefixed), row count, max_length,
///             lengths[,] , [scores (f32 each)], column count, columns
///   level_nodes: level count, per level: entry count, (value delta,
///                node delta) pairs
namespace index_io {

/// Serializes `index` (optionally with local scores, which the top-K index
/// rebuild requires).
void EncodeJDeweyIndex(const JDeweyIndex& index, bool include_scores,
                       std::string* out);

/// Inverse of EncodeJDeweyIndex. Occurrence NodeIds are reconstructed from
/// the level-node mapping.
Status DecodeJDeweyIndex(const std::string& data, JDeweyIndex* out);

Status SaveJDeweyIndex(const JDeweyIndex& index, bool include_scores,
                       const std::string& path);
StatusOr<JDeweyIndex> LoadJDeweyIndex(const std::string& path);

/// Dewey-index persistence with the prefix+varint compression of
/// Xu & Papakonstantinou (the "stack-based" rows of Table I measure this
/// encoding's real bytes).
void EncodeDeweyIndex(const DeweyIndex& index, std::string* out);
Status DecodeDeweyIndex(const std::string& data, DeweyIndex* out);

}  // namespace index_io
}  // namespace xtopk

#endif  // XTOPK_INDEX_INDEX_IO_H_
