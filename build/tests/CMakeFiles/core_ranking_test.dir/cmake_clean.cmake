file(REMOVE_RECURSE
  "CMakeFiles/core_ranking_test.dir/core/ranking_test.cc.o"
  "CMakeFiles/core_ranking_test.dir/core/ranking_test.cc.o.d"
  "core_ranking_test"
  "core_ranking_test.pdb"
  "core_ranking_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ranking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
