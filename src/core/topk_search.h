#ifndef XTOPK_CORE_TOPK_SEARCH_H_
#define XTOPK_CORE_TOPK_SEARCH_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/plan_cache.h"
#include "core/scoring.h"
#include "core/search_result.h"
#include "core/topk_star_join.h"
#include "index/reader.h"
#include "index/topk_index.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/status.h"

namespace xtopk {

/// Options of the join-based top-K algorithm.
struct TopKSearchOptions {
  Semantics semantics = Semantics::kElca;
  size_t k = 10;
  /// Paper's grouped star-join threshold; false = classic TA-style bound.
  bool group_threshold = true;
  /// §V-D per-level hybrid: before each column's star join, estimate its
  /// match count by sampling run overlap; below `hybrid_min_matches` the
  /// column is evaluated with a complete join sweep instead (the star join
  /// "should only be used at the current level when the result size is
  /// estimated to be large"). 0 disables the hybrid (always star join).
  double hybrid_min_matches = 0.0;
  /// Runs sampled per column for the hybrid estimate.
  size_t hybrid_sample_runs = 128;
  /// Skip a column outright when the value ranges of the keywords' columns
  /// at that level have an empty intersection — no value can complete, so
  /// neither results nor pruner state can change (bit-identical output).
  /// The ranges come from the columns' first/last runs, i.e. the same
  /// min/max the on-disk block skip directory carries.
  bool value_range_skip = true;
  /// Cost-based planning for the §V-D complete-join sweeps: join order and
  /// per-step algorithms come from the histogram planner (one plan per
  /// query, cached) instead of per-level run counts. Star-join columns are
  /// unaffected. XTOPK_DISABLE_PLANNER forces this off.
  bool use_planner = true;
  /// Shared plan cache (usually the engine's). Null plans per query.
  PlanCache* plan_cache = nullptr;
  /// Per-query time budget, checked at every TermSource::Resolve call
  /// site, at every column boundary, and every kDeadlineCheckStride
  /// entries inside a column's star join. Expiry stops the scan: Search
  /// returns only the results already proven (each emitted result's score
  /// dominated every remaining bound, so the partial answer is a prefix of
  /// the true top-K) and status() reports kDeadlineExceeded.
  DeadlineToken deadline;
  ScoringParams scoring;
  /// Per-query span tree ("topk_search" root, one span per column round
  /// with entries-read/threshold/emission stats). Null disables tracing at
  /// zero cost.
  obs::QueryTrace* trace = nullptr;
};

struct TopKSearchStats {
  uint64_t entries_read = 0;     ///< score-ordered entries consumed
  uint64_t excluded_skips = 0;   ///< entries dropped by semantic pruning
  uint64_t candidates = 0;       ///< values completed across all keywords
  uint64_t early_emissions = 0;  ///< results released before exhaustion
  uint32_t columns_processed = 0;
  uint32_t columns_star_join = 0;      ///< per-level hybrid: star-join mode
  uint32_t columns_complete_join = 0;  ///< per-level hybrid: sweep mode
  uint32_t columns_value_skipped = 0;  ///< empty value-range intersection
  /// Whether the last query carried a cost-based plan for its sweeps, and
  /// whether that plan came out of the cache.
  bool planned = false;
  bool plan_cache_hit = false;
  /// The deadline expired mid-query: the result set is a (possibly empty)
  /// prefix of the true top-K (status() is kDeadlineExceeded).
  bool deadline_expired = false;
};

/// Star-join entries consumed between two deadline checks (block boundary
/// granularity: one clock read per stride, never per entry).
inline constexpr uint64_t kDeadlineCheckStride = 256;

/// The join-based top-K keyword search (paper §IV-C): inverted lists are
/// served score-descending per column (length-grouped segments merged on
/// the fly), each column runs the top-K star join of §IV-B, the semantic
/// pruning excludes occurrences consumed by deeper results, and a result is
/// released as soon as its score dominates both the current column's
/// star-join bound and the static upper bounds of all higher columns.
class TopKSearch {
 public:
  /// Over a prebuilt score-ordered index (the engine's steady-state path —
  /// segments are computed once at build time).
  explicit TopKSearch(const TopKIndex& index, TopKSearchOptions options = {});

  /// Over any posting source: the queried terms' lists are materialized in
  /// full and their score-ordered segments derived per query (what the disk
  /// and segmented paths do anyway — only the touched terms pay). `source`
  /// must outlive the TopKSearch.
  explicit TopKSearch(TermSource* source, TopKSearchOptions options = {});

  /// Returns up to `options.k` results in descending score order. An I/O
  /// failure inside the source yields an empty set — check status().
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  /// Status of the last Search call's list resolution.
  const Status& status() const { return last_status_; }

  const TopKSearchStats& stats() const { return stats_; }

 private:
  const TopKIndex* index_ = nullptr;  // prebuilt-index mode
  TermSource* source_ = nullptr;      // posting-source mode
  TopKSearchOptions options_;
  TopKSearchStats stats_;
  Status last_status_ = Status::Ok();
  /// Source mode: per-query score-ordered companions of the resolved lists
  /// (kept alive for the duration of Search).
  std::vector<TopKList> query_lists_;
};

}  // namespace xtopk

#endif  // XTOPK_CORE_TOPK_SEARCH_H_
