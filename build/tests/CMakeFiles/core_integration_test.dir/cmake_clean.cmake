file(REMOVE_RECURSE
  "CMakeFiles/core_integration_test.dir/core/integration_test.cc.o"
  "CMakeFiles/core_integration_test.dir/core/integration_test.cc.o.d"
  "core_integration_test"
  "core_integration_test.pdb"
  "core_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
