# Empty dependencies file for storage_column_test.
# This may be replaced when dependencies are built.
