# Empty dependencies file for hybrid_demo.
# This may be replaced when dependencies are built.
