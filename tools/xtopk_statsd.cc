// xtopk_statsd: live telemetry demo daemon. Builds the demo engine,
// drives a steady background query load against it, and serves the
// observability endpoints so dashboards (or curl) can watch the windowed
// percentiles move:
//
//   ./xtopk_statsd                      # ephemeral port, runs until ^C
//   ./xtopk_statsd --port 9100 --duration-s 30
//
//   curl localhost:<port>/metrics       # Prometheus text
//   curl localhost:<port>/vars          # JSON incl. last-10s/60s windows
//   curl localhost:<port>/slowlog       # recent slow-query captures
//
// Prints "listening on 127.0.0.1:<port>" on stdout once ready (the CI
// smoke job scrapes that line for the port).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "demo_doc.h"
#include "obs/event_log.h"
#include "obs/exposition.h"
#include "obs/slow_log.h"
#include "xml/xml_parser.h"

int main(int argc, char** argv) {
  uint16_t port = 0;
  int duration_s = -1;  // -1 = run until killed
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--duration-s") == 0 && i + 1 < argc) {
      duration_s = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: xtopk_statsd [--port N] [--duration-s N]\n");
      return 2;
    }
  }

  xtopk::XmlTree tree =
      xtopk::ParseXmlStringOrDie(xtopk_tools::BuildDemoXml());
  xtopk::Engine engine(tree);
  xtopk::obs::LogEvent("statsd", "demo engine built");

  xtopk::obs::ExpositionServer::Options server_options;
  server_options.port = port;
  xtopk::obs::ExpositionServer server(server_options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);

  // Background load: a rotating mix of cheap and heavier queries, so the
  // windowed histograms have something to show.
  std::atomic<bool> stop{false};
  std::thread load([&engine, &stop] {
    const std::vector<xtopk::BatchQuery> workload = [] {
      std::vector<xtopk::BatchQuery> queries;
      auto add = [&queries](std::vector<std::string> keywords, size_t k) {
        xtopk::BatchQuery query;
        query.keywords = std::move(keywords);
        query.k = k;
        queries.push_back(std::move(query));
      };
      add({"xml", "data"}, 0);
      add({"keyword", "search"}, 10);
      add({"top", "k"}, 5);
      add({"storage", "ranking"}, 0);
      add({"data", "management"}, 25);
      return queries;
    }();
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      engine.Search(workload[i % workload.size()].keywords);
      if (workload[i % workload.size()].k > 0) {
        engine.SearchTopK(workload[i % workload.size()].keywords,
                          workload[i % workload.size()].k);
      }
      ++i;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  if (duration_s < 0) {
    load.join();  // effectively forever
  } else {
    std::this_thread::sleep_for(std::chrono::seconds(duration_s));
    stop.store(true, std::memory_order_release);
    load.join();
  }
  server.Stop();
  return 0;
}
