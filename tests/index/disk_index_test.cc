#include "index/disk_index.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"
#include "workload/xmark_gen.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;
using testing::MakeSmallCorpus;

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DiskIndexTest, RoundTripSearchMatchesInMemory) {
  XmlTree tree = MakeRandomTree(201, 600, 4, 8, {"alpha", "beta"}, 0.15);
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();

  std::string path = TempPath("disk_index_roundtrip");
  ASSERT_TRUE(
      DiskIndexWriter::Write(jindex, /*include_scores=*/true, path).ok());
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    JoinSearchOptions search_options;
    search_options.semantics = semantics;
    JoinSearch memory_search(jindex, search_options);
    auto want = memory_search.Search({"alpha", "beta"});
    auto got = (*disk)->SearchComplete({"alpha", "beta"}, search_options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ((*got)[i].node, want[i].node);
      EXPECT_NEAR((*got)[i].score, want[i].score, 1e-12);
    }
  }
  std::remove(path.c_str());
}

TEST(DiskIndexTest, DirectoryAnswersWithoutDataIo) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("disk_index_directory");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_TRUE(disk.ok());
  (*disk)->ResetIoStats();
  EXPECT_EQ((*disk)->Frequency("xml"), 4u);
  EXPECT_EQ((*disk)->Frequency("absent"), 0u);
  EXPECT_EQ((*disk)->MaxLength("xml"), 4u);
  EXPECT_EQ((*disk)->io_stats().pages_read, 0u);
  std::remove(path.c_str());
}

TEST(DiskIndexTest, LazyColumnsSaveIoForShallowL0) {
  // A deep corpus where "shallow" only occurs at level <= 3 while "deep"
  // occurs down to the leaves: the query's l0 is small, so only a prefix
  // of "deep"'s columns is ever read (§III-B's I/O claim).
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  for (int branch = 0; branch < 1500; ++branch) {
    NodeId mid = tree.AddChild(root, "m");
    tree.AppendText(mid, "shallow");
    NodeId cur = mid;
    for (int depth = 0; depth < 10; ++depth) {
      cur = tree.AddChild(cur, "d");
      tree.AppendText(cur, "deep");
    }
  }
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();

  std::string path = TempPath("disk_index_lazy");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());

  // Query {shallow, deep}: l0 = max occurrence level of "shallow" = 2.
  auto disk = DiskJDeweyIndex::Open(path, /*pool_pages=*/4096);
  ASSERT_TRUE(disk.ok());
  (*disk)->ResetIoStats();
  auto results = (*disk)->SearchComplete({"shallow", "deep"});
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
  uint64_t shallow_query_pages = (*disk)->io_stats().pages_read;

  // Fully materializing "deep" (all 12 levels) costs strictly more pages.
  auto disk_full = DiskJDeweyIndex::Open(path, 4096);
  ASSERT_TRUE(disk_full.ok());
  (*disk_full)->ResetIoStats();
  auto list = (*disk_full)->LoadList("deep", 12);
  ASSERT_TRUE(list.ok());
  uint64_t full_load_pages = (*disk_full)->io_stats().pages_read;
  EXPECT_LT(shallow_query_pages, full_load_pages);
  std::remove(path.c_str());
}

TEST(DiskIndexTest, LoadListExtendsIncrementally) {
  XmlTree tree = MakeSmallCorpus();
  IndexBuilder builder(tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = TempPath("disk_index_extend");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_TRUE(disk.ok());

  auto partial = (*disk)->LoadList("xml", 2);
  ASSERT_TRUE(partial.ok());
  ASSERT_NE(*partial, nullptr);
  EXPECT_FALSE((*partial)->column(1).empty());
  EXPECT_FALSE((*partial)->column(2).empty());
  EXPECT_TRUE((*partial)->column(4).empty());  // not yet loaded

  auto full = (*disk)->LoadList("xml", 4);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(*full, *partial);  // same cached list object
  EXPECT_FALSE((*full)->column(4).empty());

  auto missing = (*disk)->LoadList("absent", 4);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, nullptr);
  std::remove(path.c_str());
}

TEST(DiskIndexTest, TopKOverDiskMatchesInMemory) {
  XmlTree tree = MakeRandomTree(202, 700, 4, 8, {"alpha", "beta"}, 0.15);
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree, options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex memory_topk = builder.BuildTopKIndex(jindex);

  std::string path = TempPath("disk_index_topk");
  ASSERT_TRUE(DiskIndexWriter::Write(jindex, true, path).ok());
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_TRUE(disk.ok());

  TopKSearchOptions topk_options;
  topk_options.k = 7;
  TopKSearch memory_search(memory_topk, topk_options);
  auto want = memory_search.Search({"alpha", "beta"});
  auto got = (*disk)->SearchTopK({"alpha", "beta"}, topk_options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ((*got)[i].node, want[i].node);
    EXPECT_NEAR((*got)[i].score, want[i].score, 1e-12);
  }
  // Missing keyword: clean empty result.
  auto none = (*disk)->SearchTopK({"alpha", "zzz"}, topk_options);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
  std::remove(path.c_str());
}

TEST(DiskIndexTest, CorruptFooterRejected) {
  std::string path = TempPath("disk_index_corrupt");
  PageFile file;
  ASSERT_TRUE(file.Open(path, true).ok());
  ASSERT_TRUE(file.AppendPage("not a footer").ok());
  ASSERT_TRUE(file.Close().ok());
  auto disk = DiskJDeweyIndex::Open(path);
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(DiskIndexTest, MissingFileIsIoError) {
  auto disk = DiskJDeweyIndex::Open("/nonexistent/index.xtk");
  ASSERT_FALSE(disk.ok());
  EXPECT_EQ(disk.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace xtopk
