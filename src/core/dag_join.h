#ifndef XTOPK_CORE_DAG_JOIN_H_
#define XTOPK_CORE_DAG_JOIN_H_

#include <deque>
#include <vector>

#include "core/join_ops.h"
#include "index/dag.h"
#include "index/jdewey_index.h"

namespace xtopk {

/// The per-level intersection step of JoinSearch / TopKSearch, made
/// structure-aware: when every list carries a deduplicated column at this
/// level's shared regions, the intersection runs over the dedup columns
/// (each shared subtree is joined ONCE) and the matches inside a
/// representative interval are fanned out to every instance afterwards —
/// value-shifted by the class's per-depth delta and row-shifted by each
/// term's per-instance row delta, then merged back into global value order.
/// The result is bit-identical to intersecting the full columns: same
/// match values, same order, and runs pointing at each instance's real
/// rows (so downstream erasure and scoring are untouched).
///
/// `ordered_lists` is in join order; `algos` non-null selects the planned
/// per-step algorithms (size k-1), null the dynamic heuristic. Translated
/// runs are materialized into `arena`, which must outlive every use of the
/// returned matches (a deque so grows never invalidate pointers).
///
/// Lists without DAG data (or levels without dedup columns) fall through
/// to the exact IntersectColumns path at zero overhead.
std::vector<LevelMatch> IntersectListsAtLevel(
    const std::vector<const JDeweyList*>& ordered_lists, uint32_t level,
    const std::vector<JoinAlgo>* algos, const PlannerOptions& planner,
    JoinOpStats* stats, const IntersectStepFn& on_step,
    std::deque<Run>* arena);

}  // namespace xtopk

#endif  // XTOPK_CORE_DAG_JOIN_H_
