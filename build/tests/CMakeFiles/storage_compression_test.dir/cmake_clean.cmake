file(REMOVE_RECURSE
  "CMakeFiles/storage_compression_test.dir/storage/compression_test.cc.o"
  "CMakeFiles/storage_compression_test.dir/storage/compression_test.cc.o.d"
  "storage_compression_test"
  "storage_compression_test.pdb"
  "storage_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
