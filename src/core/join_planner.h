#ifndef XTOPK_CORE_JOIN_PLANNER_H_
#define XTOPK_CORE_JOIN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/histogram.h"

namespace xtopk {

/// Join-algorithm selection policy (§III-C "dynamic optimization").
enum class JoinPolicy {
  /// Per join, pick the index join when the left side is much smaller than
  /// the right column; otherwise merge. Re-decided at every level, which is
  /// what makes the selection context-aware.
  kDynamic,
  kForceMerge,
  kForceIndex,
};

struct PlannerOptions {
  JoinPolicy policy = JoinPolicy::kDynamic;
  /// kDynamic picks the index join when
  /// left_size * index_join_ratio < right_size.
  double index_join_ratio = 16.0;
  /// Below the index-join cutoff, kDynamic gallops instead of merging when
  /// the sides are skewed: max(sizes) >= gallop_ratio * min(sizes). The
  /// linear merge is O(m + n); galloping is O(m log(n/m)), which wins once
  /// the ratio clears a small constant.
  double gallop_ratio = 8.0;
  /// PlanJoin runs the Selinger-style subset DP exactly up to this many
  /// keywords and falls back to greedy nearest-addition above (the DP is
  /// O(2^k * k * levels)).
  size_t exact_dp_max_terms = 12;
};

/// The intersection operator one join step should run (§III-C "dynamic
/// optimization", extended with the galloping middle ground).
enum class JoinAlgo {
  kMerge,   ///< 2-pointer linear merge — balanced sizes
  kGallop,  ///< exponential + binary search — skewed sizes
  kIndex,   ///< per-match binary probe of the column — tiny left side
};

/// True iff the next join step should probe (index join) rather than merge.
bool UseIndexJoin(size_t left_size, size_t right_size,
                  const PlannerOptions& options);

/// Three-way pick for the next intersection: index join when the left side
/// is far smaller than the column, galloping when the sizes are skewed by
/// at least gallop_ratio in either direction, linear merge otherwise.
/// left_size == 0 degenerates to a no-op merge; callers short-circuit an
/// empty intersection before ever reaching the pick (join_ops counts those
/// in JoinOpStats::early_empty).
JoinAlgo ChooseJoinAlgo(size_t left_size, size_t right_size,
                        const PlannerOptions& options);

/// Left-deep join order: indexes of `list_sizes` sorted ascending by size
/// ("from the shortest inverted list to the longest", §III-C).
std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes);

/// Tie-broken variant: equal-size lists order by term (lexicographic)
/// instead of input position, so the heuristic order — and any plan
/// fingerprinted from it — is identical across backends regardless of how
/// a query spelled its keywords. `terms` is position-aligned with
/// `list_sizes`.
std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes,
                                  const std::vector<std::string>& terms);

/// One keyword's planner input: its term, list length, and (optionally)
/// the per-level value histograms a TermSource exposes via Stats().
/// `stats == nullptr` (or histogram-less stats) degrades that term to
/// row-count-based estimates.
struct TermPlanInput {
  std::string term;
  uint32_t rows = 0;
  const TermStats* stats = nullptr;
};

/// One step of a left-deep join plan. steps[0] seeds the match list (no
/// algorithm); every later step folds `term`'s column in with
/// `algos[level - 1]`, chosen from ESTIMATED sizes at plan time instead of
/// the observed sizes the §III-C heuristic re-reads per step.
/// `est_out[level - 1]` is the estimated number of distinct values alive
/// after this step at that level — Explain renders it next to the actual.
struct JoinPlanStep {
  std::string term;
  std::vector<JoinAlgo> algos;
  std::vector<double> est_out;
};

/// A complete join plan for one keyword set against one index state.
struct JoinPlan {
  std::vector<JoinPlanStep> steps;  ///< left-deep join order
  uint32_t start_level = 0;         ///< deepest level the plan covers
  double est_cost = 0.0;            ///< summed per-level step costs
  bool exact = false;               ///< subset DP (true) or greedy fallback
  uint64_t fingerprint = 0;         ///< PlanFingerprint of the term set
  uint64_t watermark = 0;           ///< TermSource::PlanWatermark at plan time
};

/// Order-insensitive 64-bit fingerprint of a keyword set (terms are hashed
/// in sorted order), the plan-cache key.
uint64_t PlanFingerprint(const std::vector<std::string>& terms);

/// True when XTOPK_DISABLE_PLANNER is set to anything but "0" — the
/// runtime escape hatch that forces the observed-size heuristic in every
/// search path regardless of options.
bool PlannerDisabledByEnv();

/// Maps `plan`'s steps (terms in join order) to positions of `keywords`.
/// Duplicate keywords consume matching steps one at a time — any bijection
/// is correct since equal terms share one inverted list. Returns empty when
/// the plan does not fit (term mismatch, wrong arity, or start_level drift
/// — defensively possible under a fingerprint collision), in which case the
/// caller falls back to the heuristic order.
std::vector<size_t> MapPlanOrder(const JoinPlan& plan,
                                 const std::vector<std::string>& keywords,
                                 uint32_t start_level);

/// Cost-based join planning: estimates every subset's intersection
/// cardinality per level from histogram overlap, then searches join orders
/// — exhaustively via subset DP up to options.exact_dp_max_terms keywords,
/// greedily above — and fixes each step's merge/gallop/index choice from
/// the estimated sizes. Deterministic: inputs are ordered by term before
/// planning, so equal-cost plans resolve identically on every backend.
/// The caller stamps fingerprint/watermark for caching.
JoinPlan PlanJoin(std::vector<TermPlanInput> inputs, uint32_t start_level,
                  const PlannerOptions& options);

}  // namespace xtopk

#endif  // XTOPK_CORE_JOIN_PLANNER_H_
