#include "storage/buffer_pool.h"

#include <cassert>

namespace xtopk {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages == 0 ? 1 : capacity_pages) {}

StatusOr<std::shared_ptr<const std::string>> BufferPool::GetPage(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    ++hits_;
    // Move to the front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->data;
  }
  ++misses_;
  auto page = std::make_shared<std::string>();
  Status s = file_->ReadPage(id, page.get());
  if (!s.ok()) return s;
  lru_.push_front(Entry{id, std::move(page)});
  map_[id] = lru_.begin();
  if (map_.size() > capacity_) {
    map_.erase(lru_.back().id);
    lru_.pop_back();
  }
  return lru_.front().data;
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

}  // namespace xtopk
