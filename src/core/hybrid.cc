#include "core/hybrid.h"

#include <algorithm>

namespace xtopk {

HybridSearch::HybridSearch(const TopKIndex& index, HybridOptions options)
    : index_(index), options_(options) {}

double HybridSearch::EstimateResultCount(
    const std::vector<std::string>& keywords) const {
  // Sample the overlap of run values between the two shortest lists at each
  // level: |A ∩ B| estimated as |A_sample ∩ B| * (|A| / |A_sample|).
  // Summed over levels this approximates the total match count, the "join
  // cardinality" §V-D keys the plan choice on.
  std::vector<const JDeweyList*> lists;
  for (const std::string& kw : keywords) {
    const TopKList* list = index_.GetList(kw);
    if (list == nullptr || list->base->num_rows() == 0) return 0.0;
    lists.push_back(list->base);
  }
  if (lists.size() < 2) {
    return static_cast<double>(lists.empty() ? 0 : lists[0]->num_rows());
  }
  std::sort(lists.begin(), lists.end(),
            [](const JDeweyList* a, const JDeweyList* b) {
              return a->num_rows() < b->num_rows();
            });
  const JDeweyList* a = lists[0];
  const JDeweyList* b = lists[1];
  uint32_t max_level = std::min(a->max_length, b->max_length);
  double estimate = 0.0;
  for (uint32_t level = 1; level <= max_level; ++level) {
    const Column& ca = a->column(level);
    const Column& cb = b->column(level);
    if (ca.empty() || cb.empty()) continue;
    size_t stride = std::max<size_t>(1, ca.run_count() / options_.sample_runs);
    size_t sampled = 0, hits = 0;
    for (size_t i = 0; i < ca.run_count(); i += stride) {
      ++sampled;
      if (cb.FindValue(ca.runs()[i].value) != nullptr) ++hits;
    }
    if (sampled > 0) {
      estimate += static_cast<double>(hits) / static_cast<double>(sampled) *
                  static_cast<double>(ca.run_count());
    }
  }
  return estimate;
}

std::vector<SearchResult> HybridSearch::Search(
    const std::vector<std::string>& keywords) {
  decision_ = HybridDecision{};
  {
    obs::ScopedSpan plan(options_.trace, "hybrid_plan");
    decision_.estimated_results = EstimateResultCount(keywords);
    decision_.used_topk_join =
        decision_.estimated_results >= options_.topk_min_estimated_results;
    plan.Stat("estimated_results", decision_.estimated_results);
    plan.Label("decision",
               decision_.used_topk_join ? "topk_join" : "complete_join");
  }

  if (decision_.used_topk_join) {
    TopKSearchOptions topk_options;
    topk_options.semantics = options_.semantics;
    topk_options.k = options_.k;
    topk_options.scoring = options_.scoring;
    topk_options.trace = options_.trace;
    TopKSearch search(index_, topk_options);
    return search.Search(keywords);
  }

  JoinSearchOptions join_options;
  join_options.semantics = options_.semantics;
  join_options.compute_scores = true;
  join_options.scoring = options_.scoring;
  join_options.trace = options_.trace;
  JoinSearch search(*index_.base(), join_options);
  std::vector<SearchResult> results = search.Search(keywords);
  SortByScoreDesc(&results);
  if (results.size() > options_.k) results.resize(options_.k);
  return results;
}

}  // namespace xtopk
