#include "workload/query_gen.h"

#include <algorithm>
#include <unordered_set>

namespace xtopk {
namespace {

struct FreqLess {
  bool operator()(const TermInfo& a, uint32_t f) const {
    return a.frequency < f;
  }
  bool operator()(uint32_t f, const TermInfo& a) const {
    return f < a.frequency;
  }
};

}  // namespace

QueryGenerator::QueryGenerator(const std::vector<TermInfo>& terms,
                               uint64_t seed)
    : by_frequency_(terms), rng_(seed) {
  std::sort(by_frequency_.begin(), by_frequency_.end(),
            [](const TermInfo& a, const TermInfo& b) {
              if (a.frequency != b.frequency) return a.frequency < b.frequency;
              return a.term < b.term;
            });
}

size_t QueryGenerator::BandSize(const FrequencyBand& band) const {
  auto lo = std::lower_bound(by_frequency_.begin(), by_frequency_.end(),
                             band.lo, FreqLess{});
  auto hi = std::upper_bound(by_frequency_.begin(), by_frequency_.end(),
                             band.hi, FreqLess{});
  return hi > lo ? static_cast<size_t>(hi - lo) : 0;
}

std::optional<std::string> QueryGenerator::SampleInBand(
    const FrequencyBand& band) {
  auto lo = std::lower_bound(by_frequency_.begin(), by_frequency_.end(),
                             band.lo, FreqLess{});
  auto hi = std::upper_bound(by_frequency_.begin(), by_frequency_.end(),
                             band.hi, FreqLess{});
  if (lo >= hi) return std::nullopt;
  size_t span = static_cast<size_t>(hi - lo);
  return (lo + rng_.NextBounded(span))->term;
}

std::vector<std::vector<std::string>> QueryGenerator::MixedFrequencyQueries(
    size_t count, size_t k, const FrequencyBand& low,
    const FrequencyBand& high) {
  std::vector<std::vector<std::string>> queries;
  for (size_t q = 0; q < count; ++q) {
    std::vector<std::string> query;
    std::unordered_set<std::string> used;
    auto low_term = SampleInBand(low);
    if (!low_term.has_value()) return queries;
    query.push_back(*low_term);
    used.insert(*low_term);
    size_t rerolls = 0;
    while (query.size() < k) {
      auto term = SampleInBand(high);
      if (!term.has_value()) return queries;
      if (used.insert(*term).second) {
        query.push_back(*term);
      } else if (++rerolls > 1000) {
        break;  // band too small for k distinct terms
      }
    }
    if (query.size() == k) queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<std::vector<std::string>> QueryGenerator::EqualFrequencyQueries(
    size_t count, size_t k, const FrequencyBand& band) {
  std::vector<std::vector<std::string>> queries;
  for (size_t q = 0; q < count; ++q) {
    std::vector<std::string> query;
    std::unordered_set<std::string> used;
    size_t rerolls = 0;
    while (query.size() < k) {
      auto term = SampleInBand(band);
      if (!term.has_value()) return queries;
      if (used.insert(*term).second) {
        query.push_back(*term);
      } else if (++rerolls > 1000) {
        break;
      }
    }
    if (query.size() == k) queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace xtopk
