file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rangecheck.dir/bench_ablation_rangecheck.cc.o"
  "CMakeFiles/bench_ablation_rangecheck.dir/bench_ablation_rangecheck.cc.o.d"
  "bench_ablation_rangecheck"
  "bench_ablation_rangecheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rangecheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
