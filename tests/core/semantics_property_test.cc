// Cross-implementation property tests: on randomized trees, the join-based
// algorithm (both erasure modes, all join policies), the stack-based
// baseline, and the index-based baseline must produce exactly the node set
// and scores of the direct-from-definition oracle, for both ELCA and SLCA.
// This is the main correctness pin of the library.

#include <gtest/gtest.h>

#include <set>

#include "baseline/indexed_lookup.h"
#include "baseline/naive.h"
#include "baseline/stack_search.h"
#include "core/join_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

struct Case {
  uint64_t seed;
  size_t nodes;
  uint32_t max_children;
  uint32_t max_depth;
  double term_prob;
  size_t k;  // number of query keywords
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  const Case& c = info.param;
  return "seed" + std::to_string(c.seed) + "n" + std::to_string(c.nodes) +
         "d" + std::to_string(c.max_depth) + "k" + std::to_string(c.k);
}

class SemanticsPropertyTest : public ::testing::TestWithParam<Case> {};

void ExpectSameResults(const std::vector<SearchResult>& got_in,
                       const std::vector<SearchResult>& want_in,
                       bool check_scores, const std::string& label) {
  std::vector<SearchResult> got = got_in, want = want_in;
  SortByNode(&got);
  SortByNode(&want);
  std::set<NodeId> got_nodes, want_nodes;
  for (const auto& r : got) got_nodes.insert(r.node);
  for (const auto& r : want) want_nodes.insert(r.node);
  ASSERT_EQ(got_nodes, want_nodes) << label;
  ASSERT_EQ(got.size(), want.size()) << label << " (duplicate results)";
  if (check_scores) {
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i].score, want[i].score, 1e-6)
          << label << " node " << got[i].node;
    }
  }
}

TEST_P(SemanticsPropertyTest, AllAlgorithmsMatchOracle) {
  const Case& c = GetParam();
  std::vector<std::string> all_terms = {"alpha", "beta", "gamma", "delta",
                                        "epsilon"};
  std::vector<std::string> terms(all_terms.begin(), all_terms.begin() + c.k);
  XmlTree tree = testing::MakeRandomTree(c.seed, c.nodes, c.max_children,
                                         c.max_depth, terms, c.term_prob);

  IndexBuildOptions build_options;
  build_options.index_tag_names = false;  // only the planted terms matter
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  DeweyIndex dindex = builder.BuildDeweyIndex();
  NaiveOracle oracle(tree, dindex);

  for (Semantics semantics : {Semantics::kElca, Semantics::kSlca}) {
    auto want = oracle.Search(terms, semantics);
    std::string base_label =
        std::string(semantics == Semantics::kElca ? "ELCA" : "SLCA");

    // Join-based: every erasure mode and join policy.
    for (bool range_check : {true, false}) {
      for (JoinPolicy policy :
           {JoinPolicy::kDynamic, JoinPolicy::kForceMerge,
            JoinPolicy::kForceIndex}) {
        JoinSearchOptions options;
        options.semantics = semantics;
        options.use_range_check = range_check;
        options.planner.policy = policy;
        JoinSearch search(jindex, options);
        ExpectSameResults(search.Search(terms), want, /*check_scores=*/true,
                          base_label + " join-based");
      }
    }

    // Stack-based baseline (with scores).
    {
      StackSearchOptions options;
      options.semantics = semantics;
      StackSearch search(tree, dindex, options);
      ExpectSameResults(search.Search(terms), want, /*check_scores=*/true,
                        base_label + " stack-based");
    }

    // Index-based baseline (node sets; scores optional path).
    {
      IndexedLookupOptions options;
      options.semantics = semantics;
      options.compute_scores = true;
      IndexedLookupSearch search(tree, dindex, options);
      ExpectSameResults(search.Search(terms), want, /*check_scores=*/true,
                        base_label + " index-based");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTrees, SemanticsPropertyTest,
    ::testing::Values(
        // Dense occurrences on tiny trees: nesting-heavy cases.
        Case{1, 30, 3, 4, 0.5, 2}, Case{2, 30, 3, 4, 0.5, 2},
        Case{3, 30, 3, 4, 0.5, 3}, Case{4, 50, 2, 8, 0.4, 2},
        Case{5, 50, 2, 8, 0.4, 3},
        // Sparser occurrences on mid-size trees.
        Case{6, 200, 4, 6, 0.15, 2}, Case{7, 200, 4, 6, 0.15, 3},
        Case{8, 300, 5, 5, 0.1, 2}, Case{9, 300, 5, 5, 0.1, 4},
        Case{10, 400, 3, 9, 0.08, 2}, Case{11, 400, 3, 9, 0.08, 3},
        // Deep chains: many levels, strong damping.
        Case{12, 150, 2, 12, 0.2, 2}, Case{13, 150, 2, 12, 0.2, 3},
        // Larger sweeps.
        Case{14, 800, 4, 7, 0.05, 2}, Case{15, 800, 4, 7, 0.05, 3},
        Case{16, 800, 4, 7, 0.12, 4}, Case{17, 1200, 6, 6, 0.04, 2},
        Case{18, 1200, 6, 6, 0.08, 5}, Case{19, 600, 8, 4, 0.1, 3},
        Case{20, 600, 2, 10, 0.06, 2},
        // Single-keyword queries: ELCA = all occurrences, SLCA = the
        // occurrences with no occurrence below them.
        Case{33, 200, 4, 8, 0.3, 1}, Case{34, 500, 3, 10, 0.15, 1},
        // Stress shapes: very wide, very deep, near-saturated occurrences.
        Case{35, 900, 16, 3, 0.2, 2}, Case{36, 900, 16, 3, 0.2, 3},
        Case{37, 300, 2, 20, 0.15, 2}, Case{38, 300, 2, 20, 0.1, 3},
        Case{39, 150, 3, 6, 0.9, 2}, Case{40, 150, 3, 6, 0.9, 4},
        Case{41, 1500, 5, 8, 0.03, 2}, Case{42, 1500, 5, 8, 0.06, 5}),
    CaseName);

}  // namespace
}  // namespace xtopk
