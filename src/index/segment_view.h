#ifndef XTOPK_INDEX_SEGMENT_VIEW_H_
#define XTOPK_INDEX_SEGMENT_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "index/disk_index.h"
#include "index/jdewey_index.h"
#include "index/reader.h"
#include "storage/segment_manifest.h"
#include "util/status.h"

namespace xtopk {

/// One immutable sealed segment (DESIGN.md §17): either an in-memory
/// raw-tf JDeweyIndex or an opened on-disk segment, plus its manifest.
/// Shared by every SegmentSetVersion that lists it; nothing here mutates
/// after construction except the superseded flag.
///
/// File lifetime is epoch-style: a compaction that replaces this segment
/// calls MarkSuperseded(), and the destructor — which runs when the LAST
/// version referencing the segment is dropped, i.e. when no in-flight
/// query can still read it — unlinks the segment file and its manifest.
/// Recovery handles the crash window between the drop record and the
/// unlink (manifest_log.h).
class SealedSegment {
 public:
  /// Seals `segment` (raw-tf scores, built by BuildSegmentIndex) as an
  /// in-memory immutable segment.
  static std::shared_ptr<const SealedSegment> FromMemory(
      JDeweyIndex segment, uint64_t covered_nodes);

  /// Opens a sealed on-disk segment: `path` must hold a DiskIndexWriter
  /// page file with scores, `path + ".manifest"` its SegmentManifest.
  /// `id` is the manifest-log segment id (0 = not log-managed).
  static StatusOr<std::shared_ptr<const SealedSegment>> FromDisk(
      const std::string& path, DiskIndexOptions options = {},
      uint64_t id = 0);

  ~SealedSegment();
  SealedSegment(const SealedSegment&) = delete;
  SealedSegment& operator=(const SealedSegment&) = delete;

  bool is_memory() const { return memory_ != nullptr; }
  const JDeweyIndex* memory() const { return memory_.get(); }
  const std::shared_ptr<DiskIndexEnv>& env() const { return env_; }
  const SegmentManifest& manifest() const { return manifest_; }
  /// term -> (rows, max_tf), the lookup form of the manifest.
  const std::unordered_map<std::string, std::pair<uint32_t, uint32_t>>&
  stats() const {
    return stats_;
  }
  uint64_t id() const { return id_; }
  const std::string& path() const { return path_; }
  /// On-disk size of the segment file (0 for memory segments) — the
  /// tiered-compaction trigger input.
  uint64_t data_bytes() const { return data_bytes_; }

  /// Session-free per-segment lookups (memory index or DiskIndexEnv
  /// directory/node map — immutable, safe from any thread).
  uint32_t MaxLengthOf(const std::string& term) const;
  NodeId NodeAt(uint32_t level, uint32_t value) const;
  uint32_t max_level() const;

  /// Declares this segment replaced: its files are deleted when the last
  /// referencing version drops. Idempotent; const because supersession is
  /// lifecycle state, not index state.
  void MarkSuperseded() const {
    superseded_.store(true, std::memory_order_release);
  }
  bool superseded() const {
    return superseded_.load(std::memory_order_acquire);
  }

 private:
  SealedSegment() = default;

  std::unique_ptr<const JDeweyIndex> memory_;
  std::shared_ptr<DiskIndexEnv> env_;
  SegmentManifest manifest_;
  std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> stats_;
  uint64_t id_ = 0;
  std::string path_;
  uint64_t data_bytes_ = 0;
  mutable std::atomic<bool> superseded_{false};
};

/// An immutable snapshot of the whole segment set: the sealed list, the
/// memtable (shared — a later memtable rebuild cannot pull it out from
/// under a pinned query), and the corpus node count the idf term needs.
/// Queries pin one version for their entire lifetime, so the segment list
/// can never mutate mid-query; SegmentedIndex publishes a fresh version
/// for every mutation.
///
/// Merged-list / statistics caches live per version behind an internal
/// mutex (several in-flight queries may share one pin). Cached pointers
/// are node-stable and valid for the version's lifetime — the version is
/// immutable, so they are never invalidated.
class SegmentSetVersion {
 public:
  SegmentSetVersion(uint64_t version,
                    std::vector<std::shared_ptr<const SealedSegment>> sealed,
                    std::shared_ptr<const JDeweyIndex> memtable,
                    uint64_t corpus_nodes);
  ~SegmentSetVersion();
  SegmentSetVersion(const SegmentSetVersion&) = delete;
  SegmentSetVersion& operator=(const SegmentSetVersion&) = delete;

  uint64_t version() const { return version_; }
  const std::vector<std::shared_ptr<const SealedSegment>>& sealed() const {
    return sealed_;
  }
  const JDeweyIndex* memtable() const { return memtable_.get(); }
  const std::shared_ptr<const JDeweyIndex>& memtable_ref() const {
    return memtable_;
  }
  uint64_t corpus_nodes() const { return corpus_nodes_; }

  /// TermSource-shaped reads (segment.h documents the merge/normalization
  /// semantics; they are unchanged, only the ownership moved here).
  uint32_t Frequency(const std::string& term) const;
  uint32_t MaxLength(const std::string& term) const;
  StatusOr<const JDeweyList*> Resolve(const std::string& term) const;
  NodeId NodeAt(uint32_t level, uint32_t value) const;
  uint32_t max_level() const;
  const TermStats* Stats(const std::string& term) const;

 private:
  struct TermGlobal {
    uint64_t df = 0;
    uint32_t max_tf = 0;
  };

  /// Rebuilds globals_ / max_raw_ once per version. Caller holds mu_.
  void RefreshGlobalsLocked() const;
  /// All children's lists holding `term` (loads disk lists through this
  /// version's private sessions). Caller holds mu_.
  Status CollectPartsLocked(const std::string& term,
                            std::vector<const JDeweyList*>* parts) const;

  const uint64_t version_;
  const std::vector<std::shared_ptr<const SealedSegment>> sealed_;
  const std::shared_ptr<const JDeweyIndex> memtable_;
  const uint64_t corpus_nodes_;

  mutable std::mutex mu_;
  /// Lazily created disk sessions, parallel to sealed_ (sessions are
  /// single-threaded, so each version keeps its own under mu_).
  mutable std::vector<std::unique_ptr<DiskJDeweyIndex>> sessions_;
  mutable bool globals_ready_ = false;
  mutable std::unordered_map<std::string, TermGlobal> globals_;
  mutable double max_raw_ = 1.0;
  /// Merged + normalized lists; node-based map, so handed-out pointers
  /// stay stable.
  mutable std::unordered_map<std::string, JDeweyList> cache_;
  /// Merged planner statistics; rows == 0 memoizes "term absent".
  mutable std::unordered_map<std::string, TermStats> stats_cache_;
};

/// TermSource adapter over one pinned version: construct per query,
/// point JoinSearch/TopKSearch at it, drop it (and the pin) when the
/// query finishes. PlanWatermark is the version id, so cached plans keyed
/// through a reader stay correct across background publishes.
class SegmentSetReader : public TermSource {
 public:
  explicit SegmentSetReader(std::shared_ptr<const SegmentSetVersion> version)
      : version_(std::move(version)) {}

  const std::shared_ptr<const SegmentSetVersion>& version() const {
    return version_;
  }

  uint32_t Frequency(const std::string& term) const override {
    return version_->Frequency(term);
  }
  uint32_t MaxLength(const std::string& term) const override {
    return version_->MaxLength(term);
  }
  StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t /*up_to_level*/,
      bool /*need_scores*/,
      const std::vector<ValueBounds>* /*level_bounds*/) override {
    return version_->Resolve(term);
  }
  NodeId NodeAt(uint32_t level, uint32_t value) const override {
    return version_->NodeAt(level, value);
  }
  uint32_t max_level() const override { return version_->max_level(); }
  const TermStats* Stats(const std::string& term) const override {
    return version_->Stats(term);
  }
  uint64_t PlanWatermark() const override { return version_->version(); }

 private:
  std::shared_ptr<const SegmentSetVersion> version_;
};

/// K-way merge of per-segment rows of one term by JDewey sequence into a
/// single list (raw scores copied through untouched). The parts must
/// cover disjoint node sets of one tree under one encoding.
JDeweyList MergeJDeweyParts(const std::vector<const JDeweyList*>& parts);

/// Merges `inputs` into one raw-tf JDeweyIndex (term lists k-way merged,
/// (level, value) -> node maps unioned) ready for DiskIndexWriter.
/// `covered_nodes` receives the inputs' covered-node total. Uses its own
/// disk sessions, so it is safe to run off-thread against segments that
/// live versions are serving.
StatusOr<JDeweyIndex> BuildCompactedSegment(
    const std::vector<std::shared_ptr<const SealedSegment>>& inputs,
    uint64_t* covered_nodes);

}  // namespace xtopk

#endif  // XTOPK_INDEX_SEGMENT_VIEW_H_
