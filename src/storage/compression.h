#ifndef XTOPK_STORAGE_COMPRESSION_H_
#define XTOPK_STORAGE_COMPRESSION_H_

#include <cstdint>
#include <string>

#include "storage/column.h"
#include "storage/sparse_index.h"
#include "util/status.h"

namespace xtopk {

/// On-disk column codecs (paper §III-D, after C-Store / Abadi et al.):
///
/// * kDelta — legacy per-row varint stream: rows are cut into fixed-size
///   blocks; each block stores its first JDewey number in full and every
///   subsequent value as a delta from its predecessor. Row ids are NOT
///   stored: which rows are present in a column is implied by the per-row
///   sequence lengths the list header already carries, so decoding takes
///   the present-row list as input. Kept for reading old segments; new
///   builds write kGroupVarint instead.
/// * kRunLength — for columns with few distinct values: each run is a
///   triple (v, r, c) = (value, first row, repeat count), delta-encoded
///   between consecutive triples (self-contained).
/// * kGroupVarint — the same per-row delta stream as kDelta, but packed
///   four values per control byte (group varint) in blocks of
///   kGvbBlockRows rows, with a per-block skip directory
///   (min_value, max_value, byte_offset) so readers decode only blocks
///   whose value range can intersect a probe set, and decode them with a
///   branch-light table-driven kernel (SIMD fast path, see util/simd.h).
/// * kAuto — pick per column: run-length when the average run length is at
///   least kRleThreshold, group-varint otherwise.
/// * kDict — dictionary layout (DESIGN.md §15): the column's distinct
///   values are written as one contiguous delta-coded dictionary section,
///   followed by the run structure (row delta, count) per run. Runs are
///   maximal so distinct values == runs and the run's dictionary code is
///   its position; the payoff over kRunLength is the split layout — the
///   value dictionary compresses as one monotone stream, and it is the
///   self-contained form the disk format's DAG-deduplicated columns are
///   stored in (row ids are explicit, so no present-row list is needed).
enum class ColumnCodec : uint8_t {
  kDelta = 0,
  kRunLength = 1,
  kAuto = 2,
  kGroupVarint = 3,
  kDict = 4,
};

/// Average run length at or above which kAuto selects run-length encoding.
inline constexpr double kRleThreshold = 1.5;

/// Rows per delta block. 8 KiB blocks of ~4-byte entries in the paper's
/// setting; we keep the block size in rows so the codec is deterministic.
inline constexpr uint32_t kDeltaBlockRows = 2048;

/// Rows per group-varint block (32 groups of 4). Small enough that a skip
/// probe for a narrow value range touches few rows, large enough that the
/// per-block directory entry (~4 bytes) stays under 1% overhead.
inline constexpr uint32_t kGvbBlockRows = 128;

/// Inclusive value range a reader is interested in. Used by
/// DecodeColumnWithBounds to skip group-varint blocks whose
/// [min_value, max_value] cannot intersect it.
struct ValueBounds {
  uint32_t lo = 0;
  uint32_t hi = UINT32_MAX;
};

/// Per-decode skip effectiveness (also mirrored into the metrics registry
/// as storage.skip.blocks_decoded / storage.skip.blocks_skipped).
struct SkipDecodeStats {
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
};

/// Encodes `column` with `codec`, appending to `out`. With kAuto the chosen
/// codec is recorded in the header so decode is self-describing.
void EncodeColumn(const Column& column, ColumnCodec codec, std::string* out);

/// Decodes a column previously written by EncodeColumn, starting at
/// data[*pos]; advances *pos. `present_rows` lists the row ids present in
/// this column in order (derived from the list's sequence lengths); it is
/// required for kDelta/kGroupVarint-coded columns and ignored for
/// kRunLength ones — pass nullptr only when the codec is known to be
/// run-length.
Status DecodeColumn(const std::string& data, size_t* pos,
                    const std::vector<uint32_t>* present_rows,
                    Column* column);

/// Like DecodeColumn, but for group-varint columns decodes only the blocks
/// whose value range can intersect `bounds` — the output column then holds
/// a contiguous subrange of the full column's runs (a superset of every
/// run with a value in `bounds`). Other codecs decode fully. *pos always
/// advances past the whole encoded column. `stats` (optional) accumulates
/// skip effectiveness.
Status DecodeColumnWithBounds(const std::string& data, size_t* pos,
                              const std::vector<uint32_t>* present_rows,
                              const ValueBounds& bounds, Column* column,
                              SkipDecodeStats* stats);

/// Random-access reader over one encoded group-varint column: parses the
/// header and skip directory once, then decodes individual physical blocks
/// on demand. This is what lets the index layer cache decoded fragments
/// per block and reassemble wider ranges without re-running the codec.
/// Borrows `data`; the string must outlive the reader.
class GvbColumnReader {
 public:
  GvbColumnReader() = default;

  /// Binds to the encoded column starting at data[pos] (the codec byte).
  /// Returns InvalidArgument when the codec there is not kGroupVarint
  /// (the caller falls back to DecodeColumn) and Corruption on a
  /// malformed header.
  Status Open(const std::string& data, size_t pos);

  uint32_t row_count() const { return row_count_; }
  uint32_t block_rows() const { return block_rows_; }
  const BlockSkipIndex& skip() const { return skip_; }
  size_t block_count() const { return skip_.block_count(); }
  /// Rows held by physical block `b` (the last block may be partial).
  uint32_t rows_in_block(size_t b) const;
  /// First byte past the encoded column (header + all data blocks).
  size_t end_pos() const { return end_pos_; }

  /// Decodes physical block `b` standalone, appending its runs to
  /// `column`. `present_rows` is the level's full present-row list (the
  /// block's rows index into it at b * block_rows()).
  Status DecodeBlock(size_t b, const std::vector<uint32_t>& present_rows,
                     Column* column) const;

 private:
  friend Status DecodeGvbBody(const std::string& data, size_t* pos,
                              uint32_t row_count,
                              const std::vector<uint32_t>* present_rows,
                              const ValueBounds* bounds, Column* column,
                              SkipDecodeStats* stats);

  Status OpenBody(const std::string& data, size_t pos, uint32_t row_count);

  const std::string* data_ = nullptr;
  uint32_t row_count_ = 0;
  uint32_t block_rows_ = 0;
  BlockSkipIndex skip_;
  size_t data_start_ = 0;  // first byte of the data section
  size_t end_pos_ = 0;
};

/// Dictionary codec for low-cardinality per-row streams (the score and
/// length "columns" of a list, which are row-aligned values rather than
/// run columns): [kDict byte][row count][#distinct][sorted distinct values,
/// delta-coded][code bit width][bit-packed codes]. With d distinct values a
/// row costs ceil(log2 d) bits instead of a full varint/float — on
/// repetitive corpora (few distinct tf·idf scores, few distinct depths)
/// this is the dominant row-stream win. Scores are encoded via their
/// float bit patterns (bit-exact round trip).
void EncodeDictRows(const std::vector<uint32_t>& values, std::string* out);

/// Decodes an EncodeDictRows stream; `expected_rows` guards the header.
Status DecodeDictRows(const std::string& data, size_t* pos,
                      size_t expected_rows, std::vector<uint32_t>* out);

/// Codec kAuto would choose for `column`.
ColumnCodec ChooseCodec(const Column& column);

/// Encoded size without side effects (index-size stats / planner sizing):
/// unlike EncodeColumn this does not bump the storage.codec.* counters, so
/// size probes never inflate EXPLAIN's encode counts.
size_t EncodedColumnSize(const Column& column, ColumnCodec codec);

}  // namespace xtopk

#endif  // XTOPK_STORAGE_COMPRESSION_H_
