file(REMOVE_RECURSE
  "libxtopk.a"
)
