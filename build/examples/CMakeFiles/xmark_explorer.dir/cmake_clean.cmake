file(REMOVE_RECURSE
  "CMakeFiles/xmark_explorer.dir/xmark_explorer.cpp.o"
  "CMakeFiles/xmark_explorer.dir/xmark_explorer.cpp.o.d"
  "xmark_explorer"
  "xmark_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmark_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
