#include "index/reader.h"

#include <algorithm>

namespace xtopk {

Status ResolveForJoin(TermSource* source,
                      const std::vector<std::string>& keywords,
                      bool need_scores,
                      std::vector<const JDeweyList*>* lists) {
  lists->clear();
  if (keywords.empty()) return Status::Ok();

  // l0 from the directory: no LCA of all keywords can sit below the
  // shallowest of the deepest occurrence levels (§III-B). A missing
  // keyword means no answers — nothing is materialized.
  uint32_t l0 = UINT32_MAX;
  for (const std::string& kw : keywords) {
    if (source->Frequency(kw) == 0) return Status::Ok();
    l0 = std::min(l0, source->MaxLength(kw));
  }

  // Seed on the rarest term (the same stable argmin the join planner
  // starts from), then bound every other load by the seed's per-level
  // value ranges. Sources without skip support ignore the bounds, so the
  // pipeline is uniform across memory / disk / segmented sources.
  size_t seed = 0;
  for (size_t i = 1; i < keywords.size(); ++i) {
    if (source->Frequency(keywords[i]) < source->Frequency(keywords[seed])) {
      seed = i;
    }
  }
  auto seed_list = source->Resolve(keywords[seed], l0, need_scores, nullptr);
  if (!seed_list.ok()) return seed_list.status();
  if (*seed_list == nullptr) return Status::Ok();

  std::vector<ValueBounds> bounds(l0);
  for (uint32_t l = 1; l <= l0; ++l) {
    LevelCursor cursor = TermSource::CursorAt(**seed_list, l);
    bounds[l - 1] = cursor.bounds();
  }

  // Phase 1: materialize everything. Pointers are NOT collected here — a
  // later Resolve may grow the source's backing storage (a disk session's
  // view vector reallocating) and invalidate earlier ones.
  for (size_t i = 0; i < keywords.size(); ++i) {
    if (i == seed) continue;
    auto list = source->Resolve(keywords[i], l0, need_scores, &bounds);
    if (!list.ok()) return list.status();
    if (*list == nullptr) return Status::Ok();
  }
  // Phase 2: everything is materialized; re-fetching is pure lookup and
  // the pointers stay stable for the rest of the query.
  std::vector<const JDeweyList*> resolved(keywords.size(), nullptr);
  for (size_t i = 0; i < keywords.size(); ++i) {
    const std::vector<ValueBounds>* b = i == seed ? nullptr : &bounds;
    auto list = source->Resolve(keywords[i], l0, need_scores, b);
    if (!list.ok()) return list.status();
    resolved[i] = *list;
  }
  *lists = std::move(resolved);
  return Status::Ok();
}

}  // namespace xtopk
