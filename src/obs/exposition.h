#ifndef XTOPK_OBS_EXPOSITION_H_
#define XTOPK_OBS_EXPOSITION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>

namespace xtopk {
namespace obs {

/// Minimal single-threaded HTTP/1.0 exposition endpoint serving the live
/// telemetry surface:
///   /metrics  Prometheus text format (cumulative + windowed gauges)
///   /vars     full JSON snapshot (counters, histograms, windows)
///   /slowlog  recent slow-query captures as a JSON array
///   /events   flight-recorder ring as JSON
///   /healthz  "ok"
///
/// One accept loop on one background thread, one request per connection,
/// loopback bind by default. This is an operations port, not a web server:
/// no TLS, no keep-alive, no auth — keep it on localhost or behind a
/// scraper that is.
class ExpositionServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port (tests); read it back with port().
    uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
  };

  ExpositionServer() : ExpositionServer(Options()) {}
  explicit ExpositionServer(Options options) : options_(options) {}
  ~ExpositionServer() { Stop(); }

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds, listens, and starts the accept thread. False (with the reason
  /// in *error if given) when the bind fails.
  bool Start(std::string* error = nullptr);
  /// Stops the accept loop and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolves port 0 after Start).
  uint16_t port() const { return port_; }

  /// Pure request -> response mapping, exposed for unit tests (no socket
  /// needed). `request_line` is e.g. "GET /metrics HTTP/1.0". Returns the
  /// full HTTP response including status line and headers.
  static std::string HandleRequest(std::string_view request_line);

 private:
  void Serve();

  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace xtopk

#endif  // XTOPK_OBS_EXPOSITION_H_
