// xtopk_replay: slow-query capture recorder and replayer.
//
// Record mode runs the built-in 10-query workload against the demo
// document with the slow log in capture-all mode and writes the capture
// file (the same JSON-lines format XTOPK_SLOWLOG_PATH produces):
//
//   ./xtopk_replay --record capture.jsonl
//
// Replay mode re-executes every captured query against the demo document
// and diffs then-vs-now: result fingerprints must match bit-for-bit
// (exit 1 otherwise), and per-query latency / resource / planner deltas
// are reported so a regression shows up as numbers, not vibes:
//
//   ./xtopk_replay capture.jsonl
//
// Captures recorded against a *different* document replay meaninglessly;
// the tool is built for the demo workload and for captures taken from
// production runs of the same corpus (pass the XML as --doc file.xml).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "demo_doc.h"
#include "json_mini.h"
#include "obs/slow_log.h"
#include "xml/xml_parser.h"

namespace {

using xtopk_tools::JsonParser;
using xtopk_tools::JsonValue;

struct ReplayEntry {
  std::vector<std::string> keywords;
  size_t k = 0;
  xtopk::Semantics semantics = xtopk::Semantics::kElca;
  double recorded_wall_us = 0;
  std::string recorded_fingerprint;
  uint64_t recorded_pages = 0;
  uint64_t recorded_rows = 0;
  std::string recorded_planner;
};

// The deterministic workload --record captures: a spread of complete and
// top-k queries over both semantics, wide and narrow terms.
std::vector<xtopk::BatchQuery> BuiltinWorkload() {
  auto make = [](std::vector<std::string> keywords, size_t k,
                 xtopk::Semantics semantics) {
    xtopk::BatchQuery query;
    query.keywords = std::move(keywords);
    query.k = k;
    query.semantics = semantics;
    return query;
  };
  using xtopk::Semantics;
  return {
      make({"xml", "data"}, 0, Semantics::kElca),
      make({"keyword", "search"}, 0, Semantics::kElca),
      make({"top", "k"}, 10, Semantics::kElca),
      make({"xml", "ranking"}, 5, Semantics::kElca),
      make({"storage", "techniques"}, 0, Semantics::kSlca),
      make({"alice", "xml"}, 0, Semantics::kSlca),
      make({"data", "management"}, 25, Semantics::kElca),
      make({"xml", "keyword", "search"}, 0, Semantics::kElca),
      make({"top", "k", "xml"}, 10, Semantics::kSlca),
      make({"databases", "ranking"}, 3, Semantics::kElca),
  };
}

int Record(xtopk::Engine& engine, const std::string& path) {
  // Capture-all: threshold 0 routes every query into the capture file.
  xtopk::obs::SlowLogOptions options;
  options.path = path;
  options.latency_threshold_us = 0;
  std::remove(path.c_str());
  xtopk::obs::SlowQueryLog::Global().Reconfigure(options);

  size_t recorded = 0;
  for (const xtopk::BatchQuery& query : BuiltinWorkload()) {
    xtopk::ExplainResult result = engine.Explain(query);
    std::fprintf(stderr, "recorded: k=%zu hits=%zu wall=%.0fus\n", query.k,
                 result.hits.size(), result.accounting.wall_us);
    ++recorded;
  }
  // Stop capturing before the process exits.
  xtopk::obs::SlowQueryLog::Global().Reconfigure(xtopk::obs::SlowLogOptions());
  std::printf("recorded %zu queries to %s\n", recorded, path.c_str());
  return 0;
}

bool ParseEntry(const std::string& line, ReplayEntry* entry,
                std::string* error) {
  JsonValue value;
  if (!JsonParser::Parse(line, &value, error)) return false;
  if (!value.is_object()) {
    *error = "entry is not an object";
    return false;
  }
  const JsonValue* keywords = value.Find("keywords");
  if (keywords == nullptr || !keywords->is_array() ||
      keywords->array.empty()) {
    *error = "missing keywords";
    return false;
  }
  for (const JsonValue& keyword : keywords->array) {
    entry->keywords.push_back(keyword.string);
  }
  entry->k = static_cast<size_t>(value.Num("k"));
  entry->semantics = value.Str("semantics") == "slca"
                         ? xtopk::Semantics::kSlca
                         : xtopk::Semantics::kElca;
  entry->recorded_wall_us = value.Num("wall_us");
  entry->recorded_fingerprint = value.Str("result_fingerprint");
  if (const JsonValue* accounting = value.Find("accounting")) {
    entry->recorded_pages =
        static_cast<uint64_t>(accounting->Num("pages_read"));
    entry->recorded_rows =
        static_cast<uint64_t>(accounting->Num("rows_joined"));
    entry->recorded_planner = accounting->Str("planner_mode");
  }
  return true;
}

int Replay(xtopk::Engine& engine, const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  std::vector<ReplayEntry> entries;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    ReplayEntry entry;
    std::string error;
    if (!ParseEntry(line, &entry, &error)) {
      std::fprintf(stderr, "error: %s line %zu: %s\n", path.c_str(), lineno,
                   error.c_str());
      return 1;
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    std::fprintf(stderr, "error: %s holds no captures\n", path.c_str());
    return 1;
  }

  std::printf("%-34s %10s %10s %8s %9s %6s  %s\n", "query", "then_us",
              "now_us", "delta%", "rows_join", "match", "planner");
  size_t mismatches = 0;
  double total_then = 0, total_now = 0;
  for (const ReplayEntry& entry : entries) {
    xtopk::BatchQuery query;
    query.keywords = entry.keywords;
    query.k = entry.k;
    query.semantics = entry.semantics;
    xtopk::ExplainResult result = engine.Explain(query);
    std::string fingerprint = xtopk::ResultFingerprint(result.hits);
    bool match = fingerprint == entry.recorded_fingerprint;
    if (!match) ++mismatches;
    total_then += entry.recorded_wall_us;
    total_now += result.accounting.wall_us;

    std::string name;
    for (const std::string& keyword : entry.keywords) {
      if (!name.empty()) name.push_back(' ');
      name += keyword;
    }
    if (entry.k > 0) name += ":" + std::to_string(entry.k);
    double delta_pct =
        entry.recorded_wall_us > 0
            ? 100.0 * (result.accounting.wall_us - entry.recorded_wall_us) /
                  entry.recorded_wall_us
            : 0.0;
    std::string planner = result.accounting.planner_mode;
    if (planner != entry.recorded_planner && !entry.recorded_planner.empty()) {
      planner = entry.recorded_planner + "->" + planner;
    }
    std::printf("%-34s %10.1f %10.1f %+7.1f%% %9llu %6s  %s\n", name.c_str(),
                entry.recorded_wall_us, result.accounting.wall_us, delta_pct,
                static_cast<unsigned long long>(result.accounting.rows_joined),
                match ? "ok" : "DIFF", planner.c_str());
    if (!match) {
      std::printf("  fingerprint then=%s now=%s (hits now=%zu)\n",
                  entry.recorded_fingerprint.c_str(), fingerprint.c_str(),
                  result.hits.size());
    }
  }
  std::printf("replayed %zu queries: %zu result mismatches, "
              "wall %0.1fus -> %0.1fus\n",
              entries.size(), mismatches, total_then, total_now);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool record = false;
  std::string doc_path;
  std::string capture_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--record") == 0) {
      record = true;
    } else if (std::strcmp(argv[i], "--doc") == 0 && i + 1 < argc) {
      doc_path = argv[++i];
    } else {
      capture_path = argv[i];
    }
  }
  if (capture_path.empty()) {
    std::fprintf(stderr,
                 "usage: xtopk_replay [--record] [--doc file.xml] "
                 "capture.jsonl\n");
    return 2;
  }

  xtopk::XmlTree tree;
  if (doc_path.empty()) {
    tree = xtopk::ParseXmlStringOrDie(xtopk_tools::BuildDemoXml());
  } else {
    auto parsed = xtopk::ParseXmlFile(doc_path);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    tree = std::move(parsed).value();
  }
  xtopk::Engine engine(tree);

  return record ? Record(engine, capture_path) : Replay(engine, capture_path);
}
