#include "storage/serializer.h"

#include <cstring>
#include <fstream>

#include "util/varint.h"

namespace xtopk {
namespace ser {

void PutLengthPrefixed(std::string* out, std::string_view value) {
  varint::PutU64(out, value.size());
  out->append(value);
}

Status GetLengthPrefixed(const std::string& data, size_t* pos,
                         std::string* value) {
  uint64_t len = 0;
  Status s = varint::GetU64(data, pos, &len);
  if (!s.ok()) return s;
  if (*pos + len > data.size()) {
    return Status::Corruption("serializer: truncated string");
  }
  value->assign(data, *pos, len);
  *pos += len;
  return Status::Ok();
}

void PutFloat(std::string* out, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

Status GetFloat(const std::string& data, size_t* pos, float* value) {
  if (*pos + 4 > data.size()) {
    return Status::Corruption("serializer: truncated float");
  }
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i]))
            << (8 * i);
  }
  *pos += 4;
  std::memcpy(value, &bits, sizeof(*value));
  return Status::Ok();
}

void PutFixed32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

Status GetFixed32(const std::string& data, size_t* pos, uint32_t* value) {
  if (*pos + 4 > data.size()) {
    return Status::Corruption("serializer: truncated fixed32");
  }
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i]))
              << (8 * i);
  }
  *pos += 4;
  return Status::Ok();
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status ReadFile(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  // A directory opens fine on Linux but reports LLONG_MAX from tellg()
  // and fails every read; probe with peek() before sizing the buffer so
  // such paths surface as IoError instead of a bad_alloc from resize().
  // An empty regular file only sets eofbit here, which is fine.
  if (!in || (in.peek(), in.bad())) {
    return Status::IoError("cannot open for read: " + path);
  }
  in.clear();
  in.seekg(0, std::ios::end);
  std::streamsize size = in.tellg();
  if (size < 0) return Status::IoError("cannot stat for read: " + path);
  in.seekg(0);
  contents->resize(static_cast<size_t>(size));
  in.read(contents->data(), size);
  if (!in) return Status::IoError("read failed: " + path);
  return Status::Ok();
}

}  // namespace ser
}  // namespace xtopk
