#include "index/jdewey_index.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "storage/compression.h"

namespace xtopk {

uint32_t JDeweyList::Component(uint32_t row, uint32_t level) const {
  assert(level >= 1 && level <= lengths[row]);
  const Run* run = columns[level - 1].FindRow(row);
  assert(run != nullptr);
  return run->value;
}

JDeweySeq JDeweyList::SequenceOf(uint32_t row) const {
  JDeweySeq seq(lengths[row]);
  for (uint32_t level = 1; level <= lengths[row]; ++level) {
    seq[level - 1] = Component(row, level);
  }
  return seq;
}

const JDeweyList* JDeweyIndex::GetList(const std::string& term) const {
  XTOPK_COUNTER("index.term_lookups").Add(1);
  auto it = term_ids_.find(term);
  if (it == term_ids_.end()) {
    XTOPK_COUNTER("index.term_lookup_misses").Add(1);
    return nullptr;
  }
  return &lists_[it->second];
}

uint32_t JDeweyIndex::Frequency(const std::string& term) const {
  const JDeweyList* list = GetList(term);
  return list == nullptr ? 0 : list->num_rows();
}

const TermStats* JDeweyIndex::StatsOf(const std::string& term) const {
  if (stats_.empty()) return nullptr;
  auto it = term_ids_.find(term);
  if (it == term_ids_.end() || it->second >= stats_.size()) return nullptr;
  return &stats_[it->second];
}

TermStats ComputeListStats(const JDeweyList& list, size_t max_buckets) {
  TermStats stats;
  stats.rows = list.num_rows();
  stats.levels.reserve(list.columns.size());
  for (const Column& column : list.columns) {
    stats.levels.push_back(LevelHistogram::FromColumn(column, max_buckets));
  }
  return stats;
}

NodeId JDeweyIndex::NodeAt(uint32_t level, uint32_t value) const {
  const auto& level_nodes =
      borrowed_level_nodes_ != nullptr ? *borrowed_level_nodes_ : level_nodes_;
  if (level == 0 || level >= level_nodes.size() + 1 ||
      level_nodes[level - 1].empty()) {
    return kInvalidNode;
  }
  const auto& nodes = level_nodes[level - 1];
  auto it = std::lower_bound(
      nodes.begin(), nodes.end(), value,
      [](const std::pair<uint32_t, NodeId>& p, uint32_t v) {
        return p.first < v;
      });
  if (it != nodes.end() && it->first == value) return it->second;
  return kInvalidNode;
}

uint64_t JDeweyIndex::EncodedListBytes(bool include_scores) const {
  uint64_t total = 0;
  for (const JDeweyList& list : lists_) {
    // Per-term header: term id, row count, max length.
    total += 12;
    // Row lengths are stored as a varint stream (usually 1 byte each).
    total += list.num_rows();
    for (const Column& column : list.columns) {
      total += EncodedColumnSize(column, ColumnCodec::kAuto);
    }
    if (include_scores) {
      total += 4ull * list.num_rows();  // float32 per row
    }
  }
  return total;
}

uint64_t JDeweyIndex::SparseIndexBytes(uint32_t sample_rate) const {
  uint64_t total = 0;
  for (const JDeweyList& list : lists_) {
    for (const Column& column : list.columns) {
      total += SparseIndex::Build(column, sample_rate).EncodedSize();
    }
  }
  return total;
}

}  // namespace xtopk
