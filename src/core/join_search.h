#ifndef XTOPK_CORE_JOIN_SEARCH_H_
#define XTOPK_CORE_JOIN_SEARCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/join_ops.h"
#include "core/join_planner.h"
#include "core/plan_cache.h"
#include "core/scoring.h"
#include "core/search_result.h"
#include "index/reader.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/interval_set.h"
#include "util/status.h"

namespace xtopk {

/// Options of the complete-result join-based algorithm.
struct JoinSearchOptions {
  Semantics semantics = Semantics::kElca;
  /// Compute ranking scores for results (Fig. 9 experiments disable this;
  /// the engine enables it).
  bool compute_scores = true;
  /// Range-granular semantic pruning (§III-E). false switches to per-row
  /// erasure — the ablation A4 baseline.
  bool use_range_check = true;
  PlannerOptions planner;
  ScoringParams scoring;
  /// Cost-based planning: derive the join order AND each step's
  /// merge/gallop/index choice from histogram statistics (PlanJoin)
  /// instead of the observed-size heuristic. Results are bit-identical
  /// either way. The XTOPK_DISABLE_PLANNER environment variable (any
  /// value but "0") forces this off — the escape hatch for A/B runs.
  bool use_planner = true;
  /// Shared plan cache (usually owned by the engine). Null plans every
  /// query from scratch.
  PlanCache* plan_cache = nullptr;
  /// Per-query time budget, checked before list resolution and at every
  /// level boundary. Expiry stops the scan: Search returns the results of
  /// the levels already processed (a correct subset — deeper levels are
  /// complete, shallower ones untouched) and status() reports
  /// kDeadlineExceeded. Default-constructed = unbounded, zero cost.
  DeadlineToken deadline;
  /// Per-query span tree ("join_search" root, one span per level with
  /// candidates/results/erasure stats). Null disables tracing at zero cost.
  obs::QueryTrace* trace = nullptr;
};

/// Execution counters exposed for tests and benches.
struct JoinSearchStats {
  JoinOpStats join_ops;
  uint32_t levels_processed = 0;
  uint64_t candidates = 0;       ///< values matched across all lists
  uint64_t results = 0;
  uint64_t rows_erased = 0;      ///< total rows covered by semantic pruning
  /// Work units spent inside the erasure structure: interval-map nodes
  /// visited in range mode, individual rows touched in per-row mode. This
  /// is the cost the paper's range checking optimizes (ablation A4).
  uint64_t erasure_touches = 0;
  /// Whether the last query ran a cost-based plan (vs the size heuristic)
  /// and whether that plan came out of the cache.
  bool planned = false;
  bool plan_cache_hit = false;
  /// The deadline expired mid-query: the result set covers only the levels
  /// processed before expiry (status() is kDeadlineExceeded).
  bool deadline_expired = false;
};

/// One join step inside a level (EXPLAIN output).
struct JoinStepTrace {
  size_t query_position = 0;  ///< which keyword's column was joined in
  bool index_join = false;    ///< true iff the probe join ran (kept for
                              ///< existing consumers; == algo == kIndex)
  JoinAlgo algo = JoinAlgo::kMerge;  ///< the dynamic three-way choice
  uint64_t input_runs = 0;    ///< right-hand column's run count
  uint64_t output_matches = 0;
  /// Planner's estimated output cardinality for this step; negative when
  /// the query ran the observed-size heuristic (no estimate exists).
  double est_output = -1.0;
};

/// Per-level EXPLAIN record of Algorithm 1's execution.
struct LevelTrace {
  uint32_t level = 0;
  std::vector<JoinStepTrace> steps;
  uint64_t candidates = 0;
  uint64_t results = 0;
  uint64_t rows_erased = 0;
};

/// Algorithm 1 (paper §III): evaluates a keyword query bottom-up with one
/// relational join per level per keyword pair, pruning ELCA/SLCA semantics
/// by erasing matched row ranges. Results come out lowest-level-first;
/// scores, when enabled, follow §II-B (sum over keywords of the damped
/// maximum among occurrences belonging to the result).
class JoinSearch {
 public:
  /// Runs against any posting source (in-memory, disk session, segmented).
  /// `source` must outlive the JoinSearch.
  explicit JoinSearch(TermSource* source, JoinSearchOptions options = {});

  /// Convenience over an in-memory index (owns the adapter).
  explicit JoinSearch(const JDeweyIndex& index, JoinSearchOptions options = {});

  /// Evaluates `keywords`. Unknown keywords yield an empty result set.
  /// An I/O failure inside the source also yields an empty set — check
  /// status() to distinguish.
  std::vector<SearchResult> Search(const std::vector<std::string>& keywords);

  /// Search with an EXPLAIN trace: which join algorithm each step picked
  /// (the §III-C dynamic decision), and what each level produced/erased.
  std::vector<SearchResult> SearchWithTrace(
      const std::vector<std::string>& keywords,
      std::vector<LevelTrace>* trace);

  /// Status of the last Search call's list resolution (non-ok when the
  /// posting source failed, e.g. disk corruption past the retry budget).
  const Status& status() const { return last_status_; }

  /// Counters of the last Search call.
  const JoinSearchStats& stats() const { return stats_; }

 private:
  /// Erasure state of one inverted list: either an interval set over rows
  /// (range checking) or a plain bitmap (ablation).
  class Erasure {
   public:
    Erasure(bool use_ranges, uint32_t rows, uint64_t* touches);
    void EraseRange(uint32_t begin, uint32_t end);
    uint32_t CountErased(uint32_t begin, uint32_t end) const;
    /// fn(lo, hi) over maximal non-erased sub-ranges of [begin, end).
    template <typename Fn>
    void ForEachAlive(uint32_t begin, uint32_t end, Fn&& fn) const;

   private:
    bool use_ranges_;
    IntervalSet ranges_;
    std::vector<char> bitmap_;
    uint64_t* touches_;  // not owned
  };

  TermSource* source_;                              // not owned
  std::unique_ptr<MemoryTermSource> owned_source_;  // legacy-ctor adapter
  JoinSearchOptions options_;
  JoinSearchStats stats_;
  Status last_status_ = Status::Ok();
};

}  // namespace xtopk

#endif  // XTOPK_CORE_JOIN_SEARCH_H_
