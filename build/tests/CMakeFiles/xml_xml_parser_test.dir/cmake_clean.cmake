file(REMOVE_RECURSE
  "CMakeFiles/xml_xml_parser_test.dir/xml/xml_parser_test.cc.o"
  "CMakeFiles/xml_xml_parser_test.dir/xml/xml_parser_test.cc.o.d"
  "xml_xml_parser_test"
  "xml_xml_parser_test.pdb"
  "xml_xml_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_xml_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
