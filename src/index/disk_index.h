#ifndef XTOPK_INDEX_DISK_INDEX_H_
#define XTOPK_INDEX_DISK_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "core/search_result.h"
#include "index/jdewey_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "util/status.h"

namespace xtopk {

/// A byte extent within a PageFile (blobs may span pages).
struct BlobExtent {
  PageId start_page = 0;
  uint32_t start_offset = 0;
  uint64_t length = 0;
};

/// Writes a JDeweyIndex into the paged on-disk layout:
///
///   data pages:   per term — lengths blob, optional scores blob, then one
///                 column blob per level (kAuto codec, §III-D)
///   directory:    per-term metadata + all blob extents + the
///                 (level, value) -> node mapping, serialized at the end
///   footer page:  magic, directory extent
///
/// Columns are separate blobs on purpose: a query that starts its scan at
/// level l0 (§III-B) touches only the pages of columns 1..l0.
class DiskIndexWriter {
 public:
  static Status Write(const JDeweyIndex& index, bool include_scores,
                      const std::string& path);
};

/// Read side: opens the directory eagerly (small), then materializes each
/// queried term's columns lazily and only down to the level the query
/// needs. This is the paper's I/O story — "the algorithm does not read the
/// whole JDewey sequences from the disk at once … this would save disk I/O
/// when the XML tree is deep and some keywords only appear at high levels."
class DiskJDeweyIndex {
 public:
  struct IoStats {
    uint64_t pages_read = 0;   ///< physical page reads since last reset
    uint64_t pool_hits = 0;
    uint64_t pool_misses = 0;
  };

  /// Opens `path`, loading footer + directory (+ node mapping).
  static StatusOr<std::unique_ptr<DiskJDeweyIndex>> Open(
      const std::string& path, size_t pool_pages = 1024);

  /// Materializes `term`'s list with columns 1..up_to_level (clamped to
  /// the list's max length). Cached; later calls extend as needed.
  /// `need_scores` skips the scores blob (Fig. 9-style unranked runs).
  /// Returns nullptr if the term is absent.
  StatusOr<const JDeweyList*> LoadList(const std::string& term,
                                       uint32_t up_to_level,
                                       bool need_scores = true);

  /// Frequency from the directory alone (no data I/O).
  uint32_t Frequency(const std::string& term) const;
  /// Deepest occurrence level from the directory alone.
  uint32_t MaxLength(const std::string& term) const;

  /// Evaluates a complete-result query against the disk-resident index:
  /// computes l0 from the directory, loads only columns 1..l0 of each
  /// keyword, and runs the join-based algorithm (Algorithm 1).
  StatusOr<std::vector<SearchResult>> SearchComplete(
      const std::vector<std::string>& keywords,
      JoinSearchOptions options = {});

  /// Top-k against the disk-resident index. The top-K algorithm's
  /// semantic pruning probes components below the current column, so the
  /// queried lists are materialized fully (all columns + scores) and the
  /// score segments derived on the fly.
  StatusOr<std::vector<SearchResult>> SearchTopK(
      const std::vector<std::string>& keywords, TopKSearchOptions options);

  /// A view usable by JoinSearch directly; contains exactly the lists
  /// loaded so far plus the node mapping.
  const JDeweyIndex& view() const { return view_; }

  IoStats io_stats() const;
  void ResetIoStats();

  size_t term_count() const { return directory_.size(); }

 private:
  struct TermMeta {
    uint32_t rows = 0;
    uint32_t max_length = 0;
    BlobExtent lengths;
    BlobExtent scores;  // length 0 when the file carries no scores
    std::vector<BlobExtent> columns;  // one per level
    /// Levels already materialized in view_ (0 = not loaded at all).
    uint32_t loaded_levels = 0;
    bool scores_loaded = false;
    /// Slot in view_ once loaded.
    uint32_t view_id = UINT32_MAX;
  };

  DiskJDeweyIndex() = default;

  Status ReadBlob(const BlobExtent& extent, std::string* out);
  Status MaterializeBase(const std::string& term, TermMeta* meta,
                         bool need_scores);
  Status MaterializeScores(TermMeta* meta);
  Status MaterializeColumns(TermMeta* meta, uint32_t up_to_level);

  PageFile file_;
  std::unique_ptr<BufferPool> pool_;
  bool has_scores_ = false;
  std::unordered_map<std::string, TermMeta> directory_;
  JDeweyIndex view_;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_DISK_INDEX_H_
