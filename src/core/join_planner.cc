#include "core/join_planner.h"

#include <algorithm>
#include <numeric>

namespace xtopk {

bool UseIndexJoin(size_t left_size, size_t right_size,
                  const PlannerOptions& options) {
  switch (options.policy) {
    case JoinPolicy::kForceMerge:
      return false;
    case JoinPolicy::kForceIndex:
      return true;
    case JoinPolicy::kDynamic:
      return static_cast<double>(left_size) * options.index_join_ratio <
             static_cast<double>(right_size);
  }
  return false;
}

JoinAlgo ChooseJoinAlgo(size_t left_size, size_t right_size,
                        const PlannerOptions& options) {
  switch (options.policy) {
    case JoinPolicy::kForceMerge:
      return JoinAlgo::kMerge;
    case JoinPolicy::kForceIndex:
      return JoinAlgo::kIndex;
    case JoinPolicy::kDynamic:
      break;
  }
  if (UseIndexJoin(left_size, right_size, options)) return JoinAlgo::kIndex;
  size_t lo = std::min(left_size, right_size);
  size_t hi = std::max(left_size, right_size);
  if (lo > 0 && static_cast<double>(hi) >=
                    options.gallop_ratio * static_cast<double>(lo)) {
    return JoinAlgo::kGallop;
  }
  return JoinAlgo::kMerge;
}

std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes) {
  std::vector<size_t> order(list_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return list_sizes[a] < list_sizes[b];
  });
  return order;
}

}  // namespace xtopk
