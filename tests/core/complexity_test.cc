// Complexity sanity checks against the paper's §III-C cost analysis, via
// the operator counters: the index join's probe count scales with the
// shortest list; the merge join's cursor steps with the total input.

#include <gtest/gtest.h>

#include "core/join_search.h"
#include "baseline/stack_search.h"
#include "index/index_builder.h"
#include "workload/dblp_gen.h"

namespace xtopk {
namespace {

struct Counts {
  uint64_t probes = 0;
  uint64_t comparisons = 0;
};

Counts RunQuery(const JDeweyIndex& index, JoinPolicy policy,
           const std::vector<std::string>& query) {
  JoinSearchOptions options;
  options.compute_scores = false;
  options.planner.policy = policy;
  JoinSearch search(index, options);
  search.Search(query);
  return Counts{search.stats().join_ops.probes,
                search.stats().join_ops.run_comparisons};
}

TEST(ComplexityTest, IndexJoinProbesScaleWithShortList) {
  DblpGenOptions gen;
  gen.planted = {
      {"short1", 50, "", 0.0},  {"short2", 200, "", 0.0},
      {"long1", 5000, "", 0.0},
  };
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();

  // O(k |L_1| log |L|): quadrupling the short list roughly quadruples the
  // probes; the long list's size only enters logarithmically.
  Counts a = RunQuery(index, JoinPolicy::kForceIndex, {"short1", "long1"});
  Counts b = RunQuery(index, JoinPolicy::kForceIndex, {"short2", "long1"});
  EXPECT_GT(a.probes, 0u);
  double ratio = static_cast<double>(b.probes) / a.probes;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(ComplexityTest, MergeJoinComparisonsScaleWithTotalInput) {
  DblpGenOptions gen;
  gen.planted = {
      {"medium", 1000, "", 0.0},
      {"big1", 4000, "", 0.0},
      {"big2", 16000, "", 0.0},
  };
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex index = builder.BuildJDeweyIndex();

  // O(Σ |L_j|): swapping the big list for a 4x bigger one must grow the
  // cursor steps substantially (they track the longer input).
  Counts a = RunQuery(index, JoinPolicy::kForceMerge, {"medium", "big1"});
  Counts b = RunQuery(index, JoinPolicy::kForceMerge, {"medium", "big2"});
  EXPECT_GT(a.comparisons, 0u);
  EXPECT_GT(b.comparisons, a.comparisons * 2);
}

TEST(ComplexityTest, StackScanIsBoundByTheLongestList) {
  // §V-B: "its execution time is bound by the keyword with the highest
  // frequency" — the merged id count equals the total rows regardless of
  // the short list's size.
  DblpGenOptions gen;
  gen.planted = {
      {"tiny", 10, "", 0.0},
      {"large", 8000, "", 0.0},
  };
  DblpCorpus corpus = GenerateDblp(gen);
  IndexBuilder builder(corpus.tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  (void)jindex;
  DeweyIndex dindex = builder.BuildDeweyIndex();
  StackSearchOptions options;
  options.compute_scores = false;
  StackSearch search(corpus.tree, dindex, options);
  search.Search({"tiny", "large"});
  EXPECT_EQ(search.stats().ids_scanned, 10u + 8000u);
}

}  // namespace
}  // namespace xtopk
