#include "util/rng.h"

namespace xtopk {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // xoshiro must not be seeded with all zeros; splitmix64 fan-out avoids it.
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  while (true) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace xtopk
