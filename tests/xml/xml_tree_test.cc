#include "xml/xml_tree.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

TEST(XmlTreeTest, StructureOfSmallCorpus) {
  XmlTree tree = MakeSmallCorpus();
  EXPECT_EQ(tree.node_count(), 13u);
  EXPECT_EQ(tree.max_level(), 4u);
  EXPECT_EQ(tree.TagName(Ids::kDb), "db");
  EXPECT_EQ(tree.level(Ids::kDb), 1u);
  EXPECT_EQ(tree.level(Ids::kP4Title), 4u);
  EXPECT_EQ(tree.parent(Ids::kConf0), Ids::kDb);
  EXPECT_EQ(tree.parent(Ids::kDb), kInvalidNode);
  EXPECT_EQ(tree.text(Ids::kPaper0), "xml data");
}

TEST(XmlTreeTest, ChildrenInOrder) {
  XmlTree tree = MakeSmallCorpus();
  auto kids = tree.Children(Ids::kDb);
  ASSERT_EQ(kids.size(), 2u);
  EXPECT_EQ(kids[0], Ids::kConf0);
  EXPECT_EQ(kids[1], Ids::kConf1);
  auto conf0_kids = tree.Children(Ids::kConf0);
  ASSERT_EQ(conf0_kids.size(), 3u);
  EXPECT_EQ(conf0_kids[0], Ids::kPaper0);
  EXPECT_EQ(conf0_kids[2], Ids::kPaper2);
  EXPECT_TRUE(tree.Children(Ids::kP4Title).empty());
}

TEST(XmlTreeTest, AncestorChecks) {
  XmlTree tree = MakeSmallCorpus();
  EXPECT_TRUE(tree.IsAncestor(Ids::kDb, Ids::kP4Title));
  EXPECT_TRUE(tree.IsAncestor(Ids::kConf1, Ids::kP4Title));
  EXPECT_FALSE(tree.IsAncestor(Ids::kConf0, Ids::kP4Title));
  EXPECT_FALSE(tree.IsAncestor(Ids::kP4Title, Ids::kDb));
  EXPECT_FALSE(tree.IsAncestor(Ids::kPaper0, Ids::kPaper0));
  EXPECT_TRUE(tree.IsAncestor(Ids::kPaper0, Ids::kPaper0, /*or_self=*/true));
}

TEST(XmlTreeTest, PathTo) {
  XmlTree tree = MakeSmallCorpus();
  auto path = tree.PathTo(Ids::kP1Title);
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(path[0], Ids::kDb);
  EXPECT_EQ(path[1], Ids::kConf0);
  EXPECT_EQ(path[2], Ids::kPaper1);
  EXPECT_EQ(path[3], Ids::kP1Title);
}

TEST(XmlTreeTest, AppendTextJoinsWithSpace) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  tree.AppendText(root, "one");
  tree.AppendText(root, "two");
  EXPECT_EQ(tree.text(root), "one two");
}

TEST(XmlTreeTest, AttributesAttachToNodes) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId child = tree.AddChild(root, "c");
  tree.AddAttribute(child, "id", "42");
  tree.AddAttribute(child, "name", "x");
  auto attrs = tree.AttributesOf(child);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0]->name, "id");
  EXPECT_EQ(attrs[0]->value, "42");
  EXPECT_TRUE(tree.AttributesOf(root).empty());
}

TEST(XmlTreeTest, ToXmlStringRoundTrips) {
  XmlTree tree = MakeSmallCorpus();
  std::string xml = tree.ToXmlString(tree.root());
  EXPECT_NE(xml.find("<db>"), std::string::npos);
  EXPECT_NE(xml.find("xml data xml"), std::string::npos);
  EXPECT_NE(xml.find("</db>"), std::string::npos);
}

TEST(XmlTreeTest, MaxLevelTracksDeepestNode) {
  XmlTree tree;
  NodeId cur = tree.CreateRoot("a");
  for (int i = 0; i < 9; ++i) cur = tree.AddChild(cur, "b");
  EXPECT_EQ(tree.max_level(), 10u);
}

}  // namespace
}  // namespace xtopk
