#ifndef XTOPK_SERVE_PROTOCOL_H_
#define XTOPK_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "util/status.h"

namespace xtopk {
namespace serve {

/// Wire format of the query service (DESIGN.md §16). Every message is one
/// frame:
///
///   +----------------+---------------------+
///   | u32 LE length  | payload (length B)  |
///   +----------------+---------------------+
///
/// The length covers the payload only. Frames above kMaxFrameBytes are a
/// protocol error — the decoder rejects them before buffering, so a hostile
/// length prefix cannot balloon memory. All integers are little-endian;
/// strings are u32-length-prefixed UTF-8; doubles travel as their IEEE-754
/// bit pattern in a u64.
///
/// Request payload:
///   u32 request_id | u8 op | u8 priority | u8 semantics | u32 k
///   | u64 deadline_us | u32 n_keywords | n x string
/// Response payload:
///   u32 request_id | u8 status | u32 retry_after_ms | string error
///   | u32 n_hits | n x (u32 node | u32 level | u64 score_bits
///                       | string tag | string snippet)
///
/// The same service speaks a line-oriented HTTP/1.0 compatibility dialect
/// (GET /search?...) that returns JSON; see ParseHttpSearchTarget and
/// ResponseToJson. Binary and HTTP paths share one request struct, one
/// execution path, and one result cache.

/// Upper bound on a frame's payload. Large enough for any real response
/// (hits carry snippets), small enough that a malicious length prefix
/// cannot reserve unbounded memory.
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;  // 1 MiB

/// Hard cap on keywords per query — matches what the search layers can
/// meaningfully join; beyond it the decoder rejects the frame.
inline constexpr uint32_t kMaxKeywords = 64;

/// Hard cap on k per query (top-K beyond this is a complete-search job).
inline constexpr uint32_t kMaxK = 10000;

enum class RequestOp : uint8_t {
  kQuery = 1,
  kPing = 2,  ///< liveness probe: echoed request_id, no execution
};

enum class Priority : uint8_t {
  kHigh = 0,  ///< interactive traffic: shed last
  kLow = 1,   ///< batch/background traffic: shed first
};

/// Response status codes (u8 on the wire; JSON uses the lowercase names
/// from StatusName).
enum class ResponseStatus : uint8_t {
  kOk = 0,
  /// Deadline expired mid-query; hits hold the proven partial prefix.
  kPartial = 1,
  /// Admission control refused the query; retry_after_ms is a hint.
  kShedOverload = 2,
  kBadRequest = 3,
  kInternalError = 4,
  kShuttingDown = 5,
  /// Deadline expired before the query ran at all (queue wait ate the
  /// budget); no partial results exist.
  kDeadlineExpired = 6,
};

const char* StatusName(ResponseStatus status);

struct QueryRequest {
  uint32_t request_id = 0;
  RequestOp op = RequestOp::kQuery;
  Priority priority = Priority::kHigh;
  Semantics semantics = Semantics::kElca;
  /// 0 = complete result set, > 0 = top-k.
  uint32_t k = 10;
  /// Time budget in microseconds measured from admission; 0 = unbounded.
  uint64_t deadline_us = 0;
  std::vector<std::string> keywords;
};

struct ResponseHit {
  uint32_t node = 0;
  uint32_t level = 0;
  double score = 0.0;
  std::string tag;
  std::string snippet;
};

struct QueryResponse {
  uint32_t request_id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  /// Only meaningful with kShedOverload: suggested client backoff.
  uint32_t retry_after_ms = 0;
  std::string error;  ///< human-readable detail for non-ok statuses
  std::vector<ResponseHit> hits;
};

/// -------- binary framing --------

/// Appends `payload` as one length-prefixed frame.
void EncodeFrame(std::string* out, std::string_view payload);

/// Incremental frame extraction over a receive buffer. Returns:
///  - Ok with *complete=true and *payload filled when a whole frame was
///    consumed from the front of `buffer` (the frame bytes are erased);
///  - Ok with *complete=false when more bytes are needed (buffer intact);
///  - InvalidArgument when the length prefix exceeds kMaxFrameBytes — the
///    connection is poisoned and must be closed.
Status ExtractFrame(std::string* buffer, std::string* payload, bool* complete);

/// Request payload <-> struct. Decode validates every field (op, priority,
/// semantics, k, keyword count, string bounds) and returns InvalidArgument
/// with a reason on any malformed input; it never reads out of bounds and
/// never trusts a count before checking the remaining bytes.
void EncodeRequest(const QueryRequest& request, std::string* payload);
Status DecodeRequest(std::string_view payload, QueryRequest* request);

/// Response payload <-> struct. DecodeResponse is the client-side mirror,
/// hardened the same way.
void EncodeResponse(const QueryResponse& response, std::string* payload);
Status DecodeResponse(std::string_view payload, QueryResponse* response);

/// -------- HTTP/JSON compatibility --------

/// True when the first bytes of a connection look like the HTTP dialect
/// ("GET " / "POST " / "HEAD ") rather than a binary frame.
bool LooksLikeHttp(std::string_view prefix);

/// Parses "/search?q=xml+data&k=5&semantics=slca&deadline_us=1000&
/// priority=low" into a QueryRequest. Returns InvalidArgument on unknown
/// parameters values, bad numbers, or a missing q. Percent-encoding and
/// '+' for space are handled.
Status ParseHttpSearchTarget(std::string_view target, QueryRequest* request);

/// The response as a JSON object (the HTTP dialect's body and the schema
/// tools/serve_schema.json validates):
/// {"request_id":..,"status":"ok","retry_after_ms":0,"error":"",
///  "hits":[{"node":..,"level":..,"score":..,"tag":"..","snippet":".."}]}
std::string ResponseToJson(const QueryResponse& response);

/// Maps a ResponseStatus to the HTTP status code of the JSON dialect
/// (ok/partial -> 200, shed -> 503, bad request -> 400, ...).
int HttpStatusFor(ResponseStatus status);

}  // namespace serve
}  // namespace xtopk

#endif  // XTOPK_SERVE_PROTOCOL_H_
