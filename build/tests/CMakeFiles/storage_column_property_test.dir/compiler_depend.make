# Empty compiler generated dependencies file for storage_column_property_test.
# This may be replaced when dependencies are built.
