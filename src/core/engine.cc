#include "core/engine.h"

#include <unordered_set>

#include "obs/metrics.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "xml/tokenizer.h"

namespace xtopk {

Engine::Engine(const XmlTree& tree, EngineOptions options)
    : tree_(tree), options_(options) {
  options_.index.scoring = options_.scoring;
  builder_ = std::make_unique<IndexBuilder>(tree_, options_.index);
  jdewey_index_ = builder_->BuildJDeweyIndex();
  topk_index_ = builder_->BuildTopKIndex(jdewey_index_);
}

std::vector<QueryHit> Engine::Materialize(
    const std::vector<SearchResult>& results) const {
  std::vector<QueryHit> hits;
  hits.reserve(results.size());
  for (const SearchResult& r : results) {
    QueryHit hit;
    hit.node = r.node;
    hit.level = r.level;
    hit.score = r.score;
    hit.tag = tree_.TagName(r.node);
    hit.snippet = tree_.text(r.node);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::string> Engine::Normalize(
    const std::vector<std::string>& keywords) const {
  // Same analyzer as indexing; multi-token inputs expand, duplicates drop.
  Tokenizer tokenizer(options_.index.tokenizer);
  std::vector<std::string> normalized;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      if (seen.insert(token).second) normalized.push_back(token);
    }
  }
  return normalized;
}

BatchQueryResult Engine::RunQuery(const BatchQuery& query,
                                  obs::QueryTrace* trace) const {
  Timer timer;
  BatchQueryResult out;
  obs::ScopedSpan root(trace, "query");
  if (root.enabled()) {
    root.Label("semantics",
               query.semantics == Semantics::kElca ? "elca" : "slca");
    root.Label("mode", query.k == 0 ? "complete" : "topk");
    root.Stat("k", static_cast<double>(query.k));
  }

  std::vector<std::string> normalized;
  {
    obs::ScopedSpan span(trace, "tokenize");
    normalized = Normalize(query.keywords);
    span.Stat("keywords_in", static_cast<double>(query.keywords.size()));
    span.Stat("keywords_out", static_cast<double>(normalized.size()));
  }
  if (trace != nullptr) {
    // Directory-only probe: the searches resolve the lists themselves; this
    // span only surfaces the per-term frequencies in the EXPLAIN output.
    obs::ScopedSpan span(trace, "term_lookup");
    for (const std::string& term : normalized) {
      uint32_t freq = jdewey_index_.Frequency(term);
      span.Stat("terms", 1.0);
      span.Label(term, std::to_string(freq));
    }
  }

  if (query.k == 0) {
    JoinSearchOptions join_options;
    join_options.semantics = query.semantics;
    join_options.compute_scores = true;
    join_options.scoring = options_.scoring;
    join_options.plan_cache = &plan_cache_;
    join_options.trace = trace;
    JoinSearch search(jdewey_index_, join_options);
    std::vector<SearchResult> found = search.Search(normalized);
    obs::ScopedSpan span(trace, "materialize");
    SortByScoreDesc(&found);
    out.hits = Materialize(found);
    span.Stat("hits", static_cast<double>(out.hits.size()));
    out.join_stats = search.stats();
  } else {
    TopKSearchOptions topk_options;
    topk_options.semantics = query.semantics;
    topk_options.k = query.k;
    topk_options.scoring = options_.scoring;
    topk_options.plan_cache = &plan_cache_;
    topk_options.trace = trace;
    TopKSearch search(topk_index_, topk_options);
    std::vector<SearchResult> found = search.Search(normalized);
    obs::ScopedSpan span(trace, "materialize");
    out.hits = Materialize(found);
    span.Stat("hits", static_cast<double>(out.hits.size()));
  }
  root.Stat("hits", static_cast<double>(out.hits.size()));
  root.Close();

  XTOPK_COUNTER("engine.queries").Add(1);
  XTOPK_HISTOGRAM("engine.query_us")
      .Record(static_cast<uint64_t>(timer.ElapsedMicros()));
  return out;
}

std::vector<QueryHit> Engine::Search(const std::vector<std::string>& keywords,
                                     Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = 0;
  query.semantics = semantics;
  return RunQuery(query, nullptr).hits;
}

std::string HighlightKeywords(const std::string& text,
                              const std::vector<std::string>& keywords,
                              const std::string& open,
                              const std::string& close) {
  std::unordered_set<std::string> wanted;
  Tokenizer tokenizer;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      wanted.insert(token);
    }
  }
  std::string out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    bool alnum = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9');
    if (!alnum) {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t start = i;
    std::string token;
    while (i < text.size()) {
      char t = text[i];
      bool a = (t >= 'a' && t <= 'z') || (t >= 'A' && t <= 'Z') ||
               (t >= '0' && t <= '9');
      if (!a) break;
      token.push_back(t >= 'A' && t <= 'Z' ? static_cast<char>(t - 'A' + 'a')
                                           : t);
      ++i;
    }
    if (wanted.count(token) > 0) {
      out += open;
      out.append(text, start, i - start);
      out += close;
    } else {
      out.append(text, start, i - start);
    }
  }
  return out;
}

std::vector<QueryHit> Engine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = k;
  query.semantics = semantics;
  return RunQuery(query, nullptr).hits;
}

std::vector<QueryHit> Engine::SearchHybrid(
    const std::vector<std::string>& keywords, size_t k,
    Semantics semantics) const {
  HybridOptions hybrid_options;
  hybrid_options.semantics = semantics;
  hybrid_options.k = k;
  hybrid_options.scoring = options_.scoring;
  HybridSearch search(topk_index_, hybrid_options);
  return Materialize(search.Search(Normalize(keywords)));
}

std::vector<BatchQueryResult> Engine::RunBatch(
    const std::vector<BatchQuery>& queries, size_t threads,
    bool collect_traces) const {
  std::vector<BatchQueryResult> results(queries.size());
  // Workers write to pre-sized, index-disjoint slots; the shared indexes
  // are read-only, so no synchronization beyond the join is needed.
  ParallelFor(queries.size(), threads, [&](size_t i) {
    std::unique_ptr<obs::QueryTrace> trace;
    if (collect_traces) trace = std::make_unique<obs::QueryTrace>();
    results[i] = RunQuery(queries[i], trace.get());
    results[i].trace = std::move(trace);
  });
  return results;
}

ExplainResult Engine::Explain(const BatchQuery& query) const {
  ExplainResult explained;
  BatchQueryResult result = RunQuery(query, &explained.trace);
  explained.hits = std::move(result.hits);
  explained.join_stats = result.join_stats;
  return explained;
}

ExplainResult Engine::Explain(const std::vector<std::string>& keywords,
                              size_t k, Semantics semantics) const {
  BatchQuery query;
  query.keywords = keywords;
  query.k = k;
  query.semantics = semantics;
  return Explain(query);
}

uint32_t Engine::Frequency(const std::string& keyword) const {
  return jdewey_index_.Frequency(keyword);
}

}  // namespace xtopk
