file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_complete.dir/bench_fig9_complete.cc.o"
  "CMakeFiles/bench_fig9_complete.dir/bench_fig9_complete.cc.o.d"
  "bench_fig9_complete"
  "bench_fig9_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
