# Empty dependencies file for util_interval_set_test.
# This may be replaced when dependencies are built.
