#include "util/crc32c.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define XTOPK_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
#define XTOPK_CRC32C_ARM 1
#include <arm_acle.h>
#endif

namespace xtopk {
namespace crc32c {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected

struct Tables {
  uint32_t t[8][256];
};

constexpr Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables.t[0][i];
    for (int slice = 1; slice < 8; ++slice) {
      crc = tables.t[0][crc & 0xFF] ^ (crc >> 8);
      tables.t[slice][i] = crc;
    }
  }
  return tables;
}

const Tables kTables = BuildTables();

uint32_t ExtendSoftware(uint32_t crc, const uint8_t* p, size_t n) {
  // Slice-by-8: consume 8 bytes per step through the 8 precomputed tables,
  // byte-at-a-time for the unaligned head and the tail.
  crc = ~crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk ^= crc;
    crc = kTables.t[7][chunk & 0xFF] ^ kTables.t[6][(chunk >> 8) & 0xFF] ^
          kTables.t[5][(chunk >> 16) & 0xFF] ^
          kTables.t[4][(chunk >> 24) & 0xFF] ^
          kTables.t[3][(chunk >> 32) & 0xFF] ^
          kTables.t[2][(chunk >> 40) & 0xFF] ^
          kTables.t[1][(chunk >> 48) & 0xFF] ^ kTables.t[0][chunk >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

#if defined(XTOPK_CRC32C_X86)
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  crc = ~crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = _mm_crc32_u8(crc, *p++);
  return ~crc;
}

bool DetectHardware() { return __builtin_cpu_supports("sse4.2") != 0; }
#elif defined(XTOPK_CRC32C_ARM)
uint32_t ExtendHardware(uint32_t crc, const uint8_t* p, size_t n) {
  crc = ~crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __crc32cd(crc, chunk);
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = __crc32cb(crc, *p++);
  return ~crc;
}

bool DetectHardware() { return true; }  // mandated by __ARM_FEATURE_CRC32
#else
uint32_t ExtendHardware(uint32_t crc, const uint8_t* p, size_t n) {
  return ExtendSoftware(crc, p, n);
}

bool DetectHardware() { return false; }
#endif

}  // namespace

bool HardwareAvailable() {
  static const bool available = DetectHardware();
  return available;
}

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  if (HardwareAvailable()) return ExtendHardware(crc, p, n);
  return ExtendSoftware(crc, p, n);
}

uint32_t Compute(const void* data, size_t n) { return Extend(0, data, n); }

uint32_t ComputeSoftware(const void* data, size_t n) {
  return ExtendSoftware(0, static_cast<const uint8_t*>(data), n);
}

}  // namespace crc32c
}  // namespace xtopk
