#include "xml/jdewey.h"

#include <algorithm>
#include <unordered_set>

namespace xtopk {

int CompareJDewey(const JDeweySeq& a, const JDeweySeq& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

std::optional<JNodeRef> JDeweyLca(const JDeweySeq& a, const JDeweySeq& b) {
  size_t n = std::min(a.size(), b.size());
  std::optional<JNodeRef> lca;
  // Components agree on a prefix (shared ancestors), so scanning from the
  // top and remembering the last match finds the largest matching index.
  for (size_t i = 0; i < n; ++i) {
    if (a[i] == b[i]) {
      lca = JNodeRef{static_cast<uint32_t>(i + 1), a[i]};
    } else {
      break;
    }
  }
  return lca;
}

std::string JDeweySeqToString(const JDeweySeq& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(seq[i]);
  }
  return out;
}

JDeweySeq JDeweyEncoding::SequenceOf(const XmlTree& tree, NodeId id) const {
  JDeweySeq seq;
  for (NodeId cur = id; cur != kInvalidNode; cur = tree.parent(cur)) {
    seq.push_back(jnum_[cur]);
  }
  std::reverse(seq.begin(), seq.end());
  return seq;
}

Status JDeweyEncoding::Validate(const XmlTree& tree) const {
  if (jnum_.size() != tree.node_count()) {
    return Status::Internal("jdewey: encoding size != tree size");
  }
  // Group nodes by level, sorted by number.
  std::vector<std::vector<NodeId>> by_level(tree.max_level() + 1);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    by_level[tree.level(id)].push_back(id);
  }
  for (uint32_t level = 1; level < by_level.size(); ++level) {
    auto& nodes = by_level[level];
    std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
      return jnum_[a] < jnum_[b];
    });
    // Requirement 1: uniqueness within the level.
    for (size_t i = 1; i < nodes.size(); ++i) {
      if (jnum_[nodes[i]] == jnum_[nodes[i - 1]]) {
        return Status::Internal("jdewey: duplicate number " +
                                std::to_string(jnum_[nodes[i]]) + " at level " +
                                std::to_string(level));
      }
    }
    // Requirement 2: for consecutive nodes in number order, every child
    // number of the smaller precedes every child number of the larger.
    // Consecutive checks chain to all pairs.
    uint32_t prev_max_child = 0;
    bool have_prev = false;
    for (NodeId u : nodes) {
      uint32_t min_child = UINT32_MAX, max_child = 0;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        min_child = std::min(min_child, jnum_[c]);
        max_child = std::max(max_child, jnum_[c]);
      }
      if (min_child == UINT32_MAX) continue;  // leaf
      if (have_prev && min_child <= prev_max_child) {
        return Status::Internal(
            "jdewey: order requirement violated below level " +
            std::to_string(level));
      }
      prev_max_child = max_child;
      have_prev = true;
    }
  }
  return Status::Ok();
}

}  // namespace xtopk
