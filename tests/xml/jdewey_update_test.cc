#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "util/rng.h"
#include "xml/jdewey.h"
#include "xml/jdewey_builder.h"

namespace xtopk {
namespace {

TEST(JDeweyUpdateTest, InsertIntoReservedSlot) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AddChild(root, "a");
  tree.AddChild(root, "b");
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/2);
  uint32_t before_next_free = enc.NextFreeAt(2);

  NodeId c = tree.AddChild(root, "c");
  size_t changed = JDeweyBuilder::InsertAssign(tree, c, /*gap=*/2, &enc);
  EXPECT_EQ(changed, 1u);  // the reserved slot absorbed the insert
  EXPECT_TRUE(enc.Validate(tree).ok());
  // The new number came out of the reserved range, not the level end.
  EXPECT_LT(enc.NumberOf(c), before_next_free);
  EXPECT_GT(enc.NumberOf(c), enc.NumberOf(a));
}

TEST(JDeweyUpdateTest, TopmostExhaustedRangeExtendsInPlace) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId parent = tree.AddChild(root, "p");
  tree.AddChild(parent, "c0");
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/1);

  // First insert fits the single reserved slot.
  NodeId c1 = tree.AddChild(parent, "c1");
  EXPECT_EQ(JDeweyBuilder::InsertAssign(tree, c1, /*gap=*/1, &enc), 1u);
  ASSERT_TRUE(enc.Validate(tree).ok());

  // Second insert exhausts the range, but p owns the topmost range of the
  // child level, so it is extended in place — a single number changes.
  NodeId c2 = tree.AddChild(parent, "c2");
  size_t changed = JDeweyBuilder::InsertAssign(tree, c2, /*gap=*/1, &enc);
  EXPECT_EQ(changed, 1u);
  ASSERT_TRUE(enc.Validate(tree).ok());
  // And the extension reserved a fresh gap: the next insert is cheap too.
  NodeId c3 = tree.AddChild(parent, "c3");
  EXPECT_EQ(JDeweyBuilder::InsertAssign(tree, c3, /*gap=*/1, &enc), 1u);
  ASSERT_TRUE(enc.Validate(tree).ok());
}

TEST(JDeweyUpdateTest, NonTopmostExhaustionReencodesSubtree) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AddChild(root, "a");
  NodeId b = tree.AddChild(root, "b");
  NodeId a1 = tree.AddChild(a, "a1");
  NodeId b1 = tree.AddChild(b, "b1");
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/0);
  // a's child range is full and b's range sits above it, so a cannot be
  // extended: the subtree rooted at a (root owns the topmost level-2
  // range) moves to the end of levels 2 and 3.
  NodeId a2 = tree.AddChild(a, "a2");
  size_t changed = JDeweyBuilder::InsertAssign(tree, a2, /*gap=*/1, &enc);
  EXPECT_EQ(changed, 3u);  // a, a1, a2
  ASSERT_TRUE(enc.Validate(tree).ok());
  // a moved past b at level 2; its children moved past b1 at level 3.
  EXPECT_GT(enc.NumberOf(a), enc.NumberOf(b));
  EXPECT_GT(enc.NumberOf(a1), enc.NumberOf(b1));
  EXPECT_GT(enc.NumberOf(a2), enc.NumberOf(a1));
}

TEST(JDeweyUpdateTest, ManyRandomInsertsKeepInvariants) {
  for (uint64_t seed : {11ull, 22ull, 33ull}) {
    Rng rng(seed);
    XmlTree tree;
    tree.CreateRoot("r");
    for (int i = 0; i < 10; ++i) tree.AddChild(tree.root(), "n");
    uint32_t gap = static_cast<uint32_t>(seed % 4);
    JDeweyEncoding enc = JDeweyBuilder::Assign(tree, gap);
    for (int i = 0; i < 300; ++i) {
      NodeId parent =
          static_cast<NodeId>(rng.NextBounded(tree.node_count()));
      if (tree.level(parent) >= 10) continue;
      NodeId child = tree.AddChild(parent, "n");
      JDeweyBuilder::InsertAssign(tree, child, gap, &enc);
      if (i % 50 == 0) {
        ASSERT_TRUE(enc.Validate(tree).ok())
            << "seed " << seed << " insert " << i;
      }
    }
    ASSERT_TRUE(enc.Validate(tree).ok()) << "seed " << seed;
  }
}

TEST(JDeweyUpdateTest, InsertedNodesHaveWorkingSequences) {
  XmlTree tree;
  NodeId root = tree.CreateRoot("r");
  NodeId a = tree.AddChild(root, "a");
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, /*gap=*/4);
  NodeId b = tree.AddChild(a, "b");
  JDeweyBuilder::InsertAssign(tree, b, /*gap=*/4, &enc);
  NodeId c = tree.AddChild(b, "c");
  JDeweyBuilder::InsertAssign(tree, c, /*gap=*/4, &enc);
  ASSERT_TRUE(enc.Validate(tree).ok());
  JDeweySeq seq = enc.SequenceOf(tree, c);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[3], enc.NumberOf(c));
  auto lca = JDeweyLca(enc.SequenceOf(tree, b), seq);
  ASSERT_TRUE(lca.has_value());
  EXPECT_EQ(lca->value, enc.NumberOf(b));
}

}  // namespace
}  // namespace xtopk
