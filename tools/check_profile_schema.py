#!/usr/bin/env python3
"""Validate an xtopk_profile JSON document against tools/profile_schema.json.

Stdlib-only on purpose (the CI container has no jsonschema package): this
implements exactly the JSON Schema subset the checked-in schema uses —
type, required, properties, items, minItems, minimum, maximum, const,
additionalProperties-as-schema, and $ref into #/definitions.

Usage:
  check_profile_schema.py profile.json            # validate a file
  xtopk_profile 2>/dev/null | check_profile_schema.py -   # validate stdin
  check_profile_schema.py --run ./build/tools/xtopk_profile [args...]
"""

import json
import subprocess
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def validate(value, schema, root, path="$"):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/definitions/"):
            return [f"{path}: unsupported $ref {ref!r}"]
        name = ref[len("#/definitions/"):]
        try:
            schema = root["definitions"][name]
        except KeyError:
            return [f"{path}: unresolved $ref {ref!r}"]

    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES[expected]
        ok = isinstance(value, py_type)
        # bool is an int subclass in Python; JSON treats them as distinct.
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(value).__name__}"]

    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {value!r}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value} > maximum {schema['maximum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, subschema in props.items():
            if key in value:
                errors += validate(value[key], subschema, root,
                                   f"{path}.{key}")
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, item in value.items():
                if key not in props:
                    errors += validate(item, extra, root, f"{path}.{key}")

    if isinstance(value, list):
        if "minItems" in schema and len(value) < schema["minItems"]:
            errors.append(f"{path}: {len(value)} items < minItems "
                          f"{schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                errors += validate(item, items, root, f"{path}[{i}]")

    return errors


def main(argv):
    schema_path = __file__.rsplit("/", 1)[0] + "/profile_schema.json"
    with open(schema_path, encoding="utf-8") as f:
        schema = json.load(f)

    if len(argv) >= 2 and argv[1] == "--run":
        proc = subprocess.run(argv[2:], stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL, check=False)
        if proc.returncode != 0:
            print(f"FAIL: {' '.join(argv[2:])} exited {proc.returncode}")
            return 1
        text = proc.stdout.decode("utf-8")
    elif len(argv) == 2 and argv[1] != "-":
        with open(argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"FAIL: output is not valid JSON: {exc}")
        return 1

    errors = validate(document, schema, schema)
    if errors:
        for error in errors:
            print(f"FAIL: {error}")
        return 1

    queries = document.get("queries", [])
    print(f"OK: schema-valid profile with {len(queries)} queries, "
          f"{len(document['metrics']['counters'])} counters")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
