#ifndef XTOPK_STORAGE_SPARSE_INDEX_H_
#define XTOPK_STORAGE_SPARSE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "util/status.h"

namespace xtopk {

/// A sparse index over one column (paper §V: "sparse indices can be built
/// over columns to improve efficiency" of the index join). Every
/// `sample_rate`-th run contributes a (value, run index) sample; a probe
/// narrows the binary search to one sample stride. Small enough to pin in
/// memory — Table I reports it separately from the inverted lists.
class SparseIndex {
 public:
  SparseIndex() = default;

  /// Builds over `column`, sampling every `sample_rate` runs.
  static SparseIndex Build(const Column& column, uint32_t sample_rate = 64);

  /// Narrowed search window [lo, hi) of run indexes that may hold `value`.
  struct Window {
    size_t lo = 0;
    size_t hi = 0;
  };
  Window Probe(uint32_t value) const;

  size_t sample_count() const { return values_.size(); }
  uint32_t sample_rate() const { return sample_rate_; }

  /// Serialized footprint in bytes (for index-size stats).
  size_t EncodedSize() const;
  void Encode(std::string* out) const;
  static Status Decode(const std::string& data, size_t* pos, SparseIndex* out);

 private:
  std::vector<uint32_t> values_;      // sampled run values (ascending)
  std::vector<uint32_t> run_indexes_; // parallel: run index of each sample
  uint32_t sample_rate_ = 64;
  uint32_t total_runs_ = 0;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_SPARSE_INDEX_H_
