#include "baseline/rdil.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

namespace xtopk {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Component-level common prefix of two order-preserving encoded keys
/// (4 bytes per component).
size_t KeyLcpComponents(std::string_view a, std::string_view b) {
  size_t n = std::min(a.size(), b.size());
  size_t bytes = 0;
  while (bytes < n && a[bytes] == b[bytes]) ++bytes;
  return bytes / 4;
}

}  // namespace

RdilSearch::RdilSearch(const XmlTree& tree, const RdilIndex& index,
                       RdilOptions options)
    : tree_(tree), index_(index), options_(options) {}

std::vector<SearchResult> RdilSearch::Search(
    const std::vector<std::string>& keywords) {
  stats_ = RdilStats{};
  std::vector<SearchResult> emitted;
  const size_t k = keywords.size();
  if (k == 0 || options_.k == 0) return emitted;

  std::vector<const RdilList*> lists;
  std::vector<const DeweyList*> base_lists;
  for (const std::string& kw : keywords) {
    const RdilList* list = index_.GetList(kw);
    if (list == nullptr || list->base->num_rows() == 0) return emitted;
    lists.push_back(list);
    base_lists.push_back(list->base);
  }

  ElcaCandidateEvaluator evaluator(base_lists, options_.scoring);

  std::vector<size_t> pos(k, 0);  // cursor into by_score per keyword
  std::vector<double> s_next(k), s_max(k);
  for (size_t i = 0; i < k; ++i) {
    s_max[i] = lists[i]->base->scores[lists[i]->by_score[0]];
    s_next[i] = s_max[i];
  }

  struct Pending {
    double score;
    NodeId node;
    uint32_t level;
  };
  auto pending_less = [](const Pending& a, const Pending& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.node > b.node;
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(pending_less)>
      pending(pending_less);
  std::unordered_set<std::string> checked;  // candidate memo by encoded key

  auto threshold = [&]() {
    // Classic TA bound over the ranked streams; damping bounded by d(0)=1.
    double bound = kNegInf;
    for (size_t i = 0; i < k; ++i) {
      if (s_next[i] == kNegInf) continue;
      double b = s_next[i];
      for (size_t j = 0; j < k; ++j) {
        if (j != i) b += s_max[j];
      }
      bound = std::max(bound, b);
    }
    return bound;
  };

  auto flush = [&](double bound) {
    while (!pending.empty() && emitted.size() < options_.k &&
           pending.top().score >= bound) {
      const Pending& top = pending.top();
      emitted.push_back(SearchResult{top.node, top.level, top.score});
      pending.pop();
    }
  };

  size_t turn = 0;
  while (emitted.size() < options_.k) {
    // Round-robin over non-exhausted lists.
    size_t chosen = k;
    for (size_t step = 0; step < k; ++step) {
      size_t i = (turn + step) % k;
      if (pos[i] < lists[i]->by_score.size()) {
        chosen = i;
        turn = (i + 1) % k;
        break;
      }
    }
    if (chosen == k) {
      flush(kNegInf);
      break;
    }

    const RdilList& list = *lists[chosen];
    uint32_t row = list.by_score[pos[chosen]++];
    ++stats_.entries_read;
    s_next[chosen] = pos[chosen] < list.by_score.size()
                         ? list.base->scores[list.by_score[pos[chosen]]]
                         : kNegInf;

    // Candidate: the lowest node containing v and every other keyword —
    // prefix of v at the shallowest closest-match depth, probed through
    // the Dewey B+-trees.
    const DeweyId& v = list.base->deweys[row];
    std::string v_key = EncodeDeweyKey(v);
    size_t depth = v.length();
    for (size_t j = 0; j < k && depth > 0; ++j) {
      if (j == chosen) continue;
      ++stats_.btree_probes;
      const BTree& btree = *lists[j]->dewey_btree;
      BTree::Iterator succ = btree.LowerBound(v_key);
      size_t best = 0;
      if (succ.Valid()) {
        best = std::max(best, KeyLcpComponents(succ.key(), v_key));
      }
      // Predecessor: step back from the successor, or take the last entry
      // when v sorts past everything.
      BTree::Iterator pred = succ.Valid() ? succ : btree.Last();
      if (succ.Valid()) pred.Prev();
      if (pred.Valid()) {
        best = std::max(best, KeyLcpComponents(pred.key(), v_key));
      }
      depth = std::min(depth, best);
    }
    if (depth == 0) continue;  // disjoint trees cannot happen (shared root)

    DeweyId candidate = v.Prefix(depth);
    std::string cand_key = EncodeDeweyKey(candidate);
    if (checked.insert(cand_key).second) {
      ++stats_.candidates_checked;
      double score = 0.0;
      bool ok = options_.semantics == Semantics::kElca
                    ? evaluator.IsElca(candidate, &score)
                    : evaluator.IsSlca(candidate, &score);
      if (ok) {
        NodeId node = NodeByDewey(tree_, candidate);
        assert(node != kInvalidNode);
        pending.push(
            Pending{score, node, static_cast<uint32_t>(candidate.length())});
      }
    }

    flush(threshold());
  }
  stats_.eval = *evaluator.stats();
  return emitted;
}

}  // namespace xtopk
