#include "core/compaction.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <utility>

namespace xtopk {

std::vector<size_t> PickTieredCompaction(const std::vector<uint64_t>& sizes,
                                         const CompactionOptions& options) {
  if (sizes.size() <= options.max_segments || sizes.size() < 2) return {};

  std::vector<size_t> order(sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return sizes[a] < sizes[b]; });

  // The longest size-sorted prefix within tier_ratio of the smallest:
  // those are tier peers, and merging peers keeps write amplification
  // logarithmic. Sizes of 0 (in-memory segments) count as peers of
  // anything — they are the cheapest possible merge inputs.
  uint64_t smallest = sizes[order[0]];
  size_t run = 1;
  while (run < order.size()) {
    uint64_t size = sizes[order[run]];
    if (smallest > 0 &&
        static_cast<double>(size) >
            static_cast<double>(smallest) * options.tier_ratio)
      break;
    if (smallest == 0) smallest = size;
    ++run;
  }
  // Over the count bound, a merge must happen even when the two smallest
  // are not tier peers — otherwise a geometric size spread would let the
  // segment count grow without bound.
  run = std::max<size_t>(run, 2);
  order.resize(run);
  return order;
}

CompactionScheduler::CompactionScheduler(std::function<bool()> work)
    : work_raw_(std::move(work)) {
  work_ = [this] {
    bool progressed = work_raw_();
    if (progressed) rounds_.fetch_add(1, std::memory_order_relaxed);
    return progressed;
  };
}

CompactionScheduler::~CompactionScheduler() { Stop(); }

bool CompactionScheduler::BackgroundDisabled() {
  const char* env = std::getenv("XTOPK_DISABLE_BG_COMPACT");
  return env != nullptr && env[0] != '\0';
}

void CompactionScheduler::Start() {
  if (BackgroundDisabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&CompactionScheduler::Loop, this);
}

void CompactionScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void CompactionScheduler::Notify() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    wake_ = true;
  }
  cv_.notify_all();
}

bool CompactionScheduler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

uint64_t CompactionScheduler::rounds() const {
  return rounds_.load(std::memory_order_relaxed);
}

void CompactionScheduler::Loop() {
  // Lowest CPU priority: a merge burst on a loaded (or single-core) box
  // must lose the scheduler fight to query threads, not stall their tail
  // latency. On Linux, nice is per-thread and who == 0 names the calling
  // thread, so this demotes only the maintenance loop. Queries never wait
  // on this thread — the engine's merge work runs off every lock — so a
  // starved round merely finishes later.
  ::setpriority(PRIO_PROCESS, 0, 19);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // The timeout bounds the damage of a lost Notify to one period —
      // background maintenance must not hinge on perfect signaling.
      cv_.wait_for(lock, std::chrono::milliseconds(100),
                   [this] { return stop_ || wake_; });
      if (stop_) return;
      wake_ = false;
    }
    // Drain: keep compacting while rounds make progress, so a burst of
    // seals converges instead of leaving one round per notification.
    while (work_()) {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
    }
  }
}

}  // namespace xtopk
