#include "index/index_builder.h"

#include <gtest/gtest.h>

#include "testing/corpus.h"
#include "xml/jdewey_builder.h"

namespace xtopk {
namespace {

using testing::MakeSmallCorpus;
using Ids = testing::SmallCorpusIds;

class IndexBuilderTest : public ::testing::Test {
 protected:
  IndexBuilderTest() : tree_(MakeSmallCorpus()), builder_(tree_) {}
  XmlTree tree_;
  IndexBuilder builder_;
};

TEST_F(IndexBuilderTest, FrequenciesMatchCorpus) {
  JDeweyIndex index = builder_.BuildJDeweyIndex();
  EXPECT_EQ(index.Frequency("xml"), 4u);   // p0, p1t, p2t, p4t
  EXPECT_EQ(index.Frequency("data"), 4u);  // p0, p1a, p3t, p4t
  EXPECT_EQ(index.Frequency("title"), 4u);  // tag tokens are indexed
  EXPECT_EQ(index.Frequency("nosuchterm"), 0u);
  EXPECT_EQ(index.GetList("nosuchterm"), nullptr);
}

TEST_F(IndexBuilderTest, JDeweyListColumnsMatchSequences) {
  JDeweyIndex index = builder_.BuildJDeweyIndex();
  const JDeweyList* list = index.GetList("xml");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->num_rows(), 4u);
  const JDeweyEncoding& enc = builder_.jdewey_encoding();
  for (uint32_t row = 0; row < list->num_rows(); ++row) {
    JDeweySeq expected = enc.SequenceOf(tree_, list->nodes[row]);
    EXPECT_EQ(list->SequenceOf(row), expected) << "row " << row;
    EXPECT_EQ(list->lengths[row], expected.size());
  }
  // Rows are in JDewey-sequence order.
  for (uint32_t row = 1; row < list->num_rows(); ++row) {
    EXPECT_LT(CompareJDewey(list->SequenceOf(row - 1), list->SequenceOf(row)),
              0);
  }
}

TEST_F(IndexBuilderTest, ColumnsAreRunSortedAndConsistent) {
  JDeweyIndex index = builder_.BuildJDeweyIndex();
  const JDeweyList* list = index.GetList("data");
  ASSERT_NE(list, nullptr);
  for (uint32_t level = 1; level <= list->max_length; ++level) {
    const Column& col = list->column(level);
    uint32_t prev_value = 0;
    for (const ::xtopk::Run& run : col.runs()) {
      EXPECT_GT(run.value, prev_value);
      prev_value = run.value;
      EXPECT_GT(run.count, 0u);
    }
  }
  // Column 1 groups everything under the root: one run covering all rows.
  EXPECT_EQ(list->column(1).run_count(), 1u);
  EXPECT_EQ(list->column(1).runs()[0].count, list->num_rows());
}

TEST_F(IndexBuilderTest, NodeAtInvertsNumbering) {
  JDeweyIndex index = builder_.BuildJDeweyIndex();
  const JDeweyEncoding& enc = builder_.jdewey_encoding();
  for (NodeId id = 0; id < tree_.node_count(); ++id) {
    EXPECT_EQ(index.NodeAt(tree_.level(id), enc.NumberOf(id)), id);
  }
  EXPECT_EQ(index.NodeAt(1, 999), kInvalidNode);
  EXPECT_EQ(index.NodeAt(99, 1), kInvalidNode);
}

TEST_F(IndexBuilderTest, ScoresNormalizedAndPositive) {
  JDeweyIndex index = builder_.BuildJDeweyIndex();
  for (const char* term : {"xml", "data"}) {
    const JDeweyList* list = index.GetList(term);
    ASSERT_NE(list, nullptr);
    for (float s : list->scores) {
      EXPECT_GT(s, 0.0f);
      EXPECT_LE(s, 1.0f);
    }
  }
  // p4t has tf(xml)=2: higher local score than single-occurrence rows of
  // the same term.
  const JDeweyList* xml = index.GetList("xml");
  float p4t_score = 0, p1t_score = 0;
  for (uint32_t row = 0; row < xml->num_rows(); ++row) {
    if (xml->nodes[row] == Ids::kP4Title) p4t_score = xml->scores[row];
    if (xml->nodes[row] == Ids::kP1Title) p1t_score = xml->scores[row];
  }
  EXPECT_GT(p4t_score, p1t_score);
}

TEST_F(IndexBuilderTest, DeweyIndexInDocumentOrder) {
  DeweyIndex index = builder_.BuildDeweyIndex();
  const DeweyList* list = index.GetList("data");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->num_rows(), 4u);
  for (uint32_t row = 1; row < list->num_rows(); ++row) {
    EXPECT_LT(list->deweys[row - 1].Compare(list->deweys[row]), 0);
  }
  EXPECT_EQ(list->nodes[0], Ids::kPaper0);
  EXPECT_EQ(list->nodes[3], Ids::kP4Title);
}

TEST_F(IndexBuilderTest, SubtreeRangeCoversDescendants) {
  DeweyIndex index = builder_.BuildDeweyIndex();
  const DeweyList* list = index.GetList("xml");
  // conf0 subtree (dewey 1.1) holds rows for p0, p1t, p2t.
  auto [lo, hi] = list->SubtreeRange(DeweyId({1, 1}));
  EXPECT_EQ(hi - lo, 3u);
  auto [lo2, hi2] = list->SubtreeRange(DeweyId({1, 2}));
  EXPECT_EQ(hi2 - lo2, 1u);
}

TEST_F(IndexBuilderTest, TopKSegmentsGroupedByLengthAndSorted) {
  JDeweyIndex base = builder_.BuildJDeweyIndex();
  TopKIndex topk = builder_.BuildTopKIndex(base);
  const TopKList* list = topk.GetList("xml");
  ASSERT_NE(list, nullptr);
  // xml occurs at level 3 (p0) and level 4 (three titles): two segments.
  ASSERT_EQ(list->segments.size(), 2u);
  EXPECT_EQ(list->segments[0].length, 3u);
  EXPECT_EQ(list->segments[1].length, 4u);
  for (const ScoreSegment& seg : list->segments) {
    EXPECT_EQ(seg.max_score, list->base->scores[seg.rows.front()]);
    for (size_t i = 1; i < seg.rows.size(); ++i) {
      EXPECT_GE(list->base->scores[seg.rows[i - 1]],
                list->base->scores[seg.rows[i]]);
      EXPECT_EQ(list->base->lengths[seg.rows[i]], seg.length);
    }
  }
}

TEST_F(IndexBuilderTest, TopKMaxDampedScoreAt) {
  JDeweyIndex base = builder_.BuildJDeweyIndex();
  TopKIndex topk = builder_.BuildTopKIndex(base);
  const TopKList* list = topk.GetList("xml");
  ScoringParams params;
  double at4 = list->MaxDampedScoreAt(4, params);
  double at1 = list->MaxDampedScoreAt(1, params);
  EXPECT_GT(at4, 0.0);
  EXPECT_GT(at1, 0.0);
  EXPECT_LE(at1, at4 + 1e-12);  // damping can only lower the bound... unless
  // a short sequence dominates; here the level-3 segment exists, so check
  // the skip-rule inequality instead: no sequence ends at level 2, hence
  // B(2) < B(3).
  EXPECT_FALSE(list->HasLength(2));
  EXPECT_LT(list->MaxDampedScoreAt(2, params),
            list->MaxDampedScoreAt(3, params));
  EXPECT_TRUE(list->HasLength(3));
  EXPECT_TRUE(list->HasLength(4));
}

TEST_F(IndexBuilderTest, RdilOrderedByScoreWithWorkingBTree) {
  DeweyIndex base = builder_.BuildDeweyIndex();
  RdilIndex rdil = builder_.BuildRdilIndex(base);
  const RdilList* list = rdil.GetList("data");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->by_score.size(), 4u);
  for (size_t i = 1; i < list->by_score.size(); ++i) {
    EXPECT_GE(list->base->scores[list->by_score[i - 1]],
              list->base->scores[list->by_score[i]]);
  }
  ASSERT_NE(list->dewey_btree, nullptr);
  EXPECT_EQ(list->dewey_btree->size(), 4u);
  ASSERT_TRUE(list->dewey_btree->Validate().ok());
  // Probing an occurrence's key finds its row.
  for (uint32_t row = 0; row < list->base->num_rows(); ++row) {
    const uint64_t* got =
        list->dewey_btree->Find(EncodeDeweyKey(list->base->deweys[row]));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, row);
  }
}

TEST_F(IndexBuilderTest, CombinedBTreeHoldsEveryPair) {
  DeweyIndex base = builder_.BuildDeweyIndex();
  BTree combined = builder_.BuildCombinedBTree(base);
  ASSERT_TRUE(combined.Validate().ok());
  // One entry per (term, node) pair.
  size_t pairs = 0;
  for (const TermInfo& info : builder_.terms()) pairs += info.frequency;
  EXPECT_EQ(combined.size(), pairs);
}

TEST_F(IndexBuilderTest, TermInfosSortedAndComplete) {
  const auto& terms = builder_.terms();
  ASSERT_FALSE(terms.empty());
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LT(terms[i - 1].term, terms[i].term);
  }
  bool found_xml = false;
  for (const TermInfo& t : terms) {
    if (t.term == "xml") {
      found_xml = true;
      EXPECT_EQ(t.frequency, 4u);
    }
  }
  EXPECT_TRUE(found_xml);
}

TEST_F(IndexBuilderTest, TagTokensCanBeDisabled) {
  IndexBuildOptions options;
  options.index_tag_names = false;
  IndexBuilder builder(tree_, options);
  JDeweyIndex index = builder.BuildJDeweyIndex();
  EXPECT_EQ(index.Frequency("title"), 0u);
  EXPECT_EQ(index.Frequency("xml"), 4u);
}

TEST_F(IndexBuilderTest, EncodedSizesOrdered) {
  JDeweyIndex jindex = builder_.BuildJDeweyIndex();
  uint64_t without_scores = jindex.EncodedListBytes(false);
  uint64_t with_scores = jindex.EncodedListBytes(true);
  EXPECT_GT(without_scores, 0u);
  EXPECT_GT(with_scores, without_scores);
  EXPECT_GT(jindex.SparseIndexBytes(), 0u);
}

}  // namespace
}  // namespace xtopk
