#include "util/varint.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xtopk {
namespace {

TEST(VarintTest, RoundTripU64Boundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            UINT32_MAX,
                            (1ull << 56) - 1,
                            UINT64_MAX};
  std::string buf;
  for (uint64_t v : cases) varint::PutU64(&buf, v);
  size_t pos = 0;
  for (uint64_t v : cases) {
    uint64_t out = 0;
    ASSERT_TRUE(varint::GetU64(buf, &pos, &out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, RoundTripU32RejectsOverflow) {
  std::string buf;
  varint::PutU64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  size_t pos = 0;
  uint32_t out = 0;
  EXPECT_EQ(varint::GetU32(buf, &pos, &out).code(), StatusCode::kCorruption);
}

TEST(VarintTest, RoundTripSigned) {
  const int64_t cases[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX, -123456789};
  std::string buf;
  for (int64_t v : cases) varint::PutS64(&buf, v);
  size_t pos = 0;
  for (int64_t v : cases) {
    int64_t out = 0;
    ASSERT_TRUE(varint::GetS64(buf, &pos, &out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, TruncatedBufferIsCorruption) {
  std::string buf;
  varint::PutU64(&buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_EQ(varint::GetU64(buf, &pos, &out).code(), StatusCode::kCorruption);
}

TEST(VarintTest, LengthMatchesEncoding) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextU64() >> rng.NextBounded(64);
    std::string buf;
    varint::PutU64(&buf, v);
    EXPECT_EQ(buf.size(), varint::LengthU64(v)) << v;
  }
}

TEST(VarintTest, RandomRoundTrips) {
  Rng rng(7);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextU64() >> rng.NextBounded(64);
    values.push_back(v);
    varint::PutU64(&buf, v);
  }
  size_t pos = 0;
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(varint::GetU64(buf, &pos, &out).ok());
    ASSERT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

}  // namespace
}  // namespace xtopk
