#include "storage/sparse_index.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace xtopk {
namespace {

Column MakeColumn(uint32_t runs, uint32_t value_stride) {
  Column col;
  for (uint32_t i = 0; i < runs; ++i) {
    col.Append(i, 1 + i * value_stride);
  }
  return col;
}

TEST(SparseIndexTest, ProbeWindowsContainTheValue) {
  Column col = MakeColumn(1000, 3);
  SparseIndex index = SparseIndex::Build(col, /*sample_rate=*/64);
  EXPECT_LE(index.sample_count(), 1000u / 64 + 1);
  for (uint32_t value = 1; value <= 1 + 999 * 3; value += 7) {
    auto window = index.Probe(value);
    size_t expected = col.LowerBoundValue(value);
    if (expected < col.run_count() &&
        col.runs()[expected].value == value) {
      EXPECT_GE(expected, window.lo);
      EXPECT_LT(expected, window.hi);
      // The window is one stride wide.
      EXPECT_LE(window.hi - window.lo, 65u);
    }
  }
}

TEST(SparseIndexTest, ProbeBelowFirstIsEmpty) {
  Column col = MakeColumn(100, 2);  // values start at 1
  SparseIndex index = SparseIndex::Build(col, 16);
  auto window = index.Probe(0);
  EXPECT_EQ(window.lo, window.hi);
}

TEST(SparseIndexTest, EmptyColumn) {
  Column col;
  SparseIndex index = SparseIndex::Build(col, 16);
  auto window = index.Probe(5);
  EXPECT_EQ(window.lo, 0u);
  EXPECT_EQ(window.hi, 0u);
}

TEST(SparseIndexTest, EncodeDecodeRoundTrip) {
  Column col = MakeColumn(500, 5);
  SparseIndex index = SparseIndex::Build(col, 32);
  std::string buf;
  index.Encode(&buf);
  EXPECT_EQ(buf.size(), index.EncodedSize());
  SparseIndex out;
  size_t pos = 0;
  ASSERT_TRUE(SparseIndex::Decode(buf, &pos, &out).ok());
  EXPECT_EQ(out.sample_count(), index.sample_count());
  EXPECT_EQ(out.sample_rate(), index.sample_rate());
  for (uint32_t value = 1; value < 2500; value += 13) {
    auto a = index.Probe(value);
    auto b = out.Probe(value);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
  }
}

TEST(SparseIndexTest, IsSmallRelativeToColumn) {
  Column col = MakeColumn(10000, 7);
  SparseIndex index = SparseIndex::Build(col, 64);
  // Table I: sparse indexes are a few percent of the lists.
  EXPECT_LT(index.EncodedSize(), 10000u / 10);
}

}  // namespace
}  // namespace xtopk
