file(REMOVE_RECURSE
  "CMakeFiles/xml_parser_fuzz_test.dir/xml/parser_fuzz_test.cc.o"
  "CMakeFiles/xml_parser_fuzz_test.dir/xml/parser_fuzz_test.cc.o.d"
  "xml_parser_fuzz_test"
  "xml_parser_fuzz_test.pdb"
  "xml_parser_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_parser_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
