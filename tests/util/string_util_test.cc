#include "util/string_util.h"

#include <gtest/gtest.h>

namespace xtopk {
namespace {

TEST(StringUtilTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("Hello World 123"), "hello world 123");
  EXPECT_EQ(AsciiLower(""), "");
  EXPECT_EQ(AsciiLower("already lower"), "already lower");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, SplitNonEmpty) {
  auto parts = SplitNonEmpty("a,b,,c", ",");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitNonEmpty("", ",").empty());
  EXPECT_TRUE(SplitNonEmpty(",,,", ",").empty());
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1024), "1.0 KB");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(3ull * 1024 * 1024), "3.0 MB");
  EXPECT_EQ(HumanBytes(2ull * 1024 * 1024 * 1024), "2.0 GB");
}

}  // namespace
}  // namespace xtopk
