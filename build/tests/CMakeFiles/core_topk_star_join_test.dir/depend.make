# Empty dependencies file for core_topk_star_join_test.
# This may be replaced when dependencies are built.
