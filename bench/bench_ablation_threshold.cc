// Ablation A2 (paper §IV-B): the grouped star-join threshold vs the
// classic TA/HRJN bound. Measures, on synthetic ranked relations and on
// the real top-K keyword search, how many tuples each bound reads before
// the top k can be emitted — the paper proves the grouped bound is never
// looser; this quantifies how much it saves.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/topk_search.h"
#include "core/topk_star_join.h"
#include "util/rng.h"

namespace {

std::vector<std::vector<xtopk::RankedTuple>> RandomRelations(
    uint64_t seed, size_t k, size_t ids, double keep_prob) {
  xtopk::Rng rng(seed);
  std::vector<std::vector<xtopk::RankedTuple>> rels(k);
  for (size_t r = 0; r < k; ++r) {
    for (uint64_t id = 0; id < ids; ++id) {
      if (rng.NextBernoulli(keep_prob)) {
        rels[r].push_back({id, rng.NextDouble()});
      }
    }
    std::sort(rels[r].begin(), rels[r].end(),
              [](const xtopk::RankedTuple& a, const xtopk::RankedTuple& b) {
                return a.score > b.score;
              });
  }
  return rels;
}

uint64_t TuplesRead(const std::vector<std::vector<xtopk::RankedTuple>>& rels,
                    size_t k, bool grouped) {
  std::vector<xtopk::VectorRankedSource> sources;
  sources.reserve(rels.size());
  std::vector<xtopk::RankedSource*> ptrs;
  for (const auto& rel : rels) sources.emplace_back(rel);
  for (auto& s : sources) ptrs.push_back(&s);
  xtopk::TopKStarJoin join(ptrs, xtopk::StarJoinOptions{k, grouped});
  join.Run();
  return join.stats().tuples_read;
}

}  // namespace

int main() {
  std::printf("=== Ablation A2: star-join threshold tightness ===\n\n");
  std::printf("synthetic star joins, top-10, avg tuples read over 20 seeds\n");
  std::printf("%-8s %-10s %14s %14s %8s\n", "inputs", "overlap", "grouped",
              "classic", "saved");
  for (size_t k : {2u, 3u, 4u, 5u}) {
    for (double keep : {0.3, 0.7}) {
      uint64_t grouped_total = 0, classic_total = 0;
      for (uint64_t seed = 1; seed <= 20; ++seed) {
        auto rels = RandomRelations(seed * 131 + k, k, 400, keep);
        grouped_total += TuplesRead(rels, 10, true);
        classic_total += TuplesRead(rels, 10, false);
      }
      std::printf("%-8zu %-10.1f %14.1f %14.1f %7.1f%%\n", k, keep,
                  grouped_total / 20.0, classic_total / 20.0,
                  100.0 * (1.0 - double(grouped_total) / classic_total));
    }
  }

  std::printf("\nreal corpus: top-10 keyword queries, entries read\n");
  std::printf("(on these queries both bounds release results at the same\n");
  std::printf(" steps — completion and the static cross-column bounds, not\n");
  std::printf(" the star-join threshold, are the binding constraints; the\n");
  std::printf(" synthetic section above isolates the bound itself)\n");
  xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
  xtopk::TopKIndex topk_index = corpus.builder->BuildTopKIndex(jindex);
  const std::vector<std::vector<std::string>> queries = {
      {"corr2a", "corr2b"},
      {"corr3a", "corr3b", "corr3c"},
      {"hi0", "hi1"},
      {"eq4000q0", "eq4000q1", "eq4000q2"},
  };
  for (double damping : {0.9, 0.5}) {
    std::printf("\ndamping base %.1f:\n", damping);
    std::printf("%-26s %14s %14s\n", "query", "grouped", "classic");
    for (const auto& query : queries) {
      uint64_t reads[2];
      int idx = 0;
      for (bool grouped : {true, false}) {
        xtopk::TopKSearchOptions options;
        options.k = 10;
        options.group_threshold = grouped;
        options.scoring.damping_base = damping;
        xtopk::TopKSearch search(topk_index, options);
        search.Search(query);
        reads[idx++] = search.stats().entries_read;
      }
      std::string name;
      for (const auto& kw : query) name += (name.empty() ? "" : "+") + kw;
      std::printf("%-26s %14llu %14llu\n", name.c_str(),
                  (unsigned long long)reads[0], (unsigned long long)reads[1]);
    }
  }
  return 0;
}
