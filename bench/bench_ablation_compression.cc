// Ablation A1 (paper §III-D): what the two column codecs buy.
//
// Prints the serialized inverted-list size of the DBLP-like corpus under
// forced delta, forced run-length, and the per-column auto choice; then
// the structure-aware compression ablation (DESIGN.md §15): serialized
// index bytes and multi-term join throughput with the subtree DAG +
// dictionary layer on vs off, over a repeated-subtree corpus (where it
// should win) and a uniform corpus of the same shape but unique content
// (where it must get out of the way). The `BENCH` lines of that section
// feed the CI compression perf-smoke gate. Finally, google-benchmark
// micro-benchmarks of encode/decode throughput on representative column
// shapes (duplicate-heavy conference-level columns vs distinct-heavy
// paper-level columns).

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/dag_join.h"
#include "core/join_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "storage/compression.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "xml/xml_tree.h"

namespace {

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

const std::vector<std::string>& Vocab() {
  static const std::vector<std::string> kVocab = {"alpha", "beta",  "gamma",
                                                  "delta", "eps",   "zeta"};
  return kVocab;
}

/// Structured catalog/section/item corpus. With `repeated` every section
/// holds many byte-identical items (the shape the subtree DAG shares);
/// without it every item additionally carries a unique token, so no two
/// subtrees are identical and the compression layer must not tax the
/// index. Filler "note" siblings interleave with the items either way, so
/// shared regions are never wall-to-wall contiguous.
xtopk::XmlTree MakeStructuredCorpus(bool repeated, size_t groups,
                                    size_t copies) {
  const std::vector<std::string>& vocab = Vocab();
  xtopk::Rng rng(repeated ? 41 : 42);
  xtopk::XmlTree tree;
  xtopk::NodeId root = tree.CreateRoot("catalog");
  for (size_t g = 0; g < groups; ++g) {
    xtopk::NodeId section = tree.AddChild(root, "section");
    const std::string& t0 = vocab[g % vocab.size()];
    const std::string& t1 = vocab[(g + 1) % vocab.size()];
    for (size_t c = 0; c < copies; ++c) {
      xtopk::NodeId item = tree.AddChild(section, "item");
      xtopk::NodeId name = tree.AddChild(item, "name");
      std::string unique =
          repeated ? ""
                   : " u" + std::to_string(g) + "x" + std::to_string(c);
      tree.AppendText(name, t0 + unique);
      xtopk::NodeId props = tree.AddChild(item, "props");
      xtopk::NodeId payload = tree.AddChild(props, "payload");
      tree.AppendText(payload, t1 + " " + t0 + unique);
      if (rng.NextBernoulli(0.1)) {
        xtopk::NodeId filler = tree.AddChild(section, "note");
        tree.AppendText(filler, vocab[rng.NextBounded(vocab.size())] + " f" +
                                    std::to_string(g) + "x" +
                                    std::to_string(c));
      }
    }
  }
  return tree;
}

/// The multi-term workload of the structure ablation: every adjacent
/// vocabulary pair — each pair co-occurs inside the items of the sections
/// that planted it.
std::vector<std::vector<std::string>> StructureQueries() {
  const std::vector<std::string>& vocab = Vocab();
  std::vector<std::vector<std::string>> queries;
  for (size_t i = 0; i < vocab.size(); ++i) {
    queries.push_back({vocab[i], vocab[(i + 1) % vocab.size()]});
  }
  return queries;
}

/// QPS of JoinSearch over `index` on the structure workload (hot, after
/// one warm-up pass). `checksum` guards against dead-code elimination and
/// doubles as an any-difference tripwire between the two index forms.
double StructureJoinQps(const xtopk::JDeweyIndex& index, uint64_t* checksum) {
  std::vector<std::vector<std::string>> queries = StructureQueries();
  xtopk::JoinSearch search(index);
  uint64_t sum = 0;
  for (const auto& q : queries) sum += search.Search(q).size();  // warm-up
  const size_t kIters = 40;
  xtopk::Timer timer;
  for (size_t it = 0; it < kIters; ++it) {
    for (const auto& q : queries) sum += search.Search(q).size();
  }
  double seconds = timer.ElapsedSeconds();
  *checksum = sum;
  return static_cast<double>(kIters * queries.size()) / seconds;
}

/// Throughput of the join's intersection layer — the stage the DAG
/// rewires (each shared subtree is intersected once, matches fan out
/// afterwards): full per-query level sweeps of IntersectListsAtLevel,
/// measured in sweeps per second. `checksum` totals emitted matches so
/// both index forms must agree.
double StructureIntersectQps(const xtopk::JDeweyIndex& index,
                             uint64_t* checksum) {
  std::vector<std::vector<std::string>> queries = StructureQueries();
  std::vector<std::vector<const xtopk::JDeweyList*>> lists;
  for (const auto& q : queries) {
    std::vector<const xtopk::JDeweyList*> ordered;
    for (const std::string& kw : q) ordered.push_back(index.GetList(kw));
    lists.push_back(std::move(ordered));
  }
  xtopk::PlannerOptions planner;
  xtopk::JoinOpStats stats;
  uint64_t sum = 0;
  auto sweep = [&]() {
    for (const auto& ordered : lists) {
      uint32_t min_len = UINT32_MAX;
      for (const xtopk::JDeweyList* l : ordered) {
        min_len = std::min(min_len, l->max_length);
      }
      for (uint32_t level = 1; level <= min_len; ++level) {
        std::deque<xtopk::Run> arena;
        sum += xtopk::IntersectListsAtLevel(ordered, level, nullptr, planner,
                                            &stats, nullptr, &arena)
                   .size();
      }
    }
  };
  sweep();  // warm-up
  const size_t kIters = 60;
  xtopk::Timer timer;
  for (size_t it = 0; it < kIters; ++it) sweep();
  double seconds = timer.ElapsedSeconds();
  *checksum = sum;
  return static_cast<double>(kIters * lists.size()) / seconds;
}

/// One corpus of the structure ablation: builds the index with the
/// compression layer off and on, serializes both (legacy v2 bytes vs the
/// v3 dict+DAG sidecar layout, manifests included) and measures the join
/// throughput of each in-memory form.
void RunStructureAblation(const char* label, bool repeated, size_t groups,
                          size_t copies) {
  xtopk::XmlTree tree = MakeStructuredCorpus(repeated, groups, copies);

  xtopk::IndexBuildOptions plain_options;
  plain_options.build_threads = 8;
  xtopk::IndexBuilder plain_builder(tree, plain_options);
  xtopk::JDeweyIndex plain = plain_builder.BuildJDeweyIndex();

  xtopk::IndexBuildOptions comp_options = plain_options;
  comp_options.enable_dag = true;
  comp_options.enable_dict = true;
  xtopk::IndexBuilder comp_builder(tree, comp_options);
  xtopk::JDeweyIndex comp = comp_builder.BuildJDeweyIndex();

  size_t dag_lists = 0;
  for (const xtopk::JDeweyList& list : comp.lists()) {
    if (list.dag != nullptr) ++dag_lists;
  }

  const char* tmp = std::getenv("TMPDIR");
  std::string base = std::string(tmp != nullptr ? tmp : "/tmp") +
                     "/xtopk_bench_compression_" + label;
  std::string plain_path = base + "_plain", comp_path = base + "_comp";
  xtopk::DiskIndexWriter::Options plain_write;
  plain_write.include_scores = false;
  xtopk::DiskIndexWriter::Write(plain, plain_path, plain_write).ok();
  xtopk::DiskIndexWriter::Options comp_write = plain_write;
  comp_write.dict_terms = true;
  comp_write.dag = true;
  comp_write.dict_rows = true;
  xtopk::DiskIndexWriter::Write(comp, comp_path, comp_write).ok();

  uint64_t bytes_plain =
      FileBytes(plain_path) + FileBytes(plain_path + ".manifest");
  uint64_t bytes_comp =
      FileBytes(comp_path) + FileBytes(comp_path + ".manifest");
  for (const std::string& p : {plain_path, comp_path}) {
    std::remove(p.c_str());
    std::remove((p + ".manifest").c_str());
  }

  // Interleaved best-of-3: alternating the two index forms cancels slow
  // drift (frequency scaling, allocator state), and the max filters the
  // one-sided stalls that would otherwise fake a regression.
  uint64_t sum_plain = 0, sum_comp = 0;
  uint64_t isum_plain = 0, isum_comp = 0;
  double e2e_plain = 0, e2e_comp = 0, join_plain = 0, join_comp = 0;
  for (int rep = 0; rep < 3; ++rep) {
    e2e_plain = std::max(e2e_plain, StructureJoinQps(plain, &sum_plain));
    e2e_comp = std::max(e2e_comp, StructureJoinQps(comp, &sum_comp));
    join_plain =
        std::max(join_plain, StructureIntersectQps(plain, &isum_plain));
    join_comp = std::max(join_comp, StructureIntersectQps(comp, &isum_comp));
  }
  bool match = sum_plain == sum_comp && isum_plain == isum_comp;
  if (!match) {
    std::fprintf(stderr,
                 "[bench] RESULT MISMATCH on %s: e2e %llu vs %llu, "
                 "intersect %llu vs %llu\n",
                 label, static_cast<unsigned long long>(sum_plain),
                 static_cast<unsigned long long>(sum_comp),
                 static_cast<unsigned long long>(isum_plain),
                 static_cast<unsigned long long>(isum_comp));
  }

  double reduction =
      bytes_plain == 0
          ? 0.0
          : 1.0 - static_cast<double>(bytes_comp) / bytes_plain;
  double speedup = join_plain == 0.0 ? 0.0 : join_comp / join_plain;
  double e2e_speedup = e2e_plain == 0.0 ? 0.0 : e2e_comp / e2e_plain;
  std::printf("%s corpus (%zu nodes, %zu DAG lists):\n", label,
              tree.node_count(), dag_lists);
  std::printf("  serialized      off %s  on %s  (%.1f%% smaller)\n",
              xtopk::HumanBytes(bytes_plain).c_str(),
              xtopk::HumanBytes(bytes_comp).c_str(), reduction * 100.0);
  std::printf("  intersect qps   off %.0f  on %.0f  (%.2fx)\n", join_plain,
              join_comp, speedup);
  std::printf("  end-to-end qps  off %.0f  on %.0f  (%.2fx)\n\n", e2e_plain,
              e2e_comp, e2e_speedup);

  xtopk::bench::BenchJson("ablation_compression_structure")
      .Field("corpus", label)
      .Field("nodes", static_cast<uint64_t>(tree.node_count()))
      .Field("dag_lists", static_cast<uint64_t>(dag_lists))
      .Field("bytes_plain", bytes_plain)
      .Field("bytes_compressed", bytes_comp)
      .Field("size_reduction", reduction)
      .Field("join_qps_plain", join_plain)
      .Field("join_qps_compressed", join_comp)
      .Field("join_speedup", speedup)
      .Field("e2e_qps_plain", e2e_plain)
      .Field("e2e_qps_compressed", e2e_comp)
      .Field("e2e_speedup", e2e_speedup)
      .Field("results_match", match ? 1 : 0)
      .Emit();
}

xtopk::Column MakeColumn(uint64_t seed, uint32_t rows, double dup_prob) {
  xtopk::Rng rng(seed);
  xtopk::Column col;
  uint32_t row = 0, value = 1;
  for (uint32_t i = 0; i < rows; ++i) {
    col.Append(row++, value);
    if (!rng.NextBernoulli(dup_prob)) {
      value += 1 + static_cast<uint32_t>(rng.NextBounded(16));
    }
  }
  return col;
}

void BM_EncodeDelta(benchmark::State& state) {
  xtopk::Column col = MakeColumn(1, 100000, 0.05);
  for (auto _ : state) {
    std::string buf;
    xtopk::EncodeColumn(col, xtopk::ColumnCodec::kDelta, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EncodeDelta);

void BM_EncodeRunLength(benchmark::State& state) {
  xtopk::Column col = MakeColumn(2, 100000, 0.95);
  for (auto _ : state) {
    std::string buf;
    xtopk::EncodeColumn(col, xtopk::ColumnCodec::kRunLength, &buf);
    benchmark::DoNotOptimize(buf);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EncodeRunLength);

void BM_DecodeDelta(benchmark::State& state) {
  xtopk::Column col = MakeColumn(3, 100000, 0.05);
  std::string buf;
  xtopk::EncodeColumn(col, xtopk::ColumnCodec::kDelta, &buf);
  std::vector<uint32_t> rows;
  for (const xtopk::Run& run : col.runs()) {
    for (uint32_t i = 0; i < run.count; ++i) rows.push_back(run.first_row + i);
  }
  for (auto _ : state) {
    xtopk::Column out;
    size_t pos = 0;
    benchmark::DoNotOptimize(xtopk::DecodeColumn(buf, &pos, &rows, &out).ok());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DecodeDelta);

void BM_DecodeRunLength(benchmark::State& state) {
  xtopk::Column col = MakeColumn(4, 100000, 0.95);
  std::string buf;
  xtopk::EncodeColumn(col, xtopk::ColumnCodec::kRunLength, &buf);
  for (auto _ : state) {
    xtopk::Column out;
    size_t pos = 0;
    benchmark::DoNotOptimize(
        xtopk::DecodeColumn(buf, &pos, nullptr, &out).ok());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DecodeRunLength);

}  // namespace

int main(int argc, char** argv) {
  std::printf("=== Ablation A1: column compression ===\n\n");
  {
    // Index size under each codec, over the real bench corpus.
    xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
    xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
    // EncodedListBytes uses kAuto; re-measure per forced codec here.
    uint64_t delta_total = 0, rle_total = 0, gvb_total = 0, auto_total = 0;
    for (const std::string& term : jindex.terms()) {
      const xtopk::JDeweyList* list = jindex.GetList(term);
      for (const xtopk::Column& col : list->columns) {
        delta_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kDelta);
        rle_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kRunLength);
        gvb_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kGroupVarint);
        auto_total +=
            xtopk::EncodedColumnSize(col, xtopk::ColumnCodec::kAuto);
      }
    }
    std::printf("inverted-list columns, DBLP-like corpus:\n");
    std::printf("  forced delta       %s  (legacy read-only codec)\n",
                xtopk::HumanBytes(delta_total).c_str());
    std::printf("  forced run-length  %s\n",
                xtopk::HumanBytes(rle_total).c_str());
    std::printf("  forced gvb         %s  (~30%% over delta, buys the\n"
                "                     vector decode + block skipping)\n",
                xtopk::HumanBytes(gvb_total).c_str());
    std::printf("  auto (per column)  %s  <= min(run-length, gvb)\n\n",
                xtopk::HumanBytes(auto_total).c_str());
  }
  std::printf("=== Structure-aware compression: dict + DAG on/off ===\n\n");
  xtopk::obs::MetricsRegistry::Global().ResetAll();
  RunStructureAblation("repeated", /*repeated=*/true, /*groups=*/24,
                       /*copies=*/160);
  RunStructureAblation("uniform", /*repeated=*/false, /*groups=*/24,
                       /*copies=*/160);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
