# Empty dependencies file for bench_ablation_rangecheck.
# This may be replaced when dependencies are built.
