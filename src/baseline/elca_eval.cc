#include "baseline/elca_eval.h"

#include <algorithm>

namespace xtopk {

ElcaCandidateEvaluator::ElcaCandidateEvaluator(
    std::vector<const DeweyList*> lists, ScoringParams scoring)
    : lists_(std::move(lists)), scoring_(scoring) {}

bool ElcaCandidateEvaluator::ContainsAll(const DeweyId& u) const {
  for (const DeweyList* list : lists_) {
    auto [lo, hi] = list->SubtreeRange(u);
    if (lo == hi) return false;
  }
  return true;
}

std::vector<DeweyId> ElcaCandidateEvaluator::MatchedChildren(
    const DeweyId& u) {
  std::vector<DeweyId> children;
  // A matched child has an occurrence in every list, so enumerating child
  // prefixes from the first list is exhaustive.
  const DeweyList* first = lists_[0];
  auto [lo, hi] = first->SubtreeRange(u);
  ++stats_.range_probes;
  uint32_t cursor = lo;
  while (cursor < hi) {
    const DeweyId& occ = first->deweys[cursor];
    if (occ.length() == u.length()) {
      // The occurrence is u itself; it belongs to no child subtree.
      ++cursor;
      continue;
    }
    DeweyId child = occ.Prefix(u.length() + 1);
    ++stats_.children_checked;
    if (ContainsAll(child)) {
      stats_.range_probes += lists_.size();
      children.push_back(child);
    }
    // Jump past this child's occurrences in the first list.
    auto [clo, chi] = first->SubtreeRange(child);
    ++stats_.range_probes;
    cursor = std::max(chi, cursor + 1);
  }
  return children;
}

const ElcaCandidateEvaluator::NodeInfo& ElcaCandidateEvaluator::Evaluate(
    const DeweyId& u) {
  std::string key = EncodeDeweyKey(u);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  NodeInfo info;
  info.consumed.assign(lists_.size(), 0);
  std::vector<DeweyId> matched_children = MatchedChildren(u);
  // Recurse first (bounded by the matched-node chain depth).
  for (const DeweyId& child : matched_children) {
    const NodeInfo& child_info = Evaluate(child);
    for (size_t i = 0; i < lists_.size(); ++i) {
      info.consumed[i] += child_info.consumed[i];
    }
    if (child_info.is_elca) {
      info.holes.push_back(child);
    } else {
      info.holes.insert(info.holes.end(), child_info.holes.begin(),
                        child_info.holes.end());
    }
  }
  // u is an ELCA iff every keyword keeps a non-consumed occurrence.
  info.is_elca = true;
  for (size_t i = 0; i < lists_.size(); ++i) {
    ++stats_.range_probes;
    auto [lo, hi] = lists_[i]->SubtreeRange(u);
    if (hi - lo <= info.consumed[i]) {
      info.is_elca = false;
      break;
    }
  }
  if (info.is_elca) {
    // An ELCA consumes its whole subtree (what it exposes upward).
    for (size_t i = 0; i < lists_.size(); ++i) {
      ++stats_.range_probes;
      auto [lo, hi] = lists_[i]->SubtreeRange(u);
      info.consumed[i] = hi - lo;
    }
  }
  return memo_.emplace(std::move(key), std::move(info)).first->second;
}

bool ElcaCandidateEvaluator::IsElca(const DeweyId& u, double* score) {
  if (!ContainsAll(u)) return false;
  const NodeInfo& info = Evaluate(u);
  if (!info.is_elca) return false;
  if (score != nullptr) {
    // Surviving occurrences = u's ranges minus the subtree ranges of the
    // maximal ELCAs strictly below u.
    *score = 0.0;
    for (const DeweyList* list : lists_) {
      ++stats_.range_probes;
      auto [lo, hi] = list->SubtreeRange(u);
      std::vector<std::pair<uint32_t, uint32_t>> holes;
      for (const DeweyId& e : info.holes) {
        ++stats_.range_probes;
        holes.push_back(list->SubtreeRange(e));
      }
      std::sort(holes.begin(), holes.end());
      double best = 0.0;
      size_t hole = 0;
      for (uint32_t row = lo; row < hi; ++row) {
        while (hole < holes.size() && row >= holes[hole].second) ++hole;
        if (hole < holes.size() && row >= holes[hole].first) {
          row = holes[hole].second - 1;  // skip the consumed range
          continue;
        }
        ++stats_.rows_scanned;
        double damped = DampedScore(
            scoring_, list->scores[row],
            static_cast<uint32_t>(list->deweys[row].length()),
            static_cast<uint32_t>(u.length()));
        best = std::max(best, damped);
      }
      *score += best;
    }
  }
  return true;
}

bool ElcaCandidateEvaluator::IsSlca(const DeweyId& u, double* score) {
  if (!ContainsAll(u)) return false;
  if (!MatchedChildren(u).empty()) return false;
  if (score != nullptr) {
    *score = 0.0;
    for (const DeweyList* list : lists_) {
      ++stats_.range_probes;
      auto [lo, hi] = list->SubtreeRange(u);
      double best = 0.0;
      for (uint32_t row = lo; row < hi; ++row) {
        ++stats_.rows_scanned;
        double damped = DampedScore(
            scoring_, list->scores[row],
            static_cast<uint32_t>(list->deweys[row].length()),
            static_cast<uint32_t>(u.length()));
        best = std::max(best, damped);
      }
      *score += best;
    }
  }
  return true;
}

}  // namespace xtopk
