#ifndef XTOPK_XML_JDEWEY_BUILDER_H_
#define XTOPK_XML_JDEWEY_BUILDER_H_

#include <cstdint>
#include <string>

#include "util/status.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Builds and maintains JDewey encodings (paper §III-A).
///
/// Bulk assignment walks the tree level by level, handing each parent a
/// contiguous child range of size (children + gap); the `gap` extra numbers
/// are the "reserved spaces" the paper uses to absorb future insertions.
///
/// Dynamic insertion draws from the parent's reserved range; when the range
/// is exhausted, part of the tree is re-encoded to the end of its levels
/// (the paper's partial re-encoding: "update 1.1's number to be the largest
/// number in the second level, then corresponding numbers can be chosen for
/// its descendants"). Moving a subtree is only order-safe when its root's
/// parent owns the topmost child range of that level, so the builder climbs
/// to the lowest safely movable ancestor — in the best case the exhausted
/// range is itself topmost and is simply extended in place.
class JDeweyBuilder {
 public:
  /// Assigns numbers to every node of `tree`, reserving `gap` extra child
  /// slots per parent.
  static JDeweyEncoding Assign(const XmlTree& tree, uint32_t gap = 0);

  /// Assigns a number to `node`, which must be the most recently added node
  /// of `tree` (tree.AddChild result) and not yet encoded. Returns the
  /// number of nodes whose numbers changed (1 if the reserved range had
  /// room; the re-encoded subtree size otherwise) — callers use this to
  /// decide how much of an index to refresh.
  static size_t InsertAssign(const XmlTree& tree, NodeId node, uint32_t gap,
                             JDeweyEncoding* enc);

  /// As above, and reports which subtree moved: `*reencoded_root` is
  /// kInvalidNode when the insert fit an existing or in-place-extended
  /// reserved range (only `node` gained a number), or the root of the
  /// re-encoded subtree otherwise. Incremental indexes use this to tell
  /// "only the new node needs indexing" apart from "numbers under
  /// `*reencoded_root` are stale".
  static size_t InsertAssign(const XmlTree& tree, NodeId node, uint32_t gap,
                             JDeweyEncoding* enc, NodeId* reencoded_root);

  /// Assigns numbers to every not-yet-encoded node of `tree` — the nodes a
  /// loaded encoding snapshot (see SaveEncoding) does not cover — using the
  /// same reserved-range / partial-re-encode policy as InsertAssign, so a
  /// durable engine reopening mid-batch converges on an encoding consistent
  /// with its sealed segments. Nodes are processed in id order (a child's
  /// id is always greater than its parent's, so parents are encoded first);
  /// nodes a re-encode already renumbered are skipped. Returns the total
  /// number of nodes whose numbers were assigned or changed;
  /// `*reencoded_root` is the minimum-id root of any re-encoded subtree
  /// (kInvalidNode when every insert fit a reserved range) — callers
  /// compare it against their sealed watermark to decide whether sealed
  /// numbers went stale.
  static size_t ExtendAssign(const XmlTree& tree, uint32_t gap,
                             JDeweyEncoding* enc, NodeId* reencoded_root);

  /// Persists `enc` to `path` ("XTKJENC1", varint arrays, CRC32C tail) /
  /// loads it back, verifying magic + CRC. The durable engine snapshots
  /// the encoding at every seal: a fresh Assign on reopen would NOT
  /// reproduce the maintained numbering (reserved gaps and past re-encodes
  /// are history-dependent), and sealed segments bake those numbers in.
  static Status SaveEncoding(const JDeweyEncoding& enc,
                             const std::string& path);
  static StatusOr<JDeweyEncoding> LoadEncoding(const std::string& path);

 private:
  /// Shared insert body: assigns a number to `node`, whose array slots
  /// exist and hold 0. Exactly InsertAssign minus the growth prologue.
  static size_t AssignNewNode(const XmlTree& tree, NodeId node, uint32_t gap,
                              JDeweyEncoding* enc, NodeId* reencoded_root);

  /// Re-assigns fresh end-of-level numbers to the subtree rooted at `root`,
  /// reserving `gap` slots per parent. Returns the subtree size.
  static size_t ReencodeSubtree(const XmlTree& tree, NodeId root, uint32_t gap,
                                JDeweyEncoding* enc);
};

}  // namespace xtopk

#endif  // XTOPK_XML_JDEWEY_BUILDER_H_
