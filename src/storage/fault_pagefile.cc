#include "storage/fault_pagefile.h"

#include <algorithm>
#include <cstddef>

#include "obs/metrics.h"

namespace xtopk {
namespace {

/// Cheap deterministic mixer so each (seed, call_index) pair damages a
/// different payload position (splitmix64 finalizer).
uint64_t Mix(uint64_t seed, uint64_t call_index) {
  uint64_t x = seed * 0x9E3779B97F4A7C15ull + call_index + 1;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

FaultPageFile::FaultPageFile(FaultInjector* injector) : injector_(injector) {}

Status FaultPageFile::Open(const std::string& path, bool create) {
  Status s = PageFile::Open(path, create);
  if (!s.ok()) return s;
  FaultInjector::Decision d = injector_->OnCall("pagefile.open");
  if (d.kind == FaultKind::kTruncate && page_count() > 0) {
    // Lose between 1 and a quarter of the pages (at least the footer).
    uint32_t max_lost = page_count() / 4 + 1;
    uint32_t lost = 1 + static_cast<uint32_t>(
                            Mix(d.seed, d.call_index) % max_lost);
    readable_limit_ = page_count() > lost ? page_count() - lost : 0;
    XTOPK_COUNTER("storage.fault.truncations").Add(1);
  }
  return Status::Ok();
}

Status FaultPageFile::ReadPage(PageId id, std::string* out) {
  if (id >= readable_limit_) {
    return Status::IoError("injected fault: read past truncation point");
  }
  FaultInjector::Decision d = injector_->OnCall("pagefile.read");
  if (d.kind == FaultKind::kTransientIoError) {
    return Status::IoError("injected fault: transient read error");
  }
  Status s = PageFile::ReadPage(id, out);
  if (!s.ok()) return s;
  uint64_t mixed = Mix(d.seed, d.call_index);
  switch (d.kind) {
    case FaultKind::kBitFlip: {
      size_t bit = mixed % (out->size() * 8);
      (*out)[bit / 8] = static_cast<char>(
          static_cast<uint8_t>((*out)[bit / 8]) ^ (1u << (bit % 8)));
      break;
    }
    case FaultKind::kShortRead: {
      // The tail the short read never delivered reads back as zeros.
      size_t kept = mixed % out->size();
      std::fill(out->begin() + static_cast<ptrdiff_t>(kept), out->end(), '\0');
      break;
    }
    default:
      break;
  }
  return Status::Ok();
}

std::unique_ptr<PageFile> MakeFaultAwarePageFile() {
  if (FaultInjector::Global().active()) {
    return std::make_unique<FaultPageFile>();
  }
  return std::make_unique<PageFile>();
}

}  // namespace xtopk
