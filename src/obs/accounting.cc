#include "obs/accounting.h"

#include <time.h>

#include <cstdio>

namespace xtopk {
namespace obs {

namespace internal {
thread_local ResourceAccounting* tls_accounting = nullptr;
}  // namespace internal

double ThreadCpuMicros() {
#ifdef CLOCK_THREAD_CPUTIME_ID
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) / 1e3;
#else
  return 0.0;
#endif
}

void ResourceAccounting::AppendJson(std::string* out) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"pages_read\":%llu,\"bytes_decoded\":%llu,"
                "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                "\"rows_joined\":%llu,\"wall_us\":%.3f,\"cpu_us\":%.3f,",
                static_cast<unsigned long long>(pages_read),
                static_cast<unsigned long long>(bytes_decoded),
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                static_cast<unsigned long long>(rows_joined), wall_us, cpu_us);
  *out += buf;
  *out += "\"planner_mode\":\"";
  // planner_mode values are fixed identifiers; no escaping needed.
  *out += planner_mode;
  *out += "\"}";
}

}  // namespace obs
}  // namespace xtopk
