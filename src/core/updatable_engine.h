#ifndef XTOPK_CORE_UPDATABLE_ENGINE_H_
#define XTOPK_CORE_UPDATABLE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "index/segment.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// A genuinely incremental engine over a mutable document. Node insertions
/// maintain the JDewey encoding in place (§III-A: reserved gaps, partial
/// re-encoding), and the inverted lists are segmented LSM-style
/// (SegmentedIndex): nodes below a watermark live in immutable sealed
/// segments, nodes at or above it in a small memtable segment that is
/// rebuilt lazily before a query. An append-only workload therefore NEVER
/// rebuilds the full index — only the memtable tail — and `rebuilds()`
/// stays 0.
///
/// A full rebuild happens only when sealed data goes stale:
///  - a reserved-range overflow re-encodes a subtree rooted BELOW the
///    watermark (its sealed JDewey numbers are now wrong), or
///  - text is appended to a node below the watermark (its sealed term
///    rows are now wrong).
/// Both are detected per mutation and deferred to the next query.
class UpdatableEngine {
 public:
  explicit UpdatableEngine(XmlTree initial, EngineOptions options = {});

  /// Adds an element under `parent`, with optional direct text. Returns
  /// the new node. O(1) amortized encoding maintenance; the new node goes
  /// to the memtable.
  NodeId AddElement(NodeId parent, const std::string& tag,
                    const std::string& text = "");

  /// Appends text to an existing element. Appending an empty string is a
  /// no-op (nothing to index — the index must NOT go dirty). Text on a
  /// memtable node only dirties the memtable; text on a sealed node
  /// forces a full rebuild at the next query.
  void AppendText(NodeId node, const std::string& text);

  /// Grafts a copy of `doc` under the root as one <doc name=...> wrapper
  /// subtree (the MultiDocCorpus shape), maintaining the encoding node by
  /// node. Returns the wrapper node. The whole document lands in the
  /// memtable; SealMemtable turns accumulated documents into an immutable
  /// segment.
  NodeId AddDocument(const std::string& name, const XmlTree& doc);

  /// Queries (refresh the memtable / rebuild first if needed). `deadline`
  /// bounds the query's time budget (default unbounded); on expiry the
  /// hits hold the proven partial answer and last_status() reports
  /// kDeadlineExceeded.
  std::vector<QueryHit> Search(const std::vector<std::string>& keywords,
                               Semantics semantics = Semantics::kElca,
                               DeadlineToken deadline = {});
  std::vector<QueryHit> SearchTopK(const std::vector<std::string>& keywords,
                                   size_t k,
                                   Semantics semantics = Semantics::kElca,
                                   DeadlineToken deadline = {});

  /// Seals the current memtable to `path` as an immutable on-disk segment
  /// (+ ".manifest") and advances the watermark past it. Queries before
  /// and after answer identically. Fails on an empty memtable.
  Status SealMemtable(const std::string& path);

  /// Merges every sealed segment into one at `path` (SegmentedIndex::
  /// Compact). The memtable is untouched.
  Status Compact(const std::string& path);

  const XmlTree& tree() const { return tree_; }

  /// Numbers changed by encoding maintenance since construction (1 per
  /// plain insert; subtree size when a reserved range forced a partial
  /// re-encode).
  uint64_t encoding_updates() const { return encoding_updates_; }
  /// FULL index rebuilds (sealed data went stale). 0 on append-only
  /// workloads — the point of the segmented design.
  uint64_t rebuilds() const { return rebuilds_; }
  /// Lazy memtable (tail segment) rebuilds; not counted as rebuilds.
  uint64_t memtable_refreshes() const { return memtable_refreshes_; }
  bool dirty() const { return memtable_dirty_ || needs_full_rebuild_; }

  /// Sealed segments currently serving queries.
  size_t segment_count() const { return segments_.sealed_count(); }
  /// Documents (AddDocument) accumulated in the memtable since the last
  /// seal / rebuild.
  size_t memtable_docs() const { return memtable_docs_; }
  /// Nodes below this id are covered by sealed segments.
  NodeId watermark() const { return watermark_; }

  /// Invariant check (tests): the maintained encoding still satisfies both
  /// JDewey requirements.
  Status ValidateEncoding() const { return encoding_.Validate(tree_); }

  /// The join-plan cache (tests assert invalidation-on-seal through it).
  PlanCache& plan_cache() { return plan_cache_; }

  /// Resource bill of the most recent Search/SearchTopK (the Search APIs
  /// return bare hit vectors, so the accounting rides on the side).
  const obs::ResourceAccounting& last_accounting() const {
    return last_accounting_;
  }

  /// Status of the most recent Search/SearchTopK (kDeadlineExceeded when
  /// its deadline expired mid-query; rides on the side like
  /// last_accounting()).
  const Status& last_status() const { return last_status_; }

  /// The segmented index's version after folding in any pending mutations
  /// (EnsureFresh runs first, so an ingest that merely dirtied the
  /// memtable still bumps the number). Result caches key on this: a seal,
  /// compact, or ingest moves the watermark and silently invalidates.
  uint64_t plan_watermark();

  /// Same analyzer as indexing (multi-token inputs expand, duplicates
  /// drop). Public for cache-key normalization, like Engine::Normalize.
  std::vector<std::string> Normalize(
      const std::vector<std::string>& keywords) const;

 private:
  void EnsureFresh();
  void FullRebuild();
  void RefreshMemtable();
  /// Seals nodes [watermark_, node_count) as one segment; `disk_path`
  /// empty seals in memory.
  Status Seal(const std::string& disk_path);
  std::vector<QueryHit> Materialize(
      const std::vector<SearchResult>& results) const;
  /// Shared query epilogue: finalize the accounting, fold it into the
  /// process metrics (cumulative + windowed), and capture to the slow log
  /// when the thresholds say so.
  void FinishQuery(const std::vector<std::string>& normalized, size_t k,
                   Semantics semantics, double wall_us, double cpu_us,
                   const std::vector<QueryHit>& hits,
                   obs::ResourceAccounting* accounting);

  XmlTree tree_;
  EngineOptions options_;
  JDeweyEncoding encoding_;
  SegmentedIndex segments_;
  /// Join-plan cache over the segmented index. Entries carry the index
  /// version as their watermark, so a seal / compact / ingest silently
  /// invalidates them — no explicit hook needed.
  PlanCache plan_cache_;
  std::unique_ptr<JDeweyIndex> memtable_;
  NodeId watermark_ = 0;
  bool memtable_dirty_ = false;
  bool needs_full_rebuild_ = false;
  uint64_t encoding_updates_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t memtable_refreshes_ = 0;
  size_t memtable_docs_ = 0;
  obs::ResourceAccounting last_accounting_;
  Status last_status_ = Status::Ok();
};

}  // namespace xtopk

#endif  // XTOPK_CORE_UPDATABLE_ENGINE_H_
