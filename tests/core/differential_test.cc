// Differential correctness harness: on seeded random corpora and
// workloads, every execution configuration of the join-based engine —
// in-memory, disk-resident across codecs (legacy delta vs group-varint),
// checksummed and legacy segment formats, skip-decode on/off, galloping
// joins on/off — must produce exactly the node sets and scores of the
// independent baselines (the stack-based DIL algorithm and the
// Indexed-Lookup eager algorithm), and top-K must equal the sorted prefix
// of the complete result. A disagreement anywhere pins the failing seed.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baseline/indexed_lookup.h"
#include "baseline/stack_search.h"
#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/disk_index.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::CorpusSpec;
using testing::MakeCorpusSpec;
using testing::MakeCorpusTree;
using testing::MakeRandomWorkload;
using testing::WorkloadQuery;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void ExpectSameResults(const std::vector<SearchResult>& got_in,
                       const std::vector<SearchResult>& want_in,
                       const std::string& label) {
  std::vector<SearchResult> got = got_in, want = want_in;
  SortByNode(&got);
  SortByNode(&want);
  std::set<NodeId> got_nodes, want_nodes;
  for (const auto& r : got) got_nodes.insert(r.node);
  for (const auto& r : want) want_nodes.insert(r.node);
  ASSERT_EQ(got_nodes, want_nodes) << label;
  ASSERT_EQ(got.size(), want.size()) << label << " (duplicate results)";
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i].score, want[i].score, 1e-6)
        << label << " node " << got[i].node;
  }
}

/// Top-K must rank like the sorted complete result: same size, the same
/// score at every rank, and every returned node present in the complete
/// set with a matching score (ties may order differently only among
/// exactly-equal scores, which the node-presence check still covers).
void ExpectTopKMatchesComplete(const std::vector<SearchResult>& topk,
                               std::vector<SearchResult> complete, size_t k,
                               const std::string& label) {
  SortByScoreDesc(&complete);
  size_t want_size = std::min(k, complete.size());
  ASSERT_EQ(topk.size(), want_size) << label;
  for (size_t i = 0; i < topk.size(); ++i) {
    ASSERT_NEAR(topk[i].score, complete[i].score, 1e-6)
        << label << " rank " << i;
    bool found = false;
    for (const auto& r : complete) {
      if (r.node == topk[i].node) {
        ASSERT_NEAR(topk[i].score, r.score, 1e-6) << label;
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << label << " node " << topk[i].node
                       << " not in complete result";
  }
}

/// One disk configuration under test.
struct DiskConfig {
  ColumnCodec codec;
  bool checksums;
  bool skip;
  const char* name;
};

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, AllEnginesAgreeOnSeededCorpus) {
  const uint64_t seed = GetParam();
  CorpusSpec spec = MakeCorpusSpec(seed);
  XmlTree tree = MakeCorpusTree(spec);
  std::vector<WorkloadQuery> workload = MakeRandomWorkload(spec, 6);

  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  DeweyIndex dindex = builder.BuildDeweyIndex();

  // Disk segments: the current group-varint/auto checksummed format, the
  // legacy delta codec in both the checksummed and pre-checksum (v1)
  // container, each served with skip-decode on and off.
  const DiskConfig kConfigs[] = {
      {ColumnCodec::kAuto, true, true, "auto_v2_skip"},
      {ColumnCodec::kAuto, true, false, "auto_v2_noskip"},
      {ColumnCodec::kDelta, true, true, "delta_v2_skip"},
      {ColumnCodec::kDelta, false, false, "delta_v1_noskip"},
      {ColumnCodec::kAuto, false, true, "auto_v1_skip"},
  };
  std::vector<std::shared_ptr<DiskIndexEnv>> envs;
  std::vector<std::string> paths;
  for (const DiskConfig& config : kConfigs) {
    std::string path = TempPath("differential_" + std::to_string(seed) + "_" +
                                config.name);
    ASSERT_TRUE(DiskIndexWriter::Write(jindex, /*include_scores=*/true, path,
                                       config.codec, config.checksums)
                    .ok());
    DiskIndexOptions options;
    options.enable_skip = config.skip;
    auto env = DiskIndexEnv::Open(path, options);
    ASSERT_TRUE(env.ok()) << config.name << ": " << env.status().ToString();
    EXPECT_EQ((*env)->checksums_verified(), config.checksums) << config.name;
    envs.push_back(*env);
    paths.push_back(std::move(path));
  }

  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const WorkloadQuery& query = workload[qi];
    std::string label = "seed=" + std::to_string(seed) +
                        " query=" + std::to_string(qi) +
                        (query.semantics == Semantics::kElca ? " ELCA"
                                                             : " SLCA");

    // Oracle: the stack-based DIL baseline, cross-checked against the
    // eager Indexed-Lookup baseline (independent implementations).
    std::vector<SearchResult> want;
    {
      StackSearchOptions options;
      options.semantics = query.semantics;
      StackSearch search(tree, dindex, options);
      want = search.Search(query.keywords);
    }
    {
      IndexedLookupOptions options;
      options.semantics = query.semantics;
      options.compute_scores = true;
      IndexedLookupSearch search(tree, dindex, options);
      ExpectSameResults(search.Search(query.keywords), want,
                        label + " indexed-lookup");
    }

    // Join-based in memory, galloping enabled (dynamic) and disabled
    // (forced linear merges).
    for (JoinPolicy policy : {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
      JoinSearchOptions options;
      options.semantics = query.semantics;
      options.planner.policy = policy;
      JoinSearch search(jindex, options);
      ExpectSameResults(search.Search(query.keywords), want,
                        label + " join policy=" +
                            std::to_string(static_cast<int>(policy)));
    }

    // Disk-resident: every codec/container/skip configuration, each with
    // galloping on and off; plus top-K against the complete prefix.
    for (size_t c = 0; c < envs.size(); ++c) {
      for (JoinPolicy policy :
           {JoinPolicy::kDynamic, JoinPolicy::kForceMerge}) {
        auto session = envs[c]->NewSession();
        JoinSearchOptions options;
        options.semantics = query.semantics;
        options.planner.policy = policy;
        auto got = session->SearchComplete(query.keywords, options);
        ASSERT_TRUE(got.ok()) << label << " " << kConfigs[c].name << ": "
                              << got.status().ToString();
        ExpectSameResults(*got, want,
                          label + " disk " + kConfigs[c].name + " policy=" +
                              std::to_string(static_cast<int>(policy)));
      }
      {
        auto session = envs[c]->NewSession();
        TopKSearchOptions options;
        options.semantics = query.semantics;
        options.k = query.k;
        auto got = session->SearchTopK(query.keywords, options);
        ASSERT_TRUE(got.ok()) << label << " " << kConfigs[c].name << ": "
                              << got.status().ToString();
        ExpectTopKMatchesComplete(*got, want, query.k,
                                  label + " topk " + kConfigs[c].name);
      }
    }
  }

  envs.clear();
  for (const std::string& path : paths) std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(SeededCorpora, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 56),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace xtopk
