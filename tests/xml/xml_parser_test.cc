#include "xml/xml_parser.h"

#include <gtest/gtest.h>

namespace xtopk {
namespace {

TEST(XmlParserTest, MinimalDocument) {
  auto result = XmlParser::Parse("<root/>");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->node_count(), 1u);
  EXPECT_EQ(result->TagName(result->root()), "root");
}

TEST(XmlParserTest, NestedElementsAndText) {
  auto result = XmlParser::Parse(
      "<db><conf><paper>XML keyword search</paper></conf></db>");
  ASSERT_TRUE(result.ok());
  const XmlTree& tree = *result;
  EXPECT_EQ(tree.node_count(), 3u);
  NodeId paper = 2;
  EXPECT_EQ(tree.TagName(paper), "paper");
  EXPECT_EQ(tree.text(paper), "XML keyword search");
  EXPECT_EQ(tree.level(paper), 3u);
}

TEST(XmlParserTest, AttributesBecomeTextToo) {
  auto result = XmlParser::Parse(R"(<a name="dblp" year='2010'/>)");
  ASSERT_TRUE(result.ok());
  auto attrs = result->AttributesOf(result->root());
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0]->name, "name");
  EXPECT_EQ(attrs[0]->value, "dblp");
  EXPECT_EQ(attrs[1]->value, "2010");
  // Attribute values participate in keyword containment.
  EXPECT_EQ(result->text(result->root()), "dblp 2010");
}

TEST(XmlParserTest, EntitiesDecoded) {
  auto result = XmlParser::Parse("<a>&lt;tag&gt; &amp; &quot;x&quot; &#65;&#x42;</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text(0), "<tag> & \"x\" AB");
}

TEST(XmlParserTest, CdataPreserved) {
  auto result = XmlParser::Parse("<a><![CDATA[raw <not> parsed & kept]]></a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text(0), "raw <not> parsed & kept");
}

TEST(XmlParserTest, CommentsAndPisSkipped) {
  auto result = XmlParser::Parse(
      "<?xml version=\"1.0\"?><!-- head --><a><!-- mid --><b/>"
      "<?pi data?></a><!-- tail -->");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->node_count(), 2u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  auto result = XmlParser::Parse(
      "<!DOCTYPE dblp SYSTEM \"dblp.dtd\" [<!ENTITY x \"y\">]><dblp/>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TagName(0), "dblp");
}

TEST(XmlParserTest, MixedContentTextAccumulates) {
  auto result = XmlParser::Parse("<a>one<b/>two<c/>three</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text(0), "one two three");
  EXPECT_EQ(result->node_count(), 3u);
}

TEST(XmlParserTest, WhitespaceOnlyTextDropped) {
  auto result = XmlParser::Parse("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->text(0), "");
}

TEST(XmlParserTest, MismatchedTagIsError) {
  auto result = XmlParser::Parse("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("mismatched"), std::string::npos);
}

TEST(XmlParserTest, UnterminatedElementIsError) {
  EXPECT_FALSE(XmlParser::Parse("<a><b>").ok());
}

TEST(XmlParserTest, ContentAfterRootIsError) {
  EXPECT_FALSE(XmlParser::Parse("<a/><b/>").ok());
}

TEST(XmlParserTest, UnknownEntityIsError) {
  EXPECT_FALSE(XmlParser::Parse("<a>&bogus;</a>").ok());
}

TEST(XmlParserTest, ErrorCarriesLineNumber) {
  auto result = XmlParser::Parse("<a>\n\n\n<b></c>\n</a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 4"), std::string::npos)
      << result.status().ToString();
}

TEST(XmlParserTest, RoundTripThroughToXmlString) {
  const char* xml =
      "<db><conf name=\"icde\"><paper><title>top-k search</title>"
      "</paper></conf></db>";
  auto first = XmlParser::Parse(xml);
  ASSERT_TRUE(first.ok());
  std::string serialized = first->ToXmlString(first->root());
  auto second = XmlParser::Parse(serialized);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->node_count(), second->node_count());
  for (NodeId id = 0; id < first->node_count(); ++id) {
    EXPECT_EQ(first->TagName(id), second->TagName(id));
    EXPECT_EQ(first->level(id), second->level(id));
  }
}

TEST(XmlParserTest, ParseFileMissingIsIoError) {
  auto result = ParseXmlFile("/nonexistent/path/doc.xml");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace xtopk
