file(REMOVE_RECURSE
  "CMakeFiles/xml_jdewey_update_test.dir/xml/jdewey_update_test.cc.o"
  "CMakeFiles/xml_jdewey_update_test.dir/xml/jdewey_update_test.cc.o.d"
  "xml_jdewey_update_test"
  "xml_jdewey_update_test.pdb"
  "xml_jdewey_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_jdewey_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
