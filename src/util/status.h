#ifndef XTOPK_UTIL_STATUS_H_
#define XTOPK_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace xtopk {

/// Error categories used across the library. The library does not throw
/// exceptions across public API boundaries; fallible operations return a
/// Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
};

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Callers must check ok()
/// before dereferencing.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl::StatusOr.
      : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT: implicit by design.
      : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace xtopk

#endif  // XTOPK_UTIL_STATUS_H_
