file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_io.dir/bench_ablation_io.cc.o"
  "CMakeFiles/bench_ablation_io.dir/bench_ablation_io.cc.o.d"
  "bench_ablation_io"
  "bench_ablation_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
