# Empty dependencies file for index_parallel_build_test.
# This may be replaced when dependencies are built.
