file(REMOVE_RECURSE
  "CMakeFiles/xml_tokenizer_test.dir/xml/tokenizer_test.cc.o"
  "CMakeFiles/xml_tokenizer_test.dir/xml/tokenizer_test.cc.o.d"
  "xml_tokenizer_test"
  "xml_tokenizer_test.pdb"
  "xml_tokenizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
