# Empty dependencies file for core_updatable_engine_test.
# This may be replaced when dependencies are built.
