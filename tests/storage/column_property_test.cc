// Randomized property tests for the column structure: binary-search
// accessors against linear scans, and the sparse index window always
// bracketing the probe target.

#include <gtest/gtest.h>

#include "storage/column.h"
#include "storage/sparse_index.h"
#include "util/rng.h"

namespace xtopk {
namespace {

struct ColumnCase {
  uint64_t seed;
  uint32_t values;
  double keep_prob;
  double dup_prob;
};

class ColumnPropertyTest : public ::testing::TestWithParam<ColumnCase> {};

TEST_P(ColumnPropertyTest, AccessorsMatchLinearScan) {
  const ColumnCase& c = GetParam();
  Rng rng(c.seed);
  Column col;
  uint32_t row = 0;
  std::vector<std::pair<uint32_t, uint32_t>> rows;  // (row, value)
  for (uint32_t v = 1; v <= c.values; ++v) {
    if (!rng.NextBernoulli(c.keep_prob)) continue;
    uint32_t count = 1;
    while (rng.NextBernoulli(c.dup_prob)) ++count;
    for (uint32_t i = 0; i < count; ++i) {
      col.Append(row, v);
      rows.emplace_back(row, v);
      ++row;
    }
    if (rng.NextBernoulli(0.2)) row += 1 + rng.NextBounded(4);  // gaps
  }

  // FindRow agrees with the materialized rows (including gap rows).
  uint32_t max_row = row + 2;
  size_t cursor = 0;
  for (uint32_t r = 0; r < max_row; ++r) {
    while (cursor < rows.size() && rows[cursor].first < r) ++cursor;
    const ::xtopk::Run* run = col.FindRow(r);
    if (cursor < rows.size() && rows[cursor].first == r) {
      ASSERT_NE(run, nullptr) << r;
      EXPECT_EQ(run->value, rows[cursor].second);
    } else {
      EXPECT_EQ(run, nullptr) << r;
    }
  }

  // FindValue agrees with a linear scan over runs.
  for (uint32_t v = 0; v <= c.values + 1; ++v) {
    const ::xtopk::Run* expected = nullptr;
    for (const ::xtopk::Run& run : col.runs()) {
      if (run.value == v) expected = &run;
    }
    EXPECT_EQ(col.FindValue(v), expected) << v;
  }

  // Sparse-index windows always bracket the true run.
  for (uint32_t rate : {1u, 4u, 16u, 64u}) {
    SparseIndex sparse = SparseIndex::Build(col, rate);
    for (uint32_t v = 0; v <= c.values + 1; v += 3) {
      auto window = sparse.Probe(v);
      size_t truth = col.LowerBoundValue(v);
      if (truth < col.run_count() && col.runs()[truth].value == v) {
        ASSERT_GE(truth, window.lo) << "rate " << rate << " v " << v;
        ASSERT_LT(truth, window.hi) << "rate " << rate << " v " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, ColumnPropertyTest,
    ::testing::Values(ColumnCase{1, 50, 0.9, 0.3},
                      ColumnCase{2, 200, 0.5, 0.7},
                      ColumnCase{3, 500, 0.2, 0.0},
                      ColumnCase{4, 1000, 0.8, 0.9},
                      ColumnCase{5, 100, 1.0, 0.5},
                      ColumnCase{6, 2000, 0.05, 0.2}),
    [](const ::testing::TestParamInfo<ColumnCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace xtopk
