#ifndef XTOPK_INDEX_SEGMENT_H_
#define XTOPK_INDEX_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "index/disk_index.h"
#include "index/jdewey_index.h"
#include "index/reader.h"
#include "index/segment_view.h"
#include "util/status.h"

namespace xtopk {

/// A TermSource over N immutable sealed segments plus one memtable — the
/// LSM shape incremental indexing wants: inserts only ever touch the
/// small in-memory tail, sealed segments are written once and never
/// rewritten (until a compaction folds them into one).
///
/// Since the segment-lifecycle refactor (DESIGN.md §17) this class is a
/// thread-safe PUBLISHER of immutable SegmentSetVersion snapshots rather
/// than a mutable container: every mutation (AddMemorySegment /
/// AddDiskSegment / SetMemtable / SetCorpusNodes / Compact / Clear /
/// PublishCompaction) builds a fresh version and swaps it in atomically.
/// Queries call Pin() and read that snapshot for their whole lifetime —
/// epoch-style reclamation: a superseded segment's files are deleted when
/// the last version referencing it drops. The merge and normalization
/// semantics (bit-identical to a monolithic build) live in
/// SegmentSetVersion; see segment_view.h.
///
/// The TermSource methods read the current head version, so a bare
/// SegmentedIndex still works as a query backend when no concurrent
/// publisher exists (the single-writer contract of the pre-refactor
/// class); concurrent readers must hold their own Pin().
class SegmentedIndex : public TermSource {
 public:
  SegmentedIndex();

  /// The current immutable snapshot. Queries keep the returned pointer
  /// alive for their whole lifetime; publishes never disturb it.
  std::shared_ptr<const SegmentSetVersion> Pin() const;

  /// Seals `segment` (raw-tf scores, built by BuildSegmentIndex) as an
  /// in-memory immutable segment. `covered_nodes` is bookkeeping for the
  /// manifest written if this segment is later compacted to disk.
  void AddMemorySegment(JDeweyIndex segment, uint64_t covered_nodes = 0);

  /// Opens a sealed on-disk segment: `path` must hold a DiskIndexWriter
  /// page file with scores, `path + ".manifest"` its SegmentManifest.
  /// `id` is the manifest-log segment id (0 = not log-managed).
  Status AddDiskSegment(const std::string& path,
                        DiskIndexOptions options = {}, uint64_t id = 0);

  /// Attaches (or detaches, with nullptr) the memtable: a raw-tf segment
  /// index covering the not-yet-sealed nodes. The raw-pointer overload
  /// borrows (the caller keeps it alive across every version that may
  /// still reference it); the shared_ptr overload lets pinned versions
  /// keep a replaced memtable alive on their own.
  void SetMemtable(const JDeweyIndex* memtable);
  void SetMemtable(std::shared_ptr<const JDeweyIndex> memtable);

  /// Total nodes of the shared tree (the N of the idf term). Score
  /// normalization needs it; the owner refreshes it as the tree grows.
  /// No-op (no new version) when the value is unchanged, so per-query
  /// refreshes do not invalidate plan caches.
  void SetCorpusNodes(uint64_t corpus_nodes);

  /// Merges ALL sealed segments (memory and disk) into one on-disk
  /// segment at `path` (+ ".manifest") and replaces them with it. The
  /// memtable is untouched; query results are unchanged. Superseded disk
  /// segments' files are deleted once the last pinned version drops them
  /// (segments at `path` itself are kept — they ARE the output). No-op
  /// when nothing is sealed.
  Status Compact(const std::string& path, DiskIndexOptions options = {});

  /// Atomically replaces `inputs` (matched by identity against the
  /// current head) with `output` — the background compactor's publish
  /// step. Returns false without publishing when any input is no longer
  /// in the head (a Clear/rebuild won the race); the caller then discards
  /// `output`. Does NOT mark the inputs superseded — the caller owns file
  /// GC (it must log drops first for crash safety).
  bool PublishCompaction(
      const std::vector<std::shared_ptr<const SealedSegment>>& inputs,
      std::shared_ptr<const SealedSegment> output);

  /// Drops every sealed segment and the memtable (full-rebuild path).
  /// Files are not deleted: pre-refactor behavior, and the durable engine
  /// logs drops itself before superseding.
  void Clear();

  size_t sealed_count() const { return Pin()->sealed().size(); }
  bool has_memtable() const { return Pin()->memtable() != nullptr; }
  uint64_t corpus_nodes() const { return Pin()->corpus_nodes(); }
  uint64_t version() const { return Pin()->version(); }

  // TermSource, reading the current head. Frequency/MaxLength aggregate
  // manifests (no data I/O); Resolve merges + normalizes (up_to_level and
  // bounds are ignored — a merged list is always full, which the contract
  // allows as a superset). Resolved pointers stay valid until the version
  // that produced them dies, i.e. at least until the next mutation.
  uint32_t Frequency(const std::string& term) const override;
  uint32_t MaxLength(const std::string& term) const override;
  StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t up_to_level, bool need_scores,
      const std::vector<ValueBounds>* level_bounds) override;
  NodeId NodeAt(uint32_t level, uint32_t value) const override;
  uint32_t max_level() const override;
  /// Corpus-global planner statistics for `term`, aggregated from the
  /// segment manifests + memtable alone — no posting scan (details in
  /// segment_view.h). The pointer stays valid as long as the version.
  const TermStats* Stats(const std::string& term) const override;
  /// Cached plans key on the head version: any seal / ingest / compact
  /// publish bumps it, so stale plans never survive an index mutation.
  uint64_t PlanWatermark() const override { return Pin()->version(); }

 private:
  /// Installs a new head built from `sealed` + `memtable` +
  /// `corpus_nodes` and refreshes the index.segments gauge. Caller holds
  /// mu_.
  void PublishLocked(
      std::vector<std::shared_ptr<const SealedSegment>> sealed,
      std::shared_ptr<const JDeweyIndex> memtable, uint64_t corpus_nodes);

  mutable std::mutex mu_;
  std::shared_ptr<const SegmentSetVersion> head_;
  uint64_t next_version_ = 1;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_SEGMENT_H_
