#include "core/updatable_engine.h"

#include "obs/metrics.h"
#include "xml/jdewey_builder.h"

namespace xtopk {

UpdatableEngine::UpdatableEngine(XmlTree initial, EngineOptions options)
    : tree_(std::move(initial)), options_(options) {
  encoding_ = JDeweyBuilder::Assign(tree_, options_.index.jdewey_gap);
  engine_ = std::make_unique<Engine>(tree_, options_);
}

NodeId UpdatableEngine::AddElement(NodeId parent, const std::string& tag,
                                   const std::string& text) {
  NodeId node = tree_.AddChild(parent, tag);
  if (!text.empty()) tree_.AppendText(node, text);
  uint64_t updates = JDeweyBuilder::InsertAssign(
      tree_, node, options_.index.jdewey_gap, &encoding_);
  encoding_updates_ += updates;
  XTOPK_COUNTER("engine.encoding_updates").Add(updates);
  dirty_ = true;
  return node;
}

void UpdatableEngine::AppendText(NodeId node, const std::string& text) {
  tree_.AppendText(node, text);
  dirty_ = true;
}

void UpdatableEngine::EnsureFresh() {
  if (!dirty_) return;
  // The maintained encoding proves insertions are cheap (§III-A); the
  // rebuilt engine re-derives a fresh encoding for its lists — simplest
  // correct policy, amortized over query batches.
  engine_ = std::make_unique<Engine>(tree_, options_);
  dirty_ = false;
  ++rebuilds_;
  XTOPK_COUNTER("engine.rebuilds").Add(1);
}

std::vector<QueryHit> UpdatableEngine::Search(
    const std::vector<std::string>& keywords, Semantics semantics) {
  EnsureFresh();
  return engine_->Search(keywords, semantics);
}

std::vector<QueryHit> UpdatableEngine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k, Semantics semantics) {
  EnsureFresh();
  return engine_->SearchTopK(keywords, k, semantics);
}

}  // namespace xtopk
