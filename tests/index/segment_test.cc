#include "index/segment.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/join_search.h"
#include "index/index_builder.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"
#include "storage/segment_manifest.h"
#include "xml/jdewey_builder.h"
#include "xml/xml_parser.h"

namespace xtopk {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

constexpr char kXml[] =
    "<db>"
    "  <conf><paper><title>xml keyword search</title>"
    "    <author>ann</author></paper>"
    "  <paper><title>top k ranking for xml</title>"
    "    <author>bo</author></paper></conf>"
    "  <journal><article><title>xml databases</title>"
    "    <note>keyword ranking</note></article></journal>"
    "</db>";

/// Splits the tree's nodes round-robin into `parts` disjoint groups.
std::vector<std::vector<NodeId>> Partition(const XmlTree& tree, size_t parts) {
  std::vector<std::vector<NodeId>> groups(parts);
  for (NodeId id = 0; id < tree.node_count(); ++id) {
    groups[id % parts].push_back(id);
  }
  return groups;
}

void ExpectListsEqual(const JDeweyList& got, const JDeweyList& want,
                      const std::string& term) {
  ASSERT_EQ(got.num_rows(), want.num_rows()) << term;
  EXPECT_EQ(got.lengths, want.lengths) << term;
  EXPECT_EQ(got.max_length, want.max_length) << term;
  for (uint32_t r = 0; r < want.num_rows(); ++r) {
    EXPECT_EQ(got.scores[r], want.scores[r]) << term << " row " << r;
  }
  ASSERT_EQ(got.columns.size(), want.columns.size()) << term;
  for (size_t l = 0; l < want.columns.size(); ++l) {
    EXPECT_EQ(got.columns[l].runs(), want.columns[l].runs())
        << term << " level " << (l + 1);
  }
}

TEST(SegmentedIndexTest, MergedListsMatchMonolithicBuild) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  IndexBuildOptions options;
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, options.jdewey_gap);

  IndexBuilder builder(tree, options);
  JDeweyIndex monolithic = builder.BuildJDeweyIndex();

  SegmentedIndex segmented;
  segmented.SetCorpusNodes(tree.node_count());
  for (const auto& group : Partition(tree, 3)) {
    segmented.AddMemorySegment(BuildSegmentIndex(tree, enc, group, options),
                               group.size());
  }
  EXPECT_EQ(segmented.sealed_count(), 3u);

  for (const TermInfo& info : builder.terms()) {
    EXPECT_EQ(segmented.Frequency(info.term), info.frequency);
    const JDeweyList* want = monolithic.GetList(info.term);
    ASSERT_NE(want, nullptr);
    auto got = segmented.Resolve(info.term, UINT32_MAX, true, nullptr);
    ASSERT_TRUE(got.ok());
    ASSERT_NE(*got, nullptr);
    ExpectListsEqual(**got, *want, info.term);
    // Node backfill: every merged row resolves to the same node.
    for (uint32_t r = 0; r < want->num_rows(); ++r) {
      EXPECT_EQ((*got)->nodes[r], want->nodes[r]) << info.term;
    }
  }
  EXPECT_EQ(segmented.max_level(), monolithic.max_level());
  auto missing = segmented.Resolve("zebra", UINT32_MAX, true, nullptr);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(*missing, nullptr);
}

TEST(SegmentedIndexTest, MemtableParticipatesInMergeAndFrequencies) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  IndexBuildOptions options;
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, options.jdewey_gap);

  IndexBuilder builder(tree, options);
  JDeweyIndex monolithic = builder.BuildJDeweyIndex();

  // Last partition plays the memtable; the others are sealed.
  auto groups = Partition(tree, 3);
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(tree.node_count());
  segmented.AddMemorySegment(BuildSegmentIndex(tree, enc, groups[0], options),
                             groups[0].size());
  segmented.AddMemorySegment(BuildSegmentIndex(tree, enc, groups[1], options),
                             groups[1].size());
  JDeweyIndex memtable = BuildSegmentIndex(tree, enc, groups[2], options);
  segmented.SetMemtable(&memtable);

  for (const TermInfo& info : builder.terms()) {
    EXPECT_EQ(segmented.Frequency(info.term), info.frequency);
    auto got = segmented.Resolve(info.term, UINT32_MAX, true, nullptr);
    ASSERT_TRUE(got.ok());
    ExpectListsEqual(**got, *monolithic.GetList(info.term), info.term);
  }

  // The cursor-layer merge feeds the one JoinSearch implementation.
  JoinSearchOptions join_options;
  join_options.compute_scores = true;
  JoinSearch over_segments(&segmented, join_options);
  JoinSearch over_monolithic(monolithic, join_options);
  for (const auto& query : std::vector<std::vector<std::string>>{
           {"xml", "keyword"}, {"title", "ranking"}, {"xml", "ann"}}) {
    auto got = over_segments.Search(query);
    auto want = over_monolithic.Search(query);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].node, want[i].node);
      EXPECT_EQ(got[i].level, want[i].level);
      EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
    }
  }
}

TEST(SegmentedIndexTest, DiskSegmentsAndCompactionPreserveLists) {
  XmlTree tree = ParseXmlStringOrDie(kXml);
  IndexBuildOptions options;
  JDeweyEncoding enc = JDeweyBuilder::Assign(tree, options.jdewey_gap);
  IndexBuilder builder(tree, options);
  JDeweyIndex monolithic = builder.BuildJDeweyIndex();

  auto groups = Partition(tree, 2);
  std::vector<std::string> paths = {TempPath("segtest_a.seg"),
                                    TempPath("segtest_b.seg")};
  SegmentedIndex segmented;
  segmented.SetCorpusNodes(tree.node_count());
  for (size_t i = 0; i < groups.size(); ++i) {
    JDeweyIndex segment = BuildSegmentIndex(tree, enc, groups[i], options);
    ASSERT_TRUE(DiskIndexWriter::Write(segment, true, paths[i]).ok());
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = groups[i].size();
    ASSERT_TRUE(manifest.Save(paths[i] + ".manifest").ok());
    ASSERT_TRUE(segmented.AddDiskSegment(paths[i]).ok());
  }
  EXPECT_EQ(obs::MetricsRegistry::Global().GetGauge("index.segments").value(),
            2);

  for (const TermInfo& info : builder.terms()) {
    auto got = segmented.Resolve(info.term, UINT32_MAX, true, nullptr);
    ASSERT_TRUE(got.ok());
    ExpectListsEqual(**got, *monolithic.GetList(info.term), info.term);
  }

  std::string compacted = TempPath("segtest_compacted.seg");
  uint64_t compactions_before =
      obs::MetricsRegistry::Global().GetCounter("index.compactions").value();
  ASSERT_TRUE(segmented.Compact(compacted).ok());
  EXPECT_EQ(segmented.sealed_count(), 1u);
  EXPECT_EQ(
      obs::MetricsRegistry::Global().GetCounter("index.compactions").value(),
      compactions_before + 1);

  for (const TermInfo& info : builder.terms()) {
    EXPECT_EQ(segmented.Frequency(info.term), info.frequency);
    auto got = segmented.Resolve(info.term, UINT32_MAX, true, nullptr);
    ASSERT_TRUE(got.ok());
    ExpectListsEqual(**got, *monolithic.GetList(info.term), info.term);
  }

  for (const std::string& p : paths) {
    std::remove(p.c_str());
    std::remove((p + ".manifest").c_str());
  }
  std::remove(compacted.c_str());
  std::remove((compacted + ".manifest").c_str());
}

TEST(SegmentManifestTest, RoundTripAndCorruptionDetection) {
  SegmentManifest manifest;
  manifest.covered_nodes = 42;
  manifest.terms = {{"alpha", 3, 2}, {"beta", 7, 5}, {"xml", 100, 9}};
  std::string path = TempPath("manifest_roundtrip");
  ASSERT_TRUE(manifest.Save(path).ok());

  auto loaded = SegmentManifest::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->covered_nodes, 42u);
  ASSERT_EQ(loaded->terms.size(), 3u);
  EXPECT_EQ(loaded->terms[1].term, "beta");
  EXPECT_EQ(loaded->terms[1].rows, 7u);
  EXPECT_EQ(loaded->terms[1].max_tf, 5u);

  // Flip one byte in the middle: the checksum must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    char c;
    f.seekg(12);
    f.get(c);
    f.seekp(12);
    f.put(static_cast<char>(c ^ 0x40));
  }
  auto damaged = SegmentManifest::Load(path);
  EXPECT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace xtopk
