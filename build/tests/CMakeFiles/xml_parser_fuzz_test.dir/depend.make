# Empty dependencies file for xml_parser_fuzz_test.
# This may be replaced when dependencies are built.
