#ifndef XTOPK_CORE_SEARCH_RESULT_H_
#define XTOPK_CORE_SEARCH_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "xml/xml_tree.h"

namespace xtopk {

/// Which LCA-based semantic variant a search evaluates (paper §II-A).
enum class Semantics {
  kElca,  ///< Exclusive LCA (XRank).
  kSlca,  ///< Smallest LCA.
};

/// One keyword-search answer: a subtree root with its ranking score. Every
/// algorithm in the library (join-based, top-K, and all baselines) produces
/// this type, so tests can diff result sets across implementations.
struct SearchResult {
  NodeId node = kInvalidNode;
  uint32_t level = 0;   ///< 1-based depth of the node.
  double score = 0.0;   ///< 0 when score computation is disabled.

  bool operator==(const SearchResult& other) const {
    return node == other.node;
  }
};

/// Sorts by score descending, node ascending tie-break (deterministic).
inline void SortByScoreDesc(std::vector<SearchResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const SearchResult& a, const SearchResult& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node < b.node;
            });
}

/// Sorts by node id (document order) for set comparison.
inline void SortByNode(std::vector<SearchResult>* results) {
  std::sort(results->begin(), results->end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.node < b.node;
            });
}

}  // namespace xtopk

#endif  // XTOPK_CORE_SEARCH_RESULT_H_
