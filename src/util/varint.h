#ifndef XTOPK_UTIL_VARINT_H_
#define XTOPK_UTIL_VARINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace xtopk {

/// LEB128-style variable-length integer encoding, used by the column
/// serializer and the index persistence layer to keep on-disk index sizes
/// comparable to a compressed production format (Table I reproduces index
/// sizes, so byte-accurate encoding matters).
namespace varint {

/// Appends the varint encoding of `value` to `out`.
void PutU32(std::string* out, uint32_t value);
void PutU64(std::string* out, uint64_t value);

/// ZigZag-encodes a signed delta then varint-encodes it (deltas between
/// consecutive JDewey numbers are non-negative in sorted columns, but block
/// headers and score quantization use signed values).
void PutS64(std::string* out, int64_t value);

/// Decodes a varint starting at data[*pos]; advances *pos past it.
/// Returns Corruption if the buffer ends mid-varint or the value overflows.
Status GetU32(const std::string& data, size_t* pos, uint32_t* value);
Status GetU64(const std::string& data, size_t* pos, uint64_t* value);
Status GetS64(const std::string& data, size_t* pos, int64_t* value);

/// Number of bytes PutU64(value) would append.
size_t LengthU64(uint64_t value);

}  // namespace varint
}  // namespace xtopk

#endif  // XTOPK_UTIL_VARINT_H_
