#!/usr/bin/env python3
"""End-to-end smoke check of the xtopk_serve HTTP/JSON dialect.

Spawns the server on an ephemeral port, replays the checked-in query
script (tools/testdata/serve_queries.txt), and validates every JSON body
against tools/serve_schema.json. Also exercises the shared telemetry
surface on the serve port (/healthz, /metrics must report server.*
series after traffic).

Stdlib-only on purpose (the CI container has no jsonschema package); the
validator implements the same JSON Schema subset as
check_profile_schema.py.

Usage:
  check_serve_schema.py --serve ./build/tools/xtopk_serve \
      [--queries tools/testdata/serve_queries.txt] [-- extra server args]
"""

import json
import subprocess
import sys
import urllib.error
import urllib.request

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}

KNOWN_STATUSES = {
    "ok", "partial", "shed_overload", "bad_request", "internal_error",
    "shutting_down", "deadline_expired",
}


def validate(value, schema, root, path="$"):
    """Returns a list of error strings (empty = valid)."""
    errors = []
    if "$ref" in schema:
        ref = schema["$ref"]
        if not ref.startswith("#/definitions/"):
            return [f"{path}: unsupported $ref {ref!r}"]
        name = ref[len("#/definitions/"):]
        try:
            schema = root["definitions"][name]
        except KeyError:
            return [f"{path}: unresolved $ref {ref!r}"]

    expected = schema.get("type")
    if expected is not None:
        py_type = TYPES[expected]
        ok = isinstance(value, py_type)
        if expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            return [f"{path}: expected {expected}, got {type(value).__name__}"]

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors += validate(value[key], subschema, root,
                                   f"{path}.{key}")

    if isinstance(value, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, item in enumerate(value):
                errors += validate(item, items, root, f"{path}[{i}]")

    return errors


def fetch(port, target):
    """Returns (http_status, body_text)."""
    url = f"http://127.0.0.1:{port}{target}"
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")


def main(argv):
    tools_dir = __file__.rsplit("/", 1)[0]
    serve_bin = None
    queries_path = tools_dir + "/testdata/serve_queries.txt"
    extra_args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--serve":
            serve_bin = argv[i + 1]
            i += 2
        elif argv[i] == "--queries":
            queries_path = argv[i + 1]
            i += 2
        elif argv[i] == "--":
            extra_args = argv[i + 1:]
            break
        else:
            print(f"FAIL: unknown argument {argv[i]!r}")
            return 2
    if serve_bin is None:
        print("FAIL: --serve <binary> is required")
        return 2

    with open(tools_dir + "/serve_schema.json", encoding="utf-8") as f:
        schema = json.load(f)

    queries = []
    with open(queries_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            expected, target = line.split(None, 1)
            queries.append((int(expected), target))

    proc = subprocess.Popen([serve_bin, "--port", "0"] + extra_args,
                            stdin=subprocess.PIPE, stdout=subprocess.PIPE)
    failures = []
    try:
        line = proc.stdout.readline().decode("utf-8").strip()
        if not line.startswith("LISTENING "):
            print(f"FAIL: expected LISTENING line, got {line!r}")
            return 1
        port = int(line.split()[1])

        status, body = fetch(port, "/healthz")
        if status != 200 or "ok" not in body:
            failures.append(f"/healthz: status {status}, body {body!r}")

        checked = 0
        for expected, target in queries:
            status, body = fetch(port, target)
            if status != expected:
                failures.append(
                    f"{target}: expected HTTP {expected}, got {status}")
            try:
                document = json.loads(body)
            except json.JSONDecodeError as exc:
                failures.append(f"{target}: body is not JSON: {exc}")
                continue
            for error in validate(document, schema, schema):
                failures.append(f"{target}: {error}")
            if document.get("status") not in KNOWN_STATUSES:
                failures.append(
                    f"{target}: unknown status {document.get('status')!r}")
            if expected == 200 and document.get("status") not in (
                    "ok", "partial"):
                failures.append(
                    f"{target}: HTTP 200 with status "
                    f"{document.get('status')!r}")
            checked += 1

        # The serve port carries the telemetry surface too, and serving the
        # queries above must have populated the server.* series.
        status, metrics = fetch(port, "/metrics")
        if status != 200:
            failures.append(f"/metrics: status {status}")
        elif "server_requests" not in metrics.replace(".", "_"):
            failures.append("/metrics: no server.requests series after "
                            "traffic")
    finally:
        proc.stdin.close()  # server exits on stdin EOF
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: {checked} queries schema-valid, telemetry live on the "
          f"serve port")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
