#include "storage/column.h"

#include <gtest/gtest.h>

namespace xtopk {
namespace {

Column MakeColumn(std::initializer_list<std::pair<uint32_t, uint32_t>> rows) {
  Column col;
  for (auto [row, value] : rows) col.Append(row, value);
  return col;
}

TEST(ColumnTest, AppendsGroupIntoRuns) {
  // Rows 0-2 under node 5, row 4 under node 9 (row 3 absent: shorter seq).
  Column col = MakeColumn({{0, 5}, {1, 5}, {2, 5}, {4, 9}});
  ASSERT_EQ(col.run_count(), 2u);
  EXPECT_EQ(col.runs()[0], (::xtopk::Run{5, 0, 3}));
  EXPECT_EQ(col.runs()[1], (::xtopk::Run{9, 4, 1}));
  EXPECT_EQ(col.row_count(), 4u);
  EXPECT_EQ(col.distinct_values(), 2u);
}

TEST(ColumnTest, FindValue) {
  Column col = MakeColumn({{0, 2}, {1, 4}, {2, 4}, {3, 8}});
  ASSERT_NE(col.FindValue(4), nullptr);
  EXPECT_EQ(col.FindValue(4)->count, 2u);
  EXPECT_EQ(col.FindValue(3), nullptr);
  EXPECT_EQ(col.FindValue(1), nullptr);
  EXPECT_EQ(col.FindValue(9), nullptr);
  EXPECT_NE(col.FindValue(2), nullptr);
  EXPECT_NE(col.FindValue(8), nullptr);
}

TEST(ColumnTest, LowerBoundValue) {
  Column col = MakeColumn({{0, 2}, {1, 4}, {2, 8}});
  EXPECT_EQ(col.LowerBoundValue(1), 0u);
  EXPECT_EQ(col.LowerBoundValue(2), 0u);
  EXPECT_EQ(col.LowerBoundValue(3), 1u);
  EXPECT_EQ(col.LowerBoundValue(8), 2u);
  EXPECT_EQ(col.LowerBoundValue(9), 3u);
}

TEST(ColumnTest, FindRow) {
  Column col = MakeColumn({{0, 5}, {1, 5}, {4, 9}, {5, 9}});
  ASSERT_NE(col.FindRow(1), nullptr);
  EXPECT_EQ(col.FindRow(1)->value, 5u);
  EXPECT_EQ(col.FindRow(4)->value, 9u);
  EXPECT_EQ(col.FindRow(3), nullptr);  // gap row (sequence too short)
  EXPECT_EQ(col.FindRow(6), nullptr);
}

TEST(ColumnTest, EmptyColumn) {
  Column col;
  EXPECT_TRUE(col.empty());
  EXPECT_EQ(col.FindValue(1), nullptr);
  EXPECT_EQ(col.FindRow(0), nullptr);
  EXPECT_EQ(col.row_count(), 0u);
}

}  // namespace
}  // namespace xtopk
