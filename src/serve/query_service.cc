#include "serve/query_service.h"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace xtopk {
namespace serve {

namespace {

ResponseHit ToResponseHit(const QueryHit& hit) {
  ResponseHit out;
  out.node = hit.node;
  out.level = hit.level;
  out.score = hit.score;
  out.tag = hit.tag;
  out.snippet = hit.snippet;
  return out;
}

/// Per-status response counters carry the status in the metric name, so
/// the handle must be resolved per call (the XTOPK_COUNTER macro's static
/// handle would bind the first status it ever saw).
void CountResponse(ResponseStatus status) {
  std::string name = "server.responses.";
  name += StatusName(status);
  obs::MetricsRegistry::Global().GetCounter(name).Add(1);
}

}  // namespace

Status EngineBackend::RunQuery(const QueryRequest& request,
                               DeadlineToken deadline,
                               std::vector<ResponseHit>* hits) {
  BatchQuery query;
  query.keywords = request.keywords;
  query.k = request.k;
  query.semantics = request.semantics;
  query.deadline = deadline;
  // RunBatch is the engine's one deadline-aware public entry; a
  // single-element batch runs on the caller's thread.
  std::vector<BatchQueryResult> results = engine_->RunBatch({query}, 1);
  hits->clear();
  hits->reserve(results[0].hits.size());
  for (const QueryHit& hit : results[0].hits) {
    hits->push_back(ToResponseHit(hit));
  }
  return results[0].status;
}

std::vector<std::string> EngineBackend::Normalize(
    const std::vector<std::string>& keywords) {
  return engine_->Normalize(keywords);
}

Status UpdatableBackend::RunQuery(const QueryRequest& request,
                                  DeadlineToken deadline,
                                  std::vector<ResponseHit>* hits) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryHit> found =
      request.k == 0
          ? engine_->Search(request.keywords, request.semantics, deadline)
          : engine_->SearchTopK(request.keywords, request.k,
                                request.semantics, deadline);
  hits->clear();
  hits->reserve(found.size());
  for (const QueryHit& hit : found) hits->push_back(ToResponseHit(hit));
  return engine_->last_status();
}

std::vector<std::string> UpdatableBackend::Normalize(
    const std::vector<std::string>& keywords) {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_->Normalize(keywords);
}

uint64_t UpdatableBackend::Watermark() {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_->plan_watermark();
}

QueryService::QueryService(ServeBackend* backend, QueryServiceOptions options)
    : backend_(backend),
      options_(options),
      cache_(options.result_cache_capacity) {
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Stop(); }

uint64_t QueryService::NowUs() const {
  DeadlineToken::ClockFn clock =
      options_.clock != nullptr ? options_.clock : &DeadlineToken::NowMicros;
  return clock();
}

DeadlineToken QueryService::MakeDeadline(uint64_t budget_us) const {
  if (budget_us == 0) budget_us = options_.default_deadline_us;
  if (options_.max_deadline_us != 0 && budget_us != 0) {
    budget_us = std::min(budget_us, options_.max_deadline_us);
  } else if (options_.max_deadline_us != 0 && budget_us == 0) {
    budget_us = options_.max_deadline_us;
  }
  DeadlineToken::ClockFn clock =
      options_.clock != nullptr ? options_.clock : &DeadlineToken::NowMicros;
  return DeadlineToken::AfterMicros(budget_us, clock);
}

void QueryService::Submit(const QueryRequest& request, DoneFn done) {
  XTOPK_COUNTER("server.requests").Add(1);
  XTOPK_WINDOWED_COUNTER("server.requests").Add(1);

  QueryResponse inline_response;
  inline_response.request_id = request.request_id;

  if (request.op == RequestOp::kPing) {
    inline_response.status = ResponseStatus::kOk;
    CountResponse(inline_response.status);
    done(std::move(inline_response));
    return;
  }

  bool shed = false;
  bool shutting_down = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      shutting_down = true;
    } else {
      const bool high = request.priority == Priority::kHigh;
      std::deque<Pending>& queue = high ? queue_high_ : queue_low_;
      const size_t limit = high ? options_.max_queue_high
                                : options_.max_queue_low;
      if (queue.size() >= limit) {
        shed = true;
        if (high) {
          ++stats_.shed_high;
        } else {
          ++stats_.shed_low;
        }
      } else {
        ++stats_.admitted;
        Pending pending;
        pending.request = request;
        pending.deadline = MakeDeadline(request.deadline_us);
        pending.enqueue_us = NowUs();
        pending.done = std::move(done);
        queue.push_back(std::move(pending));
        stats_.queue_depth_high = queue_high_.size();
        stats_.queue_depth_low = queue_low_.size();
        XTOPK_GAUGE("server.queue.depth")
            .Set(static_cast<int64_t>(queue_high_.size() +
                                      queue_low_.size()));
        work_ready_.notify_one();
      }
    }
  }

  if (shutting_down) {
    inline_response.status = ResponseStatus::kShuttingDown;
    inline_response.error = "server is shutting down";
    CountResponse(inline_response.status);
    done(std::move(inline_response));
    return;
  }
  if (shed) {
    // Shedding is the cheap path by design: no allocation beyond the
    // response, no queue mutation, answered on the submitter's thread.
    inline_response.status = ResponseStatus::kShedOverload;
    inline_response.retry_after_ms = options_.retry_after_ms;
    inline_response.error = "admission queue full";
    if (request.priority == Priority::kHigh) {
      XTOPK_COUNTER("server.shed.high").Add(1);
      XTOPK_WINDOWED_COUNTER("server.shed.high").Add(1);
    } else {
      XTOPK_COUNTER("server.shed.low").Add(1);
      XTOPK_WINDOWED_COUNTER("server.shed.low").Add(1);
    }
    CountResponse(inline_response.status);
    done(std::move(inline_response));
  }
}

bool QueryService::RunOnce() {
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!queue_high_.empty()) {
      pending = std::move(queue_high_.front());
      queue_high_.pop_front();
    } else if (!queue_low_.empty()) {
      pending = std::move(queue_low_.front());
      queue_low_.pop_front();
    } else {
      return false;
    }
    stats_.queue_depth_high = queue_high_.size();
    stats_.queue_depth_low = queue_low_.size();
    XTOPK_GAUGE("server.queue.depth")
        .Set(static_cast<int64_t>(queue_high_.size() + queue_low_.size()));
  }
  ExecuteAdmitted(std::move(pending));
  return true;
}

void QueryService::ExecuteAdmitted(Pending pending) {
  const uint64_t wait_us = NowUs() - pending.enqueue_us;
  XTOPK_HISTOGRAM("server.queue_wait_us").Record(wait_us);
  XTOPK_WINDOWED_HISTOGRAM("server.queue_wait_us").Record(wait_us);

  QueryResponse response;
  response.request_id = pending.request.request_id;

  if (pending.deadline.expired()) {
    // The queue wait consumed the whole budget; running now could only
    // produce work the client has already abandoned.
    response.status = ResponseStatus::kDeadlineExpired;
    response.error = "deadline expired while queued";
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.expired_in_queue;
    }
    XTOPK_COUNTER("server.expired_in_queue").Add(1);
    CountResponse(response.status);
    pending.done(std::move(response));
    return;
  }

  const uint64_t exec_start = NowUs();
  const std::vector<std::string> normalized =
      backend_->Normalize(pending.request.keywords);
  const std::string key = ResultCache::Key(
      normalized, pending.request.semantics, pending.request.k);
  const uint64_t watermark = backend_->Watermark();

  if (auto cached = cache_.Lookup(key, watermark)) {
    response.status = ResponseStatus::kOk;
    response.hits = *cached;
  } else {
    std::vector<ResponseHit> hits;
    Status status = backend_->RunQuery(pending.request, pending.deadline,
                                       &hits);
    if (status.ok()) {
      response.status = ResponseStatus::kOk;
      response.hits = std::move(hits);
      // Cache only complete answers: a partial result's length depends on
      // the budget that produced it and would poison later lookups.
      cache_.Insert(key, watermark,
                    std::make_shared<const std::vector<ResponseHit>>(
                        response.hits));
    } else if (status.code() == StatusCode::kDeadlineExceeded) {
      response.status = ResponseStatus::kPartial;
      response.hits = std::move(hits);
      response.error = status.message();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.partial;
    } else {
      response.status = ResponseStatus::kInternalError;
      response.error = status.ToString();
    }
  }

  const uint64_t exec_us = NowUs() - exec_start;
  XTOPK_HISTOGRAM("server.exec_us").Record(exec_us);
  XTOPK_WINDOWED_HISTOGRAM("server.exec_us").Record(exec_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.executed;
  }
  CountResponse(response.status);
  pending.done(std::move(response));
}

void QueryService::WorkerLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] {
        return stopping_ || !queue_high_.empty() || !queue_low_.empty();
      });
      if (stopping_) return;  // Stop() answers what is still queued
    }
    RunOnce();
  }
}

QueryResponse QueryService::Execute(const QueryRequest& request) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    QueryResponse response;
  };
  auto waiter = std::make_shared<Waiter>();
  Submit(request, [waiter](QueryResponse response) {
    std::lock_guard<std::mutex> lock(waiter->mu);
    waiter->response = std::move(response);
    waiter->ready = true;
    waiter->cv.notify_one();
  });
  if (options_.workers == 0) {
    // Deterministic mode: drain the queues on this thread until the
    // submitted request (and anything admitted before it) completes.
    while (true) {
      {
        std::lock_guard<std::mutex> lock(waiter->mu);
        if (waiter->ready) break;
      }
      if (!RunOnce()) break;  // inline outcome (shed/ping/shutdown)
    }
  }
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->ready; });
  return std::move(waiter->response);
}

void QueryService::Stop() {
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    work_ready_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(queue_high_);
    for (Pending& pending : queue_low_) {
      orphans.push_back(std::move(pending));
    }
    queue_low_.clear();
    stats_.queue_depth_high = 0;
    stats_.queue_depth_low = 0;
  }
  XTOPK_GAUGE("server.queue.depth").Set(0);
  for (Pending& pending : orphans) {
    QueryResponse response;
    response.request_id = pending.request.request_id;
    response.status = ResponseStatus::kShuttingDown;
    response.error = "server stopped before execution";
    CountResponse(response.status);
    pending.done(std::move(response));
  }
}

QueryServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryServiceStats out = stats_;
  out.cache_hits = cache_.hits();
  out.cache_misses = cache_.misses();
  return out;
}

}  // namespace serve
}  // namespace xtopk
