#include "core/multi_doc.h"

#include <algorithm>

#include "xml/xml_parser.h"

namespace xtopk {

MultiDocCorpus::MultiDocCorpus() { tree_.CreateRoot("collection"); }

size_t MultiDocCorpus::AddDocument(const std::string& name,
                                   const XmlTree& doc) {
  NodeId wrapper = tree_.AddChild(tree_.root(), "doc");
  tree_.AddAttribute(wrapper, "name", name);
  // Deep-copy `doc` under the wrapper, preserving sibling order. The copy
  // walks explicit child links so out-of-creation-order trees transfer
  // correctly.
  if (!doc.empty()) {
    std::vector<std::pair<NodeId, NodeId>> stack;  // (src, dst parent)
    NodeId doc_root_copy = tree_.AddChild(wrapper, doc.TagName(doc.root()));
    tree_.AppendText(doc_root_copy, doc.text(doc.root()));
    stack.emplace_back(doc.root(), doc_root_copy);
    while (!stack.empty()) {
      auto [src, dst] = stack.back();
      stack.pop_back();
      // Collect children first so they can be pushed in reverse and
      // created in document order.
      std::vector<NodeId> kids = doc.Children(src);
      std::vector<NodeId> copies;
      copies.reserve(kids.size());
      for (NodeId child : kids) {
        NodeId copy = tree_.AddChild(dst, doc.TagName(child));
        tree_.AppendText(copy, doc.text(child));
        copies.push_back(copy);
      }
      for (size_t i = 0; i < kids.size(); ++i) {
        stack.emplace_back(kids[i], copies[i]);
      }
    }
  }
  doc_roots_.push_back(wrapper);
  doc_names_.push_back(name);
  return doc_roots_.size() - 1;
}

StatusOr<size_t> MultiDocCorpus::AddDocumentXml(const std::string& name,
                                                const std::string& xml) {
  StatusOr<XmlTree> parsed = XmlParser::Parse(xml);
  if (!parsed.ok()) return parsed.status();
  return AddDocument(name, *parsed);
}

std::vector<NodeId> MultiDocCorpus::DocumentNodes(size_t index) const {
  // Documents are copied en bloc, so a document's nodes are exactly the
  // contiguous id range [wrapper, next wrapper) — no tree walk needed.
  NodeId begin = doc_roots_[index];
  NodeId end = index + 1 < doc_roots_.size()
                   ? doc_roots_[index + 1]
                   : static_cast<NodeId>(tree_.node_count());
  std::vector<NodeId> nodes;
  nodes.reserve(end - begin);
  for (NodeId id = begin; id < end; ++id) nodes.push_back(id);
  return nodes;
}

std::optional<size_t> MultiDocCorpus::DocumentOf(NodeId node) const {
  // Walk up to the level-2 ancestor (the <doc> wrapper).
  NodeId cur = node;
  while (cur != kInvalidNode && tree_.level(cur) > 2) {
    cur = tree_.parent(cur);
  }
  if (cur == kInvalidNode || tree_.level(cur) != 2) return std::nullopt;
  auto it = std::lower_bound(doc_roots_.begin(), doc_roots_.end(), cur);
  if (it != doc_roots_.end() && *it == cur) {
    return static_cast<size_t>(it - doc_roots_.begin());
  }
  return std::nullopt;
}

}  // namespace xtopk
