file(REMOVE_RECURSE
  "CMakeFiles/storage_column_test.dir/storage/column_test.cc.o"
  "CMakeFiles/storage_column_test.dir/storage/column_test.cc.o.d"
  "storage_column_test"
  "storage_column_test.pdb"
  "storage_column_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_column_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
