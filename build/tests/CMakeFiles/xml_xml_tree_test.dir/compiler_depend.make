# Empty compiler generated dependencies file for xml_xml_tree_test.
# This may be replaced when dependencies are built.
