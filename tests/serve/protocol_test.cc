// Protocol robustness: encode/decode roundtrips, truncation and bitflip
// fuzzing over the frame codecs (every malformed input must fail with a
// typed error, never crash or read out of bounds), and server-level
// garbage injection — a live server fed hostile bytes answers with typed
// errors, stays up, and its result cache stays unpoisoned.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "serve/client.h"
#include "serve/protocol.h"
#include "testing/corpus.h"
#include "testing/serve_client.h"
#include "util/rng.h"

namespace xtopk {
namespace serve {
namespace {

using xtopk::testing::ExpectHitsBitIdentical;
using xtopk::testing::MakeSmallCorpus;
using xtopk::testing::ServeHarness;

QueryRequest SampleRequest() {
  QueryRequest request;
  request.request_id = 0xDEADBEEF;
  request.op = RequestOp::kQuery;
  request.priority = Priority::kLow;
  request.semantics = Semantics::kSlca;
  request.k = 25;
  request.deadline_us = 1234567;
  request.keywords = {"xml", "data", "top-k"};
  return request;
}

QueryResponse SampleResponse() {
  QueryResponse response;
  response.request_id = 77;
  response.status = ResponseStatus::kPartial;
  response.retry_after_ms = 125;
  response.error = "deadline expired \"mid\" query\n";
  ResponseHit hit;
  hit.node = 42;
  hit.level = 3;
  hit.score = 0.1 + 0.2;  // not exactly representable — bits must survive
  hit.tag = "paper";
  hit.snippet = "xml data";
  response.hits.push_back(hit);
  hit.node = 7;
  hit.level = 9;
  hit.score = std::numeric_limits<double>::denorm_min();
  hit.tag = "";
  hit.snippet = std::string("nul\0byte", 8);
  response.hits.push_back(hit);
  return response;
}

TEST(ProtocolRoundtrip, RequestSurvivesEncodeDecode) {
  QueryRequest original = SampleRequest();
  std::string payload;
  EncodeRequest(original, &payload);
  QueryRequest decoded;
  ASSERT_TRUE(DecodeRequest(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, original.request_id);
  EXPECT_EQ(decoded.op, original.op);
  EXPECT_EQ(decoded.priority, original.priority);
  EXPECT_EQ(decoded.semantics, original.semantics);
  EXPECT_EQ(decoded.k, original.k);
  EXPECT_EQ(decoded.deadline_us, original.deadline_us);
  EXPECT_EQ(decoded.keywords, original.keywords);
}

TEST(ProtocolRoundtrip, ResponseSurvivesWithBitIdenticalScores) {
  QueryResponse original = SampleResponse();
  std::string payload;
  EncodeResponse(original, &payload);
  QueryResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_EQ(decoded.request_id, original.request_id);
  EXPECT_EQ(decoded.status, original.status);
  EXPECT_EQ(decoded.retry_after_ms, original.retry_after_ms);
  EXPECT_EQ(decoded.error, original.error);
  ASSERT_EQ(decoded.hits.size(), original.hits.size());
  for (size_t i = 0; i < original.hits.size(); ++i) {
    EXPECT_EQ(decoded.hits[i].node, original.hits[i].node);
    EXPECT_EQ(decoded.hits[i].level, original.hits[i].level);
    // The wire carries the raw IEEE-754 pattern: compare bytes, so even a
    // hypothetical NaN would have to roundtrip exactly.
    EXPECT_EQ(std::memcmp(&decoded.hits[i].score, &original.hits[i].score,
                          sizeof(double)),
              0);
    EXPECT_EQ(decoded.hits[i].tag, original.hits[i].tag);
    EXPECT_EQ(decoded.hits[i].snippet, original.hits[i].snippet);
  }
}

TEST(ProtocolRoundtrip, NanScoreRoundtripsByBits) {
  QueryResponse response;
  response.hits.resize(1);
  response.hits[0].score = std::numeric_limits<double>::quiet_NaN();
  std::string payload;
  EncodeResponse(response, &payload);
  QueryResponse decoded;
  ASSERT_TRUE(DecodeResponse(payload, &decoded).ok());
  EXPECT_TRUE(std::isnan(decoded.hits[0].score));
}

TEST(ProtocolFraming, ExtractFrameIsIncremental) {
  std::string wire;
  EncodeFrame(&wire, "hello");
  EncodeFrame(&wire, "");

  std::string buffer, payload;
  bool complete = false;
  // Feed byte by byte: no frame completes until its last byte arrives.
  size_t completed = 0;
  for (char byte : wire) {
    buffer.push_back(byte);
    for (;;) {
      ASSERT_TRUE(ExtractFrame(&buffer, &payload, &complete).ok());
      if (!complete) break;
      if (completed == 0) EXPECT_EQ(payload, "hello");
      if (completed == 1) EXPECT_EQ(payload, "");
      ++completed;
    }
  }
  EXPECT_EQ(completed, 2u);
  EXPECT_TRUE(buffer.empty());
}

TEST(ProtocolFraming, OversizedLengthPrefixRejectedBeforeBuffering) {
  std::string buffer;
  uint32_t huge = kMaxFrameBytes + 1;
  buffer.append(reinterpret_cast<const char*>(&huge), 4);
  std::string payload;
  bool complete = false;
  Status s = ExtractFrame(&buffer, &payload, &complete);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(complete);
}

// Every strict prefix of a valid request payload must fail to decode:
// the format has no optional tail, so truncation anywhere is an error.
TEST(ProtocolFuzz, AllStrictPrefixesOfRequestFail) {
  std::string payload;
  EncodeRequest(SampleRequest(), &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    QueryRequest decoded;
    EXPECT_FALSE(
        DecodeRequest(std::string_view(payload.data(), len), &decoded).ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(ProtocolFuzz, AllStrictPrefixesOfResponseFail) {
  std::string payload;
  EncodeResponse(SampleResponse(), &payload);
  for (size_t len = 0; len < payload.size(); ++len) {
    QueryResponse decoded;
    EXPECT_FALSE(
        DecodeResponse(std::string_view(payload.data(), len), &decoded).ok())
        << "prefix of length " << len << " decoded";
  }
}

TEST(ProtocolFuzz, TrailingBytesRejected) {
  std::string payload;
  EncodeRequest(SampleRequest(), &payload);
  payload.push_back('\0');
  QueryRequest decoded;
  EXPECT_FALSE(DecodeRequest(payload, &decoded).ok());

  std::string response_payload;
  EncodeResponse(SampleResponse(), &response_payload);
  response_payload.push_back('x');
  QueryResponse decoded_response;
  EXPECT_FALSE(DecodeResponse(response_payload, &decoded_response).ok());
}

// Single-bit flips over a valid payload (the FaultPlan bitflip shape):
// decode must either fail with a typed error or succeed with every field
// inside its documented bounds. Either way it must not crash.
TEST(ProtocolFuzz, RequestBitflipsNeverCrashAndKeepBounds) {
  std::string payload;
  EncodeRequest(SampleRequest(), &payload);
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = payload;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      QueryRequest decoded;
      Status s = DecodeRequest(mutated, &decoded);
      if (s.ok()) {
        EXPECT_LE(decoded.k, kMaxK);
        EXPECT_LE(decoded.keywords.size(), kMaxKeywords);
        EXPECT_TRUE(decoded.op == RequestOp::kQuery ||
                    decoded.op == RequestOp::kPing);
      }
    }
  }
}

TEST(ProtocolFuzz, ResponseBitflipsNeverCrash) {
  std::string payload;
  EncodeResponse(SampleResponse(), &payload);
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = payload;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      QueryResponse decoded;
      (void)DecodeResponse(mutated, &decoded);  // must not crash
    }
  }
}

// Pure-random payloads: overwhelmingly invalid, occasionally valid by
// chance — both outcomes fine, crashes and unbounded allocations are not.
TEST(ProtocolFuzz, RandomPayloadsNeverCrash) {
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    std::string payload;
    size_t len = rng.NextBounded(128);
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    QueryRequest request;
    (void)DecodeRequest(payload, &request);
    QueryResponse response;
    (void)DecodeResponse(payload, &response);
  }
}

// A forged hit count far beyond what the frame can hold must be rejected
// before any allocation happens (no 4-billion-element reserve).
TEST(ProtocolFuzz, ForgedHitCountRejected) {
  std::string payload;
  QueryResponse empty;
  EncodeResponse(empty, &payload);
  // Overwrite the trailing n_hits u32 with UINT32_MAX.
  ASSERT_GE(payload.size(), 4u);
  payload[payload.size() - 4] = '\xff';
  payload[payload.size() - 3] = '\xff';
  payload[payload.size() - 2] = '\xff';
  payload[payload.size() - 1] = '\xff';
  QueryResponse decoded;
  EXPECT_FALSE(DecodeResponse(payload, &decoded).ok());
}

TEST(ProtocolHttp, SearchTargetParsing) {
  QueryRequest request;
  ASSERT_TRUE(ParseHttpSearchTarget(
                  "/search?q=xml+data&k=5&semantics=slca&deadline_us=1000"
                  "&priority=low&id=9",
                  &request)
                  .ok());
  EXPECT_EQ(request.keywords, (std::vector<std::string>{"xml", "data"}));
  EXPECT_EQ(request.k, 5u);
  EXPECT_EQ(request.semantics, Semantics::kSlca);
  EXPECT_EQ(request.deadline_us, 1000u);
  EXPECT_EQ(request.priority, Priority::kLow);
  EXPECT_EQ(request.request_id, 9u);

  EXPECT_FALSE(ParseHttpSearchTarget("/search", &request).ok());
  EXPECT_FALSE(ParseHttpSearchTarget("/search?q=", &request).ok());
  EXPECT_FALSE(ParseHttpSearchTarget("/search?q=x&k=abc", &request).ok());
  EXPECT_FALSE(ParseHttpSearchTarget("/search?q=x&bogus=1", &request).ok());
  EXPECT_FALSE(
      ParseHttpSearchTarget("/search?q=x&semantics=wat", &request).ok());
  EXPECT_FALSE(ParseHttpSearchTarget("/other?q=x", &request).ok());
  // Percent-encoding decodes before splitting.
  ASSERT_TRUE(ParseHttpSearchTarget("/search?q=xml%20data", &request).ok());
  EXPECT_EQ(request.keywords, (std::vector<std::string>{"xml", "data"}));
}

TEST(ProtocolHttp, JsonEscapesControlBytes) {
  QueryResponse response;
  response.error = "tab\there \"quote\" back\\slash";
  std::string json = ResponseToJson(response);
  EXPECT_NE(json.find("tab\\there"), std::string::npos);
  EXPECT_NE(json.find("\\\"quote\\\""), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
}

// -------- server-level garbage injection --------

// A well-framed but undecodable payload: the frame boundary held, so the
// server answers a typed kBadRequest and keeps the connection usable.
TEST(ServeRobustness, MalformedPayloadGetsTypedErrorConnectionSurvives) {
  ServeHarness harness(MakeSmallCorpus());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  std::string wire;
  EncodeFrame(&wire, "garbage that is not a request");
  ASSERT_TRUE(client.SendRaw(wire).ok());
  QueryResponse response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  EXPECT_FALSE(response.error.empty());

  // The next frame on the same connection decodes and executes normally.
  QueryRequest request;
  request.request_id = 5;
  request.keywords = {"xml", "data"};
  request.k = 3;
  ASSERT_TRUE(client.Call(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

// An oversized length prefix can never resynchronize: the server answers
// once, then closes. The listener itself must survive.
TEST(ServeRobustness, OversizedFramePoisonsOnlyThatConnection) {
  ServeHarness harness(MakeSmallCorpus());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  uint32_t huge = kMaxFrameBytes + 7;
  std::string wire(reinterpret_cast<const char*>(&huge), 4);
  wire += "trailing bytes the server must not trust";
  ASSERT_TRUE(client.SendRaw(wire).ok());
  QueryResponse response;
  ASSERT_TRUE(client.Receive(&response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kBadRequest);
  // The server closes after the error response: the next read hits EOF.
  EXPECT_FALSE(client.Receive(&response).ok());

  // A fresh connection works as if nothing happened.
  Client fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", harness.port()).ok());
  QueryRequest request;
  request.request_id = 6;
  request.keywords = {"xml"};
  request.k = 2;
  ASSERT_TRUE(fresh.Call(request, &response).ok());
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

// Random byte storms over many short-lived connections: the server must
// stay up and the result cache must keep serving the pre-storm answer
// bit-identically (garbage can never poison a cached result).
TEST(ServeRobustness, GarbageStormLeavesServerAndCacheIntact) {
  ServeHarness harness(MakeSmallCorpus());

  QueryRequest probe;
  probe.request_id = 1;
  probe.keywords = {"xml", "data"};
  probe.k = 5;
  QueryResponse before = harness.Call(probe);
  ASSERT_EQ(before.status, ResponseStatus::kOk);

  Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    Client attacker;
    ASSERT_TRUE(attacker.Connect("127.0.0.1", harness.port()).ok());
    std::string junk;
    size_t len = 1 + rng.NextBounded(256);
    junk.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    // Some rounds wrap the junk in a valid frame (undecodable payload),
    // some send it raw (hostile framing). Both must be harmless.
    std::string wire;
    if (round % 2 == 0) {
      EncodeFrame(&wire, junk);
    } else {
      wire = junk;
    }
    ASSERT_TRUE(attacker.SendRaw(wire).ok());
    attacker.Close();  // vanish mid-conversation, like a real bad peer
  }

  QueryResponse after = harness.Call(probe);
  ASSERT_EQ(after.status, ResponseStatus::kOk);
  ASSERT_EQ(after.hits.size(), before.hits.size());
  for (size_t i = 0; i < before.hits.size(); ++i) {
    EXPECT_EQ(after.hits[i].node, before.hits[i].node);
    EXPECT_EQ(std::memcmp(&after.hits[i].score, &before.hits[i].score,
                          sizeof(double)),
              0);
  }
  ExpectHitsBitIdentical(
      harness.engine().SearchTopK({"xml", "data"}, 5, Semantics::kElca),
      after.hits, "post-storm");
}

// A peer that streams an HTTP request line forever (no newline) gets
// disconnected by the line-length cap instead of ballooning server memory.
TEST(ServeRobustness, UnboundedStreamWithoutFramesIsDisconnected) {
  ServeHarness harness(MakeSmallCorpus());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", harness.port()).ok());

  std::string chunk(4096, 'A');
  bool disconnected = false;
  // "GET " selects the HTTP dialect; > 8 KiB without a newline trips the
  // request-line cap. Push well past it.
  for (int i = 0; i < 16 && !disconnected; ++i) {
    if (!client.SendRaw(i == 0 ? "GET " + chunk : chunk).ok()) {
      disconnected = true;
    }
  }
  // Depending on timing the disconnect may surface on send (EPIPE) or on
  // the next receive; either way the server must have cut us off...
  if (!disconnected) {
    QueryResponse response;
    EXPECT_FALSE(client.Receive(&response).ok());
  }
  // ...and must still serve everyone else.
  QueryRequest request;
  request.request_id = 9;
  request.keywords = {"xml"};
  request.k = 1;
  QueryResponse response = harness.Call(request);
  EXPECT_EQ(response.status, ResponseStatus::kOk);
}

}  // namespace
}  // namespace serve
}  // namespace xtopk
