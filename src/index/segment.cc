#include "index/segment.h"

#include <algorithm>
#include <utility>

#include "core/scoring.h"
#include "index/index_access.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"

namespace xtopk {

namespace {

/// The lookup form of a manifest.
std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> StatsOf(
    const SegmentManifest& manifest) {
  std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> stats;
  stats.reserve(manifest.terms.size());
  for (const SegmentTermStats& t : manifest.terms) {
    stats.emplace(t.term, std::make_pair(t.rows, t.max_tf));
  }
  return stats;
}

}  // namespace

void SegmentedIndex::Bump() {
  ++version_;
  XTOPK_GAUGE("index.segments").Set(static_cast<int64_t>(sealed_.size()));
}

void SegmentedIndex::AddMemorySegment(JDeweyIndex segment,
                                      uint64_t covered_nodes) {
  Sealed sealed;
  sealed.memory = std::make_unique<JDeweyIndex>(std::move(segment));
  sealed.manifest = ManifestFromSegment(*sealed.memory);
  sealed.manifest.covered_nodes = covered_nodes;
  sealed.stats = StatsOf(sealed.manifest);
  sealed_.push_back(std::move(sealed));
  Bump();
}

Status SegmentedIndex::AddDiskSegment(const std::string& path,
                                      DiskIndexOptions options) {
  StatusOr<SegmentManifest> manifest =
      SegmentManifest::Load(path + ".manifest");
  if (!manifest.ok()) return manifest.status();
  StatusOr<std::shared_ptr<DiskIndexEnv>> env =
      DiskIndexEnv::Open(path, options);
  if (!env.ok()) return env.status();
  Sealed sealed;
  sealed.env = *env;
  sealed.session = sealed.env->NewSession();
  sealed.manifest = std::move(*manifest);
  sealed.stats = StatsOf(sealed.manifest);
  sealed_.push_back(std::move(sealed));
  Bump();
  return Status::Ok();
}

void SegmentedIndex::SetMemtable(const JDeweyIndex* memtable) {
  memtable_ = memtable;
  Bump();
}

void SegmentedIndex::SetCorpusNodes(uint64_t corpus_nodes) {
  if (corpus_nodes == corpus_nodes_) return;
  corpus_nodes_ = corpus_nodes;
  Bump();
}

void SegmentedIndex::Clear() {
  sealed_.clear();
  memtable_ = nullptr;
  Bump();
}

uint32_t SegmentedIndex::Frequency(const std::string& term) const {
  uint64_t total = 0;
  for (const Sealed& seg : sealed_) {
    auto it = seg.stats.find(term);
    if (it != seg.stats.end()) total += it->second.first;
  }
  if (memtable_ != nullptr) total += memtable_->Frequency(term);
  return static_cast<uint32_t>(total);
}

uint32_t SegmentedIndex::MaxLength(const std::string& term) const {
  uint32_t deepest = 0;
  for (const Sealed& seg : sealed_) {
    if (seg.stats.find(term) == seg.stats.end()) continue;
    if (seg.memory != nullptr) {
      const JDeweyList* list = seg.memory->GetList(term);
      if (list != nullptr) deepest = std::max(deepest, list->max_length);
    } else {
      deepest = std::max(deepest, seg.session->MaxLength(term));
    }
  }
  if (memtable_ != nullptr) {
    const JDeweyList* list = memtable_->GetList(term);
    if (list != nullptr) deepest = std::max(deepest, list->max_length);
  }
  return deepest;
}

const TermStats* SegmentedIndex::Stats(const std::string& term) const {
  if (stats_version_ != version_) {
    stats_cache_.clear();
    stats_version_ = version_;
  }
  auto cached = stats_cache_.find(term);
  if (cached != stats_cache_.end()) {
    return cached->second.rows == 0 ? nullptr : &cached->second;
  }

  TermStats merged;
  for (const Sealed& seg : sealed_) {
    // Manifests are sorted by term.
    auto it = std::lower_bound(
        seg.manifest.terms.begin(), seg.manifest.terms.end(), term,
        [](const SegmentTermStats& a, const std::string& t) {
          return a.term < t;
        });
    if (it == seg.manifest.terms.end() || it->term != term ||
        it->rows == 0) {
      continue;
    }
    TermStats part;
    part.rows = it->rows;
    part.levels = it->levels;  // empty for v1 manifests -> rows only
    merged.Merge(part, kMergedStatsBuckets);
  }
  if (memtable_ != nullptr && memtable_->Frequency(term) > 0) {
    const TermStats* mt = memtable_->StatsOf(term);
    if (mt != nullptr) {
      merged.Merge(*mt, kMergedStatsBuckets);
    } else {
      TermStats part;
      part.rows = memtable_->Frequency(term);
      merged.Merge(part, kMergedStatsBuckets);
    }
  }
  auto [it, inserted] = stats_cache_.emplace(term, std::move(merged));
  (void)inserted;
  return it->second.rows == 0 ? nullptr : &it->second;
}

NodeId SegmentedIndex::NodeAt(uint32_t level, uint32_t value) const {
  if (memtable_ != nullptr) {
    NodeId node = memtable_->NodeAt(level, value);
    if (node != kInvalidNode) return node;
  }
  for (const Sealed& seg : sealed_) {
    NodeId node = seg.memory != nullptr ? seg.memory->NodeAt(level, value)
                                        : seg.session->NodeAt(level, value);
    if (node != kInvalidNode) return node;
  }
  return kInvalidNode;
}

uint32_t SegmentedIndex::max_level() const {
  uint32_t deepest = memtable_ != nullptr ? memtable_->max_level() : 0;
  for (const Sealed& seg : sealed_) {
    deepest = std::max(deepest, seg.memory != nullptr
                                    ? seg.memory->max_level()
                                    : seg.session->max_level());
  }
  return deepest;
}

void SegmentedIndex::RefreshGlobals() {
  if (globals_version_ == version_) return;
  globals_.clear();
  for (const Sealed& seg : sealed_) {
    for (const SegmentTermStats& t : seg.manifest.terms) {
      TermGlobal& g = globals_[t.term];
      g.df += t.rows;
      g.max_tf = std::max(g.max_tf, t.max_tf);
    }
  }
  if (memtable_ != nullptr) {
    const auto& terms = memtable_->terms();
    const auto& lists = memtable_->lists();
    for (size_t t = 0; t < terms.size(); ++t) {
      TermGlobal& g = globals_[terms[t]];
      g.df += lists[t].num_rows();
      for (float tf : lists[t].scores) {
        g.max_tf = std::max(g.max_tf, static_cast<uint32_t>(tf));
      }
    }
  }
  // The corpus-wide normalizer: RawLocalScore is monotone in tf for a fixed
  // df, so each term's max raw score is attained at its max tf and the
  // global max is the max over terms — exactly the max a monolithic build
  // takes over every occurrence.
  max_raw_ = 0.0;
  for (const auto& [term, g] : globals_) {
    max_raw_ = std::max(max_raw_, RawLocalScore(g.max_tf, g.df, corpus_nodes_));
  }
  if (max_raw_ <= 0.0) max_raw_ = 1.0;
  globals_version_ = version_;
}

Status SegmentedIndex::CollectParts(const std::string& term,
                                    std::vector<const JDeweyList*>* parts) {
  size_t fanout = 0;
  for (Sealed& seg : sealed_) {
    if (seg.stats.find(term) == seg.stats.end()) continue;
    ++fanout;
    if (seg.memory != nullptr) {
      const JDeweyList* list = seg.memory->GetList(term);
      if (list != nullptr) parts->push_back(list);
    } else {
      StatusOr<const JDeweyList*> loaded =
          seg.session->LoadList(term, UINT32_MAX, /*need_scores=*/true,
                                /*level_bounds=*/nullptr);
      if (!loaded.ok()) return loaded.status();
      if (*loaded != nullptr) parts->push_back(*loaded);
    }
  }
  if (memtable_ != nullptr) {
    const JDeweyList* list = memtable_->GetList(term);
    if (list != nullptr) {
      parts->push_back(list);
      ++fanout;
    }
  }
  XTOPK_COUNTER("core.join.segment_fanout").Add(fanout);
  return Status::Ok();
}

JDeweyList SegmentedIndex::MergeParts(
    const std::vector<const JDeweyList*>& parts) const {
  struct RowRef {
    const JDeweyList* list = nullptr;
    uint32_t row = 0;
    JDeweySeq seq;
  };
  size_t total = 0;
  for (const JDeweyList* part : parts) total += part->num_rows();
  std::vector<RowRef> rows;
  rows.reserve(total);
  for (const JDeweyList* part : parts) {
    for (uint32_t r = 0; r < part->num_rows(); ++r) {
      rows.push_back(RowRef{part, r, part->SequenceOf(r)});
    }
  }
  // Children cover disjoint node sets, so sequences are pairwise distinct
  // and the comparison is a strict weak order.
  std::sort(rows.begin(), rows.end(), [](const RowRef& a, const RowRef& b) {
    return CompareJDewey(a.seq, b.seq) < 0;
  });

  JDeweyList merged;
  merged.lengths.resize(total);
  merged.scores.resize(total);
  merged.nodes.resize(total, kInvalidNode);
  for (uint32_t i = 0; i < total; ++i) {
    const RowRef& ref = rows[i];
    uint16_t len = ref.list->lengths[ref.row];
    merged.lengths[i] = len;
    merged.scores[i] = ref.list->scores[ref.row];
    if (ref.row < ref.list->nodes.size()) {
      merged.nodes[i] = ref.list->nodes[ref.row];  // disk lists leave these
    }
    if (len > merged.max_length) merged.max_length = len;
    if (merged.columns.size() < len) merged.columns.resize(len);
    for (uint16_t level = 1; level <= len; ++level) {
      merged.columns[level - 1].Append(i, ref.seq[level - 1]);
    }
  }
  return merged;
}

StatusOr<const JDeweyList*> SegmentedIndex::Resolve(
    const std::string& term, uint32_t /*up_to_level*/, bool /*need_scores*/,
    const std::vector<ValueBounds>* /*level_bounds*/) {
  if (cache_version_ != version_) {
    cache_.clear();
    cache_version_ = version_;
  }
  auto cached = cache_.find(term);
  if (cached != cache_.end()) return &cached->second;
  if (Frequency(term) == 0) return static_cast<const JDeweyList*>(nullptr);

  RefreshGlobals();
  std::vector<const JDeweyList*> parts;
  Status s = CollectParts(term, &parts);
  if (!s.ok()) return s;
  JDeweyList merged = MergeParts(parts);

  // tf -> normalized tf·idf, with the corpus-global df and normalizer.
  const TermGlobal& global = globals_.at(term);
  for (uint32_t row = 0; row < merged.num_rows(); ++row) {
    uint32_t tf = static_cast<uint32_t>(merged.scores[row]);
    double raw = RawLocalScore(tf, global.df, corpus_nodes_);
    merged.scores[row] = static_cast<float>(raw / max_raw_);
  }
  // Rows that came from disk segments carry no NodeId; the (level, value)
  // mapping recovers them.
  for (uint32_t row = 0; row < merged.num_rows(); ++row) {
    if (merged.nodes[row] != kInvalidNode) continue;
    JDeweySeq seq = merged.SequenceOf(row);
    merged.nodes[row] = NodeAt(merged.lengths[row], seq.back());
  }

  auto [it, inserted] = cache_.emplace(term, std::move(merged));
  (void)inserted;
  return &it->second;
}

Status SegmentedIndex::Compact(const std::string& path,
                               DiskIndexOptions options) {
  if (sealed_.empty()) return Status::Ok();

  // Term universe and covered-node total from the manifests alone.
  uint64_t covered = 0;
  std::vector<std::string> all_terms;
  for (const Sealed& seg : sealed_) {
    covered += seg.manifest.covered_nodes;
    for (const SegmentTermStats& t : seg.manifest.terms) {
      all_terms.push_back(t.term);
    }
  }
  std::sort(all_terms.begin(), all_terms.end());
  all_terms.erase(std::unique(all_terms.begin(), all_terms.end()),
                  all_terms.end());

  JDeweyIndex merged;
  auto* term_ids = IndexIoAccess::TermIds(&merged);
  auto* terms = IndexIoAccess::Terms(&merged);
  auto* lists = IndexIoAccess::Lists(&merged);
  for (const std::string& term : all_terms) {
    std::vector<const JDeweyList*> parts;
    for (Sealed& seg : sealed_) {
      if (seg.stats.find(term) == seg.stats.end()) continue;
      if (seg.memory != nullptr) {
        const JDeweyList* list = seg.memory->GetList(term);
        if (list != nullptr) parts.push_back(list);
      } else {
        StatusOr<const JDeweyList*> loaded =
            seg.session->LoadList(term, UINT32_MAX, /*need_scores=*/true,
                                  /*level_bounds=*/nullptr);
        if (!loaded.ok()) return loaded.status();
        if (*loaded != nullptr) parts.push_back(*loaded);
      }
    }
    term_ids->emplace(term, static_cast<uint32_t>(lists->size()));
    terms->push_back(term);
    lists->push_back(MergeParts(parts));  // raw tf preserved
  }

  // Union of the children's (level, value) -> node mappings. Shared
  // ancestors appear in several segments with identical pairs; sort +
  // unique collapses them.
  auto* level_nodes = IndexIoAccess::LevelNodes(&merged);
  for (const Sealed& seg : sealed_) {
    const auto& child = seg.memory != nullptr
                            ? IndexIoAccess::LevelNodes(*seg.memory)
                            : IndexIoAccess::LevelNodes(seg.session->view());
    if (level_nodes->size() < child.size()) level_nodes->resize(child.size());
    for (size_t l = 0; l < child.size(); ++l) {
      auto& dst = (*level_nodes)[l];
      dst.insert(dst.end(), child[l].begin(), child[l].end());
    }
  }
  for (auto& level : *level_nodes) {
    std::sort(level.begin(), level.end());
    level.erase(std::unique(level.begin(), level.end()), level.end());
  }
  *IndexIoAccess::MaxLevel(&merged) =
      static_cast<uint32_t>(level_nodes->size());

  Status s = DiskIndexWriter::Write(merged, /*include_scores=*/true, path);
  if (!s.ok()) return s;
  SegmentManifest manifest = ManifestFromSegment(merged);
  manifest.covered_nodes = covered;
  s = manifest.Save(path + ".manifest");
  if (!s.ok()) return s;

  sealed_.clear();
  s = AddDiskSegment(path, options);
  if (!s.ok()) return s;
  XTOPK_COUNTER("index.compactions").Add(1);
  return Status::Ok();
}

}  // namespace xtopk
