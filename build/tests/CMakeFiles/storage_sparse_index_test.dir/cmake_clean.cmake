file(REMOVE_RECURSE
  "CMakeFiles/storage_sparse_index_test.dir/storage/sparse_index_test.cc.o"
  "CMakeFiles/storage_sparse_index_test.dir/storage/sparse_index_test.cc.o.d"
  "storage_sparse_index_test"
  "storage_sparse_index_test.pdb"
  "storage_sparse_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_sparse_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
