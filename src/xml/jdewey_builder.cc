#include "xml/jdewey_builder.h"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/crc32c.h"
#include "util/varint.h"

namespace xtopk {

namespace {

constexpr char kEncodingMagic[] = "XTKJENC1";
constexpr size_t kEncodingMagicSize = 8;

void PutFixed32(std::string* out, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  out->append(buf, 4);
}

uint32_t ReadFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

}  // namespace

JDeweyEncoding JDeweyBuilder::Assign(const XmlTree& tree, uint32_t gap) {
  JDeweyEncoding enc;
  size_t n = tree.node_count();
  enc.jnum_.assign(n, 0);
  enc.child_next_.assign(n, 0);
  enc.child_end_.assign(n, 0);
  enc.next_free_.assign(tree.max_level() + 2, 1);
  if (n == 0) return enc;

  // Level-order walk. Parents are visited in increasing number order, so
  // handing each parent the next contiguous child range satisfies the
  // order requirement by construction.
  std::vector<NodeId> current = {tree.root()};
  enc.jnum_[tree.root()] = enc.next_free_[1]++;
  uint32_t level = 1;
  while (!current.empty()) {
    std::vector<NodeId> next;
    uint32_t child_level = level + 1;
    for (NodeId u : current) {
      uint32_t count = 0;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        ++count;
      }
      uint32_t start = enc.next_free_[child_level];
      uint32_t cursor = start;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        enc.jnum_[c] = cursor++;
        next.push_back(c);
      }
      enc.child_next_[u] = cursor;
      enc.child_end_[u] = start + count + gap;
      enc.next_free_[child_level] = enc.child_end_[u];
    }
    current = std::move(next);
    ++level;
  }
  return enc;
}

size_t JDeweyBuilder::InsertAssign(const XmlTree& tree, NodeId node,
                                   uint32_t gap, JDeweyEncoding* enc) {
  NodeId ignored;
  return InsertAssign(tree, node, gap, enc, &ignored);
}

size_t JDeweyBuilder::InsertAssign(const XmlTree& tree, NodeId node,
                                   uint32_t gap, JDeweyEncoding* enc,
                                   NodeId* reencoded_root) {
  assert(node == tree.node_count() - 1 &&
         "InsertAssign must follow the AddChild that created `node`");
  // Grow the per-node arrays for the new node.
  enc->jnum_.push_back(0);
  enc->child_next_.push_back(0);
  enc->child_end_.push_back(0);
  return AssignNewNode(tree, node, gap, enc, reencoded_root);
}

size_t JDeweyBuilder::ExtendAssign(const XmlTree& tree, uint32_t gap,
                                   JDeweyEncoding* enc,
                                   NodeId* reencoded_root) {
  *reencoded_root = kInvalidNode;
  size_t old_count = enc->jnum_.size();
  size_t n = tree.node_count();
  assert(old_count <= n && "encoding covers nodes the tree does not have");
  enc->jnum_.resize(n, 0);
  enc->child_next_.resize(n, 0);
  enc->child_end_.resize(n, 0);

  size_t changed = 0;
  for (NodeId node = static_cast<NodeId>(old_count); node < n; ++node) {
    // A re-encode triggered by an earlier insert may already have numbered
    // this node (ReencodeSubtree walks tree links, which reach all current
    // nodes of the subtree, numbered or not). Any numbering that satisfies
    // the ordering requirements is valid; keep it.
    if (enc->jnum_[node] != 0) continue;
    NodeId moved = kInvalidNode;
    changed += AssignNewNode(tree, node, gap, enc, &moved);
    if (moved != kInvalidNode &&
        (*reencoded_root == kInvalidNode || moved < *reencoded_root)) {
      *reencoded_root = moved;
    }
  }
  return changed;
}

size_t JDeweyBuilder::AssignNewNode(const XmlTree& tree, NodeId node,
                                    uint32_t gap, JDeweyEncoding* enc,
                                    NodeId* reencoded_root) {
  *reencoded_root = kInvalidNode;
  uint32_t node_level = tree.level(node);
  if (enc->next_free_.size() <= node_level + 1) {
    enc->next_free_.resize(node_level + 2, 1);
  }

  NodeId parent = tree.parent(node);
  assert(parent != kInvalidNode && "cannot insert a second root");
  if (enc->child_next_[parent] < enc->child_end_[parent]) {
    enc->jnum_[node] = enc->child_next_[parent]++;
    // The new node has no reserved range of its own; a child inserted under
    // it later triggers the re-encode path.
    enc->child_next_[node] = enc->child_end_[node] = 0;
    return 1;
  }

  // Reserved range exhausted: part of the tree must move to the end of its
  // levels (the paper's partial re-encoding). Moving the subtree rooted at
  // `a` is order-safe only when a's parent already owns the topmost child
  // range of a's level — otherwise some node numbered above the parent has
  // children, and handing a a fresh end-of-level number would break
  // requirement 2 one level up. Climb to the lowest safely movable
  // ancestor (the root is always safe: it is alone on level 1).
  NodeId a = node;
  while (true) {
    NodeId g = tree.parent(a);
    if (g == kInvalidNode) break;  // a is the root: full re-encode
    uint32_t a_level = tree.level(a);
    if (enc->child_end_[g] != 0 &&
        enc->child_end_[g] == enc->next_free_[a_level]) {
      break;  // subtree(a) can move without disturbing g's level
    }
    a = g;
  }
  if (a == node) {
    // Fast path: the exhausted parent owns the topmost range of the new
    // node's level. Extend the range in place and reserve a fresh gap.
    uint32_t l = node_level;
    enc->jnum_[node] = enc->next_free_[l]++;
    enc->child_next_[parent] = enc->next_free_[l];
    enc->child_end_[parent] = enc->next_free_[l] + gap;
    enc->next_free_[l] = enc->child_end_[parent];
    return 1;
  }
  *reencoded_root = a;
  return ReencodeSubtree(tree, a, gap, enc);
}

size_t JDeweyBuilder::ReencodeSubtree(const XmlTree& tree, NodeId root,
                                      uint32_t gap, JDeweyEncoding* enc) {
  // Move the subtree to the end of every level: the subtree root takes the
  // next free number at its level, and each parent hands out a fresh
  // contiguous range (with a new reserved gap) at the child level.
  size_t changed = 0;
  uint32_t root_level = tree.level(root);
  enc->jnum_[root] = enc->next_free_[root_level]++;
  ++changed;

  // The move was safe because root's parent owned the topmost child range
  // of this level; re-grant it a fresh range above the moved node so it
  // still does. Without this, the next overflow anywhere else on the level
  // finds no safely movable ancestor below the tree root and escalates to
  // a full re-encode.
  NodeId g = tree.parent(root);
  if (g != kInvalidNode) {
    enc->child_next_[g] = enc->next_free_[root_level];
    enc->child_end_[g] = enc->next_free_[root_level] + gap;
    enc->next_free_[root_level] = enc->child_end_[g];
  }

  std::vector<NodeId> current = {root};
  uint32_t level = root_level;
  while (!current.empty()) {
    std::vector<NodeId> next;
    uint32_t child_level = level + 1;
    if (enc->next_free_.size() <= child_level) {
      enc->next_free_.resize(child_level + 1, 1);
    }
    for (NodeId u : current) {
      uint32_t count = 0;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        ++count;
      }
      uint32_t start = enc->next_free_[child_level];
      uint32_t cursor = start;
      for (NodeId c = tree.node(u).first_child; c != kInvalidNode;
           c = tree.node(c).next_sibling) {
        enc->jnum_[c] = cursor++;
        next.push_back(c);
        ++changed;
      }
      enc->child_next_[u] = cursor;
      enc->child_end_[u] = start + count + gap;
      enc->next_free_[child_level] = enc->child_end_[u];
    }
    current = std::move(next);
    ++level;
  }
  return changed;
}

Status JDeweyBuilder::SaveEncoding(const JDeweyEncoding& enc,
                                   const std::string& path) {
  std::string body;
  varint::PutU64(&body, enc.jnum_.size());
  for (uint32_t v : enc.jnum_) varint::PutU32(&body, v);
  for (uint32_t v : enc.child_next_) varint::PutU32(&body, v);
  for (uint32_t v : enc.child_end_) varint::PutU32(&body, v);
  varint::PutU64(&body, enc.next_free_.size());
  for (uint32_t v : enc.next_free_) varint::PutU32(&body, v);

  std::string out;
  out.append(kEncodingMagic, kEncodingMagicSize);
  out.append(body);
  PutFixed32(&out, crc32c::Compute(body.data(), body.size()));

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  size_t written = std::fwrite(out.data(), 1, out.size(), f);
  bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != out.size() || !flushed)
    return Status::IoError("short write of encoding snapshot " + path);
  return Status::Ok();
}

StatusOr<JDeweyEncoding> JDeweyBuilder::LoadEncoding(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string data(size < 0 ? 0 : static_cast<size_t>(size), '\0');
  size_t got = data.empty() ? 0 : std::fread(&data[0], 1, data.size(), f);
  std::fclose(f);
  if (got != data.size()) return Status::IoError("short read of " + path);

  if (data.size() < kEncodingMagicSize + 4 ||
      std::memcmp(data.data(), kEncodingMagic, kEncodingMagicSize) != 0)
    return Status::Corruption("bad encoding snapshot magic in " + path);
  std::string body =
      data.substr(kEncodingMagicSize, data.size() - kEncodingMagicSize - 4);
  uint32_t stored_crc = ReadFixed32(data.data() + data.size() - 4);
  if (crc32c::Compute(body.data(), body.size()) != stored_crc)
    return Status::Corruption("encoding snapshot checksum mismatch in " +
                              path);

  JDeweyEncoding enc;
  size_t pos = 0;
  uint64_t node_count = 0;
  if (!varint::GetU64(body, &pos, &node_count).ok() ||
      node_count > body.size())
    return Status::Corruption("encoding snapshot truncated: " + path);
  auto read_array = [&](std::vector<uint32_t>* out, uint64_t count) {
    out->resize(count);
    for (uint64_t i = 0; i < count; ++i) {
      if (!varint::GetU32(body, &pos, &(*out)[i]).ok()) return false;
    }
    return true;
  };
  uint64_t level_count = 0;
  if (!read_array(&enc.jnum_, node_count) ||
      !read_array(&enc.child_next_, node_count) ||
      !read_array(&enc.child_end_, node_count) ||
      !varint::GetU64(body, &pos, &level_count).ok() ||
      level_count > body.size() ||
      !read_array(&enc.next_free_, level_count) || pos != body.size())
    return Status::Corruption("encoding snapshot truncated: " + path);
  return enc;
}

}  // namespace xtopk
