file(REMOVE_RECURSE
  "CMakeFiles/xml_xml_tree_test.dir/xml/xml_tree_test.cc.o"
  "CMakeFiles/xml_xml_tree_test.dir/xml/xml_tree_test.cc.o.d"
  "xml_xml_tree_test"
  "xml_xml_tree_test.pdb"
  "xml_xml_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_xml_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
