#include "workload/vocab.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

namespace xtopk {

Vocab::Vocab(size_t size) {
  // Base-21 encoding alternating consonants and vowels: unique, ASCII,
  // survives the tokenizer unchanged, never collides with planted terms
  // (those use their own prefixes).
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwxyz";  // 21
  static constexpr char kVowels[] = "aeiou";                      // 5
  words_.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    std::string w = "w";
    size_t v = i;
    for (int pos = 0; pos < 6 || v > 0; ++pos) {
      if (pos % 2 == 0) {
        w.push_back(kConsonants[v % 21]);
        v /= 21;
      } else {
        w.push_back(kVowels[v % 5]);
        v /= 5;
      }
      if (pos >= 5 && v == 0) break;
    }
    words_.push_back(std::move(w));
  }
}

void PlantTerms(XmlTree* tree, const std::vector<NodeId>& targets,
                const std::vector<PlantedTerm>& terms, Rng* rng) {
  // Per planted term: the set of targets carrying it (for correlation).
  std::unordered_map<std::string, std::vector<NodeId>> carriers;
  for (const PlantedTerm& term : terms) {
    uint32_t want =
        std::min<uint32_t>(term.frequency,
                           static_cast<uint32_t>(targets.size()));
    std::unordered_set<NodeId> chosen;
    const std::vector<NodeId>* correlated = nullptr;
    if (!term.correlate_with.empty()) {
      auto it = carriers.find(term.correlate_with);
      assert(it != carriers.end() &&
             "correlate_with must reference an earlier planted term");
      correlated = &it->second;
    }
    uint64_t attempts = 0;
    while (chosen.size() < want) {
      // With correlation 1.0 and a small carrier set the correlated pool
      // can saturate; degrade to uniform picks rather than spin.
      bool force_uniform = ++attempts > 20ull * want + 1000;
      NodeId target;
      if (!force_uniform && correlated != nullptr && !correlated->empty() &&
          rng->NextBernoulli(term.correlation)) {
        target = (*correlated)[rng->NextBounded(correlated->size())];
      } else {
        target = targets[rng->NextBounded(targets.size())];
      }
      if (chosen.insert(target).second) {
        tree->AppendText(target, term.term);
      }
    }
    std::vector<NodeId> list(chosen.begin(), chosen.end());
    std::sort(list.begin(), list.end());
    carriers[term.term] = std::move(list);
  }
}

}  // namespace xtopk
