#include "btree/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "util/rng.h"

namespace xtopk {
namespace {

std::string Key(uint32_t v) {
  char buf[5];
  buf[0] = static_cast<char>((v >> 24) & 0xFF);
  buf[1] = static_cast<char>((v >> 16) & 0xFF);
  buf[2] = static_cast<char>((v >> 8) & 0xFF);
  buf[3] = static_cast<char>(v & 0xFF);
  return std::string(buf, 4);
}

TEST(BTreeTest, InsertAndFind) {
  BTree tree(8);
  for (uint32_t i = 0; i < 1000; ++i) tree.Insert(Key(i * 2), i);
  EXPECT_EQ(tree.size(), 1000u);
  ASSERT_TRUE(tree.Validate().ok());
  for (uint32_t i = 0; i < 1000; ++i) {
    const uint64_t* v = tree.Find(Key(i * 2));
    ASSERT_NE(v, nullptr) << i;
    EXPECT_EQ(*v, i);
    EXPECT_EQ(tree.Find(Key(i * 2 + 1)), nullptr);
  }
}

TEST(BTreeTest, OverwriteKeepsSize) {
  BTree tree(8);
  tree.Insert("k", 1);
  tree.Insert("k", 2);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Find("k"), 2u);
}

TEST(BTreeTest, LowerBoundAndIteration) {
  BTree tree(6);
  for (uint32_t i = 1; i <= 100; ++i) tree.Insert(Key(i * 10), i);
  auto it = tree.LowerBound(Key(55));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  it = tree.LowerBound(Key(60));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(60));
  // Full ascending iteration from Begin.
  it = tree.Begin();
  uint32_t expect = 1;
  while (it.Valid()) {
    EXPECT_EQ(it.key(), Key(expect * 10));
    it.Next();
    ++expect;
  }
  EXPECT_EQ(expect, 101u);
}

TEST(BTreeTest, LowerBoundPastEndInvalid) {
  BTree tree(6);
  tree.Insert(Key(5), 1);
  EXPECT_FALSE(tree.LowerBound(Key(6)).Valid());
}

TEST(BTreeTest, PrevWalksBackwards) {
  BTree tree(4);
  for (uint32_t i = 0; i < 50; ++i) tree.Insert(Key(i), i);
  auto it = tree.LowerBound(Key(25));
  ASSERT_TRUE(it.Valid());
  it.Prev();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(24));
  // Walk all the way back.
  uint32_t expect = 24;
  while (it.Valid()) {
    EXPECT_EQ(it.key(), Key(expect));
    it.Prev();
    if (expect == 0) break;
    --expect;
  }
  EXPECT_EQ(expect, 0u);
}

TEST(BTreeTest, LastReturnsMaximum) {
  BTree tree(4);
  EXPECT_FALSE(tree.Last().Valid());
  for (uint32_t i = 0; i < 77; ++i) tree.Insert(Key(i * 3), i);
  auto it = tree.Last();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), Key(76 * 3));
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.Find("x"), nullptr);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.LowerBound("a").Valid());
  EXPECT_TRUE(tree.Validate().ok());
}

TEST(BTreeTest, RandomizedAgainstStdMap) {
  Rng rng(2024);
  BTree tree(16);
  std::map<std::string, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    uint32_t k = static_cast<uint32_t>(rng.NextBounded(50000));
    tree.Insert(Key(k), i);
    reference[Key(k)] = static_cast<uint64_t>(i);
  }
  EXPECT_EQ(tree.size(), reference.size());
  ASSERT_TRUE(tree.Validate().ok());
  // Point lookups.
  for (int i = 0; i < 2000; ++i) {
    uint32_t k = static_cast<uint32_t>(rng.NextBounded(50000));
    auto ref = reference.find(Key(k));
    const uint64_t* got = tree.Find(Key(k));
    if (ref == reference.end()) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, ref->second);
    }
  }
  // Lower-bound probes.
  for (int i = 0; i < 2000; ++i) {
    uint32_t k = static_cast<uint32_t>(rng.NextBounded(51000));
    auto ref = reference.lower_bound(Key(k));
    auto got = tree.LowerBound(Key(k));
    if (ref == reference.end()) {
      EXPECT_FALSE(got.Valid());
    } else {
      ASSERT_TRUE(got.Valid());
      EXPECT_EQ(got.key(), ref->first);
    }
  }
  // Full scan order.
  auto it = tree.Begin();
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), key);
    EXPECT_EQ(it.value(), value);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  BTree tree(16);
  for (uint32_t i = 0; i < 10000; ++i) tree.Insert(Key(i), i);
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 6u);
}

TEST(BTreeTest, EncodedSizeScalesWithEntries) {
  BTree small(64), large(64);
  for (uint32_t i = 0; i < 100; ++i) small.Insert(Key(i), i);
  for (uint32_t i = 0; i < 10000; ++i) large.Insert(Key(i), i);
  EXPECT_GT(large.EncodedSizeBytes(), small.EncodedSizeBytes() * 50);
}

}  // namespace
}  // namespace xtopk
