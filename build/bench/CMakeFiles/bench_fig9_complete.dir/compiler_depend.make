# Empty compiler generated dependencies file for bench_fig9_complete.
# This may be replaced when dependencies are built.
