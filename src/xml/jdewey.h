#ifndef XTOPK_XML_JDEWEY_H_
#define XTOPK_XML_JDEWEY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// A JDewey sequence: the vector of JDewey numbers on the root-to-node path
/// (paper §III-A). seq[0] is the root's number (level 1), seq.back() the
/// node's own number. Unlike a Dewey id, the pair (level, seq[level-1])
/// uniquely identifies a node in the whole tree.
using JDeweySeq = std::vector<uint32_t>;

/// A node identified positionally: JDewey number `value` at 1-based `level`.
struct JNodeRef {
  uint32_t level = 0;
  uint32_t value = 0;

  bool operator==(const JNodeRef& other) const {
    return level == other.level && value == other.value;
  }
};

/// JDewey order (paper §III-A): S1 < S2 iff some position differs with
/// S1(j) < S2(j), or S1 is a proper prefix of S2. By Property 3.1 this
/// coincides with plain lexicographic comparison.
int CompareJDewey(const JDeweySeq& a, const JDeweySeq& b);

/// LCA of two nodes given their sequences: the largest i with
/// S1(i) == S2(i) names the LCA directly (no common-prefix matching).
/// Returns nullopt if the sequences share no component (different trees).
std::optional<JNodeRef> JDeweyLca(const JDeweySeq& a, const JDeweySeq& b);

/// "3.5.2" formatting.
std::string JDeweySeqToString(const JDeweySeq& seq);

/// The JDewey number assignment for one tree. Numbers are unique per level
/// and order-consistent across levels (paper §III-A requirements 1 and 2).
/// Built and maintained by JDeweyBuilder.
class JDeweyEncoding {
 public:
  JDeweyEncoding() = default;

  /// JDewey number of `id`.
  uint32_t NumberOf(NodeId id) const { return jnum_[id]; }

  /// JDewey sequence of `id` (walks the parent chain; index builders that
  /// touch every node should DFS with an incremental path instead).
  JDeweySeq SequenceOf(const XmlTree& tree, NodeId id) const;

  /// Remaining reserved child slots of `id` (0 for nodes created by dynamic
  /// insertion, which have no reserved range until a re-encode).
  uint32_t ReservedSlots(NodeId id) const {
    return child_end_[id] - child_next_[id];
  }

  /// First unassigned number at `level` (1-based).
  uint32_t NextFreeAt(uint32_t level) const {
    return level < next_free_.size() ? next_free_[level] : 1;
  }

  size_t node_count() const { return jnum_.size(); }

  /// Verifies both JDewey requirements over the whole tree:
  /// (1) numbers unique within each level;
  /// (2) parents' per-level order implies children's order.
  /// O(n log n); used by tests and by debug builds after maintenance ops.
  Status Validate(const XmlTree& tree) const;

 private:
  friend class JDeweyBuilder;

  std::vector<uint32_t> jnum_;        // per node
  std::vector<uint32_t> child_next_;  // next reserved child number, per node
  std::vector<uint32_t> child_end_;   // end of reserved range, per node
  std::vector<uint32_t> next_free_;   // per level, index 0 unused
};

}  // namespace xtopk

#endif  // XTOPK_XML_JDEWEY_H_
