#ifndef XTOPK_STORAGE_DECODED_CACHE_H_
#define XTOPK_STORAGE_DECODED_CACHE_H_

#include <cstdint>
#include <memory>
#include <variant>
#include <vector>

#include "storage/column.h"
#include "storage/sharded_lru.h"

namespace xtopk {

/// Cache key: one decoded artifact of one inverted list. `column_id` is the
/// stable id of the list (the disk directory's term id), `block` selects
/// which decode product: a 1-based column level, or one of the reserved
/// pseudo-blocks for the per-row lengths / scores streams. `sub` keys the
/// granularity within the level: 0 is the whole decoded column, 1 + b is
/// the decoded fragment of physical block b of a group-varint column — so
/// a partial (skip) decode caches per block and later queries reassemble
/// wider ranges from fragments without touching the codec again.
struct DecodedBlockKey {
  uint64_t column_id = 0;
  uint32_t block = 0;
  uint32_t sub = 0;

  bool operator==(const DecodedBlockKey& other) const {
    return column_id == other.column_id && block == other.block &&
           sub == other.sub;
  }
};

struct DecodedBlockKeyHash {
  size_t operator()(const DecodedBlockKey& key) const {
    uint64_t mixed = (static_cast<uint64_t>(key.block) << 32) | key.sub;
    return static_cast<size_t>((key.column_id * 0x9e3779b97f4a7c15ull) ^
                               (mixed * 0xff51afd7ed558ccdull));
  }
};

/// LRU cache of *decoded* index blocks, sitting above the page-level
/// BufferPool (DESIGN.md "Concurrency & caching"). A buffer-pool hit still
/// pays varint/delta/RLE decode on every access; this cache keeps the
/// decoded RLE-run vectors (and the per-row lengths/scores streams) so a
/// repeated keyword list is materialized by a memcpy-cheap copy instead.
///
/// Capacity is a byte budget over the decoded payloads; eviction is LRU per
/// shard. A budget of zero disables the cache (every Get misses, Put drops
/// the entry), which benches use as the ablation baseline. Thread-safe;
/// payloads are immutable shared_ptrs, so readers never block each other on
/// anything but a shard's map lock.
class DecodedBlockCache {
 public:
  /// Pseudo-block ids for the non-column streams of a list.
  static constexpr uint32_t kLengthsBlock = 0xFFFFFFFFu;
  static constexpr uint32_t kScoresBlock = 0xFFFFFFFEu;

  static constexpr size_t kDefaultShards = 8;

  explicit DecodedBlockCache(size_t byte_budget,
                             size_t shards = kDefaultShards);

  std::shared_ptr<const Column> GetColumn(uint64_t column_id, uint32_t level);
  void PutColumn(uint64_t column_id, uint32_t level,
                 std::shared_ptr<const Column> column);

  /// Per-physical-block fragments of a group-varint column (skip decodes).
  /// `block_idx` is the 0-based block within the level's encoded column.
  std::shared_ptr<const Column> GetColumnBlock(uint64_t column_id,
                                               uint32_t level,
                                               uint32_t block_idx);
  void PutColumnBlock(uint64_t column_id, uint32_t level, uint32_t block_idx,
                      std::shared_ptr<const Column> fragment);

  std::shared_ptr<const std::vector<uint16_t>> GetLengths(uint64_t column_id);
  void PutLengths(uint64_t column_id,
                  std::shared_ptr<const std::vector<uint16_t>> lengths);

  std::shared_ptr<const std::vector<float>> GetScores(uint64_t column_id);
  void PutScores(uint64_t column_id,
                 std::shared_ptr<const std::vector<float>> scores);

  /// Hit/miss/eviction counters live in the metrics registry
  /// (`storage.decoded.hits` / `.misses` / `.evictions`, aggregated across
  /// instances); scope to one cache by diffing registry values.
  size_t bytes_used() const { return cache_.cost_used(); }
  size_t entry_count() const { return cache_.entry_count(); }
  size_t byte_budget() const { return byte_budget_; }
  bool enabled() const { return byte_budget_ > 0; }

  void ResetStats() { cache_.ResetStats(); }
  void Clear() { cache_.Clear(); }

 private:
  using Value = std::variant<std::shared_ptr<const Column>,
                             std::shared_ptr<const std::vector<uint16_t>>,
                             std::shared_ptr<const std::vector<float>>>;

  size_t byte_budget_;
  ShardedLruCache<DecodedBlockKey, Value, DecodedBlockKeyHash> cache_;
};

}  // namespace xtopk

#endif  // XTOPK_STORAGE_DECODED_CACHE_H_
