add_test([=[ConcurrencyTest.ParallelQueriesOverSharedIndex]=]  /root/repo/build/tests/core_concurrency_test [==[--gtest_filter=ConcurrencyTest.ParallelQueriesOverSharedIndex]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ConcurrencyTest.ParallelQueriesOverSharedIndex]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  core_concurrency_test_TESTS ConcurrencyTest.ParallelQueriesOverSharedIndex)
