#include "workload/dblp_gen.h"

#include <string>

#include "util/rng.h"
#include "workload/zipf.h"

namespace xtopk {

DblpCorpus GenerateDblp(const DblpGenOptions& options) {
  DblpCorpus corpus;
  XmlTree& tree = corpus.tree;
  Vocab vocab(options.vocab_size);
  ZipfSampler zipf(options.vocab_size, options.zipf_theta, options.seed);
  Rng rng(options.seed ^ 0x9E3779B97F4A7C15ULL);

  // Author pool: fixed two-word names, reused Zipf-skewed across papers.
  std::vector<std::string> authors;
  authors.reserve(options.author_pool);
  for (uint32_t a = 0; a < options.author_pool; ++a) {
    authors.push_back(vocab.word(rng.NextBounded(vocab.size())) + " " +
                      vocab.word(rng.NextBounded(vocab.size())));
  }
  ZipfSampler author_zipf(options.author_pool == 0 ? 1 : options.author_pool,
                          1.0, options.seed ^ 0x1234);

  NodeId root = tree.CreateRoot("dblp");
  for (uint32_t c = 0; c < options.num_conferences; ++c) {
    NodeId conf = tree.AddChild(root, "conference");
    tree.AddAttribute(conf, "name", "conf" + std::to_string(c));
    for (uint32_t y = 0; y < options.years_per_conference; ++y) {
      NodeId year = tree.AddChild(conf, "year");
      tree.AppendText(year, "y" + std::to_string(1998 + y));
      for (uint32_t p = 0; p < options.papers_per_year; ++p) {
        NodeId paper = tree.AddChild(year, "paper");
        NodeId title = tree.AddChild(paper, "title");
        std::string text;
        for (uint32_t w = 0; w < options.title_words; ++w) {
          if (w > 0) text += ' ';
          text += vocab.word(zipf.Next());
        }
        tree.AppendText(title, text);
        corpus.titles.push_back(title);
        if (options.abstract_words > 0) {
          NodeId abstract = tree.AddChild(paper, "abstract");
          std::string body;
          for (uint32_t w = 0; w < options.abstract_words; ++w) {
            if (w > 0) body += ' ';
            body += vocab.word(zipf.Next());
          }
          tree.AppendText(abstract, body);
        }
        NodeId author_list = tree.AddChild(paper, "authors");
        for (uint32_t a = 0; a < options.authors_per_paper; ++a) {
          NodeId author = tree.AddChild(author_list, "author");
          tree.AppendText(author, authors.empty()
                                      ? vocab.word(zipf.Next())
                                      : authors[author_zipf.Next()]);
        }
      }
    }
  }

  PlantTerms(&tree, corpus.titles, options.planted, &rng);
  return corpus;
}

}  // namespace xtopk
