# Empty dependencies file for core_join_trace_test.
# This may be replaced when dependencies are built.
