#ifndef XTOPK_INDEX_SEGMENT_BUILDER_H_
#define XTOPK_INDEX_SEGMENT_BUILDER_H_

#include <vector>

#include "index/index_builder.h"
#include "index/jdewey_index.h"
#include "storage/segment_manifest.h"
#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Builds the partial inverted index of one segment: the column-oriented
/// lists of exactly the nodes in `nodes`, numbered by the SHARED (possibly
/// incrementally maintained) encoding `enc` rather than a fresh assignment.
///
/// Two deliberate differences from IndexBuilder::BuildJDeweyIndex:
///
///  - Scores carry the RAW term frequency of each occurrence, not the
///    normalized tf·idf local score. Normalization needs corpus-global
///    statistics (per-term df, the global max raw score, the corpus node
///    count) that one segment cannot know — the SegmentedIndex applies the
///    transform at query time from the union of every segment's manifest,
///    which reproduces the single-index scores bit for bit because
///    RawLocalScore is monotone in tf for a fixed df.
///
///  - Rows are sorted by actual JDewey sequence (CompareJDewey), not by
///    document order: under a maintained encoding a partially re-encoded
///    subtree can put creation order out of value order, and Property 3.1
///    (non-decreasing column values) must hold per segment for the
///    cursor-layer merge to be a plain sorted merge.
///
/// The (level, value) -> node mapping covers `nodes` plus all their
/// ancestors, so ELCA/SLCA answers that land above the segment's own nodes
/// still materialize.
JDeweyIndex BuildSegmentIndex(const XmlTree& tree, const JDeweyEncoding& enc,
                              const std::vector<NodeId>& nodes,
                              const IndexBuildOptions& options);

/// Derives the sidecar manifest of a segment index whose scores carry raw
/// term frequencies. `covered_nodes` is left 0 — the caller knows the
/// covered-node count, the index does not.
SegmentManifest ManifestFromSegment(const JDeweyIndex& segment);

}  // namespace xtopk

#endif  // XTOPK_INDEX_SEGMENT_BUILDER_H_
