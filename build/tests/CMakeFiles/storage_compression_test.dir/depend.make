# Empty dependencies file for storage_compression_test.
# This may be replaced when dependencies are built.
