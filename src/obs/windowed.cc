#include "obs/windowed.h"

#include <chrono>
#include <cstdio>

namespace xtopk {
namespace obs {

uint64_t MonotonicNowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void WindowedHistogram::RotateSlot(Slot& slot, uint64_t epoch) {
  bool expected = false;
  while (!slot.rotating.compare_exchange_weak(expected, true,
                                              std::memory_order_acquire)) {
    expected = false;
  }
  // Re-check under the lock: another writer may have rotated first. Never
  // rotate backwards — a straggler with an older epoch keeps the newer slot.
  uint64_t current = slot.epoch.load(std::memory_order_relaxed);
  if (current == kIdleEpoch || (current < epoch && epoch != kIdleEpoch)) {
    for (auto& bucket : slot.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    slot.sum.store(0, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_release);
  }
  slot.rotating.store(false, std::memory_order_release);
}

void WindowedHistogram::RecordAt(uint64_t value, uint64_t now_us) {
  uint64_t epoch = now_us / slot_width_us_;
  Slot& slot = SlotFor(epoch);
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    RotateSlot(slot, epoch);
  }
  slot.buckets[Histogram::BucketOf(value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
}

WindowedHistogram::WindowSnapshot WindowedHistogram::WindowAt(
    uint64_t window_us, uint64_t now_us) const {
  WindowSnapshot snapshot;
  snapshot.window_us = window_us;
  uint64_t now_epoch = now_us / slot_width_us_;
  // Slots whose *start* lies within (now - window, now]: the current slot
  // plus enough full slots to cover the window.
  uint64_t span = window_us / slot_width_us_;
  uint64_t min_epoch = now_epoch >= span ? now_epoch - span : 0;
  for (const Slot& slot : slots_) {
    uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kIdleEpoch || epoch < min_epoch || epoch > now_epoch) {
      continue;
    }
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = slot.buckets[i].load(std::memory_order_relaxed);
      snapshot.buckets[i] += c;
      snapshot.count += c;
    }
    snapshot.sum += slot.sum.load(std::memory_order_relaxed);
  }
  snapshot.p50 = PercentileFromBuckets(snapshot.buckets, 0.50);
  snapshot.p99 = PercentileFromBuckets(snapshot.buckets, 0.99);
  snapshot.p999 = PercentileFromBuckets(snapshot.buckets, 0.999);
  double seconds = static_cast<double>(window_us) / 1e6;
  snapshot.rate_per_sec =
      seconds > 0 ? static_cast<double>(snapshot.count) / seconds : 0.0;
  snapshot.mean = snapshot.count > 0 ? static_cast<double>(snapshot.sum) /
                                           static_cast<double>(snapshot.count)
                                     : 0.0;
  return snapshot;
}

void WindowedHistogram::WindowSnapshot::AppendJson(std::string* out) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\":%llu,\"sum\":%llu,\"rate_per_sec\":%.4f,"
                "\"mean\":%.4f",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sum), rate_per_sec, mean);
  *out += buf;
  // An idle window has no percentiles: emit null, never the -1 sentinel
  // (a dashboard would plot it as a negative latency).
  auto append_percentile = [out](const char* key, double value) {
    char field[48];
    if (value < 0) {
      std::snprintf(field, sizeof(field), ",\"%s\":null", key);
    } else {
      std::snprintf(field, sizeof(field), ",\"%s\":%.4f", key, value);
    }
    *out += field;
  };
  append_percentile("p50", p50);
  append_percentile("p99", p99);
  append_percentile("p999", p999);
  out->push_back('}');
}

void WindowedCounter::RotateSlot(Slot& slot, uint64_t epoch) {
  bool expected = false;
  while (!slot.rotating.compare_exchange_weak(expected, true,
                                              std::memory_order_acquire)) {
    expected = false;
  }
  uint64_t current = slot.epoch.load(std::memory_order_relaxed);
  if (current == ~0ull || current < epoch) {
    slot.value.store(0, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_release);
  }
  slot.rotating.store(false, std::memory_order_release);
}

void WindowedCounter::AddAt(uint64_t delta, uint64_t now_us) {
  uint64_t epoch = now_us / slot_width_us_;
  Slot& slot = slots_[static_cast<size_t>(epoch % kSlots)];
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    RotateSlot(slot, epoch);
  }
  slot.value.fetch_add(delta, std::memory_order_relaxed);
}

uint64_t WindowedCounter::SumInWindowAt(uint64_t window_us,
                                        uint64_t now_us) const {
  uint64_t now_epoch = now_us / slot_width_us_;
  uint64_t span = window_us / slot_width_us_;
  uint64_t min_epoch = now_epoch >= span ? now_epoch - span : 0;
  uint64_t total = 0;
  for (const Slot& slot : slots_) {
    uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == ~0ull || epoch < min_epoch || epoch > now_epoch) continue;
    total += slot.value.load(std::memory_order_relaxed);
  }
  return total;
}

double WindowedCounter::RateInWindowAt(uint64_t window_us,
                                       uint64_t now_us) const {
  double seconds = static_cast<double>(window_us) / 1e6;
  if (seconds <= 0) return 0.0;
  return static_cast<double>(SumInWindowAt(window_us, now_us)) / seconds;
}

}  // namespace obs
}  // namespace xtopk
