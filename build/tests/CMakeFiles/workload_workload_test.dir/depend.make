# Empty dependencies file for workload_workload_test.
# This may be replaced when dependencies are built.
