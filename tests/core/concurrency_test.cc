// Concurrent read-path test: the index structures are immutable after
// construction, and every search object keeps its own state, so parallel
// queries over one shared index must be safe and deterministic. (Run under
// TSan when available; here we assert determinism of results.)

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

TEST(ConcurrencyTest, ParallelQueriesOverSharedIndex) {
  XmlTree tree = testing::MakeRandomTree(321, 1500, 4, 7,
                                         {"alpha", "beta", "gamma"}, 0.12);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  // Reference results, single-threaded.
  JoinSearch ref_join(jindex);
  auto ref_complete = ref_join.Search({"alpha", "beta"});
  TopKSearchOptions topk_options;
  topk_options.k = 5;
  TopKSearch ref_topk(topk_index, topk_options);
  auto ref_top = ref_topk.Search({"alpha", "beta", "gamma"});

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        if ((t + i) % 2 == 0) {
          JoinSearch search(jindex);
          auto got = search.Search({"alpha", "beta"});
          if (got.size() != ref_complete.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].node != ref_complete[j].node ||
                got[j].score != ref_complete[j].score) {
              ++mismatches;
              break;
            }
          }
        } else {
          TopKSearch search(topk_index, topk_options);
          auto got = search.Search({"alpha", "beta", "gamma"});
          if (got.size() != ref_top.size()) {
            ++mismatches;
            continue;
          }
          for (size_t j = 0; j < got.size(); ++j) {
            if (got[j].score != ref_top[j].score) {
              ++mismatches;
              break;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace xtopk
