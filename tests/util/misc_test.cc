// Small utilities not covered elsewhere: result-sorting helpers, the timer,
// and IntervalSet::Clear.

#include <gtest/gtest.h>

#include "core/search_result.h"
#include "util/interval_set.h"
#include "util/timer.h"

namespace xtopk {
namespace {

TEST(SearchResultTest, SortByScoreDescWithTieBreak) {
  std::vector<SearchResult> results = {
      {7, 2, 0.5}, {3, 2, 0.9}, {5, 3, 0.5}, {1, 1, 0.9}};
  SortByScoreDesc(&results);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].node, 1u);  // 0.9, smaller node first
  EXPECT_EQ(results[1].node, 3u);
  EXPECT_EQ(results[2].node, 5u);  // 0.5, smaller node first
  EXPECT_EQ(results[3].node, 7u);
}

TEST(SearchResultTest, SortByNode) {
  std::vector<SearchResult> results = {{9, 1, 0.1}, {2, 1, 0.2}, {5, 1, 0.3}};
  SortByNode(&results);
  EXPECT_EQ(results[0].node, 2u);
  EXPECT_EQ(results[1].node, 5u);
  EXPECT_EQ(results[2].node, 9u);
}

TEST(SearchResultTest, EqualityIsByNode) {
  SearchResult a{4, 2, 0.5}, b{4, 3, 0.9}, c{5, 2, 0.5};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a bounded amount of work.
  volatile uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_LT(first, 5.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 100);
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), first + 1.0);
}

TEST(IntervalSetTest, ClearResets) {
  IntervalSet set;
  set.Add(1, 10);
  set.Add(20, 30);
  ASSERT_GT(set.covered(), 0u);
  set.Clear();
  EXPECT_EQ(set.covered(), 0u);
  EXPECT_EQ(set.interval_count(), 0u);
  EXPECT_EQ(set.CountOverlap(0, 100), 0u);
  set.Add(5, 6);
  EXPECT_TRUE(set.Contains(5));
}

}  // namespace
}  // namespace xtopk
