#ifndef XTOPK_TOOLS_JSON_MINI_H_
#define XTOPK_TOOLS_JSON_MINI_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xtopk_tools {

// A deliberately tiny recursive-descent JSON reader for the telemetry
// tools (replay capture files, endpoint smoke checks). Handles the JSON
// the repo's own serializers emit; it is not a general-purpose validator
// (no \uXXXX surrogate pairs, no duplicate-key detection).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Lookup helpers returning defaults on missing/mistyped keys, so callers
  // can read optional fields without ceremony.
  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double Num(const std::string& key, double fallback = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string Str(const std::string& key,
                  const std::string& fallback = "") const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string : fallback;
  }
};

class JsonParser {
 public:
  // Parses `text` into *out; false (with *error set) on malformed input.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error) {
    JsonParser parser(text);
    if (!parser.ParseValue(out)) {
      if (error != nullptr) {
        *error = "parse error at offset " + std::to_string(parser.pos_);
      }
      return false;
    }
    parser.SkipSpace();
    if (parser.pos_ != text.size()) {
      if (error != nullptr) {
        *error = "trailing bytes at offset " + std::to_string(parser.pos_);
      }
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, size_t n) {
    if (text_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            // ASCII escapes only (all this repo's serializers emit).
            out->push_back(static_cast<char>(code & 0x7f));
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') return false;
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) return false;
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true", 4);
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false", 5);
    }
    if (c == 'n') {
      out->kind = JsonValue::Kind::kNull;
      return Literal("null", 4);
    }
    // Number.
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace xtopk_tools

#endif  // XTOPK_TOOLS_JSON_MINI_H_
