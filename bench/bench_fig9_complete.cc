// Figure 9 reproduction: complete-result ELCA query time for the
// join-based algorithm vs the stack-based and index-based baselines.
//
//   (a)-(d): k = 2..5 keywords; one low-frequency keyword (10 … 10k) plus
//            k-1 high-frequency keywords (fixed at 20k here, 100k in the
//            paper); average over 10 random planted keywords per point.
//   (e)-(f): all k keywords at the same frequency (1000 / 4000).
//
// Paper shapes to reproduce:
//   * join-based ~ index-based at very low frequencies (10/100), clearly
//     ahead beyond 1000 (where the dynamic optimizer switches to merge);
//   * stack-based flat across low frequencies (bounded by the high one);
//   * equal frequencies: stack-based slightly ahead of index-based,
//     join-based ahead of both.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/indexed_lookup.h"
#include "baseline/stack_search.h"
#include "bench_util.h"
#include "core/join_search.h"

namespace {

using xtopk::bench::kLowFreqs;
using xtopk::bench::kQueriesPerPoint;

struct Measure {
  double join_ms = 0;
  double stack_ms = 0;
  double lookup_ms = 0;
};

Measure RunPoint(const xtopk::XmlTree& tree, const xtopk::JDeweyIndex& jindex,
                 const xtopk::DeweyIndex& dindex,
                 const std::vector<std::vector<std::string>>& queries) {
  Measure m;
  for (const auto& query : queries) {
    m.join_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::JoinSearchOptions options;
      options.compute_scores = false;
      xtopk::JoinSearch search(jindex, options);
      search.Search(query);
    });
    m.stack_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::StackSearchOptions options;
      options.compute_scores = false;
      xtopk::StackSearch search(tree, dindex, options);
      search.Search(query);
    });
    m.lookup_ms += xtopk::bench::TimeOnceMs([&] {
      xtopk::IndexedLookupOptions options;
      options.compute_scores = false;
      xtopk::IndexedLookupSearch search(tree, dindex, options);
      search.Search(query);
    });
  }
  m.join_ms /= queries.size();
  m.stack_ms /= queries.size();
  m.lookup_ms /= queries.size();
  return m;
}

}  // namespace

int main() {
  xtopk::bench::BenchCorpus corpus = xtopk::bench::BuildDblpBenchCorpus();
  xtopk::JDeweyIndex jindex = corpus.builder->BuildJDeweyIndex();
  xtopk::DeweyIndex dindex = corpus.builder->BuildDeweyIndex();

  std::printf(
      "=== Figure 9(a)-(d): ELCA complete set, high freq fixed at %u ===\n",
      xtopk::bench::kHighFreq);
  for (size_t k = 2; k <= xtopk::bench::kMaxK; ++k) {
    std::printf("\n-- Fig 9(%c): %zu keywords --\n", char('a' + k - 2), k);
    std::printf("%-10s %12s %12s %12s\n", "low freq", "join-based",
                "stack-based", "index-based");
    for (uint32_t f : kLowFreqs) {
      std::vector<std::vector<std::string>> queries;
      for (size_t i = 0; i < kQueriesPerPoint; ++i) {
        queries.push_back(xtopk::bench::MixedQuery(f, k, i));
      }
      Measure m = RunPoint(*corpus.tree, jindex, dindex, queries);
      std::printf("%-10u %9.3f ms %9.3f ms %9.3f ms\n", f, m.join_ms,
                  m.stack_ms, m.lookup_ms);
    }
  }

  // §V preamble: "Query execution time for the SLCA semantics is around
  // the same as the ELCA semantics for any algorithm."
  std::printf("\n=== SLCA vs ELCA (one configuration, §V claim) ===\n");
  {
    std::vector<std::vector<std::string>> queries;
    for (size_t i = 0; i < kQueriesPerPoint; ++i) {
      queries.push_back(xtopk::bench::MixedQuery(1000, 3, i));
    }
    for (xtopk::Semantics semantics :
         {xtopk::Semantics::kElca, xtopk::Semantics::kSlca}) {
      double total = 0;
      for (const auto& query : queries) {
        total += xtopk::bench::TimeOnceMs([&] {
          xtopk::JoinSearchOptions options;
          options.semantics = semantics;
          options.compute_scores = false;
          xtopk::JoinSearch search(jindex, options);
          search.Search(query);
        });
      }
      std::printf("  join-based %s: %.3f ms\n",
                  semantics == xtopk::Semantics::kElca ? "ELCA" : "SLCA",
                  total / queries.size());
    }
  }

  std::printf("\n=== Figure 9(e)-(f): equal-frequency keywords ===\n");
  int section = 0;
  for (uint32_t f : {1000u, 4000u}) {
    std::printf("\n-- Fig 9(%c): every keyword at frequency %u --\n",
                char('e' + section++), f);
    std::printf("%-10s %12s %12s %12s\n", "keywords", "join-based",
                "stack-based", "index-based");
    for (size_t k = 2; k <= xtopk::bench::kMaxK; ++k) {
      std::vector<std::vector<std::string>> queries;
      for (size_t i = 0; i < kQueriesPerPoint; ++i) {
        queries.push_back(xtopk::bench::EqualQuery(f, k, i));
      }
      Measure m = RunPoint(*corpus.tree, jindex, dindex, queries);
      std::printf("%-10zu %9.3f ms %9.3f ms %9.3f ms\n", k, m.join_ms,
                  m.stack_ms, m.lookup_ms);
    }
  }
  return 0;
}
