file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dynamic.dir/bench_ablation_dynamic.cc.o"
  "CMakeFiles/bench_ablation_dynamic.dir/bench_ablation_dynamic.cc.o.d"
  "bench_ablation_dynamic"
  "bench_ablation_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
