#ifndef XTOPK_TESTS_TESTING_CORPUS_H_
#define XTOPK_TESTS_TESTING_CORPUS_H_

#include <algorithm>
#include <string>
#include <vector>

#include "core/search_result.h"
#include "util/rng.h"
#include "xml/xml_tree.h"

namespace xtopk {
namespace testing {

/// A small hand-checked corpus used across the algorithm tests:
///
///   db                                   (level 1)
///   ├── conf                             (level 2)
///   │   ├── paper  "xml data"            (level 3)  <- direct both
///   │   ├── paper                        (level 3)
///   │   │   ├── title "xml"              (level 4)
///   │   │   └── abs   "data"             (level 4)
///   │   └── paper                        (level 3)
///   │       └── title "xml"              (level 4)
///   └── conf                             (level 2)
///       ├── paper                        (level 3)
///       │   └── title "data"             (level 4)
///       └── paper                        (level 3)
///           └── title "xml data xml"     (level 4)
///
/// ELCA({xml, data}): paper#0 (direct), paper#1 (via children),
/// title "xml data xml" — and conf#1? conf#1 contains data (under paper#3)
/// and xml only under the matched title -> after exclusion conf#1 keeps
/// "data" but loses all xml -> NOT an ELCA. conf#0: both keywords only
/// under ELCA papers -> not an ELCA. db: same -> not.
/// SLCA({xml, data}): paper#0, paper#1, title "xml data xml".
inline XmlTree MakeSmallCorpus() {
  XmlTree tree;
  NodeId db = tree.CreateRoot("db");
  NodeId conf0 = tree.AddChild(db, "conf");
  NodeId p0 = tree.AddChild(conf0, "paper");
  tree.AppendText(p0, "xml data");
  NodeId p1 = tree.AddChild(conf0, "paper");
  NodeId p1t = tree.AddChild(p1, "title");
  tree.AppendText(p1t, "xml");
  NodeId p1a = tree.AddChild(p1, "abs");
  tree.AppendText(p1a, "data");
  NodeId p2 = tree.AddChild(conf0, "paper");
  NodeId p2t = tree.AddChild(p2, "title");
  tree.AppendText(p2t, "xml");
  NodeId conf1 = tree.AddChild(db, "conf");
  NodeId p3 = tree.AddChild(conf1, "paper");
  NodeId p3t = tree.AddChild(p3, "title");
  tree.AppendText(p3t, "data");
  NodeId p4 = tree.AddChild(conf1, "paper");
  NodeId p4t = tree.AddChild(p4, "title");
  tree.AppendText(p4t, "xml data xml");
  return tree;
}

/// Node ids of MakeSmallCorpus in creation order, for readable assertions.
struct SmallCorpusIds {
  static constexpr NodeId kDb = 0;
  static constexpr NodeId kConf0 = 1;
  static constexpr NodeId kPaper0 = 2;   // "xml data"
  static constexpr NodeId kPaper1 = 3;
  static constexpr NodeId kP1Title = 4;  // "xml"
  static constexpr NodeId kP1Abs = 5;    // "data"
  static constexpr NodeId kPaper2 = 6;
  static constexpr NodeId kP2Title = 7;  // "xml"
  static constexpr NodeId kConf1 = 8;
  static constexpr NodeId kPaper3 = 9;
  static constexpr NodeId kP3Title = 10;  // "data"
  static constexpr NodeId kPaper4 = 11;
  static constexpr NodeId kP4Title = 12;  // "xml data xml"
};

/// A random labeled tree for property tests: up to `max_nodes` elements,
/// random branching, keyword tokens drawn from `terms` with probability
/// `term_prob` each per node. Deterministic per seed.
inline XmlTree MakeRandomTree(uint64_t seed, size_t max_nodes,
                              uint32_t max_children, uint32_t max_depth,
                              const std::vector<std::string>& terms,
                              double term_prob) {
  Rng rng(seed);
  XmlTree tree;
  tree.CreateRoot("r");
  std::vector<NodeId> frontier = {tree.root()};
  while (tree.node_count() < max_nodes && !frontier.empty()) {
    size_t pick = rng.NextBounded(frontier.size());
    NodeId parent = frontier[pick];
    if (tree.level(parent) >= max_depth) {
      frontier.erase(frontier.begin() + pick);
      continue;
    }
    NodeId child = tree.AddChild(parent, "n");
    frontier.push_back(child);
    // Give every node a chance to carry each term.
    for (const std::string& term : terms) {
      if (rng.NextBernoulli(term_prob)) tree.AppendText(child, term);
    }
    // Occasionally close a node so shapes vary.
    if (rng.NextBernoulli(0.2) ||
        tree.Children(parent).size() >= max_children) {
      frontier.erase(frontier.begin() + pick);
    }
  }
  return tree;
}

/// High-repetition corpus family: `copies` identical multi-node subtrees
/// (an item with props/name/payload children carrying the planted terms)
/// attached under per-group containers, interleaved with unique filler
/// items so shared and unshared structure coexist. This is the corpus
/// shape the structure-aware compression layer (DESIGN.md §15) exists
/// for: every copy of the repeated item produces identical inverted-list
/// runs that the subtree DAG shares. Deterministic per seed.
inline XmlTree MakeRepeatedSubtreeTree(uint64_t seed, size_t groups,
                                       size_t copies_per_group,
                                       const std::vector<std::string>& terms) {
  Rng rng(seed * 0xD1B54A32D192ED03ull + 11);
  XmlTree tree;
  NodeId root = tree.CreateRoot("catalog");
  for (size_t g = 0; g < groups; ++g) {
    NodeId group = tree.AddChild(root, "section");
    // The repeated item: >= 4 nodes, terms fixed per group so every copy
    // within the group is structurally identical.
    size_t t0 = rng.NextBounded(terms.size());
    size_t t1 = rng.NextBounded(terms.size());
    for (size_t c = 0; c < copies_per_group; ++c) {
      NodeId item = tree.AddChild(group, "item");
      NodeId name = tree.AddChild(item, "name");
      tree.AppendText(name, terms[t0]);
      NodeId props = tree.AddChild(item, "props");
      NodeId payload = tree.AddChild(props, "payload");
      tree.AppendText(payload, terms[t1] + " " + terms[t0]);
      // Unique filler sibling between some copies so the shared regions
      // are not wall-to-wall contiguous.
      if (rng.NextBernoulli(0.3)) {
        NodeId filler = tree.AddChild(group, "note");
        tree.AppendText(filler, terms[rng.NextBounded(terms.size())] +
                                    " u" + std::to_string(g) + "_" +
                                    std::to_string(c));
      }
    }
  }
  return tree;
}

/// Shape parameters of one seeded random corpus. Derived deterministically
/// from a seed so a failing (seed) tuple in a differential or fault sweep
/// reproduces the whole document + workload.
struct CorpusSpec {
  uint64_t seed = 0;
  size_t nodes = 0;
  uint32_t max_children = 0;
  uint32_t max_depth = 0;
  double term_prob = 0.0;
  std::vector<std::string> terms;
  /// High-repetition family (MakeHighRepetitionSpec): the tree is built
  /// from repeated identical subtrees instead of the uniform random shape.
  bool repeated = false;
  size_t rep_groups = 0;
  size_t rep_copies = 0;
};

/// Deterministic corpus spec for `seed`: tree size, fan-out, depth and
/// term density all vary with the seed so a sweep over seeds covers
/// shallow/bushy, deep/narrow, dense and sparse occurrence patterns.
inline CorpusSpec MakeCorpusSpec(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  CorpusSpec spec;
  spec.seed = seed;
  spec.nodes = 60 + rng.NextBounded(540);          // 60..599 elements
  spec.max_children = 2 + static_cast<uint32_t>(rng.NextBounded(6));
  spec.max_depth = 3 + static_cast<uint32_t>(rng.NextBounded(10));
  spec.term_prob = 0.05 + 0.01 * static_cast<double>(rng.NextBounded(30));
  static const char* kVocab[] = {"alpha", "beta", "gamma", "delta", "eps"};
  size_t term_count = 2 + rng.NextBounded(3);  // 2..4 query-able terms
  for (size_t i = 0; i < term_count; ++i) spec.terms.push_back(kVocab[i]);
  return spec;
}

/// Deterministic spec of the high-repetition family: few distinct subtree
/// shapes, many identical copies each. The differential harness runs these
/// seeds with the compressed-index configuration so the DAG/dictionary
/// layer is exercised against the exact baselines.
inline CorpusSpec MakeHighRepetitionSpec(uint64_t seed) {
  Rng rng(seed * 0xBF58476D1CE4E5B9ull + 3);
  CorpusSpec spec;
  spec.seed = seed;
  spec.repeated = true;
  spec.rep_groups = 2 + rng.NextBounded(4);    // 2..5 distinct shapes
  spec.rep_copies = 6 + rng.NextBounded(20);   // 6..25 copies each
  static const char* kVocab[] = {"alpha", "beta", "gamma", "delta", "eps"};
  size_t term_count = 2 + rng.NextBounded(3);
  for (size_t i = 0; i < term_count; ++i) spec.terms.push_back(kVocab[i]);
  return spec;
}

inline XmlTree MakeCorpusTree(const CorpusSpec& spec) {
  if (spec.repeated) {
    return MakeRepeatedSubtreeTree(spec.seed, spec.rep_groups,
                                   spec.rep_copies, spec.terms);
  }
  return MakeRandomTree(spec.seed, spec.nodes, spec.max_children,
                        spec.max_depth, spec.terms, spec.term_prob);
}

/// One query of a seeded workload.
struct WorkloadQuery {
  std::vector<std::string> keywords;
  Semantics semantics = Semantics::kElca;
  size_t k = 10;  ///< top-K cutoff when the query runs ranked
};

/// A deterministic query workload over the spec's planted terms: distinct
/// keyword subsets of varying arity, both semantics, varying K.
inline std::vector<WorkloadQuery> MakeRandomWorkload(const CorpusSpec& spec,
                                                     size_t query_count) {
  Rng rng(spec.seed * 0x2545F4914F6CDD1Dull + 7);
  std::vector<WorkloadQuery> workload;
  workload.reserve(query_count);
  for (size_t q = 0; q < query_count; ++q) {
    WorkloadQuery query;
    std::vector<std::string> pool = spec.terms;
    size_t arity = 1 + rng.NextBounded(pool.size());
    for (size_t i = 0; i < arity; ++i) {
      size_t pick = rng.NextBounded(pool.size());
      query.keywords.push_back(pool[pick]);
      pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
    }
    query.semantics = rng.NextBernoulli(0.5) ? Semantics::kElca
                                             : Semantics::kSlca;
    query.k = 1 + rng.NextBounded(12);
    workload.push_back(std::move(query));
  }
  return workload;
}

}  // namespace testing
}  // namespace xtopk

#endif  // XTOPK_TESTS_TESTING_CORPUS_H_
