#ifndef XTOPK_CORE_JOIN_PLANNER_H_
#define XTOPK_CORE_JOIN_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xtopk {

/// Join-algorithm selection policy (§III-C "dynamic optimization").
enum class JoinPolicy {
  /// Per join, pick the index join when the left side is much smaller than
  /// the right column; otherwise merge. Re-decided at every level, which is
  /// what makes the selection context-aware.
  kDynamic,
  kForceMerge,
  kForceIndex,
};

struct PlannerOptions {
  JoinPolicy policy = JoinPolicy::kDynamic;
  /// kDynamic picks the index join when
  /// left_size * index_join_ratio < right_size.
  double index_join_ratio = 16.0;
  /// Below the index-join cutoff, kDynamic gallops instead of merging when
  /// the sides are skewed: max(sizes) >= gallop_ratio * min(sizes). The
  /// linear merge is O(m + n); galloping is O(m log(n/m)), which wins once
  /// the ratio clears a small constant.
  double gallop_ratio = 8.0;
};

/// The intersection operator one join step should run (§III-C "dynamic
/// optimization", extended with the galloping middle ground).
enum class JoinAlgo {
  kMerge,   ///< 2-pointer linear merge — balanced sizes
  kGallop,  ///< exponential + binary search — skewed sizes
  kIndex,   ///< per-match binary probe of the column — tiny left side
};

/// True iff the next join step should probe (index join) rather than merge.
bool UseIndexJoin(size_t left_size, size_t right_size,
                  const PlannerOptions& options);

/// Three-way pick for the next intersection: index join when the left side
/// is far smaller than the column, galloping when the sizes are skewed by
/// at least gallop_ratio in either direction, linear merge otherwise.
JoinAlgo ChooseJoinAlgo(size_t left_size, size_t right_size,
                        const PlannerOptions& options);

/// Left-deep join order: indexes of `list_sizes` sorted ascending by size
/// ("from the shortest inverted list to the longest", §III-C).
std::vector<size_t> PlanJoinOrder(const std::vector<size_t>& list_sizes);

}  // namespace xtopk

#endif  // XTOPK_CORE_JOIN_PLANNER_H_
