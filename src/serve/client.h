#ifndef XTOPK_SERVE_CLIENT_H_
#define XTOPK_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace xtopk {
namespace serve {

/// Blocking binary-protocol client: one TCP connection, framed requests
/// out, framed responses in. Call() is the simple request/response path;
/// Send()/Receive() split it for pipelined (open-loop) load generation —
/// responses come back in completion order, so pipelining callers must
/// correlate by request_id. Not thread-safe; one client per thread.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Send one request and wait for one response.
  Status Call(const QueryRequest& request, QueryResponse* response);

  /// Fire-and-forget half of a pipelined exchange.
  Status Send(const QueryRequest& request);
  /// Blocks until the next whole response frame arrives.
  Status Receive(QueryResponse* response);

  /// Writes raw bytes on the connection — protocol-robustness tests use
  /// this to inject malformed frames no Encode* helper would produce.
  Status SendRaw(std::string_view bytes);

  /// One-shot HTTP GET against the same port (the JSON dialect).
  /// `*http_status` gets the numeric status code, `*body` the response
  /// body past the blank line.
  static Status HttpGet(const std::string& host, uint16_t port,
                        const std::string& target, int* http_status,
                        std::string* body);

 private:
  int fd_ = -1;
  std::string read_buffer_;
};

}  // namespace serve
}  // namespace xtopk

#endif  // XTOPK_SERVE_CLIENT_H_
