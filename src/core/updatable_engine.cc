#include "core/updatable_engine.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <numeric>
#include <thread>
#include <unordered_set>
#include <utility>

#include "core/search_result.h"
#include "index/disk_index.h"
#include "index/segment_builder.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/windowed.h"
#include "storage/segment_manifest.h"
#include "util/timer.h"
#include "xml/jdewey_builder.h"
#include "xml/tokenizer.h"

namespace xtopk {

namespace {

uint64_t FileBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

void RemoveSegmentFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
}

}  // namespace

UpdatableEngine::UpdatableEngine(XmlTree initial, EngineOptions options)
    : tree_(std::move(initial)), options_(options) {
  options_.index.scoring = options_.scoring;
  encoding_ = JDeweyBuilder::Assign(tree_, options_.index.jdewey_gap);
  segments_.SetCorpusNodes(tree_.node_count());
  if (tree_.node_count() > 1) {
    // The initial document becomes the base sealed segment; everything
    // added afterwards accumulates in the memtable. A bare root shell is
    // not worth sealing: it carries no indexable rows, and the first
    // insert under a childless root re-encodes the root itself — which
    // would read as a stale base and force a pointless full rebuild.
    Status s = Seal("");
    (void)s;  // in-memory seal cannot fail
  }
}

UpdatableEngine::UpdatableEngine(RecoveryTag, XmlTree initial,
                                 EngineOptions options)
    : tree_(std::move(initial)), options_(options) {
  options_.index.scoring = options_.scoring;
}

UpdatableEngine::~UpdatableEngine() {
  if (scheduler_ != nullptr) scheduler_->Stop();
}

StatusOr<std::unique_ptr<UpdatableEngine>> UpdatableEngine::OpenDurable(
    XmlTree initial, EngineOptions options, DurableOptions durable) {
  if (durable.data_dir.empty()) {
    return Status::InvalidArgument("OpenDurable: data_dir is required");
  }
  ::mkdir(durable.data_dir.c_str(), 0755);  // EEXIST is fine

  StatusOr<RecoveredSegmentSet> recovered_or =
      RecoverSegmentSet(durable.data_dir);
  if (!recovered_or.ok()) return recovered_or.status();
  RecoveredSegmentSet rec = std::move(*recovered_or);

  StatusOr<std::unique_ptr<ManifestLog>> log_or =
      ManifestLog::Open(ManifestLogPath(durable.data_dir));
  if (!log_or.ok()) return log_or.status();

  std::unique_ptr<UpdatableEngine> engine(
      new UpdatableEngine(RecoveryTag{}, std::move(initial), options));
  engine->durable_options_ = durable;
  engine->log_ = std::move(*log_or);
  engine->next_segment_id_ = rec.next_segment_id;

  // Resume the maintained encoding + live set. Any failure below drops to
  // the degraded path: the recovered set cannot be trusted against this
  // tree, so it is logged away and the whole tree is re-sealed.
  bool resumed = false;
  if (!rec.live.empty() && rec.last_seal_id != 0 &&
      rec.watermark <= engine->tree_.node_count()) {
    StatusOr<JDeweyEncoding> enc = JDeweyBuilder::LoadEncoding(
        EncodingFilePath(durable.data_dir, rec.last_seal_id));
    if (enc.ok() &&
        enc->node_count() <= engine->tree_.node_count() &&
        enc->node_count() >= rec.watermark) {
      engine->encoding_ = std::move(*enc);
      NodeId reencoded = kInvalidNode;
      engine->encoding_updates_ += JDeweyBuilder::ExtendAssign(
          engine->tree_, engine->options_.index.jdewey_gap,
          &engine->encoding_, &reencoded);
      bool all_open = true;
      for (uint64_t id : rec.live) {
        Status s = engine->segments_.AddDiskSegment(
            SegmentFilePath(durable.data_dir, id), durable.disk, id);
        if (!s.ok()) {
          all_open = false;
          break;
        }
      }
      if (all_open) {
        engine->watermark_ = static_cast<NodeId>(rec.watermark);
        engine->enc_id_ = rec.last_seal_id;
        if (reencoded != kInvalidNode && reencoded < engine->watermark_) {
          engine->needs_full_rebuild_ = true;
        }
        engine->memtable_dirty_ =
            engine->watermark_ < engine->tree_.node_count();
        resumed = true;
      } else {
        engine->segments_.Clear();
      }
    }
  }
  if (!resumed) {
    // Degraded (or fresh-directory) path: log the stale set away, delete
    // its files, start the encoding from scratch and durably seal the
    // whole tree so reopen covers it.
    for (uint64_t id : rec.live) {
      ManifestRecord drop;
      drop.type = ManifestRecordType::kDrop;
      drop.id = id;
      Status s = engine->log_->Append(drop);
      if (!s.ok()) return s;
      RemoveSegmentFiles(SegmentFilePath(durable.data_dir, id));
    }
    if (rec.last_seal_id != 0) {
      std::remove(
          EncodingFilePath(durable.data_dir, rec.last_seal_id).c_str());
    }
    engine->encoding_ =
        JDeweyBuilder::Assign(engine->tree_, engine->options_.index.jdewey_gap);
    engine->watermark_ = 0;
    if (engine->tree_.node_count() > 1) {
      std::lock_guard<std::mutex> lock(engine->maintenance_mu_);
      Status s = engine->SealDurableLocked();
      if (!s.ok()) return s;
    }
  }
  engine->segments_.SetCorpusNodes(engine->tree_.node_count());

  UpdatableEngine* raw = engine.get();
  engine->scheduler_ = std::make_unique<CompactionScheduler>(
      [raw] { return raw->CompactRound(/*merge_all=*/false); });
  if (durable.auto_compact) engine->scheduler_->Start();
  return engine;
}

NodeId UpdatableEngine::AddElement(NodeId parent, const std::string& tag,
                                   const std::string& text) {
  NodeId node = tree_.AddChild(parent, tag);
  if (!text.empty()) tree_.AppendText(node, text);
  NodeId reencoded = kInvalidNode;
  uint64_t updates = JDeweyBuilder::InsertAssign(
      tree_, node, options_.index.jdewey_gap, &encoding_, &reencoded);
  encoding_updates_ += updates;
  XTOPK_COUNTER("engine.encoding_updates").Add(updates);
  // A re-encode above the watermark only moved memtable nodes (the next
  // refresh re-reads their numbers anyway); one below it invalidated
  // sealed columns.
  if (reencoded != kInvalidNode && reencoded < watermark_) {
    needs_full_rebuild_ = true;
  }
  memtable_dirty_ = true;
  return node;
}

void UpdatableEngine::AppendText(NodeId node, const std::string& text) {
  if (text.empty()) return;  // nothing to index; the index stays clean
  tree_.AppendText(node, text);
  if (node < watermark_) {
    needs_full_rebuild_ = true;  // sealed rows of this node are stale
  } else {
    memtable_dirty_ = true;
  }
}

NodeId UpdatableEngine::AddDocument(const std::string& name,
                                    const XmlTree& doc) {
  NodeId wrapper = AddElement(tree_.root(), "doc");
  tree_.AddAttribute(wrapper, "name", name);
  if (!doc.empty()) {
    NodeId root_copy =
        AddElement(wrapper, doc.TagName(doc.root()), doc.text(doc.root()));
    std::vector<std::pair<NodeId, NodeId>> stack;  // (src, dst)
    stack.emplace_back(doc.root(), root_copy);
    while (!stack.empty()) {
      auto [src, dst] = stack.back();
      stack.pop_back();
      std::vector<NodeId> kids = doc.Children(src);
      std::vector<NodeId> copies;
      copies.reserve(kids.size());
      for (NodeId child : kids) {
        copies.push_back(AddElement(dst, doc.TagName(child), doc.text(child)));
      }
      for (size_t i = 0; i < kids.size(); ++i) {
        stack.emplace_back(kids[i], copies[i]);
      }
    }
  }
  ++memtable_docs_;
  return wrapper;
}

void UpdatableEngine::FullRebuild() {
  segments_.Clear();
  std::vector<NodeId> nodes(tree_.node_count());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  // The MAINTAINED encoding stays authoritative — the rebuilt base segment
  // uses the same numbers, so the memtable keeps extending it without a
  // re-assignment.
  segments_.AddMemorySegment(
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index),
      nodes.size());
  watermark_ = static_cast<NodeId>(tree_.node_count());
  memtable_.reset();
  segments_.SetMemtable(std::shared_ptr<const JDeweyIndex>());
  memtable_dirty_ = false;
  needs_full_rebuild_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  ++rebuilds_;
  XTOPK_COUNTER("engine.rebuilds").Add(1);
}

void UpdatableEngine::DurableFullRebuild() {
  std::lock_guard<std::mutex> lock(maintenance_mu_);
  std::shared_ptr<const SegmentSetVersion> pinned = segments_.Pin();
  std::vector<uint64_t> old_ids;
  for (const auto& seg : pinned->sealed()) {
    if (seg->id() != 0) old_ids.push_back(seg->id());
  }

  size_t count = tree_.node_count();
  std::vector<NodeId> nodes(count);
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  JDeweyIndex segment =
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index);

  uint64_t id = next_segment_id_++;
  std::string path = SegmentFilePath(durable_options_.data_dir, id);
  std::string enc_path = EncodingFilePath(durable_options_.data_dir, id);
  Status s = DiskIndexWriter::Write(segment, /*include_scores=*/true, path);
  if (s.ok()) {
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = count;
    s = manifest.Save(path + ".manifest");
  }
  if (s.ok()) s = JDeweyBuilder::SaveEncoding(encoding_, enc_path);
  if (s.ok()) {
    // The atomic switch: a commit whose inputs are the whole live set and
    // whose watermark covers the whole tree. Recovery lands on the old
    // set before this record and on the new segment after it.
    if (!old_ids.empty()) {
      ManifestRecord begin;
      begin.type = ManifestRecordType::kCompactBegin;
      begin.id = id;
      begin.inputs = old_ids;
      s = log_->Append(begin);
      if (s.ok()) {
        ManifestRecord commit;
        commit.type = ManifestRecordType::kCompactCommit;
        commit.id = id;
        commit.covered_nodes = count;
        commit.watermark = count;
        commit.inputs = old_ids;
        s = log_->Append(commit);
      }
    } else {
      ManifestRecord seal;
      seal.type = ManifestRecordType::kSeal;
      seal.id = id;
      seal.covered_nodes = count;
      seal.watermark = count;
      s = log_->Append(seal);
    }
  }
  if (!s.ok()) {
    // Disk or log went bad: fall back to the in-memory rebuild so queries
    // stay correct. The log keeps the pre-rebuild set as the recovery
    // state — stale but consistent.
    RemoveSegmentFiles(path);
    std::remove(enc_path.c_str());
    next_segment_id_ = id;  // the reservation never reached the log
    FullRebuild();
    return;
  }

  segments_.Clear();
  Status open = segments_.AddDiskSegment(path, durable_options_.disk, id);
  if (!open.ok()) {
    // The files are durable and committed but unreadable here (transient
    // I/O?). Serve from memory; reopen recovers the disk copy.
    FullRebuild();
    return;
  }
  for (const auto& seg : pinned->sealed()) {
    if (seg->id() == 0) continue;
    ManifestRecord drop;
    drop.type = ManifestRecordType::kDrop;
    drop.id = seg->id();
    (void)log_->Append(drop);  // commit already orphaned it for recovery
    seg->MarkSuperseded();
  }
  if (enc_id_ != 0 && enc_id_ != id) {
    std::remove(
        EncodingFilePath(durable_options_.data_dir, enc_id_).c_str());
  }
  enc_id_ = id;
  watermark_ = static_cast<NodeId>(count);
  memtable_.reset();
  segments_.SetMemtable(std::shared_ptr<const JDeweyIndex>());
  memtable_dirty_ = false;
  needs_full_rebuild_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  ++rebuilds_;
  XTOPK_COUNTER("engine.rebuilds").Add(1);
}

void UpdatableEngine::RefreshMemtable() {
  size_t count = tree_.node_count();
  if (watermark_ >= count) {
    memtable_.reset();
    segments_.SetMemtable(std::shared_ptr<const JDeweyIndex>());
  } else {
    std::vector<NodeId> nodes;
    nodes.reserve(count - watermark_);
    for (NodeId id = watermark_; id < count; ++id) nodes.push_back(id);
    memtable_ = std::make_shared<const JDeweyIndex>(
        BuildSegmentIndex(tree_, encoding_, nodes, options_.index));
    segments_.SetMemtable(memtable_);
  }
  memtable_dirty_ = false;
  ++memtable_refreshes_;
  XTOPK_COUNTER("engine.memtable_refreshes").Add(1);
  XTOPK_GAUGE("index.memtable_docs")
      .Set(static_cast<int64_t>(memtable_docs_));
}

void UpdatableEngine::EnsureFresh() {
  if (needs_full_rebuild_) {
    if (durable()) {
      DurableFullRebuild();
    } else {
      FullRebuild();
    }
  } else if (memtable_dirty_) {
    RefreshMemtable();
  }
  // N of the idf term grows with the tree; a change invalidates the
  // segmented index's score caches (version bump inside).
  segments_.SetCorpusNodes(tree_.node_count());
}

Status UpdatableEngine::Seal(const std::string& disk_path) {
  size_t count = tree_.node_count();
  std::vector<NodeId> nodes;
  nodes.reserve(count - watermark_);
  for (NodeId id = watermark_; id < count; ++id) nodes.push_back(id);
  JDeweyIndex segment =
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index);
  if (disk_path.empty()) {
    segments_.AddMemorySegment(std::move(segment), nodes.size());
  } else {
    Status s = DiskIndexWriter::Write(segment, /*include_scores=*/true,
                                      disk_path);
    if (!s.ok()) return s;
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = nodes.size();
    s = manifest.Save(disk_path + ".manifest");
    if (!s.ok()) return s;
    s = segments_.AddDiskSegment(disk_path);
    if (!s.ok()) return s;
  }
  watermark_ = static_cast<NodeId>(count);
  memtable_.reset();
  segments_.SetMemtable(std::shared_ptr<const JDeweyIndex>());
  memtable_dirty_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  return Status::Ok();
}

Status UpdatableEngine::SealDurableLocked() {
  size_t count = tree_.node_count();
  std::vector<NodeId> nodes;
  nodes.reserve(count - watermark_);
  for (NodeId id = watermark_; id < count; ++id) nodes.push_back(id);
  JDeweyIndex segment =
      BuildSegmentIndex(tree_, encoding_, nodes, options_.index);

  uint64_t id = next_segment_id_++;
  std::string path = SegmentFilePath(durable_options_.data_dir, id);
  std::string enc_path = EncodingFilePath(durable_options_.data_dir, id);

  // Files first, then the log record: the record is the commit point, so
  // a crash before it leaves orphan files recovery deletes, and a crash
  // after it leaves a fully readable segment.
  Status s = DiskIndexWriter::Write(segment, /*include_scores=*/true, path);
  if (s.ok()) {
    SegmentManifest manifest = ManifestFromSegment(segment);
    manifest.covered_nodes = nodes.size();
    s = manifest.Save(path + ".manifest");
  }
  if (s.ok()) s = JDeweyBuilder::SaveEncoding(encoding_, enc_path);
  if (s.ok()) {
    ManifestRecord seal;
    seal.type = ManifestRecordType::kSeal;
    seal.id = id;
    seal.covered_nodes = nodes.size();
    seal.watermark = count;
    s = log_->Append(seal);
  }
  if (!s.ok()) {
    RemoveSegmentFiles(path);
    std::remove(enc_path.c_str());
    return s;
  }
  s = segments_.AddDiskSegment(path, durable_options_.disk, id);
  if (!s.ok()) return s;

  if (enc_id_ != 0 && enc_id_ != id) {
    std::remove(
        EncodingFilePath(durable_options_.data_dir, enc_id_).c_str());
  }
  enc_id_ = id;
  watermark_ = static_cast<NodeId>(count);
  memtable_.reset();
  segments_.SetMemtable(std::shared_ptr<const JDeweyIndex>());
  memtable_dirty_ = false;
  memtable_docs_ = 0;
  XTOPK_GAUGE("index.memtable_docs").Set(0);
  return Status::Ok();
}

Status UpdatableEngine::SealMemtable(const std::string& path) {
  if (needs_full_rebuild_) {
    // Sealed data went stale; fold everything into a fresh base first so
    // the seal captures sound numbers. The memtable is empty afterwards.
    if (durable()) {
      DurableFullRebuild();
    } else {
      FullRebuild();
    }
  }
  if (watermark_ >= tree_.node_count()) {
    return Status::InvalidArgument("updatable engine: memtable is empty");
  }
  return Seal(path);
}

Status UpdatableEngine::SealMemtable() {
  if (!durable()) {
    return Status::InvalidArgument(
        "SealMemtable() needs a durable engine; use SealMemtable(path)");
  }
  if (needs_full_rebuild_) DurableFullRebuild();
  if (watermark_ >= tree_.node_count()) {
    return Status::InvalidArgument("updatable engine: memtable is empty");
  }
  Status s;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    s = SealDurableLocked();
  }
  if (s.ok() && scheduler_ != nullptr) scheduler_->Notify();
  return s;
}

Status UpdatableEngine::Compact(const std::string& path) {
  EnsureFresh();
  return segments_.Compact(path);
}

Status UpdatableEngine::Compact() {
  if (!durable()) {
    return Status::InvalidArgument(
        "Compact() needs a durable engine; use Compact(path)");
  }
  EnsureFresh();
  CompactRound(/*merge_all=*/true);
  return Status::Ok();
}

void UpdatableEngine::AbandonOutput(uint64_t id, const std::string& path) {
  ManifestRecord drop;
  drop.type = ManifestRecordType::kDrop;
  drop.id = id;
  (void)log_->Append(drop);  // recovery deletes the orphan either way
  RemoveSegmentFiles(path);
}

bool UpdatableEngine::CompactRound(bool merge_all) {
  std::shared_ptr<const SegmentSetVersion> pinned = segments_.Pin();
  std::vector<std::shared_ptr<const SealedSegment>> disks;
  for (const auto& seg : pinned->sealed()) {
    if (seg->id() != 0) disks.push_back(seg);
  }

  std::vector<std::shared_ptr<const SealedSegment>> inputs;
  if (merge_all) {
    if (disks.size() < 2) return false;
    inputs = std::move(disks);
  } else {
    std::vector<uint64_t> sizes;
    sizes.reserve(disks.size());
    for (const auto& seg : disks) sizes.push_back(seg->data_bytes());
    std::vector<size_t> picked =
        PickTieredCompaction(sizes, durable_options_.compaction);
    if (picked.size() < 2) return false;
    inputs.reserve(picked.size());
    for (size_t idx : picked) inputs.push_back(disks[idx]);
  }

  Timer timer;
  uint64_t bytes_in = 0;
  std::vector<uint64_t> input_ids;
  input_ids.reserve(inputs.size());
  for (const auto& seg : inputs) {
    bytes_in += seg->data_bytes();
    input_ids.push_back(seg->id());
  }

  uint64_t out_id;
  std::string out_path;
  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    out_id = next_segment_id_++;
    out_path = SegmentFilePath(durable_options_.data_dir, out_id);
    ManifestRecord begin;
    begin.type = ManifestRecordType::kCompactBegin;
    begin.id = out_id;
    begin.inputs = input_ids;
    if (!log_->Append(begin).ok()) return false;
  }

  // The merge + write runs OFF the maintenance lock: queries keep
  // serving, seals keep landing. The inputs are immutable, so the merge
  // is correct regardless of what publishes meanwhile.
  uint64_t covered = 0;
  StatusOr<JDeweyIndex> merged = BuildCompactedSegment(inputs, &covered);
  Status s = merged.ok() ? Status::Ok() : merged.status();
  if (s.ok()) {
    s = DiskIndexWriter::Write(*merged, /*include_scores=*/true, out_path);
  }
  if (s.ok()) {
    SegmentManifest manifest = ManifestFromSegment(*merged);
    manifest.covered_nodes = covered;
    s = manifest.Save(out_path + ".manifest");
  }
  StatusOr<std::shared_ptr<const SealedSegment>> output =
      s.ok() ? SealedSegment::FromDisk(out_path, durable_options_.disk,
                                       out_id)
             : StatusOr<std::shared_ptr<const SealedSegment>>(s);
  if (!output.ok()) {
    AbandonOutput(out_id, out_path);
    return false;
  }

  {
    std::lock_guard<std::mutex> lock(maintenance_mu_);
    // Publish BEFORE logging the commit: if a durable rebuild raced us,
    // the identity match fails and we abandon — the log never claims a
    // switch the memory state refused.
    if (!segments_.PublishCompaction(inputs, *output)) {
      AbandonOutput(out_id, out_path);
      return false;
    }
    ManifestRecord commit;
    commit.type = ManifestRecordType::kCompactCommit;
    commit.id = out_id;
    commit.covered_nodes = covered;
    commit.inputs = input_ids;
    if (!log_->Append(commit).ok()) {
      // The commit never became durable: reopen recovers the INPUTS (the
      // pre-compaction state) and deletes the output as an orphan. This
      // process keeps serving the published output — result-identical —
      // but must NOT delete the input files recovery depends on.
      return true;
    }
    for (const auto& seg : inputs) {
      ManifestRecord drop;
      drop.type = ManifestRecordType::kDrop;
      drop.id = seg->id();
      (void)log_->Append(drop);  // commit already orphaned it for recovery
      seg->MarkSuperseded();
    }
  }

  uint64_t duration_us = static_cast<uint64_t>(timer.ElapsedMicros());
  uint64_t bytes_out = FileBytes(out_path);
  XTOPK_COUNTER("index.compactions").Add(1);
  XTOPK_COUNTER("index.compaction.runs").Add(1);
  XTOPK_WINDOWED_COUNTER("index.compaction.runs").Add(1);
  XTOPK_COUNTER("index.compaction.bytes_in").Add(bytes_in);
  XTOPK_COUNTER("index.compaction.bytes_out").Add(bytes_out);
  XTOPK_HISTOGRAM("index.compaction.duration_us").Record(duration_us);
  XTOPK_WINDOWED_HISTOGRAM("index.compaction.duration_us")
      .Record(duration_us);

  if (durable_options_.compaction.throttle_bytes_per_sec > 0) {
    double seconds =
        static_cast<double>(bytes_out) /
        static_cast<double>(durable_options_.compaction.throttle_bytes_per_sec);
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  return true;
}

uint64_t UpdatableEngine::plan_watermark() {
  // Fold pending mutations in first: ingest only dirties the memtable and
  // the version bumps at the lazy refresh, so without this a cache keyed
  // on the watermark would serve pre-ingest results after an AddDocument.
  EnsureFresh();
  return segments_.PlanWatermark();
}

std::vector<QueryHit> UpdatableEngine::Materialize(
    const std::vector<SearchResult>& results) const {
  std::vector<QueryHit> hits;
  hits.reserve(results.size());
  for (const SearchResult& r : results) {
    QueryHit hit;
    hit.node = r.node;
    hit.level = r.level;
    hit.score = r.score;
    hit.tag = tree_.TagName(r.node);
    hit.snippet = tree_.text(r.node);
    hits.push_back(std::move(hit));
  }
  return hits;
}

std::vector<std::string> UpdatableEngine::Normalize(
    const std::vector<std::string>& keywords) const {
  Tokenizer tokenizer(options_.index.tokenizer);
  std::vector<std::string> normalized;
  std::unordered_set<std::string> seen;
  for (const std::string& keyword : keywords) {
    for (const std::string& token : tokenizer.Tokenize(keyword)) {
      if (seen.insert(token).second) normalized.push_back(token);
    }
  }
  return normalized;
}

std::vector<QueryHit> UpdatableEngine::Search(
    const std::vector<std::string>& keywords, Semantics semantics,
    DeadlineToken deadline) {
  EnsureFresh();
  Timer timer;
  const double cpu_start = obs::ThreadCpuMicros();
  obs::ResourceAccounting accounting;
  std::vector<std::string> normalized = Normalize(keywords);
  std::vector<QueryHit> hits;
  {
    obs::ScopedAccounting scope(&accounting);
    // Pin the current version for the query's whole lifetime: background
    // compaction publishes cannot mutate the list set under the join.
    SegmentSetReader reader(segments_.Pin());
    JoinSearchOptions join_options;
    join_options.semantics = semantics;
    join_options.compute_scores = true;
    join_options.scoring = options_.scoring;
    join_options.plan_cache = &plan_cache_;
    join_options.deadline = deadline;
    JoinSearch search(&reader, join_options);
    std::vector<SearchResult> found = search.Search(normalized);
    SortByScoreDesc(&found);
    hits = Materialize(found);
    last_status_ = search.status();
    accounting.planner_mode =
        search.stats().planned
            ? (search.stats().plan_cache_hit ? "planned_cached" : "planned")
            : "heuristic";
  }
  FinishQuery(normalized, /*k=*/0, semantics, timer.ElapsedMicros(),
              obs::ThreadCpuMicros() - cpu_start, hits, &accounting);
  return hits;
}

std::vector<QueryHit> UpdatableEngine::SearchTopK(
    const std::vector<std::string>& keywords, size_t k, Semantics semantics,
    DeadlineToken deadline) {
  EnsureFresh();
  Timer timer;
  const double cpu_start = obs::ThreadCpuMicros();
  obs::ResourceAccounting accounting;
  std::vector<std::string> normalized = Normalize(keywords);
  std::vector<QueryHit> hits;
  {
    obs::ScopedAccounting scope(&accounting);
    SegmentSetReader reader(segments_.Pin());
    TopKSearchOptions topk_options;
    topk_options.semantics = semantics;
    topk_options.k = k;
    topk_options.scoring = options_.scoring;
    topk_options.plan_cache = &plan_cache_;
    topk_options.deadline = deadline;
    TopKSearch search(&reader, topk_options);
    hits = Materialize(search.Search(normalized));
    last_status_ = search.status();
    accounting.planner_mode =
        search.stats().planned
            ? (search.stats().plan_cache_hit ? "planned_cached" : "planned")
            : "heuristic";
  }
  FinishQuery(normalized, k, semantics, timer.ElapsedMicros(),
              obs::ThreadCpuMicros() - cpu_start, hits, &accounting);
  return hits;
}

void UpdatableEngine::FinishQuery(const std::vector<std::string>& normalized,
                                  size_t k, Semantics semantics,
                                  double wall_us, double cpu_us,
                                  const std::vector<QueryHit>& hits,
                                  obs::ResourceAccounting* accounting) {
  accounting->wall_us = wall_us;
  accounting->cpu_us = cpu_us;
  last_accounting_ = *accounting;
  XTOPK_COUNTER("engine.queries").Add(1);
  XTOPK_HISTOGRAM("engine.query_us").Record(static_cast<uint64_t>(wall_us));
  XTOPK_WINDOWED_COUNTER("engine.queries").Add(1);
  XTOPK_WINDOWED_HISTOGRAM("engine.query_us")
      .Record(static_cast<uint64_t>(wall_us));
  obs::SlowQueryLog& slow_log = obs::SlowQueryLog::Global();
  if (slow_log.ShouldCapture(wall_us, accounting->pages_read)) {
    obs::SlowQueryCapture capture;
    capture.ts_us = obs::MonotonicNowUs();
    capture.keywords = normalized;
    capture.k = k;
    capture.semantics = semantics == Semantics::kElca ? "elca" : "slca";
    capture.wall_us = wall_us;
    capture.hits = hits.size();
    capture.result_fingerprint = ResultFingerprint(hits);
    capture.accounting = *accounting;
    obs::SlowQueryLog::Global().Record(capture);
  }
}

}  // namespace xtopk
