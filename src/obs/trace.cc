#include "obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/metrics.h"

namespace xtopk {
namespace obs {
namespace {

void AppendDouble(std::string* out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  *out += buf;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

int QueryTrace::OpenSpan(std::string_view name) {
  XTOPK_COUNTER("obs.spans_opened").Add(1);
  Span span;
  span.name = std::string(name);
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.start_us = epoch_.ElapsedMicros();
  int id = static_cast<int>(spans_.size());
  spans_.push_back(std::move(span));
  open_stack_.push_back(id);
  return id;
}

void QueryTrace::CloseSpan(int id) {
  assert(id >= 0 && static_cast<size_t>(id) < spans_.size());
  Span& span = spans_[id];
  if (!span.open) return;
  span.duration_us = epoch_.ElapsedMicros() - span.start_us;
  span.open = false;
  // Spans close innermost-first (RAII); tolerate out-of-order closes by
  // popping through the target.
  while (!open_stack_.empty()) {
    int top = open_stack_.back();
    open_stack_.pop_back();
    if (top == id) break;
    Span& abandoned = spans_[top];
    if (abandoned.open) {
      abandoned.duration_us = epoch_.ElapsedMicros() - abandoned.start_us;
      abandoned.open = false;
    }
  }
}

void QueryTrace::AddStat(int id, std::string_view name, double delta) {
  assert(id >= 0 && static_cast<size_t>(id) < spans_.size());
  auto& stats = spans_[id].stats;
  for (auto& [key, value] : stats) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  stats.emplace_back(std::string(name), delta);
}

void QueryTrace::SetLabel(int id, std::string_view name, std::string value) {
  assert(id >= 0 && static_cast<size_t>(id) < spans_.size());
  auto& labels = spans_[id].labels;
  for (auto& [key, existing] : labels) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  labels.emplace_back(std::string(name), std::move(value));
}

double QueryTrace::total_us() const {
  for (const Span& span : spans_) {
    if (span.parent == -1 && !span.open) return span.duration_us;
  }
  return 0.0;
}

double QueryTrace::StatTotal(std::string_view name) const {
  double total = 0.0;
  for (const Span& span : spans_) {
    for (const auto& [key, value] : span.stats) {
      if (key == name) total += value;
    }
  }
  return total;
}

double QueryTrace::StatOr(int id, std::string_view name,
                          double fallback) const {
  if (id < 0 || static_cast<size_t>(id) >= spans_.size()) return fallback;
  for (const auto& [key, value] : spans_[id].stats) {
    if (key == name) return value;
  }
  return fallback;
}

double QueryTrace::ChildCoverage() const {
  int root = -1;
  for (size_t i = 0; i < spans_.size(); ++i) {
    if (spans_[i].parent == -1 && !spans_[i].open) {
      root = static_cast<int>(i);
      break;
    }
  }
  if (root == -1 || spans_[root].duration_us <= 0.0) return 0.0;
  double covered = 0.0;
  for (const Span& span : spans_) {
    if (span.parent == root) covered += span.duration_us;
  }
  return std::min(1.0, covered / spans_[root].duration_us);
}

std::string QueryTrace::Render() const {
  // Children in span order (creation order == execution order).
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    int parent = spans_[i].parent;
    if (parent == -1) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[parent].push_back(static_cast<int>(i));
    }
  }
  std::string out;
  // Iterative pre-order with per-level "last child" state for the guides.
  struct Frame {
    int id;
    std::string prefix;
    bool last;
    bool root;
  };
  std::vector<Frame> stack;
  for (size_t r = roots.size(); r-- > 0;) {
    stack.push_back(Frame{roots[r], "", r + 1 == roots.size(), true});
  }
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    const Span& span = spans_[frame.id];
    std::string line = frame.prefix;
    if (!frame.root) line += frame.last ? "└─ " : "├─ ";
    line += span.name;
    for (const auto& [key, value] : span.labels) {
      line += " [" + key + "=" + value + "]";
    }
    // Pad to a fixed column so durations align in typical trees.
    if (line.size() < 48) line.append(48 - line.size(), ' ');
    char buf[48];
    std::snprintf(buf, sizeof(buf), " %10.1f us", span.duration_us);
    line += buf;
    for (const auto& [key, value] : span.stats) {
      line += "  " + key + "=";
      if (value == static_cast<double>(static_cast<int64_t>(value))) {
        line += std::to_string(static_cast<int64_t>(value));
      } else {
        AppendDouble(&line, value);
      }
    }
    out += line;
    out.push_back('\n');
    std::string child_prefix =
        frame.root ? "" : frame.prefix + (frame.last ? "   " : "│  ");
    const std::vector<int>& kids = children[frame.id];
    for (size_t c = kids.size(); c-- > 0;) {
      stack.push_back(Frame{kids[c], child_prefix, c + 1 == kids.size(),
                            false});
    }
  }
  return out;
}

void QueryTrace::AppendSpanJson(int id,
                                const std::vector<std::vector<int>>& children,
                                std::string* out) const {
  const Span& span = spans_[id];
  *out += "{\"name\":";
  AppendJsonString(out, span.name);
  *out += ",\"duration_us\":";
  AppendDouble(out, span.duration_us);
  *out += ",\"stats\":{";
  bool first = true;
  for (const auto& [key, value] : span.stats) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(out, key);
    out->push_back(':');
    AppendDouble(out, value);
  }
  *out += "},\"labels\":{";
  first = true;
  for (const auto& [key, value] : span.labels) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(out, key);
    out->push_back(':');
    AppendJsonString(out, value);
  }
  *out += "},\"children\":[";
  first = true;
  for (int child : children[id]) {
    if (!first) out->push_back(',');
    first = false;
    AppendSpanJson(child, children, out);
  }
  *out += "]}";
}

std::string QueryTrace::ToJson() const {
  std::vector<std::vector<int>> children(spans_.size());
  std::vector<int> roots;
  for (size_t i = 0; i < spans_.size(); ++i) {
    int parent = spans_[i].parent;
    if (parent == -1) {
      roots.push_back(static_cast<int>(i));
    } else {
      children[parent].push_back(static_cast<int>(i));
    }
  }
  std::string out = "[";
  bool first = true;
  for (int root : roots) {
    if (!first) out.push_back(',');
    first = false;
    AppendSpanJson(root, children, &out);
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace xtopk
