// Concurrent query serving throughput (DESIGN.md "Concurrency & caching").
//
// The paper's evaluation is single-query latency on a hot cache; this bench
// measures the orthogonal production axis: queries/sec when many independent
// queries are served concurrently from one shared read-only index. Three
// sections:
//
//   A. disk-backed serving — one DiskIndexEnv (sharded buffer pool +
//      decoded-block cache) shared by all workers, a fresh session per
//      query (the server model: global caches are long-lived, per-query
//      materialization state is ephemeral), at 1/2/4/8 threads;
//   B. decoded-block cache ablation — the same single-threaded repeated
//      workload with the cache off (byte budget 0) vs on;
//   C. in-memory Engine::RunBatch — the no-I/O upper bound.
//
// Each point emits a `BENCH {json}` line with threads / qps / cache hit
// rates so the numbers land in the BENCH_* trajectory. Scaling is bounded
// by the machine: on a single hardware thread the 2/4/8-thread points
// measure oversubscription overhead, not parallel speedup.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "index/disk_index.h"
#include "obs/metrics.h"
#include "obs/windowed.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "workload/dblp_gen.h"

namespace {

using namespace xtopk;

constexpr size_t kRepeats = 20;  // workload = kRepeats x the distinct queries
constexpr size_t kThreadPoints[] = {1, 2, 4, 8};
constexpr size_t kPoolPages = 4096;
constexpr size_t kDecodedBudget = 64u << 20;

struct Workload {
  XmlTree tree;
  std::vector<std::vector<std::string>> queries;  // repeated, interleaved
};

Workload BuildWorkload() {
  DblpGenOptions gen;
  gen.num_conferences = 50;
  gen.years_per_conference = 10;
  gen.papers_per_year = 60 * bench::BenchScale();
  gen.seed = 2028;
  for (uint32_t i = 0; i < 4; ++i) {
    gen.planted.push_back({"hi" + std::to_string(i), 5000, "", 0.0});
  }
  for (uint32_t f : {100u, 1000u}) {
    for (uint32_t i = 0; i < 8; ++i) {
      gen.planted.push_back(
          {"lo" + std::to_string(f) + "q" + std::to_string(i), f, "", 0.0});
    }
  }
  Workload workload;
  Timer timer;
  DblpCorpus dblp = GenerateDblp(gen);
  workload.tree = std::move(dblp.tree);
  std::fprintf(stderr, "[bench] corpus: %zu nodes (%.1fs)\n",
               workload.tree.node_count(), timer.ElapsedSeconds());

  // Distinct pool: 8 two-keyword + 8 three-keyword mixed-frequency queries,
  // interleaved so every repeat cycles through all of them (a server's
  // steady-state mix of recurring keyword lists).
  std::vector<std::vector<std::string>> distinct;
  for (uint32_t i = 0; i < 8; ++i) {
    distinct.push_back({"lo100q" + std::to_string(i),
                        "hi" + std::to_string(i % 4)});
    distinct.push_back({"lo1000q" + std::to_string(i),
                        "hi" + std::to_string(i % 4),
                        "hi" + std::to_string((i + 1) % 4)});
  }
  for (size_t r = 0; r < kRepeats; ++r) {
    for (const auto& q : distinct) workload.queries.push_back(q);
  }
  return workload;
}

/// Sums result counts — a cheap determinism fingerprint across runs.
struct RunOutcome {
  double qps = 0;
  double millis = 0;
  uint64_t result_checksum = 0;
  bool ok = true;
  /// Per-query latency percentiles, merged across workers.
  double p50_us = 0, p95_us = 0, p99_us = 0;
  /// Last-window (60s) p99 from a run-local WindowedHistogram — what a
  /// dashboard scraping /metrics would show right after this run.
  double win_p99_us = 0;
};

RunOutcome ServeDiskWorkload(const std::shared_ptr<DiskIndexEnv>& env,
                             const std::vector<std::vector<std::string>>& qs,
                             size_t threads) {
  std::vector<uint64_t> counts(qs.size(), 0);
  std::vector<char> failed(qs.size(), 0);
  // One latency histogram per worker (no cross-thread contention while
  // recording), merged after the join — the standalone-Histogram pattern.
  std::vector<obs::Histogram> latencies(threads == 0 ? 1 : threads);
  // Shared windowed view over the same latencies: exercises the concurrent
  // rotating-slot path and yields the "last 60s" p99 a scraper would see.
  obs::WindowedHistogram windowed;
  Timer timer;
  ParallelForWorkers(qs.size(), threads, [&](size_t worker, size_t i) {
    Timer query_timer;
    auto session = env->NewSession();
    JoinSearchOptions options;
    options.compute_scores = true;
    auto results = session->SearchComplete(qs[i], options);
    if (!results.ok()) {
      failed[i] = 1;
      return;
    }
    counts[i] = results->size();
    const uint64_t us = static_cast<uint64_t>(query_timer.ElapsedMicros());
    latencies[worker].Record(us);
    windowed.Record(us);
  });
  RunOutcome outcome;
  outcome.millis = timer.ElapsedMillis();
  outcome.qps = 1000.0 * static_cast<double>(qs.size()) / outcome.millis;
  for (size_t i = 0; i < qs.size(); ++i) {
    outcome.result_checksum += counts[i] * (i + 1);
    if (failed[i]) outcome.ok = false;
  }
  obs::Histogram merged;
  for (const obs::Histogram& h : latencies) merged.Merge(h);
  outcome.p50_us = merged.Percentile(0.50);
  outcome.p95_us = merged.Percentile(0.95);
  outcome.p99_us = merged.Percentile(0.99);
  outcome.win_p99_us =
      windowed.Window(obs::WindowedHistogram::kWindow60sUs).p99;
  return outcome;
}

int RunBench() {
  Workload workload = BuildWorkload();
  IndexBuilder builder(workload.tree);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  std::string path = "/tmp/xtopk_bench_throughput.idx";
  Status s = DiskIndexWriter::Write(jindex, /*include_scores=*/true, path);
  if (!s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }

  const size_t n = workload.queries.size();
  std::printf("=== Throughput: concurrent serving over one shared index ===\n");
  std::printf("hardware threads: %u, workload: %zu queries (%zu distinct)\n\n",
              std::thread::hardware_concurrency(), n, n / kRepeats);

  // --- Section A: disk-backed serving at 1/2/4/8 threads -----------------
  std::printf("%-8s %10s %10s %14s %16s %9s %9s %9s %11s\n", "threads",
              "qps", "ms", "pool hit rate", "decoded hit rate", "p50 us",
              "p95 us", "p99 us", "w60s p99");
  double qps_1thread = 0;
  uint64_t checksum_1thread = 0;
  for (size_t threads : kThreadPoints) {
    DiskIndexOptions options;
    options.pool_pages = kPoolPages;
    options.decoded_cache_bytes = kDecodedBudget;
    auto env = DiskIndexEnv::Open(path, options);
    if (!env.ok()) {
      std::fprintf(stderr, "open: %s\n", env.status().ToString().c_str());
      return 1;
    }
    // Warm pass (the paper reports hot-cache numbers), then measure.
    ServeDiskWorkload(*env, workload.queries, threads);
    (*env)->ResetIoStats();
    RunOutcome outcome = ServeDiskWorkload(*env, workload.queries, threads);
    if (!outcome.ok) {
      std::fprintf(stderr, "query failures at %zu threads\n", threads);
      return 1;
    }
    DiskIoStats stats = (*env)->io_stats();
    double pool_rate = bench::HitRate(stats.pool_hits, stats.pool_misses);
    double decoded_rate =
        bench::HitRate(stats.decoded_hits, stats.decoded_misses);
    std::printf(
        "%-8zu %10.1f %10.1f %14.3f %16.3f %9.0f %9.0f %9.0f %11.0f\n",
        threads, outcome.qps, outcome.millis, pool_rate, decoded_rate,
        outcome.p50_us, outcome.p95_us, outcome.p99_us, outcome.win_p99_us);
    if (threads == 1) {
      qps_1thread = outcome.qps;
      checksum_1thread = outcome.result_checksum;
    } else if (outcome.result_checksum != checksum_1thread) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: checksum %llu at %zu threads vs "
                   "%llu at 1\n",
                   (unsigned long long)outcome.result_checksum, threads,
                   (unsigned long long)checksum_1thread);
      return 1;
    }
    bench::BenchJson json("throughput");
    json.Field("mode", "disk")
        .Field("threads", threads)
        .Field("queries", n)
        .Field("qps", outcome.qps)
        .Field("speedup_vs_1t", qps_1thread > 0 ? outcome.qps / qps_1thread
                                                : 1.0)
        .Field("pool_hit_rate", pool_rate)
        .Field("decoded_hit_rate", decoded_rate)
        .Field("p50_us", outcome.p50_us)
        .Field("p95_us", outcome.p95_us)
        .Field("p99_us", outcome.p99_us)
        .Field("w60s_p99_us", outcome.win_p99_us);
    json.Emit();
  }

  // --- Section B: decoded-block cache ablation, single thread ------------
  std::printf("\n--- decoded-block cache ablation (1 thread, fresh session "
              "per query) ---\n");
  double millis_by_mode[2] = {0, 0};
  for (int enabled = 0; enabled <= 1; ++enabled) {
    DiskIndexOptions options;
    options.pool_pages = kPoolPages;
    options.decoded_cache_bytes = enabled ? kDecodedBudget : 0;
    auto env = DiskIndexEnv::Open(path, options);
    if (!env.ok()) return 1;
    ServeDiskWorkload(*env, workload.queries, 1);  // warm the buffer pool
    (*env)->ResetIoStats();
    RunOutcome outcome = ServeDiskWorkload(*env, workload.queries, 1);
    if (!outcome.ok || outcome.result_checksum != checksum_1thread) {
      std::fprintf(stderr, "decoded-cache ablation mismatch\n");
      return 1;
    }
    DiskIoStats stats = (*env)->io_stats();
    double decoded_rate =
        bench::HitRate(stats.decoded_hits, stats.decoded_misses);
    millis_by_mode[enabled] = outcome.millis;
    std::printf("cache %-4s %10.1f qps %10.1f ms   decoded hit rate %.3f\n",
                enabled ? "on" : "off", outcome.qps, outcome.millis,
                decoded_rate);
    bench::BenchJson json("throughput");
    json.Field("mode", enabled ? "decoded_on" : "decoded_off")
        .Field("threads", size_t{1})
        .Field("queries", n)
        .Field("qps", outcome.qps)
        .Field("decoded_hit_rate", decoded_rate)
        .Field("p50_us", outcome.p50_us)
        .Field("p95_us", outcome.p95_us)
        .Field("p99_us", outcome.p99_us)
        .Field("w60s_p99_us", outcome.win_p99_us);
    json.Emit();
  }
  std::printf("decoded-cache speedup: %.2fx\n",
              millis_by_mode[0] / millis_by_mode[1]);

  // --- Section C: in-memory Engine::RunBatch ------------------------------
  std::printf("\n--- in-memory Engine::RunBatch (no I/O upper bound) ---\n");
  Engine engine(workload.tree);
  std::vector<BatchQuery> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BatchQuery query;
    query.keywords = workload.queries[i];
    query.k = i % 4 == 3 ? 10 : 0;  // mix complete + top-k queries
    batch.push_back(std::move(query));
  }
  // Per-query latency comes from the engine.query_us registry histogram:
  // snapshot around the measured run and diff the bucket counts.
  auto query_us_buckets = [] {
    std::array<uint64_t, obs::Histogram::kNumBuckets> buckets{};
    obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
    for (const auto& h : snap.histograms) {
      if (h.name == "engine.query_us") buckets = h.buckets;
    }
    return buckets;
  };
  uint64_t engine_checksum_1t = 0;
  for (size_t threads : kThreadPoints) {
    engine.RunBatch(batch, threads);  // warm-up
    auto buckets_before = query_us_buckets();
    Timer timer;
    auto results = engine.RunBatch(batch, threads);
    double millis = timer.ElapsedMillis();
    auto buckets_delta = query_us_buckets();
    for (size_t i = 0; i < buckets_delta.size(); ++i) {
      buckets_delta[i] -= buckets_before[i];
    }
    uint64_t checksum = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      checksum += results[i].hits.size() * (i + 1);
    }
    if (threads == 1) {
      engine_checksum_1t = checksum;
    } else if (checksum != engine_checksum_1t) {
      std::fprintf(stderr, "RunBatch determinism violation\n");
      return 1;
    }
    double qps = 1000.0 * static_cast<double>(n) / millis;
    double p50 = obs::PercentileFromBuckets(buckets_delta, 0.50);
    double p95 = obs::PercentileFromBuckets(buckets_delta, 0.95);
    double p99 = obs::PercentileFromBuckets(buckets_delta, 0.99);
    // RunQuery also feeds the windowed engine.query_us — this is the
    // last-60s p99 a /metrics scrape would report right now (includes the
    // warm-up pass, as any live window would).
    double w60s_p99 =
        obs::MetricsRegistry::Global()
            .GetWindowedHistogram("engine.query_us")
            .Window(obs::WindowedHistogram::kWindow60sUs)
            .p99;
    std::printf("%-8zu %10.1f qps %10.1f ms   p50 %.0f us  p95 %.0f us  "
                "p99 %.0f us  w60s p99 %.0f us\n",
                threads, qps, millis, p50, p95, p99, w60s_p99);
    bench::BenchJson json("throughput");
    json.Field("mode", "engine_batch")
        .Field("threads", threads)
        .Field("queries", n)
        .Field("qps", qps)
        .Field("p50_us", p50)
        .Field("p95_us", p95)
        .Field("p99_us", p99)
        .Field("w60s_p99_us", w60s_p99);
    json.Emit();
  }

  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main() { return RunBench(); }
