#ifndef XTOPK_WORKLOAD_QUERY_GEN_H_
#define XTOPK_WORKLOAD_QUERY_GEN_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "index/index_builder.h"
#include "util/rng.h"

namespace xtopk {

/// A closed frequency band [lo, hi] over inverted-list lengths.
struct FrequencyBand {
  uint32_t lo = 0;
  uint32_t hi = UINT32_MAX;
};

/// Samples query keywords by frequency band, reproducing the paper's query
/// selection ("forty queries within each frequency range are randomly
/// selected", §V-B). Deterministic per seed.
class QueryGenerator {
 public:
  QueryGenerator(const std::vector<TermInfo>& terms, uint64_t seed);

  /// A uniformly random term whose frequency lies in `band`; nullopt if
  /// the band is empty.
  std::optional<std::string> SampleInBand(const FrequencyBand& band);

  /// `count` k-keyword queries with one keyword from `low` and k-1 from
  /// `high` (the paper's mixed-frequency sweep). Queries with repeated
  /// keywords are rerolled.
  std::vector<std::vector<std::string>> MixedFrequencyQueries(
      size_t count, size_t k, const FrequencyBand& low,
      const FrequencyBand& high);

  /// `count` k-keyword queries with every keyword from `band`
  /// (the equal-frequency sweep, Fig. 9(e)-(f)).
  std::vector<std::vector<std::string>> EqualFrequencyQueries(
      size_t count, size_t k, const FrequencyBand& band);

  /// Number of distinct terms available in `band`.
  size_t BandSize(const FrequencyBand& band) const;

 private:
  /// Terms sorted by frequency; band sampling binary-searches this.
  std::vector<TermInfo> by_frequency_;
  Rng rng_;
};

}  // namespace xtopk

#endif  // XTOPK_WORKLOAD_QUERY_GEN_H_
