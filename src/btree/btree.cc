#include "btree/btree.h"

#include <algorithm>
#include <cassert>

namespace xtopk {

struct BTree::Node {
  bool leaf = true;
  std::vector<std::string> keys;
  std::vector<uint64_t> values;                 // leaves only
  std::vector<std::unique_ptr<Node>> children;  // inner only; keys.size()+1
  Node* next = nullptr;                         // leaf chain
  Node* prev = nullptr;
};

struct BTree::SplitResult {
  // Empty promoted key means no split happened.
  std::string promoted_key;
  std::unique_ptr<Node> right;
  bool split = false;
};

BTree::BTree(size_t fanout) : fanout_(std::max<size_t>(4, fanout)) {
  root_ = std::make_unique<Node>();
}

BTree::~BTree() = default;
BTree::BTree(BTree&&) noexcept = default;
BTree& BTree::operator=(BTree&&) noexcept = default;

namespace {

/// Index of the first key >= `key` in `keys`.
size_t LowerBoundIndex(const std::vector<std::string>& keys,
                       std::string_view key) {
  auto it = std::lower_bound(keys.begin(), keys.end(), key,
                             [](const std::string& a, std::string_view b) {
                               return std::string_view(a) < b;
                             });
  return static_cast<size_t>(it - keys.begin());
}

}  // namespace

BTree::SplitResult BTree::InsertInto(Node* node, std::string_view key,
                                     uint64_t value) {
  if (node->leaf) {
    size_t idx = LowerBoundIndex(node->keys, key);
    if (idx < node->keys.size() && node->keys[idx] == key) {
      node->values[idx] = value;  // overwrite
      return SplitResult{};
    }
    node->keys.insert(node->keys.begin() + idx, std::string(key));
    node->values.insert(node->values.begin() + idx, value);
    ++size_;
    if (node->keys.size() < fanout_) return SplitResult{};

    // Split the leaf in half; the first key of the right half is promoted
    // (and kept in the leaf, B+-tree style).
    size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->leaf = true;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(node->values.begin() + mid, node->values.end());
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    if (right->next != nullptr) right->next->prev = right.get();
    right->prev = node;
    node->next = right.get();
    SplitResult result;
    result.split = true;
    result.promoted_key = right->keys.front();
    result.right = std::move(right);
    return result;
  }

  size_t idx = LowerBoundIndex(node->keys, key);
  // Inner separators equal the first key of the right subtree, so equal
  // keys descend to the right child.
  if (idx < node->keys.size() && node->keys[idx] == key) ++idx;
  SplitResult child_split = InsertInto(node->children[idx].get(), key, value);
  if (!child_split.split) return SplitResult{};

  node->keys.insert(node->keys.begin() + idx,
                    std::move(child_split.promoted_key));
  node->children.insert(node->children.begin() + idx + 1,
                        std::move(child_split.right));
  if (node->keys.size() < fanout_) return SplitResult{};

  size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->leaf = false;
  SplitResult result;
  result.split = true;
  result.promoted_key = std::move(node->keys[mid]);
  right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                     std::make_move_iterator(node->keys.end()));
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  result.right = std::move(right);
  return result;
}

void BTree::Insert(std::string_view key, uint64_t value) {
  SplitResult split = InsertInto(root_.get(), key, value);
  if (!split.split) return;
  auto new_root = std::make_unique<Node>();
  new_root->leaf = false;
  new_root->keys.push_back(std::move(split.promoted_key));
  new_root->children.push_back(std::move(root_));
  new_root->children.push_back(std::move(split.right));
  root_ = std::move(new_root);
  ++height_;
}

const uint64_t* BTree::Find(std::string_view key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t idx = LowerBoundIndex(node->keys, key);
    if (idx < node->keys.size() && node->keys[idx] == key) ++idx;
    node = node->children[idx].get();
  }
  size_t idx = LowerBoundIndex(node->keys, key);
  if (idx < node->keys.size() && node->keys[idx] == key) {
    return &node->values[idx];
  }
  return nullptr;
}

bool BTree::Iterator::Valid() const { return node_ != nullptr; }

std::string_view BTree::Iterator::key() const {
  return static_cast<const Node*>(node_)->keys[index_];
}

uint64_t BTree::Iterator::value() const {
  return static_cast<const Node*>(node_)->values[index_];
}

void BTree::Iterator::Next() {
  const Node* node = static_cast<const Node*>(node_);
  if (node == nullptr) return;
  if (index_ + 1 < node->keys.size()) {
    ++index_;
    return;
  }
  // Skip any empty leaves (only the root can be empty, but be safe).
  const Node* next = node->next;
  while (next != nullptr && next->keys.empty()) next = next->next;
  node_ = next;
  index_ = 0;
}

void BTree::Iterator::Prev() {
  const Node* node = static_cast<const Node*>(node_);
  if (node == nullptr) return;
  if (index_ > 0) {
    --index_;
    return;
  }
  const Node* prev = node->prev;
  while (prev != nullptr && prev->keys.empty()) prev = prev->prev;
  node_ = prev;
  index_ = prev != nullptr ? prev->keys.size() - 1 : 0;
}

BTree::Iterator BTree::LowerBound(std::string_view key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    size_t idx = LowerBoundIndex(node->keys, key);
    if (idx < node->keys.size() && node->keys[idx] == key) ++idx;
    node = node->children[idx].get();
  }
  size_t idx = LowerBoundIndex(node->keys, key);
  Iterator it;
  if (idx < node->keys.size()) {
    it.node_ = node;
    it.index_ = idx;
    return it;
  }
  // All keys in this leaf are smaller; the answer is the first key of the
  // next non-empty leaf.
  const Node* next = node->next;
  while (next != nullptr && next->keys.empty()) next = next->next;
  it.node_ = next;
  it.index_ = 0;
  return it;
}

BTree::Iterator BTree::Begin() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  Iterator it;
  if (!node->keys.empty()) it.node_ = node;
  return it;
}

BTree::Iterator BTree::Last() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.back().get();
  Iterator it;
  if (!node->keys.empty()) {
    it.node_ = node;
    it.index_ = node->keys.size() - 1;
  }
  return it;
}

namespace {

// On-disk footprint model (per the BerkeleyDB-style store the paper's
// index-based implementation used): every page pays a fixed header; every
// entry pays its key bytes plus a slot pointer; leaf entries pay the value,
// inner entries a child pointer.
constexpr size_t kPageHeaderBytes = 32;
constexpr size_t kSlotOverheadBytes = 8;
constexpr size_t kValueBytes = 8;
constexpr size_t kChildPtrBytes = 8;

}  // namespace

size_t BTree::EncodedSizeBytes() const {
  size_t total = 0;
  // Iterative DFS over nodes.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    total += kPageHeaderBytes;
    for (const std::string& key : node->keys) {
      total += key.size() + kSlotOverheadBytes;
    }
    if (node->leaf) {
      total += node->values.size() * kValueBytes;
    } else {
      total += node->children.size() * kChildPtrBytes;
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  return total;
}

Status BTree::Validate() const {
  // DFS carrying (node, depth, lower, upper) bounds.
  struct Frame {
    const Node* node;
    size_t depth;
    const std::string* lower;  // keys must be >= *lower (nullable)
    const std::string* upper;  // keys must be <  *upper (nullable)
  };
  std::vector<Frame> stack = {{root_.get(), 1, nullptr, nullptr}};
  size_t leaf_depth = 0;
  size_t counted = 0;
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node* n = f.node;
    for (size_t i = 1; i < n->keys.size(); ++i) {
      if (!(n->keys[i - 1] < n->keys[i])) {
        return Status::Internal("btree: keys not strictly sorted");
      }
    }
    if (!n->keys.empty()) {
      if (f.lower != nullptr && n->keys.front() < *f.lower) {
        return Status::Internal("btree: key below subtree lower bound");
      }
      if (f.upper != nullptr && !(n->keys.back() < *f.upper)) {
        return Status::Internal("btree: key above subtree upper bound");
      }
    }
    if (n != root_.get() && n->keys.size() >= fanout_) {
      return Status::Internal("btree: node overflow");
    }
    if (n->leaf) {
      if (leaf_depth == 0) leaf_depth = f.depth;
      if (leaf_depth != f.depth) {
        return Status::Internal("btree: leaves at differing depths");
      }
      if (n->keys.size() != n->values.size()) {
        return Status::Internal("btree: leaf key/value count mismatch");
      }
      counted += n->keys.size();
    } else {
      if (n->children.size() != n->keys.size() + 1) {
        return Status::Internal("btree: inner child count mismatch");
      }
      for (size_t i = 0; i < n->children.size(); ++i) {
        const std::string* lo = i == 0 ? f.lower : &n->keys[i - 1];
        const std::string* hi = i == n->keys.size() ? f.upper : &n->keys[i];
        stack.push_back({n->children[i].get(), f.depth + 1, lo, hi});
      }
    }
  }
  if (counted != size_) {
    return Status::Internal("btree: size counter mismatch");
  }
  return Status::Ok();
}

}  // namespace xtopk
