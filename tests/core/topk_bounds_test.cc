// Soundness of the top-K search's static cross-column bounds (§IV-C): for
// every level l, B(l) = Σ_i max damped score must upper-bound the score of
// every actual result at that level — otherwise early emission could be
// wrong. Checked against the complete search's scored results on random
// corpora, together with the paper's column-skip inequality.

#include <gtest/gtest.h>

#include "core/join_search.h"
#include "core/topk_search.h"
#include "index/index_builder.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

struct BoundsCase {
  uint64_t seed;
  size_t nodes;
  uint32_t max_depth;
  double term_prob;
  size_t k;
};

class TopKBoundsTest : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(TopKBoundsTest, ColumnBoundsDominateActualScores) {
  const BoundsCase& c = GetParam();
  std::vector<std::string> all_terms = {"alpha", "beta", "gamma"};
  std::vector<std::string> terms(all_terms.begin(), all_terms.begin() + c.k);
  XmlTree tree =
      testing::MakeRandomTree(c.seed, c.nodes, 4, c.max_depth, terms,
                              c.term_prob);
  IndexBuildOptions build_options;
  build_options.index_tag_names = false;
  IndexBuilder builder(tree, build_options);
  JDeweyIndex jindex = builder.BuildJDeweyIndex();
  TopKIndex topk_index = builder.BuildTopKIndex(jindex);

  std::vector<const TopKList*> lists;
  for (const auto& term : terms) {
    const TopKList* list = topk_index.GetList(term);
    if (list == nullptr) return;  // term absent in this random tree
    lists.push_back(list);
  }
  ScoringParams params;

  // All scored results from the complete search.
  JoinSearch search(jindex);
  auto results = search.Search(terms);

  for (const SearchResult& r : results) {
    double bound = 0.0;
    for (const TopKList* list : lists) {
      bound += list->MaxDampedScoreAt(r.level, params);
    }
    ASSERT_GE(bound + 1e-9, r.score)
        << "seed " << c.seed << " level " << r.level;
  }

  // Column-skip rule (§IV-C): when no list has a sequence ending exactly
  // at level l, B(l) < B(l+1).
  uint32_t max_level = 0;
  for (const TopKList* list : lists) {
    max_level = std::max<uint32_t>(max_level, list->base->max_length);
  }
  for (uint32_t l = 1; l + 1 <= max_level; ++l) {
    bool any_ends_here = false;
    for (const TopKList* list : lists) {
      if (list->HasLength(l)) any_ends_here = true;
    }
    if (any_ends_here) continue;
    double bl = 0.0, bl1 = 0.0;
    for (const TopKList* list : lists) {
      bl += list->MaxDampedScoreAt(l, params);
      bl1 += list->MaxDampedScoreAt(l + 1, params);
    }
    if (bl1 > 0.0) {
      ASSERT_LT(bl, bl1 + 1e-12) << "seed " << c.seed << " level " << l;
      ASSERT_NEAR(bl, bl1 * params.damping_base, 1e-9)
          << "seed " << c.seed << " level " << l;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, TopKBoundsTest,
    ::testing::Values(BoundsCase{61, 200, 6, 0.25, 2},
                      BoundsCase{62, 400, 8, 0.15, 2},
                      BoundsCase{63, 400, 8, 0.15, 3},
                      BoundsCase{64, 800, 10, 0.08, 2},
                      BoundsCase{65, 800, 5, 0.2, 3},
                      BoundsCase{66, 300, 12, 0.1, 2}),
    [](const ::testing::TestParamInfo<BoundsCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "k" +
             std::to_string(info.param.k);
    });

}  // namespace
}  // namespace xtopk
