#ifndef XTOPK_WORKLOAD_XMARK_GEN_H_
#define XTOPK_WORKLOAD_XMARK_GEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "workload/vocab.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Synthetic XMark-like corpus (the paper's second data set): an auction
/// site with a deeper and more irregular shape than the DBLP-like tree —
///
///   site → regions → {africa..samerica} → item →
///            {name, description → parlist → listitem → text, mailbox →
///             mail → text}
///   site → people → person → {name, address → {street, city}}
///   site → open_auctions → open_auction → {initial, bidder → increase,
///            annotation → description → text}
///   site → categories → category → {name, description → text}
///
/// Keyword occurrences span levels 4–8, which exercises the length-grouped
/// segments of the top-K index and the multi-column joins.
struct XmarkGenOptions {
  uint32_t items_per_region = 600;
  uint32_t num_people = 2400;
  uint32_t num_open_auctions = 1200;
  uint32_t num_categories = 40;
  /// Bidders per open auction (each adds bidder/increase elements).
  uint32_t bidders_per_auction = 2;
  uint32_t description_paragraphs = 2;
  uint32_t words_per_text = 10;
  uint32_t vocab_size = 20000;
  double zipf_theta = 1.1;
  uint64_t seed = 1337;
  std::vector<PlantedTerm> planted;
};

struct XmarkCorpus {
  XmlTree tree;
  /// Text-carrying elements usable as planted-term targets (item names,
  /// description texts, mails, person names, auction annotations).
  std::vector<NodeId> text_nodes;
};

XmarkCorpus GenerateXmark(const XmarkGenOptions& options);

}  // namespace xtopk

#endif  // XTOPK_WORKLOAD_XMARK_GEN_H_
