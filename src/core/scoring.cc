#include "core/scoring.h"

#include <cassert>
#include <cmath>

namespace xtopk {

double RawLocalScore(uint32_t tf, uint64_t df, uint64_t corpus_nodes) {
  assert(tf > 0 && df > 0);
  double tf_weight = 1.0 + std::log(static_cast<double>(tf));
  double idf = std::log(1.0 + static_cast<double>(corpus_nodes) /
                                  static_cast<double>(df));
  return tf_weight * idf;
}

double Damp(const ScoringParams& params, uint32_t delta) {
  return std::pow(params.damping_base, static_cast<double>(delta));
}

double DampedScore(const ScoringParams& params, double local_score,
                   uint32_t occ_level, uint32_t result_level) {
  assert(occ_level >= result_level);
  return local_score * Damp(params, occ_level - result_level);
}

}  // namespace xtopk
