#ifndef XTOPK_INDEX_SEGMENT_H_
#define XTOPK_INDEX_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/disk_index.h"
#include "index/jdewey_index.h"
#include "index/reader.h"
#include "storage/segment_manifest.h"
#include "util/status.h"

namespace xtopk {

/// A TermSource over N immutable sealed segments plus one mutable
/// memtable — the LSM shape incremental indexing wants: inserts only ever
/// touch the small in-memory tail, sealed segments are written once and
/// never rewritten (until Compact folds them into one).
///
/// Every child indexes a disjoint set of nodes of ONE tree under ONE
/// shared JDewey encoding, and stores raw term frequencies in its score
/// slots (segment_builder.h). Resolve merges the children's rows of a term
/// by JDewey sequence — a k-way sorted merge, since Property 3.1 holds per
/// child — and converts tf to the normalized tf·idf local score using
/// corpus-global statistics aggregated from the segment manifests:
/// df(t) = sum of per-segment rows, the normalizer = max over terms of
/// RawLocalScore(max_tf, df, N). The result is bit-identical to the list a
/// single monolithic index build would produce, so JoinSearch / TopKSearch
/// answers are too.
///
/// Merged lists are cached per term; any mutation (AddMemorySegment /
/// AddDiskSegment / SetMemtable / SetCorpusNodes / Compact) bumps an
/// internal version that invalidates the cache and the aggregated
/// statistics. Not thread-safe — one SegmentedIndex per writer, like a
/// DiskJDeweyIndex session.
class SegmentedIndex : public TermSource {
 public:
  SegmentedIndex() = default;
  SegmentedIndex(SegmentedIndex&&) = default;
  SegmentedIndex& operator=(SegmentedIndex&&) = default;

  /// Seals `segment` (raw-tf scores, built by BuildSegmentIndex) as an
  /// in-memory immutable segment. `covered_nodes` is bookkeeping for the
  /// manifest written if this segment is later compacted to disk.
  void AddMemorySegment(JDeweyIndex segment, uint64_t covered_nodes = 0);

  /// Opens a sealed on-disk segment: `path` must hold a DiskIndexWriter
  /// page file with scores, `path + ".manifest"` its SegmentManifest.
  Status AddDiskSegment(const std::string& path,
                        DiskIndexOptions options = {});

  /// Attaches (or detaches, with nullptr) the memtable: a raw-tf segment
  /// index covering the not-yet-sealed nodes. Borrowed — the caller keeps
  /// it alive and calls SetMemtable again after rebuilding it.
  void SetMemtable(const JDeweyIndex* memtable);

  /// Total nodes of the shared tree (the N of the idf term). Score
  /// normalization needs it; the owner refreshes it as the tree grows.
  void SetCorpusNodes(uint64_t corpus_nodes);

  /// Merges ALL sealed segments (memory and disk) into one on-disk
  /// segment at `path` (+ ".manifest") and replaces them with it. The
  /// memtable is untouched; query results are unchanged. No-op when
  /// nothing is sealed.
  Status Compact(const std::string& path, DiskIndexOptions options = {});

  /// Drops every sealed segment and the memtable (full-rebuild path).
  void Clear();

  size_t sealed_count() const { return sealed_.size(); }
  bool has_memtable() const { return memtable_ != nullptr; }
  uint64_t corpus_nodes() const { return corpus_nodes_; }
  uint64_t version() const { return version_; }

  // TermSource. Frequency/MaxLength aggregate manifests (no data I/O);
  // Resolve merges + normalizes (up_to_level and bounds are ignored — a
  // merged list is always full, which the contract allows as a superset).
  uint32_t Frequency(const std::string& term) const override;
  uint32_t MaxLength(const std::string& term) const override;
  StatusOr<const JDeweyList*> Resolve(
      const std::string& term, uint32_t up_to_level, bool need_scores,
      const std::vector<ValueBounds>* level_bounds) override;
  NodeId NodeAt(uint32_t level, uint32_t value) const override;
  uint32_t max_level() const override;
  /// Corpus-global planner statistics for `term`, aggregated from the
  /// segment manifests + memtable alone — no posting scan. Histograms are
  /// merged by boundary-union addition, which over-counts only the shared
  /// ancestors that appear in several segments at shallow levels (an
  /// estimate either way). A v1 (histogram-less) part degrades the term
  /// to row-count-only statistics. Cached per version; the pointer stays
  /// valid until the next mutation.
  const TermStats* Stats(const std::string& term) const override;
  /// Cached plans key on the segment version: any seal / ingest / compact
  /// bumps it, so stale plans never survive an index mutation.
  uint64_t PlanWatermark() const override { return version_; }

 private:
  struct Sealed {
    std::unique_ptr<JDeweyIndex> memory;  ///< in-memory sealed segment, or
    std::shared_ptr<DiskIndexEnv> env;    ///< ... its on-disk counterpart
    std::unique_ptr<DiskJDeweyIndex> session;
    SegmentManifest manifest;
    /// term -> (rows, max_tf), the lookup form of the manifest.
    std::unordered_map<std::string, std::pair<uint32_t, uint32_t>> stats;
  };

  struct TermGlobal {
    uint64_t df = 0;
    uint32_t max_tf = 0;
  };

  void Bump();
  /// Rebuilds globals_ / max_raw_ from the manifests + memtable.
  void RefreshGlobals();
  /// All children's lists holding `term` (loads disk lists). Also counts
  /// the fanout into core.join.segment_fanout.
  Status CollectParts(const std::string& term,
                      std::vector<const JDeweyList*>* parts);
  /// K-way merge of `parts` by JDewey sequence into one raw-tf list.
  JDeweyList MergeParts(const std::vector<const JDeweyList*>& parts) const;

  std::vector<Sealed> sealed_;
  const JDeweyIndex* memtable_ = nullptr;
  uint64_t corpus_nodes_ = 0;
  uint64_t version_ = 1;

  // Per-version caches.
  uint64_t globals_version_ = 0;
  std::unordered_map<std::string, TermGlobal> globals_;
  double max_raw_ = 1.0;
  uint64_t cache_version_ = 0;
  /// Merged + normalized lists; node-based map, so pointers handed to the
  /// search layer stay stable across inserts.
  std::unordered_map<std::string, JDeweyList> cache_;
  /// Merged planner statistics per term (Stats() is const, hence mutable);
  /// entries with rows == 0 memoize "term absent".
  mutable uint64_t stats_version_ = 0;
  mutable std::unordered_map<std::string, TermStats> stats_cache_;
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_SEGMENT_H_
