#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"

namespace xtopk {
namespace obs {
namespace {

std::string Fetch(uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ExpositionTest, HandleRequestRoutes) {
  XTOPK_COUNTER("test.exposition.requests_seen").Add(3);
  std::string metrics = ExpositionServer::HandleRequest("GET /metrics HTTP/1.0");
  EXPECT_EQ(metrics.find("HTTP/1.0 200 OK"), 0u);
  EXPECT_NE(metrics.find("test_exposition_requests_seen"), std::string::npos);

  std::string vars = ExpositionServer::HandleRequest("GET /vars HTTP/1.0");
  EXPECT_NE(vars.find("application/json"), std::string::npos);
  EXPECT_NE(vars.find("\"counters\""), std::string::npos);
  EXPECT_NE(vars.find("\"windows\""), std::string::npos);

  std::string slowlog = ExpositionServer::HandleRequest("GET /slowlog HTTP/1.0");
  EXPECT_NE(slowlog.find("\"slow_queries\""), std::string::npos);

  std::string events = ExpositionServer::HandleRequest("GET /events HTTP/1.0");
  EXPECT_NE(events.find("\"events\""), std::string::npos);

  EXPECT_NE(ExpositionServer::HandleRequest("GET /healthz HTTP/1.0").find("ok"),
            std::string::npos);
  EXPECT_EQ(
      ExpositionServer::HandleRequest("GET /nope HTTP/1.0").find("404"), 9u);
  EXPECT_NE(ExpositionServer::HandleRequest("POST /metrics HTTP/1.0")
                .find("400 Bad Request"),
            std::string::npos);
  // Query strings are ignored, not 404ed.
  EXPECT_EQ(
      ExpositionServer::HandleRequest("GET /healthz?x=1 HTTP/1.0").find("HTTP/1.0 200"),
      0u);
}

TEST(ExpositionTest, ServesOverARealSocket) {
  ExpositionServer::Options options;
  options.port = 0;  // ephemeral
  ExpositionServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  XTOPK_COUNTER("test.exposition.live").Add(1);
  std::string metrics = Fetch(server.port(), "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("test_exposition_live"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);

  std::string vars = Fetch(server.port(), "GET /vars HTTP/1.0\r\n\r\n");
  EXPECT_NE(vars.find("\"histograms\""), std::string::npos);

  std::string health = Fetch(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string missing = Fetch(server.port(), "GET /missing HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ExpositionTest, StopIsIdempotentAndRestartable) {
  ExpositionServer server;
  ASSERT_TRUE(server.Start());
  uint16_t first_port = server.port();
  EXPECT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // no-op
  ASSERT_TRUE(server.Start());
  EXPECT_GT(server.port(), 0);
  server.Stop();
}

}  // namespace
}  // namespace obs
}  // namespace xtopk
