#ifndef XTOPK_XML_JDEWEY_BUILDER_H_
#define XTOPK_XML_JDEWEY_BUILDER_H_

#include <cstdint>

#include "xml/jdewey.h"
#include "xml/xml_tree.h"

namespace xtopk {

/// Builds and maintains JDewey encodings (paper §III-A).
///
/// Bulk assignment walks the tree level by level, handing each parent a
/// contiguous child range of size (children + gap); the `gap` extra numbers
/// are the "reserved spaces" the paper uses to absorb future insertions.
///
/// Dynamic insertion draws from the parent's reserved range; when the range
/// is exhausted, part of the tree is re-encoded to the end of its levels
/// (the paper's partial re-encoding: "update 1.1's number to be the largest
/// number in the second level, then corresponding numbers can be chosen for
/// its descendants"). Moving a subtree is only order-safe when its root's
/// parent owns the topmost child range of that level, so the builder climbs
/// to the lowest safely movable ancestor — in the best case the exhausted
/// range is itself topmost and is simply extended in place.
class JDeweyBuilder {
 public:
  /// Assigns numbers to every node of `tree`, reserving `gap` extra child
  /// slots per parent.
  static JDeweyEncoding Assign(const XmlTree& tree, uint32_t gap = 0);

  /// Assigns a number to `node`, which must be the most recently added node
  /// of `tree` (tree.AddChild result) and not yet encoded. Returns the
  /// number of nodes whose numbers changed (1 if the reserved range had
  /// room; the re-encoded subtree size otherwise) — callers use this to
  /// decide how much of an index to refresh.
  static size_t InsertAssign(const XmlTree& tree, NodeId node, uint32_t gap,
                             JDeweyEncoding* enc);

  /// As above, and reports which subtree moved: `*reencoded_root` is
  /// kInvalidNode when the insert fit an existing or in-place-extended
  /// reserved range (only `node` gained a number), or the root of the
  /// re-encoded subtree otherwise. Incremental indexes use this to tell
  /// "only the new node needs indexing" apart from "numbers under
  /// `*reencoded_root` are stale".
  static size_t InsertAssign(const XmlTree& tree, NodeId node, uint32_t gap,
                             JDeweyEncoding* enc, NodeId* reencoded_root);

 private:
  /// Re-assigns fresh end-of-level numbers to the subtree rooted at `root`,
  /// reserving `gap` slots per parent. Returns the subtree size.
  static size_t ReencodeSubtree(const XmlTree& tree, NodeId root, uint32_t gap,
                                JDeweyEncoding* enc);
};

}  // namespace xtopk

#endif  // XTOPK_XML_JDEWEY_BUILDER_H_
