#include "index/dewey_index.h"

#include <algorithm>
#include <cassert>

namespace xtopk {

uint32_t DeweyList::LowerBound(const DeweyId& key) const {
  auto it = std::lower_bound(deweys.begin(), deweys.end(), key);
  return static_cast<uint32_t>(it - deweys.begin());
}

std::pair<uint32_t, uint32_t> DeweyList::SubtreeRange(
    const DeweyId& prefix) const {
  uint32_t lo = LowerBound(prefix);
  // The exclusive upper bound is the first id whose prefix no longer
  // matches; compare component-wise instead of materializing a successor.
  uint32_t hi = lo;
  auto it = std::partition_point(
      deweys.begin() + lo, deweys.end(), [&](const DeweyId& d) {
        return prefix.IsAncestorOf(d, /*or_self=*/true);
      });
  hi = static_cast<uint32_t>(it - deweys.begin());
  return {lo, hi};
}

const DeweyList* DeweyIndex::GetList(const std::string& term) const {
  auto it = term_ids_.find(term);
  if (it == term_ids_.end()) return nullptr;
  return &lists_[it->second];
}

uint32_t DeweyIndex::Frequency(const std::string& term) const {
  const DeweyList* list = GetList(term);
  return list == nullptr ? 0 : list->num_rows();
}

uint64_t DeweyIndex::EncodedListBytes() const {
  uint64_t total = 0;
  for (const DeweyList& list : lists_) {
    total += 8;  // per-term header
    DeweyId prev;
    for (const DeweyId& d : list.deweys) {
      total += DeweyId::EncodedSizeDelta(prev, d);
      prev = d;
    }
  }
  return total;
}

std::string EncodeDeweyKey(const DeweyId& dewey) {
  std::string key;
  key.reserve(dewey.length() * 4);
  for (size_t i = 0; i < dewey.length(); ++i) {
    uint32_t c = dewey[i];
    key.push_back(static_cast<char>((c >> 24) & 0xFF));
    key.push_back(static_cast<char>((c >> 16) & 0xFF));
    key.push_back(static_cast<char>((c >> 8) & 0xFF));
    key.push_back(static_cast<char>(c & 0xFF));
  }
  return key;
}

DeweyId DecodeDeweyKey(std::string_view key) {
  assert(key.size() % 4 == 0);
  std::vector<uint32_t> comps(key.size() / 4);
  for (size_t i = 0; i < comps.size(); ++i) {
    comps[i] = (static_cast<uint32_t>(static_cast<uint8_t>(key[4 * i])) << 24) |
               (static_cast<uint32_t>(static_cast<uint8_t>(key[4 * i + 1]))
                << 16) |
               (static_cast<uint32_t>(static_cast<uint8_t>(key[4 * i + 2]))
                << 8) |
               static_cast<uint32_t>(static_cast<uint8_t>(key[4 * i + 3]));
  }
  return DeweyId(std::move(comps));
}

}  // namespace xtopk
