# Empty dependencies file for bench_ablation_dynamic.
# This may be replaced when dependencies are built.
