#ifndef XTOPK_UTIL_PARALLEL_H_
#define XTOPK_UTIL_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace xtopk {

/// Runs fn(0..n-1) across up to `threads` worker threads (work-stealing by
/// atomic counter). fn must be safe to call concurrently for distinct
/// indexes and must not depend on execution order — every parallel build
/// in the library writes to pre-sized, index-disjoint slots, so results
/// are bit-identical to the single-threaded run.
inline void ParallelFor(size_t n, size_t threads,
                        const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  size_t workers = std::min(threads, n);
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

/// ParallelFor variant that also tells fn which worker runs it:
/// fn(worker, i) with worker in [0, min(threads, n)). Query drivers use the
/// worker id to route work to per-worker state (e.g. one disk-index session
/// per thread) without any locking — same work-stealing schedule otherwise.
inline void ParallelForWorkers(
    size_t n, size_t threads,
    const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  size_t workers = std::min(threads, n);
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(w, i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace xtopk

#endif  // XTOPK_UTIL_PARALLEL_H_
