#ifndef XTOPK_INDEX_DAG_H_
#define XTOPK_INDEX_DAG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/column.h"
#include "util/status.h"
#include "xml/jdewey.h"
#include "xml/subtree_dag.h"
#include "xml/xml_tree.h"

namespace xtopk {

struct JDeweyList;

/// One shared (non-representative) copy of a DAG class's subtree, described
/// entirely in JDewey value space: at depth d (level = base_level + d) the
/// instance's values are exactly the representative's values shifted by
/// value_delta[d]. This is the translation Property 3.1 guarantees for
/// identical same-level subtrees (level-order assignment walks both copies
/// with the same local structure) — and which the builder VERIFIES against
/// the materialized columns before it dares share anything (DESIGN.md §15).
struct DagInstance {
  std::vector<int64_t> value_delta;  ///< per depth, instance − representative
};

/// One verified class of shared subtrees in value space.
struct DagClassInfo {
  uint32_t base_level = 0;  ///< level of the subtree roots (1-based)
  uint32_t depth = 0;       ///< levels spanned (>= 1)
  /// Representative value interval per depth d: the values of the
  /// representative subtree's nodes at level base_level + d. Subtree slots
  /// are contiguous per level, so the interval contains no foreign values.
  std::vector<uint32_t> rep_lo, rep_hi;
  std::vector<DagInstance> instances;  ///< non-representative copies
};

/// Index-wide catalog of verified shared-subtree classes, plus a per-level
/// interval index for "which class does this matched value expand through".
/// Shared by every list of the index (and by disk sessions reading the v3
/// sidecar); immutable once built.
class DagCatalog {
 public:
  struct RepInterval {
    uint32_t lo = 0, hi = 0;
    uint32_t cls = 0;    ///< index into classes
    uint32_t depth = 0;  ///< d such that level == base_level + d
  };

  std::vector<DagClassInfo> classes;

  /// Rebuilds the per-level interval index from `classes`. Must be called
  /// after classes changes (Build / Deserialize do it).
  void BuildLevelIndex(uint32_t max_level);

  /// Sorted representative intervals of `level` (1-based); empty past the
  /// indexed range.
  const std::vector<RepInterval>& RepsAt(uint32_t level) const;

  /// The representative interval containing `value` at `level`, or nullptr.
  const RepInterval* FindRep(uint32_t level, uint32_t value) const;

  bool empty() const { return classes.empty(); }

  uint64_t ResidentBytes() const;

  void Serialize(std::string* out) const;
  static StatusOr<std::shared_ptr<const DagCatalog>> Deserialize(
      const std::string& data, size_t* pos, uint32_t max_level);

 private:
  std::vector<std::vector<RepInterval>> level_reps_;
};

/// Per-term DAG companion data, attached to a JDeweyList. `dedup[l-1]`
/// (when has_dedup[l-1]) is the list's level-l column with every run that
/// lies inside a shared instance's value interval removed; the removed runs
/// are recoverable exactly — value-shifted by the class's per-depth delta
/// and row-shifted by this term's per-instance row delta.
struct DagListData {
  std::shared_ptr<const DagCatalog> catalog;
  std::vector<Column> dedup;    ///< aligned with JDeweyList::columns
  std::vector<char> has_dedup;  ///< aligned; 0 = level not deduplicated
  /// class index -> per-instance row delta of this term (instance rows =
  /// representative rows + delta; one constant per instance because rows
  /// are document-ordered and subtrees are contiguous).
  std::unordered_map<uint32_t, std::vector<int64_t>> row_deltas;

  /// Column to intersect at `level`: the dedup column when one exists,
  /// otherwise `full`.
  const Column* JoinColumn(uint32_t level, const Column* full) const {
    size_t i = level - 1;
    return (i < has_dedup.size() && has_dedup[i]) ? &dedup[i] : full;
  }

  uint64_t ResidentBytes() const;
};

/// Build-time summary (metrics / benches).
struct DagBuildStats {
  uint64_t classes = 0;
  uint64_t shared_instances = 0;  ///< non-representative copies
  uint64_t runs_removed = 0;      ///< runs dropped across all dedup columns
  uint64_t terms_affected = 0;
  uint64_t classes_rejected = 0;  ///< detected but failed verification
};

/// Verifies `detected` against the materialized lists and attaches DAG data
/// to every affected list: for each class, every term's runs inside each
/// instance interval must be the representative's runs under a constant
/// per-depth value shift and per-instance row shift — classes failing any
/// check for any term are dropped whole. After verification, dedup columns
/// are built and each one is round-trip checked (ExpandDedupColumn ==
/// original) so the shared form can never silently diverge from the exact
/// one. `lists` is term-id aligned; `terms` only labels error paths.
DagBuildStats AttachDagData(const XmlTree& tree, const JDeweyEncoding& enc,
                            const SubtreeDagResult& detected,
                            uint32_t max_level,
                            std::vector<JDeweyList>* lists);

/// Exact inverse of the dedup removal: re-inserts, in global value order,
/// one translated copy of the representative's runs per instance of every
/// class this term participates in. Used by disk-format v3 reads to
/// reconstruct bit-identical full columns, and by the build-time round-trip
/// check.
Column ExpandDedupColumn(
    const Column& dedup, const DagCatalog& catalog,
    const std::unordered_map<uint32_t, std::vector<int64_t>>& row_deltas,
    uint32_t level);

/// ExpandDedupColumn for untrusted (deserialized) inputs: instead of
/// assuming the build-time invariants — dedup runs align with the
/// catalog's representative intervals, per-class delta vectors are
/// consistently sized, translated runs stay monotonic — it re-validates
/// them and returns a typed Corruption status on any violation. The disk
/// reader reconstructs columns through this so a damaged DAG sidecar can
/// never crash, hang, or silently produce a wrong column.
StatusOr<Column> ExpandDedupColumnChecked(
    const Column& dedup, const DagCatalog& catalog,
    const std::unordered_map<uint32_t, std::vector<int64_t>>& row_deltas,
    uint32_t level);

/// True when the XTOPK_DISABLE_DAG environment variable disables subtree
/// sharing (any value but "0").
bool DagDisabledByEnv();

/// True when the XTOPK_DISABLE_DICT environment variable disables
/// dictionary encoding (any value but "0").
bool DictDisabledByEnv();

}  // namespace xtopk

#endif  // XTOPK_INDEX_DAG_H_
