#include "core/join_ops.h"

#include <gtest/gtest.h>

#include "core/join_planner.h"
#include "util/rng.h"

namespace xtopk {
namespace {

Column MakeColumn(std::initializer_list<std::pair<uint32_t, uint32_t>> rows) {
  Column col;
  for (auto [row, value] : rows) col.Append(row, value);
  return col;
}

Column RandomColumn(uint64_t seed, uint32_t values, double keep_prob) {
  Rng rng(seed);
  Column col;
  uint32_t row = 0;
  for (uint32_t v = 1; v <= values; ++v) {
    if (!rng.NextBernoulli(keep_prob)) continue;
    uint32_t count = 1 + static_cast<uint32_t>(rng.NextBounded(3));
    for (uint32_t i = 0; i < count; ++i) col.Append(row++, v);
  }
  return col;
}

TEST(JoinOpsTest, SeedMatchesMirrorsRuns) {
  Column col = MakeColumn({{0, 2}, {1, 2}, {2, 5}});
  auto matches = SeedMatches(col);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].value, 2u);
  EXPECT_EQ(matches[0].runs[0]->count, 2u);
  EXPECT_EQ(matches[1].value, 5u);
}

TEST(JoinOpsTest, MergeIntersectKeepsCommonValues) {
  Column a = MakeColumn({{0, 1}, {1, 3}, {2, 5}, {3, 7}});
  Column b = MakeColumn({{0, 3}, {1, 4}, {2, 7}, {3, 9}});
  JoinOpStats stats;
  auto matches = MergeIntersect(SeedMatches(a), b, &stats);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].value, 3u);
  EXPECT_EQ(matches[1].value, 7u);
  ASSERT_EQ(matches[0].runs.size(), 2u);
  EXPECT_EQ(stats.merge_joins, 1u);
  EXPECT_GT(stats.run_comparisons, 0u);
}

TEST(JoinOpsTest, IndexIntersectEquivalentToMerge) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Column a = RandomColumn(seed, 200, 0.3);
    Column b = RandomColumn(seed + 100, 200, 0.6);
    JoinOpStats s1, s2;
    auto merged = MergeIntersect(SeedMatches(a), b, &s1);
    auto probed = IndexIntersect(SeedMatches(a), b, &s2);
    ASSERT_EQ(merged.size(), probed.size()) << seed;
    for (size_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i].value, probed[i].value);
      EXPECT_EQ(merged[i].runs[1], probed[i].runs[1]);
    }
    EXPECT_EQ(s2.index_joins, 1u);
    EXPECT_EQ(s2.probes, a.run_count());
  }
}

TEST(JoinOpsTest, EmptyInputsYieldEmpty) {
  Column empty;
  Column b = MakeColumn({{0, 1}});
  JoinOpStats stats;
  EXPECT_TRUE(MergeIntersect(SeedMatches(empty), b, &stats).empty());
  EXPECT_TRUE(IndexIntersect(SeedMatches(empty), b, &stats).empty());
  EXPECT_TRUE(MergeIntersect(SeedMatches(b), empty, &stats).empty());
}

TEST(JoinPlannerTest, OrderIsShortestFirst) {
  auto order = PlanJoinOrder({500, 10, 100});
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(JoinPlannerTest, OrderStableOnTies) {
  auto order = PlanJoinOrder({10, 10, 5});
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
}

TEST(JoinPlannerTest, DynamicPolicyUsesRatio) {
  PlannerOptions options;  // ratio 16
  EXPECT_TRUE(UseIndexJoin(10, 1000, options));
  EXPECT_FALSE(UseIndexJoin(100, 1000, options));
  options.policy = JoinPolicy::kForceMerge;
  EXPECT_FALSE(UseIndexJoin(10, 1000000, options));
  options.policy = JoinPolicy::kForceIndex;
  EXPECT_TRUE(UseIndexJoin(1000000, 10, options));
}

}  // namespace
}  // namespace xtopk
