// Engine::RunBatch — the concurrent query driver must return, for every
// query, exactly what the sequential Search/SearchTopK calls return,
// regardless of worker count, with per-query stats populated.

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "testing/corpus.h"

namespace xtopk {
namespace {

using testing::MakeRandomTree;

void ExpectSameHits(const std::vector<QueryHit>& got,
                    const std::vector<QueryHit>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].node, want[i].node);
    EXPECT_EQ(got[i].level, want[i].level);
    EXPECT_EQ(got[i].score, want[i].score);
  }
}

TEST(EngineBatchTest, MatchesSequentialSearchAtAnyWorkerCount) {
  XmlTree tree = MakeRandomTree(55, 1800, 4, 7, {"alpha", "beta", "gamma"},
                                0.15);
  Engine engine(tree);

  std::vector<BatchQuery> batch;
  batch.push_back({{"alpha", "beta"}, 0, Semantics::kElca});
  batch.push_back({{"beta", "gamma"}, 0, Semantics::kSlca});
  batch.push_back({{"alpha", "gamma"}, 5, Semantics::kElca});
  batch.push_back({{"alpha", "beta", "gamma"}, 3, Semantics::kElca});
  batch.push_back({{"nosuchterm"}, 0, Semantics::kElca});

  std::vector<std::vector<QueryHit>> want;
  for (const BatchQuery& query : batch) {
    want.push_back(query.k == 0
                       ? engine.Search(query.keywords, query.semantics)
                       : engine.SearchTopK(query.keywords, query.k,
                                           query.semantics));
  }

  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    auto results = engine.RunBatch(batch, threads);
    ASSERT_EQ(results.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ExpectSameHits(results[i].hits, want[i]);
    }
  }
}

TEST(EngineBatchTest, PerQueryStatsAreIndependent) {
  XmlTree tree = MakeRandomTree(56, 1500, 4, 7, {"alpha", "beta"}, 0.2);
  Engine engine(tree);

  // Two copies of a real query around an empty one: the empty query's
  // stats must stay zeroed and the copies must agree — per-query counters,
  // not shared accumulators.
  std::vector<BatchQuery> batch;
  batch.push_back({{"alpha", "beta"}, 0, Semantics::kElca});
  batch.push_back({{"nosuchterm", "either"}, 0, Semantics::kElca});
  batch.push_back({{"alpha", "beta"}, 0, Semantics::kElca});

  auto results = engine.RunBatch(batch, 8);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_GT(results[0].join_stats.levels_processed, 0u);
  EXPECT_EQ(results[0].join_stats.levels_processed,
            results[2].join_stats.levels_processed);
  EXPECT_EQ(results[0].join_stats.candidates, results[2].join_stats.candidates);
  EXPECT_EQ(results[0].join_stats.results, results[2].join_stats.results);
  EXPECT_EQ(results[1].join_stats.levels_processed, 0u);
  EXPECT_EQ(results[1].join_stats.results, 0u);
  EXPECT_TRUE(results[1].hits.empty());
}

// Field-for-field trace equality, durations excluded (they are the only
// non-deterministic part of a trace). Batch mode and single-query mode run
// through one Engine::RunQuery path, so every span name, parent, stat, and
// label must match exactly.
void ExpectSameTrace(const obs::QueryTrace& got, const obs::QueryTrace& want) {
  ASSERT_EQ(got.spans().size(), want.spans().size());
  for (size_t s = 0; s < want.spans().size(); ++s) {
    const auto& g = got.spans()[s];
    const auto& w = want.spans()[s];
    EXPECT_EQ(g.name, w.name);
    EXPECT_EQ(g.parent, w.parent);
    ASSERT_EQ(g.stats.size(), w.stats.size()) << "span " << w.name;
    for (size_t i = 0; i < w.stats.size(); ++i) {
      EXPECT_EQ(g.stats[i].first, w.stats[i].first) << "span " << w.name;
      EXPECT_EQ(g.stats[i].second, w.stats[i].second)
          << "span " << w.name << " stat " << w.stats[i].first;
    }
    ASSERT_EQ(g.labels.size(), w.labels.size()) << "span " << w.name;
    for (size_t i = 0; i < w.labels.size(); ++i) {
      EXPECT_EQ(g.labels[i].first, w.labels[i].first) << "span " << w.name;
      EXPECT_EQ(g.labels[i].second, w.labels[i].second)
          << "span " << w.name << " label " << w.labels[i].first;
    }
  }
}

TEST(EngineBatchTest, BatchTracesMatchExplainFieldForField) {
  XmlTree tree = MakeRandomTree(58, 1600, 4, 7, {"alpha", "beta", "gamma"},
                                0.18);
  Engine engine(tree);

  std::vector<BatchQuery> batch;
  batch.push_back({{"alpha", "beta"}, 0, Semantics::kElca});
  batch.push_back({{"beta", "gamma"}, 0, Semantics::kSlca});
  batch.push_back({{"alpha", "gamma"}, 4, Semantics::kElca});
  batch.push_back({{"nosuchterm"}, 0, Semantics::kElca});

  auto results = engine.RunBatch(batch, 4, /*collect_traces=*/true);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_NE(results[i].trace, nullptr) << "query " << i;
    ExplainResult single = engine.Explain(batch[i]);
    ExpectSameTrace(*results[i].trace, single.trace);
    // The per-query counters ride the same path too.
    EXPECT_EQ(results[i].join_stats.candidates, single.join_stats.candidates);
    EXPECT_EQ(results[i].join_stats.results, single.join_stats.results);
    EXPECT_EQ(results[i].join_stats.rows_erased,
              single.join_stats.rows_erased);
  }
}

TEST(EngineBatchTest, TracesOffByDefault) {
  XmlTree tree = MakeRandomTree(59, 400, 3, 5, {"alpha"}, 0.2);
  Engine engine(tree);
  std::vector<BatchQuery> batch;
  batch.push_back({{"alpha"}, 0, Semantics::kElca});
  auto results = engine.RunBatch(batch, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].trace, nullptr);
}

TEST(EngineBatchTest, EmptyBatch) {
  XmlTree tree = MakeRandomTree(57, 300, 3, 5, {"alpha"}, 0.2);
  Engine engine(tree);
  EXPECT_TRUE(engine.RunBatch({}, 4).empty());
}

}  // namespace
}  // namespace xtopk
