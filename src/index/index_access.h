#ifndef XTOPK_INDEX_INDEX_ACCESS_H_
#define XTOPK_INDEX_INDEX_ACCESS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "index/dewey_index.h"
#include "index/jdewey_index.h"

namespace xtopk {

/// Private-member access shim shared by the serializers and the disk index
/// (friend of both index classes). Internal — not part of the public API.
struct IndexIoAccess {
  static std::unordered_map<std::string, uint32_t>* TermIds(
      JDeweyIndex* index) {
    return &index->term_ids_;
  }
  static std::vector<std::string>* Terms(JDeweyIndex* index) {
    return &index->terms_;
  }
  static std::vector<JDeweyList>* Lists(JDeweyIndex* index) {
    return &index->lists_;
  }
  static std::vector<std::vector<std::pair<uint32_t, NodeId>>>* LevelNodes(
      JDeweyIndex* index) {
    return &index->level_nodes_;
  }
  static const std::vector<std::vector<std::pair<uint32_t, NodeId>>>&
  LevelNodes(const JDeweyIndex& index) {
    return index.borrowed_level_nodes_ != nullptr
               ? *index.borrowed_level_nodes_
               : index.level_nodes_;
  }
  /// Points `index` at another index's (level, value) -> node mapping (the
  /// disk-index session path; `owner` must outlive `index`).
  static void BorrowLevelNodes(JDeweyIndex* index, const JDeweyIndex& owner) {
    index->borrowed_level_nodes_ = &LevelNodes(owner);
  }
  static uint32_t* MaxLevel(JDeweyIndex* index) { return &index->max_level_; }
  static std::vector<TermStats>* Stats(JDeweyIndex* index) {
    return &index->stats_;
  }

  static std::unordered_map<std::string, uint32_t>* TermIds(
      DeweyIndex* index) {
    return &index->term_ids_;
  }
  static std::vector<DeweyList>* Lists(DeweyIndex* index) {
    return &index->lists_;
  }
  static const std::unordered_map<std::string, uint32_t>& TermIds(
      const DeweyIndex& index) {
    return index.term_ids_;
  }
  static const std::vector<DeweyList>& Lists(const DeweyIndex& index) {
    return index.lists_;
  }
};

}  // namespace xtopk

#endif  // XTOPK_INDEX_INDEX_ACCESS_H_
