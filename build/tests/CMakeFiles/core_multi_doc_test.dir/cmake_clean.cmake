file(REMOVE_RECURSE
  "CMakeFiles/core_multi_doc_test.dir/core/multi_doc_test.cc.o"
  "CMakeFiles/core_multi_doc_test.dir/core/multi_doc_test.cc.o.d"
  "core_multi_doc_test"
  "core_multi_doc_test.pdb"
  "core_multi_doc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multi_doc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
