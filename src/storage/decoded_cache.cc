#include "storage/decoded_cache.h"

namespace xtopk {
namespace {

/// Fixed per-entry bookkeeping charge (key, list node, map slot).
constexpr size_t kEntryOverhead = 64;

}  // namespace

DecodedBlockCache::DecodedBlockCache(size_t byte_budget, size_t shards)
    : byte_budget_(byte_budget), cache_(byte_budget, shards, "storage.decoded") {}

std::shared_ptr<const Column> DecodedBlockCache::GetColumn(uint64_t column_id,
                                                           uint32_t level) {
  auto value = cache_.Get(DecodedBlockKey{column_id, level});
  if (!value) return nullptr;
  auto* column = std::get_if<std::shared_ptr<const Column>>(&*value);
  return column == nullptr ? nullptr : *column;
}

void DecodedBlockCache::PutColumn(uint64_t column_id, uint32_t level,
                                  std::shared_ptr<const Column> column) {
  if (column == nullptr) return;
  size_t cost = kEntryOverhead + column->runs().size() * sizeof(Run);
  cache_.Put(DecodedBlockKey{column_id, level}, Value(std::move(column)),
             cost);
}

std::shared_ptr<const Column> DecodedBlockCache::GetColumnBlock(
    uint64_t column_id, uint32_t level, uint32_t block_idx) {
  auto value = cache_.Get(DecodedBlockKey{column_id, level, block_idx + 1});
  if (!value) return nullptr;
  auto* column = std::get_if<std::shared_ptr<const Column>>(&*value);
  return column == nullptr ? nullptr : *column;
}

void DecodedBlockCache::PutColumnBlock(uint64_t column_id, uint32_t level,
                                       uint32_t block_idx,
                                       std::shared_ptr<const Column> fragment) {
  if (fragment == nullptr) return;
  size_t cost = kEntryOverhead + fragment->runs().size() * sizeof(Run);
  cache_.Put(DecodedBlockKey{column_id, level, block_idx + 1},
             Value(std::move(fragment)), cost);
}

std::shared_ptr<const std::vector<uint16_t>> DecodedBlockCache::GetLengths(
    uint64_t column_id) {
  auto value = cache_.Get(DecodedBlockKey{column_id, kLengthsBlock});
  if (!value) return nullptr;
  auto* lengths =
      std::get_if<std::shared_ptr<const std::vector<uint16_t>>>(&*value);
  return lengths == nullptr ? nullptr : *lengths;
}

void DecodedBlockCache::PutLengths(
    uint64_t column_id, std::shared_ptr<const std::vector<uint16_t>> lengths) {
  if (lengths == nullptr) return;
  size_t cost = kEntryOverhead + lengths->size() * sizeof(uint16_t);
  cache_.Put(DecodedBlockKey{column_id, kLengthsBlock},
             Value(std::move(lengths)), cost);
}

std::shared_ptr<const std::vector<float>> DecodedBlockCache::GetScores(
    uint64_t column_id) {
  auto value = cache_.Get(DecodedBlockKey{column_id, kScoresBlock});
  if (!value) return nullptr;
  auto* scores =
      std::get_if<std::shared_ptr<const std::vector<float>>>(&*value);
  return scores == nullptr ? nullptr : *scores;
}

void DecodedBlockCache::PutScores(
    uint64_t column_id, std::shared_ptr<const std::vector<float>> scores) {
  if (scores == nullptr) return;
  size_t cost = kEntryOverhead + scores->size() * sizeof(float);
  cache_.Put(DecodedBlockKey{column_id, kScoresBlock}, Value(std::move(scores)),
             cost);
}

}  // namespace xtopk
