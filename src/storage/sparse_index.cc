#include "storage/sparse_index.h"

#include <algorithm>

#include "util/varint.h"

namespace xtopk {

SparseIndex SparseIndex::Build(const Column& column, uint32_t sample_rate) {
  SparseIndex index;
  index.sample_rate_ = sample_rate == 0 ? 1 : sample_rate;
  index.total_runs_ = static_cast<uint32_t>(column.run_count());
  const auto& runs = column.runs();
  for (size_t i = 0; i < runs.size(); i += index.sample_rate_) {
    index.values_.push_back(runs[i].value);
    index.run_indexes_.push_back(static_cast<uint32_t>(i));
  }
  return index;
}

SparseIndex::Window SparseIndex::Probe(uint32_t value) const {
  if (values_.empty()) return Window{0, total_runs_};
  // Last sample with sampled value <= value starts the window.
  auto it = std::upper_bound(values_.begin(), values_.end(), value);
  size_t sample = static_cast<size_t>(it - values_.begin());
  if (sample == 0) return Window{0, 0};  // value below first run
  size_t lo = run_indexes_[sample - 1];
  size_t hi = sample < run_indexes_.size() ? run_indexes_[sample] + 1
                                           : total_runs_;
  return Window{lo, hi};
}

size_t SparseIndex::EncodedSize() const {
  std::string buf;
  Encode(&buf);
  return buf.size();
}

void SparseIndex::Encode(std::string* out) const {
  varint::PutU32(out, sample_rate_);
  varint::PutU32(out, total_runs_);
  varint::PutU32(out, static_cast<uint32_t>(values_.size()));
  uint32_t prev = 0;
  for (uint32_t v : values_) {
    varint::PutU32(out, v - prev);
    prev = v;
  }
  // Run indexes are implied by the stride except for the final partial
  // stride, so only the count is needed; keep explicit last index for
  // robustness.
  if (!run_indexes_.empty()) varint::PutU32(out, run_indexes_.back());
}

Status SparseIndex::Decode(const std::string& data, size_t* pos,
                           SparseIndex* out) {
  Status s = varint::GetU32(data, pos, &out->sample_rate_);
  if (!s.ok()) return s;
  s = varint::GetU32(data, pos, &out->total_runs_);
  if (!s.ok()) return s;
  uint32_t n = 0;
  s = varint::GetU32(data, pos, &n);
  if (!s.ok()) return s;
  out->values_.clear();
  out->run_indexes_.clear();
  uint32_t prev = 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t dv = 0;
    s = varint::GetU32(data, pos, &dv);
    if (!s.ok()) return s;
    prev += dv;
    out->values_.push_back(prev);
    out->run_indexes_.push_back(i * out->sample_rate_);
  }
  if (n > 0) {
    uint32_t last = 0;
    s = varint::GetU32(data, pos, &last);
    if (!s.ok()) return s;
    out->run_indexes_.back() = last;
  }
  return Status::Ok();
}

void BlockSkipIndex::AddBlock(uint32_t min_value, uint32_t max_value,
                              uint32_t byte_len) {
  min_values_.push_back(min_value);
  max_values_.push_back(max_value);
  byte_lens_.push_back(byte_len);
  byte_offsets_.push_back(data_bytes_);
  data_bytes_ += byte_len;
}

BlockSkipIndex::Range BlockSkipIndex::ProbeRange(uint32_t lo_value,
                                                 uint32_t hi_value) const {
  // First block whose max reaches lo_value; first block whose min exceeds
  // hi_value. Both vectors are sorted, so the overlap set is one interval.
  auto lo_it =
      std::lower_bound(max_values_.begin(), max_values_.end(), lo_value);
  auto hi_it =
      std::upper_bound(min_values_.begin(), min_values_.end(), hi_value);
  Range range;
  range.lo = static_cast<size_t>(lo_it - max_values_.begin());
  range.hi = std::max(
      range.lo, static_cast<size_t>(hi_it - min_values_.begin()));
  return range;
}

void BlockSkipIndex::Encode(std::string* out) const {
  varint::PutU32(out, static_cast<uint32_t>(block_count()));
  uint32_t prev_max = 0;
  for (size_t b = 0; b < block_count(); ++b) {
    varint::PutU32(out, min_values_[b] - prev_max);
    varint::PutU32(out, max_values_[b] - min_values_[b]);
    varint::PutU32(out, byte_lens_[b]);
    prev_max = max_values_[b];
  }
}

Status BlockSkipIndex::Decode(const std::string& data, size_t* pos,
                              BlockSkipIndex* out) {
  *out = BlockSkipIndex();
  uint32_t count = 0;
  Status s = varint::GetU32(data, pos, &count);
  if (!s.ok()) return s;
  uint32_t prev_max = 0;
  for (uint32_t b = 0; b < count; ++b) {
    uint32_t dmin = 0, span = 0, len = 0;
    s = varint::GetU32(data, pos, &dmin);
    if (s.ok()) s = varint::GetU32(data, pos, &span);
    if (s.ok()) s = varint::GetU32(data, pos, &len);
    if (!s.ok()) return s;
    // Overflow would wrap the running max and break the sorted invariant
    // ProbeRange's binary searches rely on — treat it as corruption.
    uint64_t min_value = static_cast<uint64_t>(prev_max) + dmin;
    uint64_t max_value = min_value + span;
    if (max_value > UINT32_MAX) {
      return Status::Corruption("skip index: value overflow");
    }
    out->AddBlock(static_cast<uint32_t>(min_value),
                  static_cast<uint32_t>(max_value), len);
    prev_max = static_cast<uint32_t>(max_value);
  }
  return Status::Ok();
}

}  // namespace xtopk
