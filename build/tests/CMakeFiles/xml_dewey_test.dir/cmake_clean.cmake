file(REMOVE_RECURSE
  "CMakeFiles/xml_dewey_test.dir/xml/dewey_test.cc.o"
  "CMakeFiles/xml_dewey_test.dir/xml/dewey_test.cc.o.d"
  "xml_dewey_test"
  "xml_dewey_test.pdb"
  "xml_dewey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_dewey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
