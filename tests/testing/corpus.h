#ifndef XTOPK_TESTS_TESTING_CORPUS_H_
#define XTOPK_TESTS_TESTING_CORPUS_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "xml/xml_tree.h"

namespace xtopk {
namespace testing {

/// A small hand-checked corpus used across the algorithm tests:
///
///   db                                   (level 1)
///   ├── conf                             (level 2)
///   │   ├── paper  "xml data"            (level 3)  <- direct both
///   │   ├── paper                        (level 3)
///   │   │   ├── title "xml"              (level 4)
///   │   │   └── abs   "data"             (level 4)
///   │   └── paper                        (level 3)
///   │       └── title "xml"              (level 4)
///   └── conf                             (level 2)
///       ├── paper                        (level 3)
///       │   └── title "data"             (level 4)
///       └── paper                        (level 3)
///           └── title "xml data xml"     (level 4)
///
/// ELCA({xml, data}): paper#0 (direct), paper#1 (via children),
/// title "xml data xml" — and conf#1? conf#1 contains data (under paper#3)
/// and xml only under the matched title -> after exclusion conf#1 keeps
/// "data" but loses all xml -> NOT an ELCA. conf#0: both keywords only
/// under ELCA papers -> not an ELCA. db: same -> not.
/// SLCA({xml, data}): paper#0, paper#1, title "xml data xml".
inline XmlTree MakeSmallCorpus() {
  XmlTree tree;
  NodeId db = tree.CreateRoot("db");
  NodeId conf0 = tree.AddChild(db, "conf");
  NodeId p0 = tree.AddChild(conf0, "paper");
  tree.AppendText(p0, "xml data");
  NodeId p1 = tree.AddChild(conf0, "paper");
  NodeId p1t = tree.AddChild(p1, "title");
  tree.AppendText(p1t, "xml");
  NodeId p1a = tree.AddChild(p1, "abs");
  tree.AppendText(p1a, "data");
  NodeId p2 = tree.AddChild(conf0, "paper");
  NodeId p2t = tree.AddChild(p2, "title");
  tree.AppendText(p2t, "xml");
  NodeId conf1 = tree.AddChild(db, "conf");
  NodeId p3 = tree.AddChild(conf1, "paper");
  NodeId p3t = tree.AddChild(p3, "title");
  tree.AppendText(p3t, "data");
  NodeId p4 = tree.AddChild(conf1, "paper");
  NodeId p4t = tree.AddChild(p4, "title");
  tree.AppendText(p4t, "xml data xml");
  return tree;
}

/// Node ids of MakeSmallCorpus in creation order, for readable assertions.
struct SmallCorpusIds {
  static constexpr NodeId kDb = 0;
  static constexpr NodeId kConf0 = 1;
  static constexpr NodeId kPaper0 = 2;   // "xml data"
  static constexpr NodeId kPaper1 = 3;
  static constexpr NodeId kP1Title = 4;  // "xml"
  static constexpr NodeId kP1Abs = 5;    // "data"
  static constexpr NodeId kPaper2 = 6;
  static constexpr NodeId kP2Title = 7;  // "xml"
  static constexpr NodeId kConf1 = 8;
  static constexpr NodeId kPaper3 = 9;
  static constexpr NodeId kP3Title = 10;  // "data"
  static constexpr NodeId kPaper4 = 11;
  static constexpr NodeId kP4Title = 12;  // "xml data xml"
};

/// A random labeled tree for property tests: up to `max_nodes` elements,
/// random branching, keyword tokens drawn from `terms` with probability
/// `term_prob` each per node. Deterministic per seed.
inline XmlTree MakeRandomTree(uint64_t seed, size_t max_nodes,
                              uint32_t max_children, uint32_t max_depth,
                              const std::vector<std::string>& terms,
                              double term_prob) {
  Rng rng(seed);
  XmlTree tree;
  tree.CreateRoot("r");
  std::vector<NodeId> frontier = {tree.root()};
  while (tree.node_count() < max_nodes && !frontier.empty()) {
    size_t pick = rng.NextBounded(frontier.size());
    NodeId parent = frontier[pick];
    if (tree.level(parent) >= max_depth) {
      frontier.erase(frontier.begin() + pick);
      continue;
    }
    NodeId child = tree.AddChild(parent, "n");
    frontier.push_back(child);
    // Give every node a chance to carry each term.
    for (const std::string& term : terms) {
      if (rng.NextBernoulli(term_prob)) tree.AppendText(child, term);
    }
    // Occasionally close a node so shapes vary.
    if (rng.NextBernoulli(0.2) ||
        tree.Children(parent).size() >= max_children) {
      frontier.erase(frontier.begin() + pick);
    }
  }
  return tree;
}

}  // namespace testing
}  // namespace xtopk

#endif  // XTOPK_TESTS_TESTING_CORPUS_H_
