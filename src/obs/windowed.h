#ifndef XTOPK_OBS_WINDOWED_H_
#define XTOPK_OBS_WINDOWED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace xtopk {
namespace obs {

/// Monotonic process clock in microseconds (steady_clock since first use).
/// The windowed metrics derive their slot epochs from this; tests pass
/// explicit timestamps instead and never touch the real clock.
uint64_t MonotonicNowUs();

/// A rotating-bucket view over the lock-free log2 histogram: kSlots
/// sub-histograms, each covering `slot_width_us` of wall time, reused
/// round-robin. Recording costs one epoch check plus the usual pair of
/// relaxed adds; a window query sums the slots that fall inside the
/// requested window, so snapshots report *recent* percentiles and rates
/// (last 10s / last 60s) instead of since-boot aggregates.
///
/// Rotation: the first writer to touch a slot whose epoch is stale takes a
/// per-slot spinlock, zeroes it, and publishes the new epoch. A concurrent
/// writer that read the old epoch just before the flip may land one sample
/// in the freshly-zeroed slot or lose it to the retiring one — a bounded,
/// sub-slot-width error that telemetry tolerates (the exact-sum tests pin
/// the no-rotation case; production windows are statistical). Window reads
/// copy bucket counts into plain integers first, so a snapshot is isolated
/// from rotations that happen after it.
class WindowedHistogram {
 public:
  static constexpr size_t kSlots = 16;
  /// 5s slots: a 10s window spans 2 full slots, a 60s window 12, and the
  /// ring covers 80s — enough to answer the 60s window with slack.
  static constexpr uint64_t kDefaultSlotWidthUs = 5ull * 1000 * 1000;
  static constexpr uint64_t kWindow10sUs = 10ull * 1000 * 1000;
  static constexpr uint64_t kWindow60sUs = 60ull * 1000 * 1000;

  explicit WindowedHistogram(uint64_t slot_width_us = kDefaultSlotWidthUs)
      : slot_width_us_(slot_width_us == 0 ? 1 : slot_width_us) {}

  void Record(uint64_t value) { RecordAt(value, MonotonicNowUs()); }
  /// Deterministic-time variant (tests; also the batch-import path).
  void RecordAt(uint64_t value, uint64_t now_us);

  /// Aggregate of the slots covering (now - window_us, now].
  struct WindowSnapshot {
    uint64_t window_us = 0;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, Histogram::kNumBuckets> buckets{};
    /// kEmptyPercentile (-1) when the window holds no samples, so
    /// dashboards can tell "no data" from "fast".
    double p50 = 0, p99 = 0, p999 = 0;
    double rate_per_sec = 0;  ///< count / window seconds
    double mean = 0;          ///< sum / count, 0 when empty

    /// {"count":...,"rate_per_sec":...,"p50":...,"p99":...,"p999":...}
    void AppendJson(std::string* out) const;
  };

  WindowSnapshot Window(uint64_t window_us) const {
    return WindowAt(window_us, MonotonicNowUs());
  }
  WindowSnapshot WindowAt(uint64_t window_us, uint64_t now_us) const;

  uint64_t slot_width_us() const { return slot_width_us_; }

 private:
  struct Slot {
    /// Slot epoch = now / slot_width. kIdleEpoch marks a never-used slot.
    std::atomic<uint64_t> epoch{kIdleEpoch};
    std::atomic<uint64_t> sum{0};
    std::array<std::atomic<uint64_t>, Histogram::kNumBuckets> buckets{};
    /// Rotation spinlock (taken once per slot width, never on the fast
    /// path).
    std::atomic<bool> rotating{false};
  };
  static constexpr uint64_t kIdleEpoch = ~0ull;

  Slot& SlotFor(uint64_t epoch) const {
    return slots_[static_cast<size_t>(epoch % kSlots)];
  }
  void RotateSlot(Slot& slot, uint64_t epoch);

  uint64_t slot_width_us_;
  mutable std::array<Slot, kSlots> slots_{};
};

/// The counter analogue: per-slot sums answering "how many in the last N
/// seconds" and the derived rate. Same rotation contract as the histogram.
class WindowedCounter {
 public:
  static constexpr size_t kSlots = WindowedHistogram::kSlots;

  explicit WindowedCounter(
      uint64_t slot_width_us = WindowedHistogram::kDefaultSlotWidthUs)
      : slot_width_us_(slot_width_us == 0 ? 1 : slot_width_us) {}

  void Add(uint64_t delta = 1) { AddAt(delta, MonotonicNowUs()); }
  void AddAt(uint64_t delta, uint64_t now_us);

  /// Sum of the slots covering (now - window_us, now].
  uint64_t SumInWindow(uint64_t window_us) const {
    return SumInWindowAt(window_us, MonotonicNowUs());
  }
  uint64_t SumInWindowAt(uint64_t window_us, uint64_t now_us) const;
  /// SumInWindow / window seconds.
  double RateInWindow(uint64_t window_us) const {
    return RateInWindowAt(window_us, MonotonicNowUs());
  }
  double RateInWindowAt(uint64_t window_us, uint64_t now_us) const;

  uint64_t slot_width_us() const { return slot_width_us_; }

 private:
  struct Slot {
    std::atomic<uint64_t> epoch{~0ull};
    std::atomic<uint64_t> value{0};
    std::atomic<bool> rotating{false};
  };

  void RotateSlot(Slot& slot, uint64_t epoch);

  uint64_t slot_width_us_;
  mutable std::array<Slot, kSlots> slots_{};
};

}  // namespace obs
}  // namespace xtopk

/// Static-handle accessors mirroring XTOPK_COUNTER / XTOPK_HISTOGRAM. A
/// windowed metric shares its name with the cumulative one it shadows
/// (e.g. both "engine.query_us" histograms exist: since-boot and windowed).
#define XTOPK_WINDOWED_HISTOGRAM(name)                                     \
  ([]() -> ::xtopk::obs::WindowedHistogram& {                              \
    static ::xtopk::obs::WindowedHistogram& histogram =                    \
        ::xtopk::obs::MetricsRegistry::Global().GetWindowedHistogram(      \
            name);                                                         \
    return histogram;                                                      \
  }())
#define XTOPK_WINDOWED_COUNTER(name)                                       \
  ([]() -> ::xtopk::obs::WindowedCounter& {                                \
    static ::xtopk::obs::WindowedCounter& counter =                        \
        ::xtopk::obs::MetricsRegistry::Global().GetWindowedCounter(name);  \
    return counter;                                                        \
  }())

#endif  // XTOPK_OBS_WINDOWED_H_
