#ifndef XTOPK_XML_DEWEY_H_
#define XTOPK_XML_DEWEY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/xml_tree.h"

namespace xtopk {

/// A classic Dewey id: the vector of 1-based sibling ordinals on the
/// root-to-node path (the root's component is always 1). Document order is
/// the lexicographic order of Dewey ids; the LCA of two nodes is their
/// longest common prefix. Used by the baselines (stack-based, index-based,
/// RDIL), which the paper compares against.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  const std::vector<uint32_t>& components() const { return components_; }
  size_t length() const { return components_.size(); }
  bool empty() const { return components_.empty(); }
  uint32_t operator[](size_t i) const { return components_[i]; }

  /// Lexicographic (document-order) comparison; a prefix sorts before its
  /// extensions.
  int Compare(const DeweyId& other) const;
  bool operator<(const DeweyId& other) const { return Compare(other) < 0; }
  bool operator==(const DeweyId& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const DeweyId& other) const { return !(*this == other); }

  /// Length of the longest common prefix with `other`.
  size_t CommonPrefixLength(const DeweyId& other) const;

  /// The LCA of the two nodes (their longest common prefix).
  DeweyId LongestCommonPrefix(const DeweyId& other) const;

  /// True iff *this is a proper prefix (ancestor) of `other`; with
  /// `or_self`, equality counts.
  bool IsAncestorOf(const DeweyId& other, bool or_self = false) const;

  /// The id truncated to its first `len` components.
  DeweyId Prefix(size_t len) const;

  /// "1.1.2.3" formatting (tests / debug output).
  std::string ToString() const;

  /// Serialized size in bytes under the prefix+varint compression of the
  /// baseline index format (see dewey_index.cc); exposed for size stats.
  static size_t EncodedSizeDelta(const DeweyId& prev, const DeweyId& cur);

 private:
  std::vector<uint32_t> components_;
};

/// Assigns Dewey ids to all nodes of `tree` (index = NodeId).
std::vector<DeweyId> AssignDeweyIds(const XmlTree& tree);

/// Resolves a Dewey id back to the tree node it names by walking child
/// ordinals from the root; kInvalidNode if the path does not exist.
NodeId NodeByDewey(const XmlTree& tree, const DeweyId& dewey);

}  // namespace xtopk

#endif  // XTOPK_XML_DEWEY_H_
